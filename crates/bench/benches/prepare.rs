//! Prepared-query benchmark (hand-rolled harness).
//!
//! Quantifies the fixed per-query compile overhead that the plan cache
//! eliminates: for a set of sub-millisecond XMark queries, the
//! compile-vs-execute split of an ad-hoc run, the cost of a cached
//! preparation (one hash lookup + `Rc` clone), and the end-to-end
//! speedup of the compile-once/run-many path. Also measures service
//! throughput over a hot shape mix with the per-worker plan cache on
//! and off.
//!
//! All timings are min-of-N with the two arms interleaved (so drift
//! hits both equally). Run with `cargo bench -p xqr-bench --bench
//! prepare`; results go to `BENCH_prepare.json` at the repo root.
//! `--test` runs a scaled-down pass and skips the JSON (CI smoke).

use std::time::{Duration, Instant};

use xqr_engine::service::{QueryRequest, QueryService, ServiceConfig};
use xqr_engine::{CompileOptions, Engine, ExecutionMode, PlanCacheConfig};

/// Navigation, aggregate, and join shapes that execute in well under a
/// millisecond on the benchmark document — exactly the regime where the
/// fixed compile cost dominates ad-hoc latency.
const QUERIES: &[usize] = &[1, 2, 5, 6, 13, 17];

fn us(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1.0e3
}

struct Row {
    query: usize,
    /// Ad-hoc prepare (parse + normalize + compile + rewrite), min-of-N.
    compile_us: f64,
    /// Cached prepare (text-key lookup + re-hydration), min-of-N.
    cached_prepare_us: f64,
    /// Execution alone (run of an already prepared plan), min-of-N.
    execute_us: f64,
    /// prepare+run, compiling every time.
    adhoc_total_us: f64,
    /// prepare+run through a warm plan cache.
    prepared_total_us: f64,
}

impl Row {
    fn prepare_speedup(&self) -> f64 {
        self.compile_us / self.cached_prepare_us.max(0.001)
    }
    fn total_speedup(&self) -> f64 {
        self.adhoc_total_us / self.prepared_total_us.max(0.001)
    }
}

fn bench_query(engine: &Engine, n: usize, iters: usize) -> Row {
    let q = xqr_xmark::query(n);
    let opts = CompileOptions::mode(ExecutionMode::OptimHashJoin);
    // Warm: one compile into the cache, one run to fault in the document
    // index structures.
    engine.clear_plan_cache();
    engine
        .prepare_cached(q, &opts)
        .expect("benchmark query compiles")
        .run(engine)
        .expect("benchmark query runs");

    let mut compile = Duration::MAX;
    let mut cached = Duration::MAX;
    let mut execute = Duration::MAX;
    let mut adhoc_total = Duration::MAX;
    let mut prepared_total = Duration::MAX;
    for _ in 0..iters {
        // Interleave every arm inside one iteration so clock drift and
        // cache pollution hit all five measurements alike.
        let t = Instant::now();
        let p = engine.prepare(q, &opts).unwrap();
        compile = compile.min(t.elapsed());

        let t = Instant::now();
        let _ = p.run(engine).unwrap();
        execute = execute.min(t.elapsed());

        let t = Instant::now();
        let p = engine.prepare_cached(q, &opts).unwrap();
        cached = cached.min(t.elapsed());
        let _ = p.run(engine).unwrap();

        let t = Instant::now();
        let _ = engine.prepare(q, &opts).unwrap().run(engine).unwrap();
        adhoc_total = adhoc_total.min(t.elapsed());

        let t = Instant::now();
        let _ = engine
            .prepare_cached(q, &opts)
            .unwrap()
            .run(engine)
            .unwrap();
        prepared_total = prepared_total.min(t.elapsed());
    }
    Row {
        query: n,
        compile_us: us(compile),
        cached_prepare_us: us(cached),
        execute_us: us(execute),
        adhoc_total_us: us(adhoc_total),
        prepared_total_us: us(prepared_total),
    }
}

/// Service throughput over a hot shape mix, with the per-worker plan
/// cache on or off. With the cache off every dispatch pays a full
/// compile; with it on, each worker compiles each shape once.
fn service_throughput(xml: &str, cache: bool, jobs: usize) -> f64 {
    let svc = QueryService::new(ServiceConfig {
        workers: 4,
        queue_capacity: jobs + 1,
        plan_cache: PlanCacheConfig {
            enabled: cache,
            ..PlanCacheConfig::default()
        },
        ..ServiceConfig::default()
    });
    svc.bind_document("auction.xml", xml);
    // Warm every worker's document store (first dispatch parses).
    for _ in 0..8 {
        svc.run(QueryRequest::new("1")).expect("warmup");
    }
    let t0 = Instant::now();
    let tickets: Vec<_> = (0..jobs)
        .map(|i| {
            svc.submit(QueryRequest::new(xqr_xmark::query(
                QUERIES[i % QUERIES.len()],
            )))
            .expect("queue sized for the whole batch")
        })
        .collect();
    for t in tickets {
        t.wait().expect("benchmark queries succeed");
    }
    jobs as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let xml = xqr_xmark::generate(&xqr_xmark::GenOptions::for_bytes(if smoke {
        60_000
    } else {
        200_000
    }));
    let iters = if smoke { 5 } else { 60 };
    let mut engine = Engine::new();
    engine.bind_document("auction.xml", &xml).unwrap();

    let rows: Vec<Row> = QUERIES
        .iter()
        .map(|&n| bench_query(&engine, n, iters))
        .collect();
    println!("prepared vs ad-hoc (min of {iters}, microseconds):");
    println!(
        "  {:>4} {:>12} {:>14} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "Q", "compile", "cached-prep", "execute", "adhoc", "prepared", "prep-x", "total-x"
    );
    for r in &rows {
        println!(
            "  {:>4} {:>12.1} {:>14.2} {:>12.1} {:>12.1} {:>12.1} {:>8.0}x {:>8.1}x",
            format!("Q{}", r.query),
            r.compile_us,
            r.cached_prepare_us,
            r.execute_us,
            r.adhoc_total_us,
            r.prepared_total_us,
            r.prepare_speedup(),
            r.total_speedup()
        );
    }
    let sub_ms_10x = rows
        .iter()
        .filter(|r| r.execute_us < 1_000.0 && r.prepare_speedup() >= 10.0)
        .count();
    println!(
        "{sub_ms_10x}/{} sub-ms queries prepare >=10x faster through the cache",
        rows.len()
    );

    let jobs = if smoke { 24 } else { 240 };
    let qps_off = service_throughput(&xml, false, jobs);
    let qps_on = service_throughput(&xml, true, jobs);
    println!(
        "service throughput ({jobs} jobs, 4 workers): cache off {qps_off:>8.1} q/s   \
         cache on {qps_on:>8.1} q/s   ({:.2}x)",
        qps_on / qps_off
    );

    if smoke {
        return;
    }

    let mut json = String::from("{\n  \"bench\": \"prepare\",\n  \"queries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": {}, \"compile_us\": {:.2}, \"cached_prepare_us\": {:.3}, \
             \"execute_us\": {:.2}, \"adhoc_total_us\": {:.2}, \"prepared_total_us\": {:.2}, \
             \"prepare_speedup\": {:.1}, \"total_speedup\": {:.2}}}{}\n",
            r.query,
            r.compile_us,
            r.cached_prepare_us,
            r.execute_us,
            r.adhoc_total_us,
            r.prepared_total_us,
            r.prepare_speedup(),
            r.total_speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sub_ms_queries_with_10x_prepare\": {sub_ms_10x},\n  \"service\": \
         {{\"jobs\": {jobs}, \"workers\": 4, \"qps_cache_off\": {qps_off:.1}, \
         \"qps_cache_on\": {qps_on:.1}, \"speedup\": {:.3}}}\n}}\n",
        qps_on / qps_off
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_prepare.json");
    std::fs::write(path, json).expect("write BENCH_prepare.json");
    println!("wrote {path}");
}
