//! Ablation bench: which of the Section 5 rewrite-rule families buys what?
//!
//! Runs the Clio N3 mapping query (triple-nested, 3-way join) under rule
//! subsets:
//!
//! * `none`        — naive compiled plan (≡ Algebra + No optim);
//! * `joins-only`  — product/join insertion without group-by unnesting
//!   (nested blocks stay dependent — joins rarely become visible);
//! * `unnest-only` — group-bys introduced but joins stay nested-loop
//!   dependent evaluations;
//! * `paper`       — the full Fig. 5 rule set, without the deep-nesting
//!   push extensions of DESIGN.md §4a;
//! * `full`        — everything.
//!
//! Expected shape: `full ≤ paper ≪ unnest-only ≈ joins-only ≈ none`.

use criterion::{criterion_group, criterion_main, Criterion};
use xqr_bench::clio_engine;
use xqr_engine::{CompileOptions, ExecutionMode, RuleConfig};

fn configs() -> Vec<(&'static str, RuleConfig)> {
    vec![
        ("none", RuleConfig::none()),
        (
            "joins-only",
            RuleConfig {
                remove_map: true,
                unnesting: false,
                join_insertion: true,
                push_rules: false,
            },
        ),
        (
            "unnest-only",
            RuleConfig {
                remove_map: true,
                unnesting: true,
                join_insertion: false,
                push_rules: false,
            },
        ),
        (
            "paper",
            RuleConfig {
                remove_map: true,
                unnesting: true,
                join_insertion: true,
                push_rules: false,
            },
        ),
        ("full", RuleConfig::all()),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let (engine, len) = clio_engine(25_000);
    let q = xqr_clio::mapping_query(3);
    let mut group = c.benchmark_group(format!("ablation/N3-{}K", len / 1000));
    group.sample_size(10);
    for (label, rules) in configs() {
        let options = CompileOptions::with_rules(ExecutionMode::OptimHashJoin, rules);
        let prepared = engine.prepare(&q, &options).expect("prepare");
        group.bench_function(label, |b| {
            b.iter(|| prepared.run(&engine).expect("run"));
        });
    }
    group.finish();
}

/// Document projection (`TreeProject`) on a navigation-heavy XMark query:
/// the projection pays a one-time pruning cost, then every descendant scan
/// touches a fraction of the tree. Compare repeated-evaluation cost.
fn bench_projection(c: &mut Criterion) {
    let (engine, len) = xqr_bench::xmark_engine(400_000);
    // Q14: //item + contains over descriptions.
    let q = xqr_xmark::query(14);
    let mut group = c.benchmark_group(format!("ablation/projection-{}K", len / 1000));
    group.sample_size(10);
    let plain = engine
        .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
        .expect("prepare");
    group.bench_function("without-projection", |b| {
        b.iter(|| plain.run(&engine).expect("run"))
    });
    let projected = engine
        .prepare(
            q,
            &CompileOptions::with_projection(ExecutionMode::OptimHashJoin),
        )
        .expect("prepare");
    group.bench_function("with-projection", |b| {
        b.iter(|| projected.run(&engine).expect("run"))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation, bench_projection);
criterion_main!(benches);
