//! Pipeline ablation: pipelined (cursor) execution vs full materialization.
//!
//! Every query is compiled twice under the same mode (hash joins, all
//! rewrite rules): once with the default pipelined strategy, once with
//! `CompileOptions::materialized` (every tuple operator evaluates to a
//! complete intermediate table).  The gap is the cost of allocating and
//! retaining the intermediate tables that the cursor layer fuses away.
//!
//! Coverage: all twenty XMark queries (including the join-heavy Q8–Q10,
//! where the probe side streams) and the Clio mapping queries N2–N4
//! (nested FLWOR blocks that unnest into join/group-by pipelines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqr_bench::{clio_engine, xmark_engine};
use xqr_engine::{CompileOptions, ExecutionMode};

const MODE: ExecutionMode = ExecutionMode::OptimHashJoin;

fn strategies() -> Vec<(&'static str, CompileOptions)> {
    vec![
        ("pipelined", CompileOptions::mode(MODE)),
        ("materialized", CompileOptions::materialized(MODE)),
    ]
}

fn bench_xmark(c: &mut Criterion) {
    let (engine, len) = xmark_engine(1_000_000);
    let mut group = c.benchmark_group(format!("pipeline/xmark-{}K", len / 1000));
    group.sample_size(10);
    for n in 1..=xqr_xmark::QUERY_COUNT {
        let q = xqr_xmark::query(n);
        for (label, options) in strategies() {
            let prepared = engine.prepare(q, &options).expect("prepare");
            group.bench_with_input(BenchmarkId::new(label, format!("Q{n}")), &n, |b, _| {
                b.iter(|| prepared.run(&engine).expect("run"));
            });
        }
    }
    group.finish();
}

fn bench_clio(c: &mut Criterion) {
    let (engine, len) = clio_engine(100_000);
    let mut group = c.benchmark_group(format!("pipeline/clio-{}K", len / 1000));
    group.sample_size(10);
    for levels in [2usize, 3, 4] {
        let q = xqr_clio::mapping_query(levels);
        for (label, options) in strategies() {
            let prepared = engine.prepare(&q, &options).expect("prepare");
            group.bench_with_input(
                BenchmarkId::new(label, format!("N{levels}")),
                &levels,
                |b, _| {
                    b.iter(|| prepared.run(&engine).expect("run"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_xmark, bench_clio);
criterion_main!(benches);
