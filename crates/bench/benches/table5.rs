//! Criterion version of **Table 5**: Clio mapping queries N2/N3 under
//! no-optim / NL / hash configurations (plus the direct interpreter, the
//! stand-in for the paper's Saxon column). The paper's finding: unnesting +
//! hash joins turn the nested mappings from minutes into seconds, with the
//! gap widening with nesting depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqr_bench::{clio_engine, time_eval};
use xqr_engine::ExecutionMode;

fn bench_table5(c: &mut Criterion) {
    let (engine, len) = clio_engine(40_000);
    let mut group = c.benchmark_group(format!("table5/dblp-{}K", len / 1000));
    group.sample_size(10);
    for levels in [2usize, 3] {
        let q = xqr_clio::mapping_query(levels);
        for (label, mode) in [
            ("no-optim", ExecutionMode::AlgebraNoOptim),
            ("nl", ExecutionMode::OptimNestedLoop),
            ("hash", ExecutionMode::OptimHashJoin),
            ("interp", ExecutionMode::NoAlgebra),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("N{levels}"), label),
                &(),
                |b, _| b.iter(|| time_eval(&engine, &q, mode)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
