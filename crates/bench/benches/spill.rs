//! Spill-overhead benchmark (hand-rolled harness).
//!
//! Runs the XMark join/sort-heavy queries at ~1 MB twice per query — with
//! an unlimited memory budget (everything in memory) and under a 256 KB
//! byte budget that degrades the joins, group-bys, and order-bys to their
//! out-of-core variants — and reports the wall-clock cost of spilling plus
//! the bytes each query pushed through the spill files.
//!
//! Run with `cargo bench -p xqr-bench --bench spill`; results are written
//! to `BENCH_spill.json` at the repo root. `--test` runs one iteration of
//! everything and skips the JSON (CI smoke).

use std::time::{Duration, Instant};

use xqr_bench::xmark_engine;
use xqr_engine::{CompileOptions, Limits, ProfileNode};

/// The XMark queries with a materialization-heavy core: the equality
/// joins (Q8–Q12) and the sort/aggregation shapes the external operators
/// rewrite (Q17–Q20 are path/aggregate heavy; Q10 builds the largest
/// intermediate).
const QUERIES: &[usize] = &[8, 9, 10, 11, 12, 17, 18, 19, 20];

const SPILL_BUDGET: u64 = 256 * 1024;

fn time_once<F: FnMut()>(f: &mut F) -> Duration {
    let t = Instant::now();
    f();
    t.elapsed()
}

/// Minima of `samples` interleaved runs (in-memory, spilled, …) after one
/// warmup apiece; see benches/profile.rs for why min + interleaving.
fn time_pair<F: FnMut(), G: FnMut()>(
    samples: usize,
    mut mem: F,
    mut spill: G,
) -> (Duration, Duration) {
    mem();
    spill();
    let mut best_mem = Duration::MAX;
    let mut best_spill = Duration::MAX;
    for _ in 0..samples {
        best_mem = best_mem.min(time_once(&mut mem));
        best_spill = best_spill.min(time_once(&mut spill));
    }
    (best_mem, best_spill)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1_000.0
}

fn spilled_bytes(n: &ProfileNode) -> u64 {
    n.spilled_bytes + n.children.iter().map(spilled_bytes).sum::<u64>()
}

struct Row {
    name: String,
    mem_ms: f64,
    spill_ms: f64,
    spilled_mb: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let samples = if smoke { 1 } else { 10 };

    let (engine, _len) = xmark_engine(1_000_000);
    let forced = Limits::none().with_max_bytes(SPILL_BUDGET);

    let mut rows = Vec::new();
    for &n in QUERIES {
        let q = xqr_xmark::query(n);
        let mem = engine
            .prepare(q, &CompileOptions::default())
            .expect("prepare");
        let spill = engine
            .prepare(q, &CompileOptions::default().limits(forced.clone()))
            .expect("prepare spilled");
        let (mem_t, spill_t) = time_pair(
            samples,
            || {
                std::hint::black_box(mem.run(&engine).expect("run"));
            },
            || {
                std::hint::black_box(spill.run(&engine).expect("run spilled"));
            },
        );
        // One profiled run of the spilled plan for the bytes-to-disk column.
        let profiled = engine
            .prepare(
                q,
                &CompileOptions::default()
                    .limits(forced.clone())
                    .with_profiling(),
            )
            .expect("prepare profiled");
        profiled.run(&engine).expect("profiled run");
        let bytes = profiled
            .profile()
            .and_then(|p| p.root.as_ref().map(spilled_bytes))
            .unwrap_or(0);
        rows.push(Row {
            name: format!("Q{n}"),
            mem_ms: ms(mem_t),
            spill_ms: ms(spill_t),
            spilled_mb: bytes as f64 / (1024.0 * 1024.0),
        });
    }

    println!("xmark 1 MB, pipelined: unlimited memory vs a 256 KB budget (spilling):");
    for r in &rows {
        let overhead = (r.spill_ms / r.mem_ms - 1.0) * 100.0;
        println!(
            "  {:<5} mem {:>8.3} ms   spill {:>8.3} ms   overhead {:>7.1}%   to-disk {:>7.2} MB",
            r.name, r.mem_ms, r.spill_ms, overhead, r.spilled_mb
        );
    }

    if smoke {
        return;
    }

    let mut json = String::from(
        "{\n  \"bench\": \"spill\",\n  \"budget_bytes\": 262144,\n  \"xmark_1mb\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mem_ms\": {:.3}, \"spill_ms\": {:.3}, \
             \"overhead_pct\": {:.2}, \"spilled_mb\": {:.2}}}{}\n",
            r.name,
            r.mem_ms,
            r.spill_ms,
            (r.spill_ms / r.mem_ms - 1.0) * 100.0,
            r.spilled_mb,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spill.json");
    std::fs::write(path, json).expect("write BENCH_spill.json");
    println!("wrote {path}");
}
