//! Criterion version of **Table 4**: scalability of the join queries
//! Q8/Q9/Q10/Q12 and the no-join control Q20, nested-loop vs hash join.
//! The paper's finding: NL grows quadratically with document size, the
//! typed hash join linearly, and Q20 is unaffected by the join algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqr_bench::{time_eval, xmark_engine};
use xqr_engine::ExecutionMode;

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    for bytes in [150_000usize, 300_000] {
        let (engine, len) = xmark_engine(bytes);
        for qn in [8usize, 9, 10, 12, 20] {
            let q = xqr_xmark::query(qn);
            for (label, mode) in [
                ("nl", ExecutionMode::OptimNestedLoop),
                ("hash", ExecutionMode::OptimHashJoin),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("Q{qn}/{label}"), len / 1000),
                    &(),
                    |b, _| b.iter(|| time_eval(&engine, q, mode)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
