//! Concurrent query-service benchmark (hand-rolled harness).
//!
//! Measures the admission-controlled service end to end: throughput and
//! latency quantiles of a mixed XMark workload at 1, 2, and 4 workers,
//! and the shed rate when submissions are offered at roughly 2x the
//! measured sustainable rate (the overload the admission controller is
//! there to absorb).
//!
//! Run with `cargo bench -p xqr-bench --bench service`; results are
//! written to `BENCH_service.json` at the repo root. `--test` runs a
//! scaled-down pass and skips the JSON (CI smoke).

use std::time::{Duration, Instant};

use xqr_engine::service::{QueryRequest, QueryService, ServiceConfig};

/// A mixed workload: path navigation (Q1, Q6), an aggregate (Q5), a
/// join (Q8), and construction-heavy shapes (Q13, Q17).
const QUERIES: &[usize] = &[1, 5, 6, 8, 13, 17];

fn service(workers: usize, queue: usize, xml: &str) -> QueryService {
    let svc = QueryService::new(ServiceConfig {
        workers,
        queue_capacity: queue,
        ..ServiceConfig::default()
    });
    svc.bind_document("auction.xml", xml);
    svc
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1.0e6
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct ConcurrencyRow {
    workers: usize,
    jobs: usize,
    throughput_qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Submits `jobs` queries round-robin over the workload, waits for all,
/// and reports wall throughput plus end-to-end (queue + run) latency
/// quantiles.
fn run_concurrency(xml: &str, workers: usize, jobs: usize) -> ConcurrencyRow {
    let svc = service(workers, jobs + 1, xml);
    // Warm every worker's private engine (first dispatch parses the
    // document into the thread-local store).
    for _ in 0..workers {
        svc.run(QueryRequest::new("1")).expect("warmup");
    }
    let t0 = Instant::now();
    let tickets: Vec<_> = (0..jobs)
        .map(|i| {
            svc.submit(QueryRequest::new(xqr_xmark::query(
                QUERIES[i % QUERIES.len()],
            )))
            .expect("queue sized for the whole batch")
        })
        .collect();
    let mut latencies: Vec<u64> = tickets
        .into_iter()
        .map(|t| {
            let out = t.wait().expect("benchmark queries succeed");
            out.queue_nanos + out.run_nanos
        })
        .collect();
    let wall = t0.elapsed();
    latencies.sort_unstable();
    ConcurrencyRow {
        workers,
        jobs,
        throughput_qps: jobs as f64 / wall.as_secs_f64(),
        p50_ms: ms(quantile(&latencies, 0.50)),
        p99_ms: ms(quantile(&latencies, 0.99)),
    }
}

struct OverloadRow {
    workers: usize,
    offered: usize,
    admitted: usize,
    shed: usize,
    shed_rate_pct: f64,
}

/// Offers submissions at ~2x the sustainable rate against a small queue
/// and reports how many the admission controller shed (`XQRG0007`).
fn run_overload(xml: &str, workers: usize, sustainable_qps: f64, offered: usize) -> OverloadRow {
    let svc = service(workers, workers * 2, xml);
    for _ in 0..workers {
        svc.run(QueryRequest::new("1")).expect("warmup");
    }
    let interval = Duration::from_secs_f64(1.0 / (2.0 * sustainable_qps.max(1.0)));
    let mut admitted_tickets = Vec::new();
    let mut shed = 0usize;
    let t0 = Instant::now();
    for i in 0..offered {
        match svc.submit(QueryRequest::new(xqr_xmark::query(
            QUERIES[i % QUERIES.len()],
        ))) {
            Ok(t) => admitted_tickets.push(t),
            Err(_) => shed += 1,
        }
        // Spin-paced: `thread::sleep` overshoots sub-millisecond
        // intervals by far more than the interval itself, which would
        // silently lower the offered rate well below 2x.
        let next = t0 + interval.saturating_mul(i as u32 + 1);
        while Instant::now() < next {
            std::hint::spin_loop();
        }
    }
    let admitted = admitted_tickets.len();
    for t in admitted_tickets {
        t.wait().expect("admitted queries complete");
    }
    OverloadRow {
        workers,
        offered,
        admitted,
        shed,
        shed_rate_pct: 100.0 * shed as f64 / offered as f64,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let xml = xqr_xmark::generate(&xqr_xmark::GenOptions::for_bytes(if smoke {
        60_000
    } else {
        200_000
    }));
    let jobs_per_level = if smoke { 12 } else { 96 };

    let rows: Vec<ConcurrencyRow> = [1usize, 2, 4]
        .iter()
        .map(|&w| run_concurrency(&xml, w, jobs_per_level))
        .collect();
    println!("service throughput vs concurrency ({jobs_per_level} queries per level):");
    for r in &rows {
        println!(
            "  workers {}  {:>8.1} q/s   p50 {:>8.3} ms   p99 {:>8.3} ms",
            r.workers, r.throughput_qps, r.p50_ms, r.p99_ms
        );
    }

    // Overload: offer at 2x the 2-worker sustainable rate.
    let sustainable = rows[1].throughput_qps;
    let overload = run_overload(&xml, 2, sustainable, if smoke { 24 } else { 120 });
    println!(
        "overload at ~2x: offered {}  admitted {}  shed {}  ({:.1}% shed)",
        overload.offered, overload.admitted, overload.shed, overload.shed_rate_pct
    );

    if smoke {
        return;
    }

    let mut json = String::from("{\n  \"bench\": \"service\",\n  \"concurrency\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"jobs\": {}, \"throughput_qps\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            r.workers,
            r.jobs,
            r.throughput_qps,
            r.p50_ms,
            r.p99_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"overload_2x\": {{\"workers\": {}, \"offered\": {}, \"admitted\": {}, \
         \"shed\": {}, \"shed_rate_pct\": {:.1}}}\n}}\n",
        overload.workers,
        overload.offered,
        overload.admitted,
        overload.shed,
        overload.shed_rate_pct
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, json).expect("write BENCH_service.json");
    println!("wrote {path}");
}
