//! Network query frontend benchmark (hand-rolled harness).
//!
//! Measures the hardened TCP/HTTP frontend end to end — real sockets,
//! real connection threads, one request per connection — on three axes:
//!
//! 1. throughput and end-to-end latency quantiles of a mixed XMark
//!    workload at 1, 4, and 16 concurrent client connections;
//! 2. overload behaviour when 16 clients offer at roughly 2x the
//!    measured sustainable rate against a deliberately small queue:
//!    the shed rate and the guarantee that every reply is a *mapped*
//!    status (200 or 429 — nothing unexplained);
//! 3. drain latency: how long `QueryServer::stop` takes to quiesce a
//!    server under active load.
//!
//! Run with `cargo bench -p xqr-bench --bench server`; results are
//! written to `BENCH_server.json` at the repo root. `--test` runs a
//! scaled-down pass and skips the JSON (CI smoke).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xqr_engine::server::{QueryServer, ServerConfig};
use xqr_engine::service::{QueryService, ServiceConfig};

/// The service bench's mixed workload: path navigation (Q1, Q6), an
/// aggregate (Q5), a join (Q8), and construction-heavy shapes (Q13, Q17).
const QUERIES: &[usize] = &[1, 5, 6, 8, 13, 17];

fn start_server(workers: usize, queue: usize, xml: &str) -> (Arc<QueryService>, QueryServer) {
    let svc = Arc::new(QueryService::new(ServiceConfig {
        workers,
        queue_capacity: queue,
        ..ServiceConfig::default()
    }));
    svc.bind_document("auction.xml", xml);
    let server = QueryServer::start(Arc::clone(&svc), "127.0.0.1:0", ServerConfig::default())
        .expect("bind benchmark server");
    (svc, server)
}

/// One POST /query over a fresh connection; returns the HTTP status.
fn post(addr: SocketAddr, query: &str) -> u16 {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let req = format!(
        "POST /query HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{query}",
        query.len()
    );
    if stream.write_all(req.as_bytes()).is_err() {
        return 0;
    }
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    let text = String::from_utf8_lossy(&raw);
    text.lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1.0e6
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct ConnectionsRow {
    connections: usize,
    requests: usize,
    throughput_qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// `connections` closed-loop clients each issue `per_conn` sequential
/// requests (connect, POST, read to EOF); latency is the full network
/// round trip including connection setup.
fn run_connections(xml: &str, connections: usize, per_conn: usize) -> ConnectionsRow {
    let (_svc, mut server) = start_server(4, connections * per_conn + 1, xml);
    let addr = server.addr();
    post(addr, "1"); // warm the listener and one worker engine
    let t0 = Instant::now();
    let threads: Vec<_> = (0..connections)
        .map(|c| {
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_conn);
                for i in 0..per_conn {
                    let q = xqr_xmark::query(QUERIES[(c + i) % QUERIES.len()]);
                    let t = Instant::now();
                    let status = post(addr, &q);
                    assert_eq!(status, 200, "benchmark queries succeed");
                    latencies.push(t.elapsed().as_nanos() as u64);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect();
    let wall = t0.elapsed();
    server.stop(None);
    latencies.sort_unstable();
    ConnectionsRow {
        connections,
        requests: connections * per_conn,
        throughput_qps: latencies.len() as f64 / wall.as_secs_f64(),
        p50_ms: ms(quantile(&latencies, 0.50)),
        p99_ms: ms(quantile(&latencies, 0.99)),
    }
}

struct OverloadRow {
    offered: usize,
    ok: usize,
    shed_429: usize,
    other: usize,
    shed_rate_pct: f64,
}

/// 16 clients pace a combined offered rate of ~2x `sustainable_qps`
/// against a 4-worker server with a small queue; every reply must be a
/// mapped 200 or 429 (`other` counts anything else and should be zero).
fn run_overload(xml: &str, sustainable_qps: f64, offered: usize) -> OverloadRow {
    let (_svc, mut server) = start_server(4, 8, xml);
    let addr = server.addr();
    post(addr, "1");
    const CLIENTS: usize = 16;
    let interval =
        Duration::from_secs_f64(CLIENTS as f64 / (2.0 * sustainable_qps.max(CLIENTS as f64)));
    let ok = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicUsize::new(0));
    let other = Arc::new(AtomicUsize::new(0));
    let per_client = offered.div_ceil(CLIENTS);
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let (ok, shed, other) = (Arc::clone(&ok), Arc::clone(&shed), Arc::clone(&other));
            std::thread::spawn(move || {
                let t0 = Instant::now();
                for i in 0..per_client {
                    let q = xqr_xmark::query(QUERIES[(c + i) % QUERIES.len()]);
                    match post(addr, &q) {
                        200 => ok.fetch_add(1, Ordering::Relaxed),
                        429 => shed.fetch_add(1, Ordering::Relaxed),
                        _ => other.fetch_add(1, Ordering::Relaxed),
                    };
                    // Spin-paced: `thread::sleep` overshoots
                    // sub-millisecond intervals badly enough to silently
                    // drop the offered rate well below 2x.
                    let next = t0 + interval.saturating_mul(i as u32 + 1);
                    while Instant::now() < next {
                        std::hint::spin_loop();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("offer thread");
    }
    server.stop(None);
    let (ok, shed_429, other) = (
        ok.load(Ordering::Relaxed),
        shed.load(Ordering::Relaxed),
        other.load(Ordering::Relaxed),
    );
    let offered = ok + shed_429 + other;
    OverloadRow {
        offered,
        ok,
        shed_429,
        other,
        shed_rate_pct: 100.0 * shed_429 as f64 / offered.max(1) as f64,
    }
}

struct DrainRow {
    conns_at_drain: usize,
    drained_queued: usize,
    cancelled: usize,
    drain_ms: f64,
}

/// Stops a server while 8 clients hammer it and reports how long the
/// two-stage drain (connections, then in-flight queries) takes.
fn run_drain(xml: &str) -> DrainRow {
    let (_svc, mut server) = start_server(4, 32, xml);
    let addr = server.addr();
    post(addr, "1");
    let stop = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..8)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0;
                while !stop.load(Ordering::Relaxed) {
                    let q = xqr_xmark::query(QUERIES[(c + i) % QUERIES.len()]);
                    let _ = post(addr, &q); // refusals expected once draining
                    i += 1;
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(200));
    let t0 = Instant::now();
    let report = server.stop(Some(Duration::from_secs(5)));
    let drain_ms = t0.elapsed().as_secs_f64() * 1.0e3;
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().expect("load thread");
    }
    DrainRow {
        conns_at_drain: report.conns_at_drain,
        drained_queued: report.service.drained_queued,
        cancelled: report.service.cancelled,
        drain_ms,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let xml = xqr_xmark::generate(&xqr_xmark::GenOptions::for_bytes(if smoke {
        60_000
    } else {
        200_000
    }));
    let per_conn = if smoke { 4 } else { 24 };

    let rows: Vec<ConnectionsRow> = [1usize, 4, 16]
        .iter()
        .map(|&c| run_connections(&xml, c, per_conn))
        .collect();
    println!("server throughput vs connections ({per_conn} requests per connection):");
    for r in &rows {
        println!(
            "  conns {:>2}  {:>8.1} q/s   p50 {:>8.3} ms   p99 {:>8.3} ms",
            r.connections, r.throughput_qps, r.p50_ms, r.p99_ms
        );
    }

    // Overload: offer at 2x the 4-connection sustainable rate.
    let sustainable = rows[1].throughput_qps;
    let overload = run_overload(&xml, sustainable, if smoke { 32 } else { 160 });
    println!(
        "overload at ~2x: offered {}  ok {}  shed(429) {}  other {}  ({:.1}% shed)",
        overload.offered, overload.ok, overload.shed_429, overload.other, overload.shed_rate_pct
    );
    assert_eq!(
        overload.other, 0,
        "every overload reply must be a mapped 200 or 429"
    );

    let drain = run_drain(&xml);
    println!(
        "drain under load: {} conns open, {} queued shed, {} cancelled, stop took {:.1} ms",
        drain.conns_at_drain, drain.drained_queued, drain.cancelled, drain.drain_ms
    );

    if smoke {
        return;
    }

    let mut json = String::from("{\n  \"bench\": \"server\",\n  \"connections\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"connections\": {}, \"requests\": {}, \"throughput_qps\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            r.connections,
            r.requests,
            r.throughput_qps,
            r.p50_ms,
            r.p99_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"overload_2x\": {{\"offered\": {}, \"ok\": {}, \"shed_429\": {}, \
         \"other\": {}, \"shed_rate_pct\": {:.1}}},\n",
        overload.offered, overload.ok, overload.shed_429, overload.other, overload.shed_rate_pct
    ));
    json.push_str(&format!(
        "  \"drain_under_load\": {{\"conns_at_drain\": {}, \"drained_queued\": {}, \
         \"cancelled\": {}, \"drain_ms\": {:.1}}}\n}}\n",
        drain.conns_at_drain, drain.drained_queued, drain.cancelled, drain.drain_ms
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, json).expect("write BENCH_server.json");
    println!("wrote {path}");
}
