//! TreeJoin structural-kernel benchmarks (hand-rolled harness).
//!
//! Two layers:
//!
//! * **micro** — the indexed `tree_join` kernels against the naive
//!   per-node reference walk (`axes::naive`, via the `naive-axes` feature)
//!   on the shapes the ISSUE calls out: descendant-name steps over wide
//!   fan-out, deep element chains (containment pruning), the `following`
//!   group kernel, and an XMark document;
//! * **xmark** — engine-level path-heavy XMark queries at ~1 MB with the
//!   streaming `TreeJoin` cursor (the default pipelined strategy).
//!
//! Run with `cargo bench -p xqr-bench --bench treejoin`; results are
//! written to `BENCH_treejoin.json` at the repo root so the perf
//! trajectory is tracked across PRs. `--test` runs one iteration of
//! everything and skips the JSON (CI smoke).

use std::time::{Duration, Instant};

use xqr_bench::xmark_engine;
use xqr_engine::CompileOptions;
use xqr_xml::axes::{self, naive, Axis, KindTest, NameTest, NodeTest};
use xqr_xml::node::TrivialHierarchy;
use xqr_xml::{parse_document, NodeHandle, ParseOptions, Sequence};

/// Median of `samples` timed runs (one `f()` call each).
fn time_median<F: FnMut()>(samples: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1_000.0
}

fn root_of(xml: &str) -> NodeHandle {
    let opts = ParseOptions {
        max_depth: 4_096,
        ..ParseOptions::default()
    };
    parse_document(xml, &opts)
        .expect("bench document parses")
        .root()
}

/// ~20k-child element: one wide fan-out level, tags alternating a/b.
fn wide_doc() -> String {
    let mut s = String::with_capacity(200_000);
    s.push_str("<r>");
    for i in 0..20_000 {
        s.push_str(if i % 2 == 0 { "<a/>" } else { "<b/>" });
    }
    s.push_str("</r>");
    s
}

/// 2000 nested `<d>` elements, a `<leaf/>` at each level: every `<d>` is
/// an overlapping descendant context (worst case for the naive walk, best
/// case for containment pruning).
fn deep_doc() -> String {
    let n = 2_000;
    let mut s = String::with_capacity(16 * n);
    s.push_str("<r>");
    for _ in 0..n {
        s.push_str("<d><leaf/>");
    }
    for _ in 0..n {
        s.push_str("</d>");
    }
    s.push_str("</r>");
    s
}

struct Micro {
    name: &'static str,
    naive_ms: f64,
    indexed_ms: f64,
}

fn bench_micro(samples: usize) -> Vec<Micro> {
    let types = &TrivialHierarchy;
    let mut out = Vec::new();
    let case = |name: &'static str,
                input: Sequence,
                axis: Axis,
                test: NodeTest,
                samples: usize,
                out: &mut Vec<Micro>| {
        // Equal-output sanity check before timing anything.
        let a = axes::tree_join(&input, axis, &test, types).expect("indexed");
        let b = naive::tree_join(&input, axis, &test, types).expect("naive");
        assert_eq!(a.len(), b.len(), "{name}: kernels disagree");
        let indexed = time_median(samples, || {
            std::hint::black_box(axes::tree_join(&input, axis, &test, types).unwrap());
        });
        let naive_t = time_median(samples, || {
            std::hint::black_box(naive::tree_join(&input, axis, &test, types).unwrap());
        });
        out.push(Micro {
            name,
            naive_ms: ms(naive_t),
            indexed_ms: ms(indexed),
        });
    };

    let wide = root_of(&wide_doc());
    let deep = root_of(&deep_doc());
    let xmark = root_of(&xqr_xmark::generate(&xqr_xmark::GenOptions::for_bytes(
        1_000_000,
    )));

    // //b over one wide fan-out: postings-list walk vs full subtree scan.
    case(
        "descendant-name/wide-20k",
        Sequence::singleton(wide.clone()),
        Axis::Descendant,
        NodeTest::Name(NameTest::local("b")),
        samples,
        &mut out,
    );
    // //item over a real 1 MB XMark document.
    case(
        "descendant-name/xmark-1mb",
        Sequence::singleton(xmark.clone()),
        Axis::Descendant,
        NodeTest::Name(NameTest::local("item")),
        samples,
        &mut out,
    );
    // Overlapping contexts: every node of the deep chain steps descendant —
    // containment pruning makes this linear; the naive walk is quadratic.
    let deep_ctxs = axes::tree_join(
        &Sequence::singleton(deep.clone()),
        Axis::DescendantOrSelf,
        &NodeTest::Name(NameTest::local("d")),
        types,
    )
    .unwrap();
    case(
        "descendant-overlap/deep-2k",
        deep_ctxs.clone(),
        Axis::Descendant,
        NodeTest::Name(NameTest::local("leaf")),
        samples,
        &mut out,
    );
    // Group kernel: following over many contexts in one tree.
    case(
        "following/deep-2k",
        deep_ctxs,
        Axis::Following,
        NodeTest::Kind(KindTest::AnyKind),
        samples,
        &mut out,
    );
    // Sibling kernel over the wide fan-out (binary-search vs linear scan).
    // (`wide` is the document node; descend to the <a> children of <r>.)
    let wide_kids = axes::tree_join(
        &Sequence::singleton(wide),
        Axis::Descendant,
        &NodeTest::Name(NameTest::local("a")),
        types,
    )
    .unwrap();
    let some_kids = Sequence::from_vec(wide_kids.iter().step_by(100).cloned().collect::<Vec<_>>());
    case(
        "following-sibling/wide-20k",
        some_kids,
        Axis::FollowingSibling,
        NodeTest::Name(NameTest::local("b")),
        samples,
        &mut out,
    );
    out
}

/// The path-heavy XMark queries (no joins): step-chain cost dominates.
const XMARK_PATH_QUERIES: [usize; 8] = [1, 5, 6, 7, 13, 14, 15, 20];

fn bench_xmark(samples: usize) -> Vec<(String, f64)> {
    let (engine, _len) = xmark_engine(1_000_000);
    let mut out = Vec::new();
    for n in XMARK_PATH_QUERIES {
        let prepared = engine
            .prepare(xqr_xmark::query(n), &CompileOptions::default())
            .expect("prepare");
        let t = time_median(samples, || {
            std::hint::black_box(prepared.run(&engine).expect("run"));
        });
        out.push((format!("Q{n}"), ms(t)));
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let samples = if smoke { 1 } else { 7 };

    let micro = bench_micro(samples);
    println!("treejoin micro (naive vs indexed kernels):");
    for m in &micro {
        println!(
            "  {:<32} naive {:>9.3} ms   indexed {:>9.3} ms   speedup {:>6.1}x",
            m.name,
            m.naive_ms,
            m.indexed_ms,
            m.naive_ms / m.indexed_ms
        );
    }

    let xmark = bench_xmark(samples);
    println!("xmark path queries, 1 MB, pipelined (streaming TreeJoin):");
    for (q, t) in &xmark {
        println!("  {q:<6} {t:>9.3} ms");
    }

    if smoke {
        return;
    }

    // Machine-readable record, tracked in-repo across PRs.
    let mut json = String::from("{\n  \"bench\": \"treejoin\",\n  \"micro\": [\n");
    for (i, m) in micro.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"naive_ms\": {:.3}, \"indexed_ms\": {:.3}, \
             \"speedup\": {:.2}}}{}\n",
            m.name,
            m.naive_ms,
            m.indexed_ms,
            m.naive_ms / m.indexed_ms,
            if i + 1 < micro.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"xmark_1mb_pipelined_ms\": {\n");
    for (i, (q, t)) in xmark.iter().enumerate() {
        json.push_str(&format!(
            "    \"{q}\": {t:.3}{}\n",
            if i + 1 < xmark.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_treejoin.json");
    std::fs::write(path, json).expect("write BENCH_treejoin.json");
    println!("wrote {path}");
}
