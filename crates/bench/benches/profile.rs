//! Profiling-overhead benchmark (hand-rolled harness).
//!
//! Runs the twenty XMark queries at ~1 MB twice per query — profiling off
//! (the default) and on (`CompileOptions::with_profiling`) — and reports
//! the per-query overhead of the sampled per-operator instrumentation,
//! plus each query's hottest operators by self time from the profiled run.
//!
//! Run with `cargo bench -p xqr-bench --bench profile`; results are
//! written to `BENCH_profile.json` at the repo root. `--test` runs one
//! iteration of everything and skips the JSON (CI smoke). The overhead
//! budget is the ISSUE's: parity when disabled, ≤3% when profiling.

use std::time::{Duration, Instant};

use xqr_bench::xmark_engine;
use xqr_engine::{CompileOptions, ProfileNode, QueryProfile};

fn time_once<F: FnMut()>(f: &mut F) -> Duration {
    let t = Instant::now();
    f();
    t.elapsed()
}

/// Minima of `samples` timed runs of each closure, with the runs
/// *interleaved* (off, on, off, on, …) after one warmup apiece. The
/// minimum is the noise-robust statistic for an overhead comparison —
/// scheduler preemption and allocator jitter only ever add time — and the
/// interleaving makes clock/load drift land on both sides equally instead
/// of skewing whichever block ran second.
fn time_pair<F: FnMut(), G: FnMut()>(
    samples: usize,
    mut off: F,
    mut on: G,
) -> (Duration, Duration) {
    off();
    on();
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    for _ in 0..samples {
        best_off = best_off.min(time_once(&mut off));
        best_on = best_on.min(time_once(&mut on));
    }
    (best_off, best_on)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1_000.0
}

struct HotOp {
    label: String,
    self_ms: f64,
    rows: u64,
}

/// The top operators by self (exclusive) time, heaviest first.
fn hottest(profile: &QueryProfile, top: usize) -> Vec<HotOp> {
    fn flatten(n: &ProfileNode, out: &mut Vec<HotOp>) {
        if n.touched {
            out.push(HotOp {
                label: n.label.clone(),
                self_ms: n.exclusive_nanos as f64 / 1e6,
                rows: n.rows,
            });
        }
        for c in &n.children {
            flatten(c, out);
        }
    }
    let mut out = Vec::new();
    if let Some(r) = &profile.root {
        flatten(r, &mut out);
    }
    out.sort_by(|a, b| b.self_ms.total_cmp(&a.self_ms));
    out.truncate(top);
    out
}

struct QueryRow {
    name: String,
    off_ms: f64,
    on_ms: f64,
    hot: Vec<HotOp>,
}

fn bench_queries(samples: usize) -> Vec<QueryRow> {
    let (engine, _len) = xmark_engine(1_000_000);
    let mut out = Vec::new();
    for n in 1..=xqr_xmark::QUERY_COUNT {
        let q = xqr_xmark::query(n);
        let plain = engine
            .prepare(q, &CompileOptions::default())
            .expect("prepare");
        let profiled = engine
            .prepare(q, &CompileOptions::default().with_profiling())
            .expect("prepare profiled");
        let (off, on) = time_pair(
            samples,
            || {
                std::hint::black_box(plain.run(&engine).expect("run"));
            },
            || {
                std::hint::black_box(profiled.run(&engine).expect("run profiled"));
            },
        );
        let profile = profiled.profile().expect("profile recorded");
        out.push(QueryRow {
            name: format!("Q{n}"),
            off_ms: ms(off),
            on_ms: ms(on),
            hot: hottest(&profile, 3),
        });
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let samples = if smoke { 1 } else { 15 };

    let rows = bench_queries(samples);
    println!("xmark 1 MB, pipelined: profiling off vs on (per-operator stats):");
    let mut worst: f64 = 0.0;
    for r in &rows {
        let overhead = (r.on_ms / r.off_ms - 1.0) * 100.0;
        worst = worst.max(overhead);
        let hot = r
            .hot
            .iter()
            .map(|h| format!("{} {:.2}ms/{} rows", h.label, h.self_ms, h.rows))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "  {:<5} off {:>8.3} ms   on {:>8.3} ms   overhead {:>6.1}%   hottest: {hot}",
            r.name, r.off_ms, r.on_ms, overhead
        );
    }
    println!("worst-case overhead: {worst:.1}%");

    if smoke {
        return;
    }

    // Machine-readable record, tracked in-repo across PRs.
    let mut json = String::from("{\n  \"bench\": \"profile\",\n  \"xmark_1mb\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let hot = r
            .hot
            .iter()
            .map(|h| {
                format!(
                    "{{\"op\": \"{}\", \"self_ms\": {:.3}, \"rows\": {}}}",
                    h.label, h.self_ms, h.rows
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"off_ms\": {:.3}, \"on_ms\": {:.3}, \
             \"overhead_pct\": {:.2}, \"hottest\": [{hot}]}}{}\n",
            r.name,
            r.off_ms,
            r.on_ms,
            (r.on_ms / r.off_ms - 1.0) * 100.0,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!("  ],\n  \"worst_overhead_pct\": {worst:.2}\n}}\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_profile.json");
    std::fs::write(path, json).expect("write BENCH_profile.json");
    println!("wrote {path}");
}
