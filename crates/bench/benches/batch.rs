//! Batched-execution benchmark (hand-rolled harness).
//!
//! Runs the twenty XMark queries at ~1 MB twice per query — scalar
//! kernels (`CompileOptions::with_scalar_kernels`) and batched (the
//! pipelined default) — and reports the per-query speedup of the fused,
//! type-specialized comparison kernels, plus the whole-suite geometric
//! mean. For the kernel-dominated queries (Q11/Q12) it also extracts the
//! fused predicate's `Call[fs:*]` self time from a profiled run of each
//! mode, isolating the hot-path win from end-to-end noise.
//!
//! Run with `cargo bench -p xqr-bench --bench batch`; results are written
//! to `BENCH_batch.json` at the repo root. `--test` runs one iteration of
//! everything and skips the JSON (CI smoke). The acceptance floors are
//! the ISSUE's: ≥2× on Q11/Q12 `Call[fs:*]` self time, ≥1.5× end-to-end
//! on both, suite geomean no worse than 1.02× slower.

use std::time::{Duration, Instant};

use xqr_bench::xmark_engine;
use xqr_engine::{CompileOptions, ProfileNode, QueryProfile};

fn time_once<F: FnMut()>(f: &mut F) -> Duration {
    let t = Instant::now();
    f();
    t.elapsed()
}

/// Minima of `samples` timed runs of each closure, with the runs
/// *interleaved* (scalar, batched, scalar, …) after one warmup apiece —
/// the minimum is the noise-robust statistic and the interleaving lands
/// clock/load drift on both sides equally.
fn time_pair<F: FnMut(), G: FnMut()>(
    samples: usize,
    mut scalar: F,
    mut batched: G,
) -> (Duration, Duration) {
    scalar();
    batched();
    let mut best_scalar = Duration::MAX;
    let mut best_batched = Duration::MAX;
    for _ in 0..samples {
        best_scalar = best_scalar.min(time_once(&mut scalar));
        best_batched = best_batched.min(time_once(&mut batched));
    }
    (best_scalar, best_batched)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1_000.0
}

/// Total self (exclusive) time of every `Call[fs:*]` operator in a
/// profile — the scalar hot path the batched kernels replace.
fn fs_call_self_ms(profile: &QueryProfile) -> f64 {
    fn walk(n: &ProfileNode, acc: &mut u64) {
        if n.label.starts_with("Call[fs:") {
            *acc += n.exclusive_nanos;
        }
        for c in &n.children {
            walk(c, acc);
        }
    }
    let mut acc = 0u64;
    if let Some(r) = &profile.root {
        walk(r, &mut acc);
    }
    acc as f64 / 1e6
}

struct QueryRow {
    name: String,
    scalar_ms: f64,
    batched_ms: f64,
    /// `Call[fs:*]` self time per mode, measured on separate profiled
    /// prepares (only recorded for the kernel-dominated queries).
    fs_self: Option<(f64, f64)>,
}

/// Queries whose runtime is dominated by the fused predicate: the ISSUE's
/// hot-path acceptance targets apply to these.
const KERNEL_QUERIES: [usize; 2] = [11, 12];

fn bench_queries(samples: usize) -> Vec<QueryRow> {
    let (engine, _len) = xmark_engine(1_000_000);
    let mut out = Vec::new();
    for n in 1..=xqr_xmark::QUERY_COUNT {
        let q = xqr_xmark::query(n);
        let scalar = engine
            .prepare(q, &CompileOptions::default().with_scalar_kernels())
            .expect("prepare scalar");
        let batched = engine
            .prepare(q, &CompileOptions::default())
            .expect("prepare batched");
        let (s, b) = time_pair(
            samples,
            || {
                std::hint::black_box(scalar.run(&engine).expect("run scalar"));
            },
            || {
                std::hint::black_box(batched.run(&engine).expect("run batched"));
            },
        );
        let fs_self = KERNEL_QUERIES.contains(&n).then(|| {
            let ps = engine
                .prepare(
                    q,
                    &CompileOptions::default()
                        .with_scalar_kernels()
                        .with_profiling(),
                )
                .expect("prepare scalar profiled");
            ps.run(&engine).expect("run scalar profiled");
            let pb = engine
                .prepare(q, &CompileOptions::default().with_profiling())
                .expect("prepare batched profiled");
            pb.run(&engine).expect("run batched profiled");
            (
                fs_call_self_ms(&ps.profile().expect("scalar profile")),
                fs_call_self_ms(&pb.profile().expect("batched profile")),
            )
        });
        out.push(QueryRow {
            name: format!("Q{n}"),
            scalar_ms: ms(s),
            batched_ms: ms(b),
            fs_self,
        });
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let samples = if smoke { 1 } else { 15 };

    let rows = bench_queries(samples);
    println!("xmark 1 MB, pipelined: scalar kernels vs batched (the default):");
    let mut log_sum = 0.0;
    for r in &rows {
        let speedup = r.scalar_ms / r.batched_ms;
        log_sum += speedup.ln();
        let fs = match r.fs_self {
            Some((s, b)) => format!("   Call[fs:*] self {s:.2}ms -> {b:.2}ms"),
            None => String::new(),
        };
        println!(
            "  {:<5} scalar {:>8.3} ms   batched {:>8.3} ms   speedup {:>5.2}x{fs}",
            r.name, r.scalar_ms, r.batched_ms, speedup
        );
    }
    let geomean = (log_sum / rows.len() as f64).exp();
    println!("suite geomean speedup: {geomean:.3}x");

    if smoke {
        return;
    }

    // Machine-readable record, tracked in-repo across PRs.
    let mut json = String::from("{\n  \"bench\": \"batch\",\n  \"xmark_1mb\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let fs = match r.fs_self {
            Some((s, b)) => {
                format!(", \"fs_call_self_scalar_ms\": {s:.3}, \"fs_call_self_batched_ms\": {b:.3}")
            }
            None => String::new(),
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ms\": {:.3}, \"batched_ms\": {:.3}, \
             \"speedup\": {:.3}{fs}}}{}\n",
            r.name,
            r.scalar_ms,
            r.batched_ms,
            r.scalar_ms / r.batched_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!("  ],\n  \"geomean_speedup\": {geomean:.3}\n}}\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    std::fs::write(path, json).expect("write BENCH_batch.json");
    println!("wrote {path}");
}
