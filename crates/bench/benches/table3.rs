//! Criterion version of **Table 3**: the XMark 20-query suite under the
//! four execution configurations, on a CI-sized document. The paper's
//! finding is the ordering
//! `no algebra ≥ algebra-no-optim > optim+NL > optim+hash`.

use criterion::{criterion_group, criterion_main, Criterion};
use xqr_bench::{time_xmark_suite, xmark_engine};
use xqr_engine::ExecutionMode;

fn bench_table3(c: &mut Criterion) {
    let (engine, len) = xmark_engine(300_000);
    let mut group = c.benchmark_group(format!("table3/xmark20-{}K", len / 1000));
    group.sample_size(10);
    for mode in ExecutionMode::ALL {
        group.bench_function(mode.label(), |b| {
            b.iter(|| time_xmark_suite(&engine, mode));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
