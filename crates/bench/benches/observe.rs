//! Observability-overhead benchmark (hand-rolled harness).
//!
//! Answers one question: what does the always-on query-lifecycle
//! observability layer (per-phase histograms, the timeline journal, the
//! per-shape table, the slow-query log) cost on the service's hot path?
//!
//! Three variants run the same mixed XMark workload through an identical
//! service, interleaved over several rounds so drift hits all variants
//! equally:
//!
//! * `off`    — `ObserveConfig { enabled: false }`: the layer's one
//!              branch per event, nothing recorded;
//! * `on`     — the default configuration (journal, histograms, shapes,
//!              250 ms slow threshold);
//! * `on+scrape` — default configuration while a scraper thread calls
//!              `observe()` + `prometheus_text()` every 5 ms (~200
//!              scrapes/s — orders of magnitude past a real Prometheus
//!              interval) to measure snapshot interference.
//!
//! The acceptance bar from the lifecycle-observability change: `on` vs
//! `off` throughput overhead under ~2% (quantile snapshots are off the
//! per-query path; recording is a handful of relaxed atomic adds plus two
//! short mutexed pushes per completion). Because rounds interleave the
//! variants, the reported overhead is the *median of paired per-round
//! deltas* — slow-machine drift hits both sides of each pair and cancels,
//! which matters on small CI boxes where scheduler noise per round can
//! exceed the effect being measured.
//!
//! Run with `cargo bench -p xqr-bench --bench observe`; results are
//! written to `BENCH_observe.json` at the repo root. `--test` runs a
//! scaled-down pass and skips the JSON (CI smoke).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use xqr_engine::service::{QueryRequest, QueryService, ServiceConfig};
use xqr_engine::ObserveConfig;

/// The same mixed workload as the service benchmark: paths, an
/// aggregate, a join, and construction-heavy shapes.
const QUERIES: &[usize] = &[1, 5, 6, 8, 13, 17];

fn service(workers: usize, queue: usize, xml: &str, observe: ObserveConfig) -> QueryService {
    let svc = QueryService::new(ServiceConfig {
        workers,
        queue_capacity: queue,
        observe,
        ..ServiceConfig::default()
    });
    svc.bind_document("auction.xml", xml);
    svc
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1.0e6
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[derive(Clone, Copy)]
struct Round {
    throughput_qps: f64,
    p50_nanos: u64,
    p99_nanos: u64,
}

/// One measured batch: submit `jobs` queries, wait for all, return wall
/// throughput and end-to-end latency quantiles.
fn run_batch(svc: &QueryService, jobs: usize, scrape: bool) -> Round {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        if scrape {
            let svc = &svc;
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let report = svc.observe();
                    std::hint::black_box(report.phases.len());
                    std::hint::black_box(svc.prometheus_text().len());
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            });
        }
        let t0 = Instant::now();
        let tickets: Vec<_> = (0..jobs)
            .map(|i| {
                svc.submit(QueryRequest::new(xqr_xmark::query(
                    QUERIES[i % QUERIES.len()],
                )))
                .expect("queue sized for the whole batch")
            })
            .collect();
        let mut latencies: Vec<u64> = tickets
            .into_iter()
            .map(|t| {
                let out = t.wait().expect("benchmark queries succeed");
                out.queue_nanos + out.run_nanos
            })
            .collect();
        let wall = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        latencies.sort_unstable();
        Round {
            throughput_qps: jobs as f64 / wall.as_secs_f64(),
            p50_nanos: quantile(&latencies, 0.50),
            p99_nanos: quantile(&latencies, 0.99),
        }
    })
}

struct Variant {
    name: &'static str,
    observe: ObserveConfig,
    scrape: bool,
}

struct Summary {
    name: &'static str,
    throughput_qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn summarize(name: &'static str, rounds: &[Round]) -> Summary {
    // Median throughput across rounds (robust to one noisy round), mean
    // of the latency quantiles.
    let mut tp: Vec<f64> = rounds.iter().map(|r| r.throughput_qps).collect();
    tp.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = rounds.len() as u64;
    Summary {
        name,
        throughput_qps: tp[tp.len() / 2],
        p50_ms: ms(rounds.iter().map(|r| r.p50_nanos).sum::<u64>() / n),
        p99_ms: ms(rounds.iter().map(|r| r.p99_nanos).sum::<u64>() / n),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let xml = xqr_xmark::generate(&xqr_xmark::GenOptions::for_bytes(if smoke {
        60_000
    } else {
        200_000
    }));
    // Small CI boxes often expose a single core; modest worker counts
    // and many short interleaved rounds beat a few giant bursts there.
    let workers = 2;
    let jobs = if smoke { 12 } else { 48 };
    let rounds = if smoke { 2 } else { 15 };

    let variants = [
        Variant {
            name: "off",
            observe: ObserveConfig {
                enabled: false,
                ..ObserveConfig::default()
            },
            scrape: false,
        },
        Variant {
            name: "on",
            observe: ObserveConfig::default(),
            scrape: false,
        },
        Variant {
            name: "on+scrape",
            observe: ObserveConfig::default(),
            scrape: true,
        },
    ];

    // One long-lived service per variant, warmed once; rounds interleave
    // across variants so machine drift is shared.
    let services: Vec<QueryService> = variants
        .iter()
        .map(|v| {
            let svc = service(workers, jobs + 1, &xml, v.observe.clone());
            for _ in 0..workers {
                svc.run(QueryRequest::new("1")).expect("warmup");
            }
            // One full pass primes every worker's plan cache.
            run_batch(&svc, jobs, false);
            svc
        })
        .collect();

    let mut measured: Vec<Vec<Round>> = variants.iter().map(|_| Vec::new()).collect();
    for _ in 0..rounds {
        for (i, v) in variants.iter().enumerate() {
            measured[i].push(run_batch(&services[i], jobs, v.scrape));
        }
    }

    let summaries: Vec<Summary> = variants
        .iter()
        .zip(&measured)
        .map(|(v, r)| summarize(v.name, r))
        .collect();

    println!("observability overhead ({workers} workers, {jobs} queries/round, {rounds} rounds):");
    for s in &summaries {
        println!(
            "  {:<10} {:>8.1} q/s   p50 {:>8.3} ms   p99 {:>8.3} ms",
            s.name, s.throughput_qps, s.p50_ms, s.p99_ms
        );
    }
    // Paired per-round comparison: round i of `off` and round i of `on`
    // ran back-to-back, so drift cancels within each pair; the median
    // across pairs discards outlier rounds entirely.
    let mut deltas: Vec<f64> = measured[0]
        .iter()
        .zip(&measured[1])
        .map(|(off, on)| 100.0 * (off.throughput_qps - on.throughput_qps) / off.throughput_qps)
        .collect();
    deltas.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead_pct = deltas[deltas.len() / 2];
    println!("  on vs off overhead: {overhead_pct:.2}% (median of paired rounds, target < 2%)");

    if smoke {
        return;
    }

    let mut json = String::from("{\n  \"bench\": \"observe\",\n");
    json.push_str(&format!(
        "  \"workers\": {workers},\n  \"jobs_per_round\": {jobs},\n  \"rounds\": {rounds},\n"
    ));
    json.push_str("  \"variants\": [\n");
    for (i, s) in summaries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"throughput_qps\": {:.1}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}}}{}\n",
            s.name,
            s.throughput_qps,
            s.p50_ms,
            s.p99_ms,
            if i + 1 < summaries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"overhead_on_vs_off_pct\": {overhead_pct:.2}\n}}\n"
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_observe.json");
    std::fs::write(path, json).expect("write BENCH_observe.json");
    println!("wrote {path}");
}
