//! Governor-overhead timer: full XMark Q1–Q20 suite, min-of-N
//! (`cargo run --release -p xqr-bench --example govbench -- 1000000 5`).
//!
//! For each mode it times the suite twice on the same build: once with the
//! default (unlimited) governor and once with every budget enabled at
//! generous values (deadline, tuple cardinality, bytes) — the difference
//! is the cost of active limit accounting, reported in EXPERIMENTS.md.

use std::time::Duration;
use xqr_bench::{time_xmark_suite_opts, xmark_engine};
use xqr_engine::{CompileOptions, ExecutionMode, Limits};

fn min_of(reps: usize, mut f: impl FnMut() -> Duration) -> (Duration, Vec<Duration>) {
    let mut best = Duration::MAX;
    let mut all = Vec::with_capacity(reps);
    for _ in 0..reps {
        let d = f();
        best = best.min(d);
        all.push(d);
    }
    (best, all)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let bytes: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let (engine, len) = xmark_engine(bytes);
    let governed_limits = Limits::default()
        .with_deadline(Duration::from_secs(600))
        .with_max_tuples(u64::MAX / 2)
        .with_max_bytes(u64::MAX / 2);
    for mode in [ExecutionMode::OptimHashJoin, ExecutionMode::NoAlgebra] {
        let free = CompileOptions::mode(mode);
        let governed = CompileOptions::mode(mode).limits(governed_limits.clone());
        let (base, base_runs) = min_of(reps, || time_xmark_suite_opts(&engine, &free));
        let (gov, gov_runs) = min_of(reps, || time_xmark_suite_opts(&engine, &governed));
        let overhead = 100.0 * (gov.as_secs_f64() / base.as_secs_f64() - 1.0);
        println!("{mode:?} doc={len}B  Q1-Q20");
        println!("  unlimited min={base:?}  runs={base_runs:?}");
        println!("  governed  min={gov:?}  runs={gov_runs:?}");
        println!("  overhead  {overhead:+.2}%");
    }
}
