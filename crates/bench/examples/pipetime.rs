//! Quick interleaved min-of-N timer for pipelined vs materialized
//! (dev aid; `cargo run -p xqr-bench --example pipetime -- q10 4000000 7`).

use std::time::{Duration, Instant};
use xqr_engine::{CompileOptions, Engine, ExecutionMode};

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "q10".into());
    let bytes: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    let (engine, q, len): (Engine, String, usize) = if let Some(n) = which.strip_prefix('n') {
        let levels: usize = n.parse().expect("nN");
        let xml = xqr_clio::generate_dblp(&xqr_clio::DblpOptions::for_bytes(bytes));
        let len = xml.len();
        let mut e = Engine::new();
        e.bind_document("dblp.xml", &xml).unwrap();
        (e, xqr_clio::mapping_query(levels), len)
    } else {
        let n: usize = which.trim_start_matches('q').parse().expect("qN");
        let xml = xqr_xmark::generate(&xqr_xmark::GenOptions::for_bytes(bytes));
        let len = xml.len();
        let mut e = Engine::new();
        e.bind_document("auction.xml", &xml).unwrap();
        (e, xqr_xmark::query(n).to_string(), len)
    };
    let mode = ExecutionMode::OptimHashJoin;
    let pipe = engine.prepare(&q, &CompileOptions::mode(mode)).unwrap();
    let mat = engine
        .prepare(&q, &CompileOptions::materialized(mode))
        .unwrap();
    let (mut tp, mut tm) = (Duration::MAX, Duration::MAX);
    // Each rep times the two strategies back-to-back, so a per-pair ratio
    // sees near-identical machine state; the median of those ratios is
    // robust to load drift that min-of-N cannot cancel.
    let mut ratios = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        pipe.run(&engine).unwrap();
        let p = t.elapsed();
        tp = tp.min(p);
        let t = Instant::now();
        mat.run(&engine).unwrap();
        let m = t.elapsed();
        tm = tm.min(m);
        ratios.push(m.as_secs_f64() / p.as_secs_f64());
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = ratios[ratios.len() / 2];
    println!(
        "{which} doc={len}B  pipelined(min)={tp:?}  materialized(min)={tm:?}  \
         min-ratio={:.3}  median-pair-ratio={median:.3}",
        tm.as_secs_f64() / tp.as_secs_f64()
    );
}
