//! Prints the compiled plan + pipeline report for the bench queries
//! (dev aid; `cargo run -p xqr-bench --example explain [n3|q8|q9]`).

use xqr_engine::{CompileOptions, Engine, ExecutionMode};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "n3".into());
    let (engine, q): (Engine, String) = match which.as_str() {
        "n3" => {
            let xml = xqr_clio::generate_dblp(&xqr_clio::DblpOptions::for_bytes(2_000));
            let mut e = Engine::new();
            e.bind_document("dblp.xml", &xml).unwrap();
            (e, xqr_clio::mapping_query(3))
        }
        q => {
            let n: usize = q.trim_start_matches('q').parse().expect("qN");
            let xml = xqr_xmark::generate(&xqr_xmark::GenOptions::for_bytes(20_000));
            let mut e = Engine::new();
            e.bind_document("auction.xml", &xml).unwrap();
            (e, xqr_xmark::query(n).to_string())
        }
    };
    let prepared = engine
        .prepare(&q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
        .unwrap();
    println!("{}", prepared.explain());
}
