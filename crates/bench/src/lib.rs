//! Shared harness for reproducing the paper's Tables 3–5.
//!
//! The `report` binary prints the tables; the Criterion benches under
//! `benches/` measure scaled-down versions suitable for CI.

use std::time::{Duration, Instant};

use xqr_engine::{CompileOptions, Engine, ExecutionMode};

/// Builds an engine with a generated XMark document of ~`bytes` bound as
/// `auction.xml`. Returns the engine and the document size.
pub fn xmark_engine(bytes: usize) -> (Engine, usize) {
    let xml = xqr_xmark::generate(&xqr_xmark::GenOptions::for_bytes(bytes));
    let len = xml.len();
    let mut e = Engine::new();
    e.bind_document("auction.xml", &xml)
        .expect("auction.xml parses");
    (e, len)
}

/// Builds an engine with a generated DBLP document of ~`bytes` bound as
/// `dblp.xml`.
pub fn clio_engine(bytes: usize) -> (Engine, usize) {
    let xml = xqr_clio::generate_dblp(&xqr_clio::DblpOptions::for_bytes(bytes));
    let len = xml.len();
    let mut e = Engine::new();
    e.bind_document("dblp.xml", &xml).expect("dblp.xml parses");
    (e, len)
}

/// Times one evaluation of a prepared query (compilation excluded, per the
/// paper's Table 4 methodology: "measurements exclude the times to load the
/// input document … and to serialize").
pub fn time_eval(engine: &Engine, query: &str, mode: ExecutionMode) -> Duration {
    let prepared = engine
        .prepare(query, &CompileOptions::mode(mode))
        .unwrap_or_else(|e| panic!("prepare failed: {e}"));
    let t = Instant::now();
    prepared
        .run(engine)
        .unwrap_or_else(|e| panic!("run failed ({mode:?}): {e}"));
    t.elapsed()
}

/// Like [`time_eval`] but with explicit [`CompileOptions`] — used by the
/// pipeline ablation bench to compare pipelined (cursor) execution against
/// full materialization under otherwise identical settings.
pub fn time_eval_with(engine: &Engine, query: &str, options: &CompileOptions) -> Duration {
    let prepared = engine
        .prepare(query, options)
        .unwrap_or_else(|e| panic!("prepare failed: {e}"));
    let t = Instant::now();
    prepared
        .run(engine)
        .unwrap_or_else(|e| panic!("run failed: {e}"));
    t.elapsed()
}

/// Times the full 20-query XMark suite including result serialization
/// (Table 3 methodology: load once, evaluate all twenty, serialize all
/// results).
pub fn time_xmark_suite(engine: &Engine, mode: ExecutionMode) -> Duration {
    time_xmark_suite_opts(engine, &CompileOptions::mode(mode))
}

/// Like [`time_xmark_suite`] but with explicit [`CompileOptions`] — used
/// by the governor-overhead measurement to compare limit-enforced runs
/// against the default (unlimited) path on the same build.
pub fn time_xmark_suite_opts(engine: &Engine, options: &CompileOptions) -> Duration {
    let t = Instant::now();
    for n in 1..=xqr_xmark::QUERY_COUNT {
        let prepared = engine
            .prepare(xqr_xmark::query(n), options)
            .unwrap_or_else(|e| panic!("Q{n} prepare failed: {e}"));
        let result = prepared
            .run(engine)
            .unwrap_or_else(|e| panic!("Q{n} failed: {e}"));
        std::hint::black_box(xqr_xml::serialize_sequence(&result));
    }
    t.elapsed()
}

/// Human-readable duration in the paper's style (e.g. `1m54.2s`, `0.14s`).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 3600.0 {
        format!("{}h{:.0}m", (secs / 3600.0) as u64, (secs % 3600.0) / 60.0)
    } else if secs >= 60.0 {
        format!("{}m{:.1}s", (secs / 60.0) as u64, secs % 60.0)
    } else {
        format!("{secs:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(140)), "0.14s");
        assert_eq!(fmt_duration(Duration::from_secs(75)), "1m15.0s");
        assert_eq!(fmt_duration(Duration::from_secs(4100)), "1h8m");
    }

    #[test]
    fn harness_smoke() {
        let (e, len) = xmark_engine(60_000);
        assert!(len > 10_000);
        let d = time_eval(&e, xqr_xmark::query(1), ExecutionMode::OptimHashJoin);
        assert!(d < Duration::from_secs(10));
        let (e, _) = clio_engine(5_000);
        let d = time_eval(
            &e,
            &xqr_clio::mapping_query(2),
            ExecutionMode::OptimHashJoin,
        );
        assert!(d < Duration::from_secs(10));
    }
}
