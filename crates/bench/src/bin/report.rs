//! Regenerates the paper's evaluation tables.
//!
//! ```text
//! report [table3|table4|table5|all] [--mb N] [--sizes A,B,C] [--full]
//! ```
//!
//! * `table3` — XMark Q1–Q20 totals under the four configurations
//!   (paper: 1 MB document; default here 1 MB, override with `--mb`);
//! * `table4` — Q8/Q9/Q10/Q12/Q20 scalability, NL vs hash join
//!   (paper: 10/20/50 MB; default 1,2,5 MB — the shape is scale-invariant
//!   and the NL column is quadratic, use `--sizes` to go bigger);
//! * `table5` — Clio N2/N3/N4 on a ~250 KB DBLP document: no-optim, NL,
//!   hash, plus the direct-interpreter column standing in for Saxon (see
//!   DESIGN.md §4). Cells that the paper reports as ">1h" are skipped
//!   unless `--full` is given.

use std::time::Duration;

use xqr_bench::{clio_engine, fmt_duration, time_eval, time_xmark_suite, xmark_engine};
use xqr_engine::ExecutionMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = Vec::new();
    let mut mb = 1.0f64;
    let mut sizes = vec![1.0f64, 2.0, 5.0];
    let mut full = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "table3" | "table4" | "table5" => which.push(args[i].clone()),
            "all" => {
                which.extend(["table3", "table4", "table5"].map(String::from));
            }
            "--mb" => {
                i += 1;
                mb = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--mb takes a number, e.g. --mb 2.5");
                    std::process::exit(2);
                });
            }
            "--sizes" => {
                i += 1;
                let parsed: Option<Vec<f64>> = args
                    .get(i)
                    .map(|v| v.split(',').map(|s| s.parse().ok()).collect())
                    .unwrap_or(None);
                sizes = parsed.unwrap_or_else(|| {
                    eprintln!("--sizes takes comma-separated numbers, e.g. --sizes 1,2,5");
                    std::process::exit(2);
                });
            }
            "--full" => full = true,
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: report [table3|table4|table5|all] [--mb N] [--sizes A,B,C] [--full]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if which.is_empty() {
        which.extend(["table3", "table4", "table5"].map(String::from));
    }
    for t in which {
        match t.as_str() {
            "table3" => table3(mb),
            "table4" => table4(&sizes),
            "table5" => table5(full),
            _ => unreachable!(),
        }
    }
}

fn table3(mb: f64) {
    let bytes = (mb * 1_000_000.0) as usize;
    println!("\n== Table 3: XMark Q1-20 on a {mb} MB document ==");
    println!("(total time: load once + evaluate all 20 queries + serialize results)\n");
    let load = std::time::Instant::now();
    let (engine, len) = xmark_engine(bytes);
    let load = load.elapsed();
    println!(
        "document: {} bytes, generated+loaded in {}\n",
        len,
        fmt_duration(load)
    );
    println!("{:<28} {:>10}", "Implementation", "Total time");
    for mode in ExecutionMode::ALL {
        let d = time_xmark_suite(&engine, mode) + load;
        println!("{:<28} {:>10}", mode.label(), fmt_duration(d));
    }
}

fn table4(sizes_mb: &[f64]) {
    println!("\n== Table 4: scalability of selected XMark queries ==");
    println!("(evaluation time only; NL join vs XQuery hash join)\n");
    println!(
        "{:<6} {:>8} {:>12} {:>12}",
        "Query", "Size", "NL Join", "Hash Join"
    );
    let queries = [8usize, 9, 10, 12, 20];
    for &mb in sizes_mb {
        let (engine, len) = xmark_engine((mb * 1_000_000.0) as usize);
        for &qn in &queries {
            let q = xqr_xmark::query(qn);
            let nl = time_eval(&engine, q, ExecutionMode::OptimNestedLoop);
            let hash = time_eval(&engine, q, ExecutionMode::OptimHashJoin);
            println!(
                "{:<6} {:>7}K {:>12} {:>12}",
                format!("Q{qn}"),
                len / 1000,
                fmt_duration(nl),
                fmt_duration(hash)
            );
        }
        println!();
    }
}

fn table5(full: bool) {
    println!("\n== Table 5: Clio queries on a ~250 KB DBLP document ==");
    println!("(the last column is the direct Core interpreter, our stand-in for Saxon;");
    println!(" see DESIGN.md section 4 for the substitution rationale)\n");
    let (engine, len) = clio_engine(250_000);
    println!("document: {len} bytes\n");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>14}",
        "Query", "No optim", "NL Join", "Hash Join", "Interp (Saxon*)"
    );
    for levels in [2usize, 3, 4] {
        let q = xqr_clio::mapping_query(levels);
        // The paper reports the no-optim column for N3/N4 as ">1h"; the
        // same blow-up exists here (O(n^levels)), so those cells are
        // skipped by default. The interpreter column blows up identically.
        let expensive = levels >= 3;
        let no_optim = if expensive && !full {
            None
        } else {
            Some(time_eval(&engine, &q, ExecutionMode::AlgebraNoOptim))
        };
        let nl = if levels >= 4 && !full {
            None
        } else {
            Some(time_eval(&engine, &q, ExecutionMode::OptimNestedLoop))
        };
        let hash = Some(time_eval(&engine, &q, ExecutionMode::OptimHashJoin));
        let interp = if expensive && !full {
            None
        } else {
            Some(time_eval(&engine, &q, ExecutionMode::NoAlgebra))
        };
        let cell = |d: Option<Duration>| match d {
            Some(d) => fmt_duration(d),
            None => "(skipped*)".to_string(),
        };
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>14}",
            format!("N{levels}"),
            cell(no_optim),
            cell(nl),
            cell(hash),
            cell(interp)
        );
    }
    if !full {
        println!(
            "\n(*) cells with >minutes of nested-loop time are skipped; pass --full to run them"
        );
    }
}
