//! Per-operator runtime profiling (`EXPLAIN ANALYZE`).
//!
//! A [`Profiler`] is created per query run and registered against the plan
//! the evaluator executes; every instrumented site — pipelined cursors,
//! materialized operator arms, join builds, group-by partitioning, and
//! TreeJoin kernel dispatch — accumulates into one [`OpStats`] per plan
//! node. After the run, [`Profiler::snapshot`] freezes the counters into a
//! [`QueryProfile`] tree mirroring the plan shape, renderable as annotated
//! plan text or JSON.
//!
//! ## Sampled timing
//!
//! Per-tuple `Instant::now()` would dwarf the operators being measured, so
//! timing is *sampled*: the governor's tuple-work counter (see
//! `Governor::sampling_clock`) doubles as a free-running clock, and a unit
//! of work is timed only when the clock sits on a 1-in-64 phase — except
//! that each operator's first [`SAMPLE_FULL`] units are always timed, so
//! short streams (the common case for dependent sub-plans) are measured
//! exactly rather than extrapolated from zero or one sample. The exact
//! prefix is kept apart from the steady-state samples: the estimate is
//! `prefix_nanos + sampled_nanos × (calls − prefix) / sampled_units`, so
//! expensive warm-up units (first-touch allocation, lazy index builds)
//! never get multiplied across the whole stream. The profiled hot path is
//! therefore two `Cell` bumps and one compare per unit, and the disabled
//! path is a single `Option` check at operator open/dispatch.
//!
//! ## Plan-node identity
//!
//! Stats attach to plan nodes by address: `register` walks the exact plan
//! tree the evaluator runs (the per-run body clone) and maps each node's
//! address to a preorder index over the `Op::children()` traversal — the
//! same order `pretty::indented_annotated` consumes, so a profile's
//! annotation vector lines up with the prepared plan (an identically
//! shaped clone) with no re-matching. Registered addresses outlive the run
//! (the body clone lives across evaluation), so a lookup can never observe
//! a recycled address; unregistered plans (per-call function body clones,
//! globals) silently run unprofiled.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;
use std::time::Instant;

use xqr_core::algebra::Plan;
use xqr_core::pretty::op_label;
use xqr_xml::metrics::json_escape;
use xqr_xml::Governor;

/// Units of work per operator that are always timed (exact measurement for
/// short streams).
pub const SAMPLE_FULL: u64 = 32;
/// After the exact prefix, time one unit whenever `clock & SAMPLE_MASK == 0`
/// (a 1-in-64 subsample of the governor clock).
pub const SAMPLE_MASK: u64 = 63;

/// Per-plan-node accumulator. All counters are `Cell`s: stats are shared
/// between the profiler and any number of cursors via `Rc` within one
/// single-threaded query run.
#[derive(Debug, Default)]
pub struct OpStats {
    rows: Cell<u64>,
    calls: Cell<u64>,
    opens: Cell<u64>,
    sampled_nanos: Cell<u64>,
    sampled_units: Cell<u64>,
    exact_nanos: Cell<u64>,
    peak_bytes: Cell<u64>,
    build_nanos: Cell<u64>,
    partitions: Cell<u64>,
    kernel_dispatches: Cell<u64>,
    spilled_bytes: Cell<u64>,
    spill_partitions: Cell<u64>,
    spill_merge_passes: Cell<u64>,
    batches: Cell<u64>,
    fused_rows: Cell<u64>,
    fallback_rows: Cell<u64>,
}

impl OpStats {
    /// Starts one unit of work (a cursor `next()` or an operator
    /// evaluation). Returns a start instant only when this unit is
    /// sampled; pass the result to [`OpStats::end`].
    #[inline]
    pub fn begin(&self, clock: u64) -> Option<Instant> {
        let u = self.calls.get() + 1;
        self.calls.set(u);
        if u <= SAMPLE_FULL || clock & SAMPLE_MASK == 0 {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a unit of work started by [`OpStats::begin`]. Prefix units
    /// (the first [`SAMPLE_FULL`]) land in the exact bucket; later samples
    /// land in the steady-state bucket that gets extrapolated.
    #[inline]
    pub fn end(&self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let dt = t0.elapsed().as_nanos() as u64;
            if self.calls.get() <= SAMPLE_FULL {
                self.exact_nanos.set(self.exact_nanos.get() + dt);
            } else {
                self.sampled_units.set(self.sampled_units.get() + 1);
                self.sampled_nanos.set(self.sampled_nanos.get() + dt);
            }
        }
    }

    #[inline]
    pub fn add_rows(&self, n: u64) {
        self.rows.set(self.rows.get() + n);
    }

    /// Adds exactly measured time (batch drains, where one measurement
    /// covers many rows and needs no extrapolation).
    pub fn add_exact_nanos(&self, n: u64) {
        self.exact_nanos.set(self.exact_nanos.get() + n);
    }

    pub fn record_open(&self) {
        self.opens.set(self.opens.get() + 1);
    }

    pub fn record_peak_bytes(&self, b: u64) {
        if b > self.peak_bytes.get() {
            self.peak_bytes.set(b);
        }
    }

    /// Join build phase (inner-side materialization + probe index build).
    pub fn add_build_nanos(&self, n: u64) {
        self.build_nanos.set(self.build_nanos.get() + n);
    }

    /// Group-by partitions produced.
    pub fn add_partitions(&self, n: u64) {
        self.partitions.set(self.partitions.get() + n);
    }

    /// Context nodes dispatched through a set-at-a-time step kernel.
    pub fn add_kernel_dispatches(&self, n: u64) {
        self.kernel_dispatches.set(self.kernel_dispatches.get() + n);
    }

    /// Bytes this operator wrote to spill files (frame headers included).
    pub fn add_spilled_bytes(&self, n: u64) {
        self.spilled_bytes.set(self.spilled_bytes.get() + n);
    }

    /// Spill partitions / sorted runs this operator produced on disk.
    pub fn add_spill_partitions(&self, n: u64) {
        self.spill_partitions.set(self.spill_partitions.get() + n);
    }

    /// External-sort merge passes over spilled runs.
    pub fn add_spill_merge_passes(&self, n: u64) {
        self.spill_merge_passes
            .set(self.spill_merge_passes.get() + n);
    }

    /// Batches processed by a batched cursor or fused kernel.
    pub fn add_batches(&self, n: u64) {
        self.batches.set(self.batches.get() + n);
    }

    /// Rows evaluated through a fused type-specialized comparison lane.
    pub fn add_fused_rows(&self, n: u64) {
        self.fused_rows.set(self.fused_rows.get() + n);
    }

    /// Rows a fused kernel handed back to the row-at-a-time scalar path
    /// (heterogeneous or non-atomic operand batches).
    pub fn add_fallback_rows(&self, n: u64) {
        self.fallback_rows.set(self.fallback_rows.get() + n);
    }

    /// Estimated cumulative (inclusive) time: exactly measured units (the
    /// prefix and batch drains) plus the steady-state samples extrapolated
    /// over the units past the prefix.
    pub fn estimated_nanos(&self) -> u64 {
        let su = self.sampled_units.get();
        let sampled = if su == 0 {
            0
        } else {
            let steady = self.calls.get().saturating_sub(SAMPLE_FULL);
            (self.sampled_nanos.get() as u128 * steady as u128 / su as u128) as u64
        };
        self.exact_nanos.get().saturating_add(sampled)
    }

    pub fn rows(&self) -> u64 {
        self.rows.get()
    }

    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Did anything record into this node at all?
    pub fn touched(&self) -> bool {
        self.calls.get() > 0
            || self.rows.get() > 0
            || self.opens.get() > 0
            || self.exact_nanos.get() > 0
            || self.kernel_dispatches.get() > 0
            || self.batches.get() > 0
    }
}

struct NodeEntry {
    label: String,
    children: Vec<u32>,
    stats: Rc<OpStats>,
}

/// Multiply-shift hasher for the pointer-keyed stats map. [`Profiler::stats_for`]
/// sits on the per-tuple dispatch path, where SipHash on an 8-byte key is
/// most of the lookup cost; a Fibonacci multiply with the high bits folded
/// down (aligned pointers carry no entropy in their low bits) is plenty
/// for addresses drawn from one plan allocation.
#[derive(Default)]
struct PtrHasher(u64);

impl Hasher for PtrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused: keys are `usize`).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        let h = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

struct ProfilerInner {
    governor: Governor,
    /// Plan-node address → that node's stats cell, under the cheap hasher:
    /// this map is read on every profiled dispatch.
    stats: RefCell<HashMap<usize, Rc<OpStats>, BuildHasherDefault<PtrHasher>>>,
    nodes: RefCell<Vec<NodeEntry>>,
}

/// Per-run profiler handle; cheap to clone (shared `Rc`).
#[derive(Clone)]
pub struct Profiler(Rc<ProfilerInner>);

impl Profiler {
    /// A fresh profiler sampling on `governor`'s tuple-work clock.
    pub fn new(governor: Governor) -> Profiler {
        Profiler(Rc::new(ProfilerInner {
            governor,
            stats: RefCell::new(HashMap::default()),
            nodes: RefCell::new(Vec::new()),
        }))
    }

    /// Registers a plan tree: assigns each node a preorder id over the
    /// `Op::children()` traversal and keys its stats by node address. Call
    /// once per run, on the exact plan the evaluator executes.
    pub fn register(&self, plan: &Plan) {
        self.walk(plan);
    }

    fn walk(&self, plan: &Plan) -> u32 {
        let stats = Rc::new(OpStats::default());
        let id = {
            let mut nodes = self.0.nodes.borrow_mut();
            let id = nodes.len() as u32;
            nodes.push(NodeEntry {
                label: op_label(&plan.op),
                children: Vec::new(),
                stats: stats.clone(),
            });
            id
        };
        self.0
            .stats
            .borrow_mut()
            .insert(plan as *const Plan as usize, stats);
        for (c, _) in plan.op.children() {
            let cid = self.walk(c);
            self.0.nodes.borrow_mut()[id as usize].children.push(cid);
        }
        id
    }

    /// The stats cell for a registered plan node, if any.
    #[inline]
    pub fn stats_for(&self, plan: &Plan) -> Option<Rc<OpStats>> {
        self.0
            .stats
            .borrow()
            .get(&(plan as *const Plan as usize))
            .cloned()
    }

    /// The sampling clock (the governor's tuple-work counter).
    #[inline]
    pub fn clock(&self) -> u64 {
        self.governor().sampling_clock()
    }

    pub fn governor(&self) -> &Governor {
        &self.0.governor
    }

    /// Freezes the accumulated counters into a profile tree. `strategy`
    /// names the execution strategy the run used.
    pub fn snapshot(&self, strategy: &str, wall_nanos: u64) -> QueryProfile {
        let nodes = self.0.nodes.borrow();
        let root = if nodes.is_empty() {
            None
        } else {
            // Clamp the root's extrapolated estimate to the measured wall
            // clock (when known): sampling noise must never report an
            // operator as costing more than the whole query took.
            let limit = if wall_nanos == 0 {
                u64::MAX
            } else {
                wall_nanos
            };
            Some(build_node(&nodes, 0, limit))
        };
        QueryProfile {
            strategy: strategy.to_string(),
            wall_nanos,
            query_id: None,
            plan_hash: None,
            root,
            interp: None,
        }
    }
}

/// Builds one profile node, clamping sampled extrapolation to the
/// measured wall clock: a node's inclusive estimate never exceeds the
/// whole query's `limit`, and therefore `self ≤ inclusive ≤ total` holds
/// everywhere. Without the clamp, a handful of unlucky steady-state
/// samples on a hot operator could extrapolate past the total — the
/// annotation then showed a child's *self* time above the whole query's
/// wall time. The clamp is deliberately *not* telescoped through parents:
/// estimates err in both directions, and a parent with a skewed per-call
/// distribution (a join cursor whose every Nth `next()` sweeps a probe
/// partition) underestimates — capping its children to that bad estimate
/// would zero out their own, better-sampled measurements. The wall clock
/// is the only bound that is measured rather than extrapolated.
fn build_node(nodes: &[NodeEntry], id: u32, limit: u64) -> ProfileNode {
    let e = &nodes[id as usize];
    let inclusive = e.stats.estimated_nanos().min(limit);
    let children: Vec<ProfileNode> = e
        .children
        .iter()
        .map(|&c| build_node(nodes, c, limit))
        .collect();
    let child_sum: u64 = children.iter().map(|c| c.nanos).sum();
    ProfileNode {
        label: e.label.clone(),
        rows: e.stats.rows.get(),
        calls: e.stats.calls.get(),
        opens: e.stats.opens.get(),
        nanos: inclusive,
        exclusive_nanos: inclusive.saturating_sub(child_sum),
        build_nanos: e.stats.build_nanos.get(),
        peak_bytes: e.stats.peak_bytes.get(),
        partitions: e.stats.partitions.get(),
        kernel_dispatches: e.stats.kernel_dispatches.get(),
        spilled_bytes: e.stats.spilled_bytes.get(),
        spill_partitions: e.stats.spill_partitions.get(),
        spill_merge_passes: e.stats.spill_merge_passes.get(),
        batches: e.stats.batches.get(),
        fused_rows: e.stats.fused_rows.get(),
        fallback_rows: e.stats.fallback_rows.get(),
        touched: e.stats.touched(),
        children,
    }
}

/// One node of a frozen profile; mirrors the plan tree node-for-node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileNode {
    pub label: String,
    pub rows: u64,
    pub calls: u64,
    pub opens: u64,
    /// Estimated inclusive time (this operator and everything beneath it
    /// that ran while it was on stack).
    pub nanos: u64,
    /// Inclusive minus the children's inclusive estimates (saturating:
    /// independent sampling can make a child's estimate exceed its
    /// parent's).
    pub exclusive_nanos: u64,
    pub build_nanos: u64,
    pub peak_bytes: u64,
    pub partitions: u64,
    pub kernel_dispatches: u64,
    /// Bytes written to spill files by this operator (0 = never spilled).
    pub spilled_bytes: u64,
    /// Spill partitions / sorted runs written by this operator.
    pub spill_partitions: u64,
    /// External-sort merge passes performed by this operator.
    pub spill_merge_passes: u64,
    /// Batches processed by a batched cursor or fused kernel at this node.
    pub batches: u64,
    /// Rows that went through a fused type-specialized comparison lane.
    pub fused_rows: u64,
    /// Rows a fused kernel fell back to the scalar path for.
    pub fallback_rows: u64,
    /// Whether any instrumentation recorded into this node (false for
    /// plan nodes outside the instrumented operator set, or never
    /// reached).
    pub touched: bool,
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Number of nodes in this subtree (== `plan_size` of the mirrored
    /// plan).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }

    /// Sum of `exclusive_nanos` over the subtree. For the root this
    /// telescopes back to (at most) the root's inclusive estimate.
    pub fn exclusive_sum(&self) -> u64 {
        self.exclusive_nanos + self.children.iter().map(|c| c.exclusive_sum()).sum::<u64>()
    }

    fn annotation(&self) -> Option<String> {
        if !self.touched {
            return None;
        }
        let mut s = format!(
            "rows={} calls={} time={} self={}",
            self.rows,
            self.calls,
            fmt_nanos(self.nanos),
            fmt_nanos(self.exclusive_nanos)
        );
        if self.build_nanos > 0 {
            s.push_str(&format!(" build={}", fmt_nanos(self.build_nanos)));
        }
        if self.peak_bytes > 0 {
            s.push_str(&format!(" peak={}", fmt_bytes(self.peak_bytes)));
        }
        if self.partitions > 0 {
            s.push_str(&format!(" parts={}", self.partitions));
        }
        if self.kernel_dispatches > 0 {
            s.push_str(&format!(" kernel={}", self.kernel_dispatches));
        }
        if self.spilled_bytes > 0 {
            s.push_str(&format!(" spilled={}", fmt_bytes(self.spilled_bytes)));
        }
        if self.spill_partitions > 0 {
            s.push_str(&format!(" spill_parts={}", self.spill_partitions));
        }
        if self.spill_merge_passes > 0 {
            s.push_str(&format!(" merge_passes={}", self.spill_merge_passes));
        }
        if self.batches > 0 {
            s.push_str(&format!(" batches={}", self.batches));
        }
        if self.fused_rows > 0 {
            s.push_str(&format!(" fused={}", self.fused_rows));
        }
        if self.fallback_rows > 0 {
            s.push_str(&format!(" fallback={}", self.fallback_rows));
        }
        Some(s)
    }

    fn to_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"rows\":{},\"calls\":{},\"opens\":{},\"nanos\":{},\
             \"exclusive_nanos\":{},\"build_nanos\":{},\"peak_bytes\":{},\"partitions\":{},\
             \"kernel_dispatches\":{},\"spilled_bytes\":{},\"spill_partitions\":{},\
             \"spill_merge_passes\":{},\"batches\":{},\"fused_rows\":{},\
             \"fallback_rows\":{},\"touched\":{},\"children\":[",
            json_escape(&self.label),
            self.rows,
            self.calls,
            self.opens,
            self.nanos,
            self.exclusive_nanos,
            self.build_nanos,
            self.peak_bytes,
            self.partitions,
            self.kernel_dispatches,
            self.spilled_bytes,
            self.spill_partitions,
            self.spill_merge_passes,
            self.batches,
            self.fused_rows,
            self.fallback_rows,
            self.touched
        );
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.to_json(out);
        }
        out.push_str("]}");
    }
}

/// A complete per-query profile: the operator tree (algebra strategies) or
/// the Core-interpreter counters (`interp`), plus the measured wall clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryProfile {
    pub strategy: String,
    pub wall_nanos: u64,
    /// Service query id, when the run was dispatched through a
    /// `QueryService` (joins `EXPLAIN ANALYZE` output to the service's
    /// lifecycle journal).
    pub query_id: Option<u64>,
    /// Canonical plan hash of the prepared plan, when one exists (joins
    /// to the service's per-shape statistics table and breaker registry).
    pub plan_hash: Option<u64>,
    /// The profiled operator tree; `None` on the Core-interpreter path,
    /// which has no algebraic plan.
    pub root: Option<ProfileNode>,
    /// Core-interpreter per-expression-kind and per-clause counts, when
    /// that path ran.
    pub interp: Option<std::collections::BTreeMap<String, u64>>,
}

impl QueryProfile {
    /// Per-node annotation strings in preorder (`Op::children()` order),
    /// ready for `pretty::indented_annotated` against the identically
    /// shaped prepared plan.
    pub fn annotations(&self) -> Vec<Option<String>> {
        let mut out = Vec::new();
        fn walk(n: &ProfileNode, out: &mut Vec<Option<String>>) {
            out.push(n.annotation());
            for c in &n.children {
                walk(c, out);
            }
        }
        if let Some(r) = &self.root {
            walk(r, &mut out);
        }
        out
    }

    /// Standalone text rendering (profile tree only, without the full plan
    /// parameters — the engine's `explain_analyze` merges annotations into
    /// the real plan rendering instead).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "strategy: {}\nwall: {}\n",
            self.strategy,
            fmt_nanos(self.wall_nanos)
        );
        if let Some(id) = self.query_id {
            let _ = writeln!(s, "query: {id}");
        }
        if let Some(h) = self.plan_hash {
            let _ = writeln!(s, "plan: {h:016x}");
        }
        fn walk(n: &ProfileNode, depth: usize, out: &mut String) {
            let ann = n.annotation().unwrap_or_else(|| "-".to_string());
            let _ = writeln!(out, "{}{}  {}", "  ".repeat(depth), n.label, ann);
            for c in &n.children {
                walk(c, depth + 1, out);
            }
        }
        if let Some(r) = &self.root {
            walk(r, 0, &mut s);
        }
        if let Some(m) = &self.interp {
            for (k, v) in m {
                let _ = writeln!(s, "{k}  {v}");
            }
        }
        s
    }

    /// Machine-readable export (hand-rolled JSON, no dependencies).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{{\"strategy\":\"{}\",\"wall_nanos\":{},\"query_id\":{},\"plan_hash\":{},\"root\":",
            json_escape(&self.strategy),
            self.wall_nanos,
            match self.query_id {
                Some(id) => id.to_string(),
                None => "null".to_string(),
            },
            // Hex string: u64 hashes can exceed JSON's exact-integer range.
            match self.plan_hash {
                Some(h) => format!("\"{h:016x}\""),
                None => "null".to_string(),
            }
        );
        match &self.root {
            Some(r) => r.to_json(&mut s),
            None => s.push_str("null"),
        }
        s.push_str(",\"interp\":");
        match &self.interp {
            Some(m) => {
                s.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\":{v}", json_escape(k));
                }
                s.push('}');
            }
            None => s.push_str("null"),
        }
        s.push('}');
        s
    }
}

/// `1.234ms` / `56.7us` / `890ns`-style rendering.
pub fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.3}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.3}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

fn fmt_bytes(n: u64) -> String {
    if n >= 1 << 20 {
        format!("{:.1}MiB", n as f64 / (1u64 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1}KiB", n as f64 / 1024.0)
    } else {
        format!("{n}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_core::algebra::Op;

    fn small_plan() -> Plan {
        Plan::new(Op::Select {
            pred: Plan::boxed(Op::Scalar(xqr_xml::AtomicValue::Boolean(true))),
            input: Plan::boxed(Op::TupleTable),
        })
    }

    #[test]
    fn register_assigns_preorder_ids_and_stats() {
        let p = small_plan();
        let prof = Profiler::new(Governor::unlimited());
        prof.register(&p);
        let s = prof.stats_for(&p).expect("root registered");
        s.add_rows(3);
        s.end(s.begin(0));
        let snap = prof.snapshot("pipelined", 1_000);
        // Annotation vector aligns with plan preorder size.
        assert_eq!(snap.annotations().len(), 3);
        let root = snap.root.expect("root");
        assert_eq!(root.label, "Select");
        assert_eq!(root.size(), 3);
        assert_eq!(root.rows, 3);
        assert_eq!(root.calls, 1);
        assert!(root.touched);
        assert!(!root.children[0].touched);
    }

    #[test]
    fn sampling_is_exact_for_short_streams() {
        let s = OpStats::default();
        for clock in 0..SAMPLE_FULL {
            // Clock values chosen off-phase: still timed (exact prefix),
            // accumulating into the exact bucket, not the extrapolated one.
            let t0 = s.begin(clock * 2 + 1);
            assert!(t0.is_some());
            s.end(t0);
        }
        assert_eq!(s.calls.get(), SAMPLE_FULL);
        assert_eq!(s.sampled_units.get(), 0);
        // Past the prefix, off-phase clocks are skipped...
        assert!(s.begin(SAMPLE_MASK).is_none());
        // ...and on-phase clocks are sampled.
        assert!(s.begin(SAMPLE_MASK + 1).is_some());
    }

    #[test]
    fn estimate_extrapolates_over_steady_state_units() {
        let s = OpStats::default();
        // 1032 calls = 32 exact prefix + 1000 steady; 100 steady samples
        // averaging 50ns extrapolate over the 1000 steady units only.
        s.calls.set(SAMPLE_FULL + 1000);
        s.sampled_units.set(100);
        s.sampled_nanos.set(5_000);
        assert_eq!(s.estimated_nanos(), 50_000);
        s.add_exact_nanos(7);
        assert_eq!(s.estimated_nanos(), 50_007);
    }

    #[test]
    fn estimates_are_clamped_to_wall() {
        // Regression: sampled extrapolation on a hot child could estimate
        // past the measured wall clock, so `EXPLAIN ANALYZE` reported a
        // child's *self* time above the query's total (e.g. Q12's
        // MapToItem at 395ms self against a 316ms wall). Snapshots must
        // clamp every node's inclusive estimate to the wall clock — but
        // only to the wall clock: a parent's own estimate can *under*shoot
        // (skewed per-call cost distributions), and capping children to it
        // would destroy their better-sampled measurements.
        let p = small_plan();
        let prof = Profiler::new(Governor::unlimited());
        prof.register(&p);
        let root = prof.stats_for(&p).expect("root registered");
        let (pred, _) = p.op.children().into_iter().next().expect("pred child");
        let child = prof.stats_for(pred).expect("pred registered");
        // Parent: modest, fully measured time.
        root.calls.set(10);
        root.exact_nanos.set(2_000);
        // Child: unlucky steady-state samples extrapolating to 50_000ns —
        // far past the 3_000ns wall clock below.
        child.calls.set(SAMPLE_FULL + 1000);
        child.sampled_units.set(100);
        child.sampled_nanos.set(5_000);
        assert_eq!(child.estimated_nanos(), 50_000);

        let wall = 3_000;
        let snap = prof.snapshot("pipelined", wall);
        let root = snap.root.expect("root");
        fn check(n: &ProfileNode, wall: u64) {
            assert!(
                n.nanos <= wall,
                "{}: inclusive {} > {wall}",
                n.label,
                n.nanos
            );
            assert!(
                n.exclusive_nanos <= n.nanos,
                "{}: self {} > inclusive {}",
                n.label,
                n.exclusive_nanos,
                n.nanos
            );
            for c in &n.children {
                check(c, wall);
            }
        }
        check(&root, wall);
        // The parent keeps its exact measurement; the child's runaway
        // extrapolation is capped at the wall clock, not at the parent.
        assert_eq!(root.nanos, 2_000);
        assert_eq!(root.children[0].nanos, wall);
        // A zero wall clock (sub-resolution run) disables the clamp rather
        // than zeroing every estimate.
        let unclamped = prof.snapshot("pipelined", 0);
        assert_eq!(unclamped.root.expect("root").children[0].nanos, 50_000);
    }

    #[test]
    fn json_renders_with_escaping() {
        let prof = Profiler::new(Governor::unlimited());
        let p = small_plan();
        prof.register(&p);
        let j = prof.snapshot("materialized", 42).to_json();
        assert!(j.contains("\"strategy\":\"materialized\""));
        assert!(j.contains("\"wall_nanos\":42"));
        assert!(j.contains("\"label\":\"Select\""));
        assert!(j.ends_with("\"interp\":null}"));
    }
}
