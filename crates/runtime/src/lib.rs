//! # xqr-runtime — physical evaluation
//!
//! Executes logical plans from `xqr-core`:
//!
//! * [`value`] — tuples, tables, and the values flowing between operators;
//! * [`context`] — the dynamic context (globals, function frames, document
//!   resolver, schema, join-algorithm selection);
//! * [`compare`] — effective boolean value, `op:equal` with promotion, the
//!   full general-comparison semantics (atomization + existential
//!   quantification + `fs:convert-operand`), and XQuery ordering;
//! * [`functions`] — the built-in function library (`fn:`, `op:`, `fs:`);
//! * [`batch`] — batched execution: fused, type-specialized comparison
//!   kernels for the `Call[fs:*]` predicate chains that dominate the
//!   scalar hot path, with per-row scalar fallback preserving exact
//!   semantics (the pipelined default; `Ctx::batched = false` opts out);
//! * [`eval`] — the plan evaluator;
//! * [`pipeline`] — the pipelined (cursor) execution layer for the tuple
//!   operators: fused pull cursors that materialize only at genuine
//!   pipeline breakers (`OrderBy`, `GroupBy`, join/product build sides);
//!   the default strategy, with full materialization kept as an escape
//!   hatch (`Ctx::pipelined = false`);
//! * [`groupby`] — the physical XQuery `GroupBy` of Section 5 (pre-grouping
//!   per-item operator, post-grouping per-partition operator, index/null
//!   fields — Fig. 4);
//! * [`joins`] — the join algorithms of Section 6: order-preserving
//!   nested-loop, the typed **hash join** of Fig. 6 (`materialize` /
//!   `allMatches` / `equalityJoin` over `(value, type)` keys), and an
//!   order-preserving B-tree (sort) join;
//! * [`interp`] — the direct Core interpreter, reproducing the paper's "No
//!   algebra" baseline (dynamic variable lookups in a QName-keyed context,
//!   no tuple pipeline);
//! * [`profile`] — per-operator runtime statistics (rows, calls, sampled
//!   time, peak materialized bytes) collected into a [`profile::QueryProfile`]
//!   tree mirroring the plan shape, the engine's `EXPLAIN ANALYZE` backend;
//! * [`spill`] — out-of-core operator variants engaged when the governor's
//!   soft memory watermark trips: Grace-style partitioned hash join,
//!   partitioned group-by, and a stable external merge sort, all over
//!   CRC-checked, self-deleting spill files.

pub mod batch;
pub mod compare;
pub mod context;
pub mod eval;
pub mod functions;
pub mod groupby;
pub mod interp;
pub mod joins;
pub mod pipeline;
pub mod profile;
pub mod spill;
pub mod value;

pub use context::{Ctx, JoinAlgorithm};
pub use eval::eval_plan;
pub use interp::{
    eval_core_module, eval_core_module_profiled, eval_core_module_with, InterpProfile,
};
pub use pipeline::{explain_annotations, pipeline_report};
pub use profile::{fmt_nanos, OpStats, ProfileNode, Profiler, QueryProfile};
pub use value::{InputVal, Table, Tuple, Value};
