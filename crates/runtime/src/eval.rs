//! The plan evaluator: executes the logical algebra over materialized
//! tables (the logical model's tables; the paper's cursor pipeline is an
//! implementation alternative, see DESIGN.md).

use std::collections::HashMap;

use xqr_core::algebra::{NamePlan, Op, OrderSpecPlan, Plan};
use xqr_types::validate_sequence;
use xqr_xml::axes::{tree_join_cached, Axis, NodeTest};
use xqr_xml::{
    AtomicValue, Item, NodeHandle, NodeKind, QName, Sequence, SequenceBuilder, TreeBuilder,
    XmlError,
};

use crate::compare::{atomize_optional, effective_boolean_value, order_key_compare};
use crate::context::Ctx;
use crate::functions::{call_builtin, is_builtin, BuiltinCtx};
use crate::groupby::{execute_group_by, execute_group_by_streaming};
use crate::joins::execute_join;
use crate::pipeline;
use crate::value::{InputVal, Table, Tuple, Value};

/// Evaluates a module: globals in declaration order, then the body.
///
/// External globals are the plan's parameters: a caller-supplied binding
/// (already in `ctx.globals`) wins and is checked against the declared
/// type; otherwise the compiled default plan runs; otherwise `XPDY0002`.
pub fn eval_module(ctx: &mut Ctx<'_>) -> xqr_xml::Result<Sequence> {
    let globals: Vec<xqr_core::CompiledGlobal> = ctx.module.globals.clone();
    for g in globals {
        if g.external {
            if let Some(bound) = ctx.globals.get(&g.name) {
                if let Some(st) = &g.as_type {
                    if !st.matches(bound, ctx.schema) {
                        return Err(XmlError::new(
                            "XPTY0004",
                            format!(
                                "value bound to external variable ${} does not \
                                 match its declared type {st}",
                                g.name
                            ),
                        ));
                    }
                }
                continue;
            }
            let Some(p) = &g.plan else {
                return Err(XmlError::new(
                    "XPDY0002",
                    format!("external variable ${} was not bound", g.name),
                ));
            };
            let v = eval_plan(p, ctx)?;
            ctx.globals.insert(g.name, v);
        } else if let Some(p) = &g.plan {
            let v = eval_plan(p, ctx)?;
            ctx.globals.insert(g.name, v);
        }
    }
    let body = ctx.module.body.clone();
    // The profiler keys stats by node address over this exact clone; the
    // clone outlives evaluation, so registered addresses stay valid for
    // the whole run (globals and per-call function bodies run unprofiled).
    if let Some(p) = &ctx.profiler {
        p.register(&body);
    }
    eval_plan(&body, ctx)
}

/// Evaluates a plan with no `IN` in scope, expecting an item sequence.
pub fn eval_plan(plan: &Plan, ctx: &mut Ctx<'_>) -> xqr_xml::Result<Sequence> {
    eval(plan, ctx, None)?.into_items()
}

/// Evaluates a dependent sub-plan with the given `IN`, as items.
pub fn eval_dep_items(
    plan: &Plan,
    ctx: &mut Ctx<'_>,
    input: &InputVal,
) -> xqr_xml::Result<Sequence> {
    eval(plan, ctx, Some(input))?.into_items()
}

pub(crate) fn eval_items(
    plan: &Plan,
    ctx: &mut Ctx<'_>,
    input: Option<&InputVal>,
) -> xqr_xml::Result<Sequence> {
    eval(plan, ctx, input)?.into_items()
}

/// Evaluates a table-valued plan. In pipelined mode a *fusing* operator
/// chain (two or more streaming operators stacked) runs through the cursor
/// layer, materializing once here; otherwise (a lone streaming operator or
/// a breaker) the all-at-once arms below run — a cursor over a single
/// operator would do the same loop with extra indirection.
pub(crate) fn eval_table(
    plan: &Plan,
    ctx: &mut Ctx<'_>,
    input: Option<&InputVal>,
) -> xqr_xml::Result<Table> {
    let table = if ctx.pipelined && pipeline::fuses(plan) {
        let cur = pipeline::open_cursor(plan, ctx, input)?;
        pipeline::collect(cur, ctx)?
    } else {
        eval(plan, ctx, input)?.into_table()?
    };
    // Every materialized intermediate passes through here; the byte budget
    // counts their cumulative footprint, and the profiler records the
    // largest single materialization per operator. Skipped entirely when
    // neither is on.
    if ctx.governor.has_byte_budget() {
        // The budget needs the real footprint: full walk, and the profiler
        // reuses the exact figure for free.
        let mut n = 0u64;
        for t in &table {
            n += t.approx_bytes();
        }
        if let Some(s) = ctx.profiler.as_ref().and_then(|p| p.stats_for(plan)) {
            s.record_peak_bytes(n);
        }
        ctx.governor.charge_bytes(n)?;
    } else if let Some(s) = ctx.profiler.as_ref().and_then(|p| p.stats_for(plan)) {
        // Profiler only: estimate from a bounded prefix — a full
        // `approx_bytes` walk of a large join input costs more than the
        // operator being measured.
        const PEAK_SAMPLE: usize = 64;
        let mut n = 0u64;
        for t in table.iter().take(PEAK_SAMPLE) {
            n += t.approx_bytes();
        }
        if table.len() > PEAK_SAMPLE {
            n = n * table.len() as u64 / PEAK_SAMPLE as u64;
        }
        s.record_peak_bytes(n);
    }
    Ok(table)
}

/// Is this operator in the profiled set? Tuple operators, path steps, the
/// boundaries, and calls — the nodes where cardinality and time attribution
/// is meaningful. Leaf scalar/variable/constructor plans stay out: they
/// evaluate per tuple inside dependent sub-plans, where wrapping each
/// `eval` would cost more than the work being measured.
fn profiled_op(op: &Op) -> bool {
    matches!(
        op,
        Op::Select { .. }
            | Op::Product(..)
            | Op::Join { .. }
            | Op::LOuterJoin { .. }
            | Op::MapOp { .. }
            | Op::OMap { .. }
            | Op::MapConcat { .. }
            | Op::OMapConcat { .. }
            | Op::MapIndex { .. }
            | Op::MapIndexStep { .. }
            | Op::MapFromItem { .. }
            | Op::MapToItem { .. }
            | Op::MapSome { .. }
            | Op::MapEvery { .. }
            | Op::OrderBy { .. }
            | Op::GroupBy { .. }
            | Op::TreeJoin { .. }
            | Op::Cond { .. }
            | Op::TupleConcat(..)
            | Op::Call { .. }
    )
}

/// Profiling dispatcher around [`eval_inner`]. With no profiler installed
/// this is one `Option` branch. With one installed, instrumented operators
/// record an invocation (sampled timing) and the rows of their result —
/// except a fused `TreeJoin`, whose work the streaming item cursor layer
/// records instead (the arm below merely drains that cursor, and timing it
/// here too would double-count the node).
pub(crate) fn eval(
    plan: &Plan,
    ctx: &mut Ctx<'_>,
    input: Option<&InputVal>,
) -> xqr_xml::Result<Value> {
    let stats = match &ctx.profiler {
        Some(p) if profiled_op(&plan.op) && !(ctx.pipelined && pipeline::treejoin_fuses(plan)) => {
            p.stats_for(plan)
        }
        _ => None,
    };
    let Some(stats) = stats else {
        return eval_inner(plan, ctx, input);
    };
    let t0 = stats.begin(ctx.governor.sampling_clock());
    let r = eval_inner(plan, ctx, input);
    stats.end(t0);
    if let Ok(v) = &r {
        stats.add_rows(v.row_count());
    }
    r
}

fn eval_inner(plan: &Plan, ctx: &mut Ctx<'_>, input: Option<&InputVal>) -> xqr_xml::Result<Value> {
    match &plan.op {
        // ===== XML operators ==================================================
        Op::Sequence(items) => {
            let mut out = SequenceBuilder::new();
            for i in items {
                out.push(eval_items(i, ctx, input)?);
            }
            Ok(Value::Items(out.finish()))
        }
        Op::Empty => Ok(Value::empty_items()),
        Op::Scalar(v) => Ok(Value::Items(Sequence::singleton(v.clone()))),
        Op::Element { name, content } => {
            let q = resolve_name(name, ctx, input)?;
            let items = eval_items(content, ctx, input)?;
            Ok(Value::Items(Sequence::singleton(construct_element(
                &q, &items,
            )?)))
        }
        Op::Attribute { name, content } => {
            let q = resolve_name(name, ctx, input)?;
            let items = eval_items(content, ctx, input)?;
            Ok(Value::Items(Sequence::singleton(construct_attribute(
                &q, &items,
            )?)))
        }
        Op::Text(c) => {
            let items = eval_items(c, ctx, input)?;
            Ok(Value::Items(construct_text(&items)?))
        }
        Op::Comment(c) => {
            let items = eval_items(c, ctx, input)?;
            let mut b = TreeBuilder::new();
            b.comment(&joined_string(&items));
            Ok(Value::Items(Sequence::singleton(b.finish(None).root())))
        }
        Op::Pi { target, content } => {
            let items = eval_items(content, ctx, input)?;
            let mut b = TreeBuilder::new();
            b.pi(target, &joined_string(&items));
            Ok(Value::Items(Sequence::singleton(b.finish(None).root())))
        }
        Op::DocumentNode(c) => {
            let items = eval_items(c, ctx, input)?;
            let mut b = TreeBuilder::new();
            b.start_document();
            copy_content(&mut b, &items)?;
            b.end_document();
            Ok(Value::Items(Sequence::singleton(
                b.try_finish(None)?.root(),
            )))
        }
        Op::TreeJoin {
            axis,
            test,
            input: src,
        } => {
            // A fused step chain streams node-by-node: inner step outputs
            // feed the outer stepper without materializing the intermediate
            // sequence. A lone step runs the set-at-a-time kernel directly.
            if ctx.pipelined && pipeline::treejoin_fuses(plan) {
                let mut cur = pipeline::open_item_cursor(plan, ctx, input)?;
                let mut out = SequenceBuilder::new();
                while let Some(r) = cur.next(ctx) {
                    out.push_item(r?);
                }
                Ok(Value::Items(out.finish()))
            } else {
                let items = eval_items(src, ctx, input)?;
                if let Some(s) = match &ctx.profiler {
                    Some(p) => p.stats_for(plan),
                    None => None,
                } {
                    // One kernel dispatch per context node fed to the
                    // set-at-a-time stepper.
                    s.add_kernel_dispatches(items.len() as u64);
                }
                // Per-site compiled-test cache: this arm runs once per row
                // when the step sits inside a dependent plan, and the test
                // compilation (name interning) would otherwise repeat.
                let cache = ctx.step_cache(plan);
                let stepped = tree_join_cached(
                    &items,
                    *axis,
                    test,
                    ctx.schema,
                    Some(&ctx.governor),
                    &mut cache.borrow_mut(),
                )?;
                Ok(Value::Items(stepped))
            }
        }
        Op::TreeProject { paths, input: src } => {
            let items = eval_items(src, ctx, input)?;
            Ok(Value::Items(tree_project(&items, paths, ctx)?))
        }
        Op::Cast {
            ty,
            optional,
            input: src,
        } => {
            let items = eval_items(src, ctx, input)?;
            match atomize_optional(&items)? {
                Some(a) => Ok(Value::Items(Sequence::singleton(xqr_types::cast_atomic(
                    &a, *ty,
                )?))),
                None if *optional => Ok(Value::empty_items()),
                None => Err(XmlError::new("XPTY0004", "cast of an empty sequence")),
            }
        }
        Op::Castable {
            ty,
            optional,
            input: src,
        } => {
            let items = eval_items(src, ctx, input)?;
            let ok = match atomize_optional(&items) {
                Ok(Some(a)) => xqr_types::cast_atomic(&a, *ty).is_ok(),
                Ok(None) => *optional,
                Err(_) => false,
            };
            Ok(Value::Items(Sequence::singleton(AtomicValue::Boolean(ok))))
        }
        Op::Validate { mode, input: src } => {
            let items = eval_items(src, ctx, input)?;
            Ok(Value::Items(validate_sequence(&items, ctx.schema, *mode)?))
        }
        Op::TypeMatches { st, input: src } => {
            let items = eval_items(src, ctx, input)?;
            Ok(Value::Items(Sequence::singleton(AtomicValue::Boolean(
                st.matches(&items, ctx.schema),
            ))))
        }
        Op::TypeAssert { st, input: src } => {
            let items = eval_items(src, ctx, input)?;
            Ok(Value::Items(st.assert(&items, ctx.schema)?))
        }
        Op::Var(q) => Ok(Value::Items(ctx.lookup_var(q)?)),
        Op::Call { name, args } => {
            let mut argv = Vec::with_capacity(args.len());
            for a in args {
                argv.push(eval_items(a, ctx, input)?);
            }
            call_function(name, argv, ctx)
        }
        Op::Cond { cond, then, els } => {
            let c = eval_items(cond, ctx, input)?;
            if effective_boolean_value(&c)? {
                eval(then, ctx, input)
            } else {
                eval(els, ctx, input)
            }
        }
        Op::Parse { uri } => {
            let u = eval_items(uri, ctx, input)?;
            let s = u
                .get(0)
                .map(|i| i.string_value())
                .ok_or_else(|| XmlError::new("FODC0002", "empty document URI"))?;
            Ok(Value::Items(Sequence::singleton(ctx.resolve_document(&s)?)))
        }
        Op::Serialize { input: src } => {
            let items = eval_items(src, ctx, input)?;
            Ok(Value::Items(Sequence::singleton(AtomicValue::string(
                xqr_xml::serialize_sequence(&items),
            ))))
        }

        // ===== Tuple operators ================================================
        Op::Input => match input {
            None => Err(XmlError::new(
                "XQRT0007",
                "IN referenced outside a dependent operator",
            )),
            Some(InputVal::Tuple(t)) => Ok(Value::Table(vec![t.clone()])),
            Some(InputVal::Item(i)) => Ok(Value::Items(Sequence::singleton(i.clone()))),
            Some(InputVal::Items(s)) => Ok(Value::Items(s.clone())),
        },
        Op::TupleTable => Ok(Value::Table(vec![Tuple::empty()])),
        Op::Tuple(fields) => {
            let mut fs = Vec::with_capacity(fields.len());
            for (f, v) in fields {
                fs.push((f.clone(), eval_items(v, ctx, input)?));
            }
            Ok(Value::Table(vec![Tuple::from_fields(fs)]))
        }
        Op::TupleConcat(a, b) => {
            let ta = eval_table(a, ctx, input)?;
            let tb = eval_table(b, ctx, input)?;
            match (ta.len(), tb.len()) {
                (1, 1) => Ok(Value::Table(vec![ta[0].concat(&tb[0])])),
                _ => Err(XmlError::new("XQRT0008", "++ expects single tuples")),
            }
        }
        Op::FieldAccess { field, input: src } => {
            if matches!(src.op, Op::Input) {
                // Fast path: IN#q.
                match input {
                    Some(InputVal::Tuple(t)) => return Ok(Value::Items(t.get(field))),
                    _ => {
                        return Err(XmlError::new(
                            "XQRT0009",
                            format!("IN#{field} used where IN is not a tuple"),
                        ))
                    }
                }
            }
            let t = eval_table(src, ctx, input)?;
            if t.len() != 1 {
                return Err(XmlError::new("XQRT0009", "#field on a non-singleton table"));
            }
            Ok(Value::Items(t[0].get(field)))
        }
        Op::Select { pred, input: src } => {
            let table = eval_table(src, ctx, input)?;
            let mut out = Table::with_capacity(table.len());
            for t in table {
                ctx.governor.tick()?;
                // Move the tuple into the binding and back out: no clone.
                let bound = InputVal::Tuple(t);
                let v = eval_dep_items(pred, ctx, &bound)?;
                let InputVal::Tuple(t) = bound else {
                    unreachable!()
                };
                if effective_boolean_value(&v)? {
                    out.push(t);
                }
            }
            Ok(Value::Table(out))
        }
        Op::Product(a, b) => {
            let ta = eval_table(a, ctx, input)?;
            let tb = eval_table(b, ctx, input)?;
            // Charge the full cross-product size before allocating it, so
            // an exploding Product trips the budget pre-allocation.
            ctx.governor
                .charge_tuples(ta.len() as u64 * tb.len() as u64)?;
            let mut out = Table::with_capacity(ta.len() * tb.len());
            for x in &ta {
                for y in &tb {
                    out.push(x.concat(y));
                }
            }
            Ok(Value::Table(out))
        }
        Op::Join { pred, left, right } => {
            let tl = eval_table(left, ctx, input)?;
            let tr = eval_table(right, ctx, input)?;
            let stats = match &ctx.profiler {
                Some(p) => p.stats_for(plan),
                None => None,
            };
            Ok(Value::Table(execute_join(
                pred,
                left,
                right,
                &tl,
                &tr,
                None,
                ctx,
                stats.as_deref(),
            )?))
        }
        Op::LOuterJoin {
            null_field,
            pred,
            left,
            right,
        } => {
            let tl = eval_table(left, ctx, input)?;
            let tr = eval_table(right, ctx, input)?;
            let stats = match &ctx.profiler {
                Some(p) => p.stats_for(plan),
                None => None,
            };
            Ok(Value::Table(execute_join(
                pred,
                left,
                right,
                &tl,
                &tr,
                Some(null_field),
                ctx,
                stats.as_deref(),
            )?))
        }
        Op::MapOp { dep, input: src } => {
            let table = eval_table(src, ctx, input)?;
            let mut out = Table::with_capacity(table.len());
            for t in table {
                ctx.governor.tick()?;
                let mapped = eval(dep, ctx, Some(&InputVal::Tuple(t)))?.into_table()?;
                out.extend(mapped);
            }
            Ok(Value::Table(out))
        }
        Op::OMap {
            null_field,
            input: src,
        } => {
            let table = eval_table(src, ctx, input)?;
            if table.is_empty() {
                return Ok(Value::Table(vec![Tuple::from_fields(vec![(
                    null_field.clone(),
                    Sequence::singleton(AtomicValue::Boolean(true)),
                )])]));
            }
            ctx.governor.charge_tuples(table.len() as u64)?;
            Ok(Value::Table(
                table
                    .into_iter()
                    .map(|t| {
                        t.with(
                            null_field.clone(),
                            Sequence::singleton(AtomicValue::Boolean(false)),
                        )
                    })
                    .collect(),
            ))
        }
        Op::MapConcat { dep, input: src } => {
            let table = eval_table(src, ctx, input)?;
            let mut out = Table::new();
            for t in table {
                ctx.governor.tick()?;
                let produced = eval(dep, ctx, Some(&InputVal::Tuple(t.clone())))?.into_table()?;
                ctx.governor.charge_tuples(produced.len() as u64)?;
                for u in produced {
                    out.push(t.concat(&u));
                }
            }
            Ok(Value::Table(out))
        }
        Op::OMapConcat {
            null_field,
            dep,
            input: src,
        } => {
            let table = eval_table(src, ctx, input)?;
            let mut out = Table::new();
            for t in table {
                ctx.governor.tick()?;
                let produced = eval(dep, ctx, Some(&InputVal::Tuple(t.clone())))?.into_table()?;
                ctx.governor.charge_tuples(produced.len() as u64)?;
                if produced.is_empty() {
                    out.push(t.with(
                        null_field.clone(),
                        Sequence::singleton(AtomicValue::Boolean(true)),
                    ));
                } else {
                    for u in produced {
                        out.push(t.concat(&u).with(
                            null_field.clone(),
                            Sequence::singleton(AtomicValue::Boolean(false)),
                        ));
                    }
                }
            }
            Ok(Value::Table(out))
        }
        Op::MapIndex { field, input: src } | Op::MapIndexStep { field, input: src } => {
            let table = eval_table(src, ctx, input)?;
            ctx.governor.charge_tuples(table.len() as u64)?;
            Ok(Value::Table(
                table
                    .into_iter()
                    .enumerate()
                    .map(|(i, t)| t.with(field.clone(), Sequence::integers([i as i64 + 1])))
                    .collect(),
            ))
        }
        Op::OrderBy { specs, input: src } => {
            let table = eval_table(src, ctx, input)?;
            if ctx.governor.should_spill() {
                let stats = match &ctx.profiler {
                    Some(p) => p.stats_for(plan),
                    None => None,
                };
                return Ok(Value::Table(crate::spill::external_sort(
                    specs,
                    table,
                    ctx,
                    stats.as_deref(),
                )?));
            }
            Ok(Value::Table(order_by(specs, table, ctx)?))
        }
        Op::GroupBy {
            agg,
            index_fields,
            null_fields,
            per_partition,
            per_item,
            input: src,
        } => {
            // GroupBy breaks the pipeline on its output, but in pipelined
            // mode it *consumes* a streaming input tuple-by-tuple,
            // hash-partitioning on the fly — the grouped table (typically
            // a join output, the largest intermediate of the unnesting
            // pipeline) is never stored or sorted.
            let stats = match &ctx.profiler {
                Some(p) => p.stats_for(plan),
                None => None,
            };
            if ctx.pipelined && pipeline::streams(&src.op) {
                let mut cur = pipeline::open_cursor(src, ctx, input)?;
                return Ok(Value::Table(execute_group_by_streaming(
                    agg,
                    index_fields,
                    null_fields,
                    per_partition,
                    per_item,
                    &mut *cur,
                    ctx,
                    stats.as_deref(),
                )?));
            }
            let table = eval_table(src, ctx, input)?;
            Ok(Value::Table(execute_group_by(
                agg,
                index_fields,
                null_fields,
                per_partition,
                per_item,
                table,
                ctx,
                stats.as_deref(),
            )?))
        }

        // ===== Boundary operators =============================================
        Op::MapFromItem { dep, input: src } => {
            let items = eval_items(src, ctx, input)?;
            let mut out = Table::with_capacity(items.len());
            for item in items.iter() {
                ctx.governor.tick()?;
                let t = eval(dep, ctx, Some(&InputVal::Item(item.clone())))?.into_table()?;
                out.extend(t);
            }
            Ok(Value::Table(out))
        }
        Op::MapToItem { dep, input: src } => {
            // The tuples-to-items boundary: in pipelined mode a streaming
            // source feeds one tuple at a time into the output builder —
            // its output table never exists.
            let mut out = SequenceBuilder::new();
            if ctx.pipelined && ctx.batched && input.is_none() && pipeline::streams(&src.op) {
                // Top-level boundary: the stream is long enough to
                // amortize the batch buffer. (Dependent-position
                // `MapToItem`s run per outer row over tiny streams, where
                // the per-call buffer costs more than the loop it saves —
                // those stay row-at-a-time below.)
                let mut cur = pipeline::open_cursor(src, ctx, input)?;
                let mut batch = Table::new();
                loop {
                    batch.clear();
                    let more = cur.next_batch(ctx, &mut batch, crate::batch::BATCH_SIZE);
                    // Tuples pulled before a source error must be processed
                    // first: a downstream error from an earlier tuple takes
                    // precedence over the source's later one, exactly as in
                    // the row-at-a-time loop.
                    for t in batch.drain(..) {
                        out.push(eval_dep_items(dep, ctx, &InputVal::Tuple(t))?);
                    }
                    match more {
                        Ok(true) => {}
                        Ok(false) => break,
                        Err(e) => return Err(e),
                    }
                }
            } else if ctx.pipelined && pipeline::streams(&src.op) {
                let mut cur = pipeline::open_cursor(src, ctx, input)?;
                while let Some(t) = cur.next(ctx) {
                    out.push(eval_dep_items(dep, ctx, &InputVal::Tuple(t?))?);
                }
            } else {
                for t in eval_table(src, ctx, input)? {
                    ctx.governor.tick()?;
                    out.push(eval_dep_items(dep, ctx, &InputVal::Tuple(t))?);
                }
            }
            Ok(Value::Items(out.finish()))
        }
        Op::MapSome { dep, input: src } => {
            // Existential quantifier: pipelining makes the short-circuit
            // real — the source stops producing at the first witness.
            if ctx.pipelined && pipeline::streams(&src.op) {
                let mut cur = pipeline::open_cursor(src, ctx, input)?;
                while let Some(t) = cur.next(ctx) {
                    let v = eval_dep_items(dep, ctx, &InputVal::Tuple(t?))?;
                    if effective_boolean_value(&v)? {
                        return Ok(Value::Items(Sequence::singleton(AtomicValue::Boolean(
                            true,
                        ))));
                    }
                }
            } else {
                for t in eval_table(src, ctx, input)? {
                    ctx.governor.tick()?;
                    let v = eval_dep_items(dep, ctx, &InputVal::Tuple(t))?;
                    if effective_boolean_value(&v)? {
                        return Ok(Value::Items(Sequence::singleton(AtomicValue::Boolean(
                            true,
                        ))));
                    }
                }
            }
            Ok(Value::Items(Sequence::singleton(AtomicValue::Boolean(
                false,
            ))))
        }
        Op::MapEvery { dep, input: src } => {
            if ctx.pipelined && pipeline::streams(&src.op) {
                let mut cur = pipeline::open_cursor(src, ctx, input)?;
                while let Some(t) = cur.next(ctx) {
                    let v = eval_dep_items(dep, ctx, &InputVal::Tuple(t?))?;
                    if !effective_boolean_value(&v)? {
                        return Ok(Value::Items(Sequence::singleton(AtomicValue::Boolean(
                            false,
                        ))));
                    }
                }
            } else {
                for t in eval_table(src, ctx, input)? {
                    ctx.governor.tick()?;
                    let v = eval_dep_items(dep, ctx, &InputVal::Tuple(t))?;
                    if !effective_boolean_value(&v)? {
                        return Ok(Value::Items(Sequence::singleton(AtomicValue::Boolean(
                            false,
                        ))));
                    }
                }
            }
            Ok(Value::Items(Sequence::singleton(AtomicValue::Boolean(
                true,
            ))))
        }
    }
}

fn call_function(name: &QName, argv: Vec<Sequence>, ctx: &mut Ctx<'_>) -> xqr_xml::Result<Value> {
    let local = name.local_part();
    if is_builtin(local) {
        let bctx = BuiltinCtx {
            documents: Some(ctx.documents),
        };
        return Ok(Value::Items(call_builtin(local, &argv, &bctx)?));
    }
    // User-defined function from the algebra context.
    let func = ctx
        .module
        .functions
        .get(name)
        .cloned()
        .ok_or_else(|| XmlError::new("XPST0017", format!("unknown function {name}()")))?;
    if func.params.len() != argv.len() {
        return Err(XmlError::new(
            "XPST0017",
            format!("{name}() expects {} arguments", func.params.len()),
        ));
    }
    let mut frame = HashMap::new();
    for ((p, v), ty) in func.params.iter().zip(argv).zip(func.param_types.iter()) {
        if let Some(st) = ty {
            st.assert(&v, ctx.schema)?;
        }
        frame.insert(p.clone(), v);
    }
    ctx.push_frame(frame)?;
    let result = eval(&func.body, ctx, None);
    ctx.pop_frame();
    let v = result?.into_items()?;
    if let Some(st) = &func.return_type {
        st.assert(&v, ctx.schema)?;
    }
    Ok(Value::Items(v))
}

fn order_by(specs: &[OrderSpecPlan], table: Table, ctx: &mut Ctx<'_>) -> xqr_xml::Result<Table> {
    // Precompute keys (one pass), then stable sort.
    let mut keyed: Vec<(Vec<Sequence>, Tuple)> = Vec::with_capacity(table.len());
    for t in table {
        ctx.governor.tick()?;
        let mut keys = Vec::with_capacity(specs.len());
        for s in specs {
            keys.push(eval_dep_items(&s.key, ctx, &InputVal::Tuple(t.clone()))?);
        }
        keyed.push((keys, t));
    }
    let mut err: Option<XmlError> = None;
    keyed.sort_by(|a, b| {
        for (i, s) in specs.iter().enumerate() {
            match order_key_compare(&a.0[i], &b.0[i], s.empty_least) {
                Ok(ord) => {
                    let ord = if s.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                Err(e) => {
                    if err.is_none() {
                        err = Some(e);
                    }
                    return std::cmp::Ordering::Equal;
                }
            }
        }
        std::cmp::Ordering::Equal
    });
    if let Some(e) = err {
        return Err(e);
    }
    Ok(keyed.into_iter().map(|(_, t)| t).collect())
}

fn resolve_name(
    name: &NamePlan,
    ctx: &mut Ctx<'_>,
    input: Option<&InputVal>,
) -> xqr_xml::Result<QName> {
    match name {
        NamePlan::Static(q) => Ok(q.clone()),
        NamePlan::Dynamic(p) => {
            let items = eval_items(p, ctx, input)?;
            let a = atomize_optional(&items)?
                .ok_or_else(|| XmlError::new("XPTY0004", "empty constructor name"))?;
            match a {
                AtomicValue::QName(q) => Ok(q),
                other => {
                    let s = other.string_value();
                    match s.split_once(':') {
                        Some((p, l)) => Ok(QName::full(Some(p), None, l)),
                        None => Ok(QName::local(&s)),
                    }
                }
            }
        }
    }
}

fn joined_string(items: &Sequence) -> String {
    items
        .atomized()
        .iter()
        .map(|a| a.string_value())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Element construction: copies content (fresh node identities), merging
/// adjacent atomic values into space-separated text, attributes collected
/// onto the element. Exposed for reuse by the Core interpreter.
pub fn construct_element(name: &QName, items: &Sequence) -> xqr_xml::Result<Item> {
    let mut b = TreeBuilder::new();
    b.start_element(name.clone());
    copy_content(&mut b, items)?;
    b.end_element();
    Ok(Item::Node(b.try_finish(None)?.root()))
}

/// Attribute construction per the spec: value is the space-joined string
/// value of the atomized content.
pub fn construct_attribute(name: &QName, items: &Sequence) -> xqr_xml::Result<Item> {
    let mut b = TreeBuilder::new();
    b.attribute(name.clone(), &joined_string(items));
    Ok(Item::Node(b.try_finish(None)?.root()))
}

/// Text-node construction; empty content constructs no node.
pub fn construct_text(items: &Sequence) -> xqr_xml::Result<Sequence> {
    if items.is_empty() {
        return Ok(Sequence::empty());
    }
    let mut b = TreeBuilder::new();
    b.start_element(QName::local("#wrap"));
    b.text(&joined_string(items));
    b.end_element();
    let doc = b.try_finish(None)?;
    let wrap = doc.root();
    let children = wrap.children();
    if children.is_empty() {
        return Ok(Sequence::empty());
    }
    Ok(Sequence::singleton(children[0].clone()))
}

fn copy_content(b: &mut TreeBuilder, items: &Sequence) -> xqr_xml::Result<()> {
    let mut pending_text = String::new();
    let mut prev_atomic = false;
    for item in items.iter() {
        match item {
            Item::Atomic(a) => {
                if prev_atomic {
                    pending_text.push(' ');
                }
                pending_text.push_str(&a.string_value());
                prev_atomic = true;
            }
            Item::Node(n) => {
                if !pending_text.is_empty() {
                    b.text(&pending_text);
                    pending_text.clear();
                }
                prev_atomic = false;
                b.copy_node(n);
            }
        }
    }
    if !pending_text.is_empty() {
        b.text(&pending_text);
    }
    Ok(())
}

/// `TreeProject[paths]`: structural projection — keeps, under each input
/// node, only branches lying along one of the given step chains
/// (child/descendant steps; a chain's end keeps its whole subtree). The
/// projection inference in `xqr-core::project` guarantees reverse axes are
/// absent before this operator is ever introduced.
fn tree_project(
    items: &Sequence,
    paths: &[Vec<(Axis, NodeTest)>],
    ctx: &Ctx<'_>,
) -> xqr_xml::Result<Sequence> {
    let mut out = Vec::with_capacity(items.len());
    let active: Vec<&[(Axis, NodeTest)]> = paths.iter().map(|p| p.as_slice()).collect();
    for item in items.iter() {
        match item {
            Item::Node(n) => {
                let mut b = TreeBuilder::new();
                project_node(&mut b, n, &active, ctx);
                out.push(Item::Node(b.try_finish(None)?.root()));
            }
            Item::Atomic(_) => return Err(XmlError::new("XPTY0020", "TreeProject on a non-node")),
        }
    }
    Ok(Sequence::from_vec(out))
}

fn project_node(
    b: &mut TreeBuilder,
    n: &NodeHandle,
    active: &[&[(Axis, NodeTest)]],
    ctx: &Ctx<'_>,
) {
    // Any exhausted chain keeps the whole subtree.
    if active.iter().any(|p| p.is_empty()) {
        b.copy_node(n);
        return;
    }
    match n.kind() {
        NodeKind::Document => {
            b.start_document();
            for c in n.children() {
                project_child(b, &c, active, ctx);
            }
            b.end_document();
        }
        NodeKind::Element => {
            b.start_element(n.name().expect("element").clone());
            for a in n.attributes() {
                b.copy_node(&a);
            }
            for c in n.children() {
                project_child(b, &c, active, ctx);
            }
            b.end_element();
        }
        _ => b.copy_node(n),
    }
}

fn project_child(
    b: &mut TreeBuilder,
    c: &NodeHandle,
    active: &[&[(Axis, NodeTest)]],
    ctx: &Ctx<'_>,
) {
    // Advance every chain against this child; a chain survives if the
    // child matches its head (advanced) or if a descendant step may still
    // match deeper (kept as-is).
    let mut next: Vec<&[(Axis, NodeTest)]> = Vec::new();
    for path in active {
        let (axis, test) = &path[0];
        match axis {
            Axis::Child => {
                if test.matches(c, Axis::Child, ctx.schema) {
                    next.push(&path[1..]);
                }
            }
            Axis::Descendant | Axis::DescendantOrSelf => {
                if test.matches(c, Axis::Child, ctx.schema) {
                    next.push(&path[1..]);
                    // Deeper occurrences of the same pattern remain
                    // reachable inside the kept subtree only when the chain
                    // continues; keep scanning for them too.
                    if path.len() > 1 {
                        next.push(path);
                    }
                } else {
                    next.push(path);
                }
            }
            // Inference never emits other axes; keep the child whole if it
            // ever happens (conservative).
            _ => {
                b.copy_node(c);
                return;
            }
        }
    }
    if next.iter().any(|p| p.is_empty()) {
        b.copy_node(c);
        return;
    }
    if next.is_empty() {
        return; // no chain can match below: prune.
    }
    if c.kind() == NodeKind::Element {
        project_node(b, c, &next, ctx);
    }
    // Non-element children (text/comments/PIs) between structural levels
    // are only kept inside fully-kept subtrees.
}
