//! Pipelined (cursor) execution of the tuple operators.
//!
//! The logical model evaluates every operator to a complete table
//! ([`crate::eval`]); the paper notes the physical engine instead runs the
//! tuple algebra as a pull pipeline. This module supplies that layer: a
//! [`TupleCursor`] per streaming operator, composed into a fused chain so
//! that a tuple flows from the scan to the consumer without the
//! intermediate tables ever existing. Materialization happens only at
//! genuine pipeline breakers — `OrderBy`, `GroupBy`, and the build (inner)
//! side of `Product`/`Join`/`LOuterJoin` — which keep their all-at-once
//! implementations and consume cursors on their streaming side.
//!
//! The evaluator routes table-valued sub-plans here whenever
//! `Ctx::pipelined` is set (the default); `CompileOptions::materialize_all`
//! turns it off for ablation and differential testing. Both strategies
//! compute the same tables in the same order; only the *interleaving* of
//! dependent-plan evaluation differs, which can change *which* of several
//! dynamic errors surfaces first (XQuery leaves that choice to the
//! implementation) and lets `MapSome`/`MapEvery` stop consuming input at
//! the first decisive tuple.

use xqr_core::algebra::{Field, Op, Plan};
use xqr_xml::axes::{self, Axis};
use xqr_xml::{AtomicValue, Item, NodeKind, Sequence, XmlError};

use crate::compare::effective_boolean_value;
use crate::context::{Ctx, JoinAlgorithm};
use crate::eval::{eval, eval_items, eval_table};
use crate::joins::JoinProbe;
use crate::value::{InputVal, Table, Tuple};

/// A pull-based tuple stream. `next` yields the stream's tuples in order;
/// the dynamic context is threaded through each call because dependent
/// sub-plans evaluate lazily inside the cursor.
pub(crate) trait TupleCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Tuple>>;

    /// Drains the remaining tuples into `out`. Semantically identical to
    /// looping `next`; producing cursors override it to push whole match
    /// batches, skipping the per-tuple dispatch at the point where a fused
    /// chain finally materializes.
    fn drain_into(&mut self, ctx: &mut Ctx<'_>, out: &mut Table) -> xqr_xml::Result<()> {
        while let Some(t) = self.next(ctx) {
            out.push(t?);
        }
        Ok(())
    }

    /// Pulls roughly `n` more tuples into `out` (the batched pull
    /// interface; `n` is a target — producing cursors may overshoot by
    /// one match set). Returns `Ok(true)` while the stream may have more.
    ///
    /// Error contract: tuples pulled before an error **remain in `out`**,
    /// and consumers that do per-tuple work must process them *before*
    /// surfacing the error. That protocol keeps batched execution's
    /// observable error precedence identical to the scalar interleaving:
    /// an earlier tuple's downstream error still wins over a later
    /// tuple's source error. Budgets are unaffected — every tuple is
    /// still ticked/charged individually inside the batch loop.
    fn next_batch(
        &mut self,
        ctx: &mut Ctx<'_>,
        out: &mut Table,
        n: usize,
    ) -> xqr_xml::Result<bool> {
        for _ in 0..n {
            match self.next(ctx) {
                Some(Ok(t)) => out.push(t),
                Some(Err(e)) => return Err(e),
                None => return Ok(false),
            }
        }
        Ok(true)
    }
}

pub(crate) type BoxCursor<'p> = Box<dyn TupleCursor<'p> + 'p>;

/// Does this operator have a streaming cursor (true) or is it a pipeline
/// breaker / non-tuple operator evaluated all at once (false)?
pub fn streams(op: &Op) -> bool {
    matches!(
        op,
        Op::Select { .. }
            | Op::Product(..)
            | Op::Join { .. }
            | Op::LOuterJoin { .. }
            | Op::MapOp { .. }
            | Op::OMap { .. }
            | Op::MapConcat { .. }
            | Op::OMapConcat { .. }
            | Op::MapIndex { .. }
            | Op::MapIndexStep { .. }
            | Op::MapFromItem { .. }
            | Op::Cond { .. }
    )
}

/// The child a streaming operator pulls tuples from (the probe side for
/// joins/products); `None` for operators fed by items or breakers only.
fn streamed_input(op: &Op) -> Option<&Plan> {
    match op {
        Op::Select { input, .. }
        | Op::MapOp { input, .. }
        | Op::OMap { input, .. }
        | Op::MapConcat { input, .. }
        | Op::OMapConcat { input, .. }
        | Op::MapIndex { input, .. }
        | Op::MapIndexStep { input, .. } => Some(input),
        Op::Product(a, _) => Some(a),
        Op::Join { left, .. } | Op::LOuterJoin { left, .. } => Some(left),
        _ => None,
    }
}

/// Is routing this plan through the cursor layer worthwhile? A cursor pays
/// for itself only when it *fuses*: the operator streams **and** the child
/// it pulls from streams too, so at least one intermediate table is never
/// built. A lone streaming operator over a breaker degenerates to the
/// eager loop plus cursor overhead — the evaluator keeps its direct
/// implementation for that case (and for the thousands of small per-tuple
/// dependent tables, where the overhead would be paid per source tuple).
pub fn fuses(plan: &Plan) -> bool {
    streams(&plan.op)
        && match &plan.op {
            // A conditional fuses when the branch it picks would; that is
            // only known dynamically, so fuse if either branch does.
            Op::Cond { then, els, .. } => fuses(then) || fuses(els),
            // The items-to-tuples boundary fuses when the item source is a
            // fusing path chain: the step results are never materialized.
            Op::MapFromItem { input, .. } => treejoin_fuses(input),
            op => streamed_input(op).is_some_and(|c| streams(&c.op)),
        }
}

/// Is this item-valued plan a path step the streaming `TreeJoin` cursor can
/// evaluate incrementally? (Forward axes only; see [`axes::streamable_axis`].)
pub fn treejoin_streams(plan: &Plan) -> bool {
    matches!(&plan.op, Op::TreeJoin { axis, .. } if axes::streamable_axis(*axis))
}

/// Does a `TreeJoin` chain contain a descendant-axis step anywhere?
fn chain_has_descendant(mut plan: &Plan) -> bool {
    while let Op::TreeJoin { axis, input, .. } = &plan.op {
        if matches!(axis, Axis::Descendant | Axis::DescendantOrSelf) {
            return true;
        }
        plan = input;
    }
    false
}

/// A chain of at least two streamable steps, at least one of them a
/// descendant axis: the inner steps' outputs feed the outer stepper
/// context-by-context and are never materialized. A lone step over a
/// materialized source gains nothing from a cursor (the evaluator's
/// set-at-a-time kernel is the same loop without indirection), and a pure
/// child/self/attribute chain has small intermediates — the per-node
/// cursor dispatch measurably loses to the eager kernels there.
pub fn treejoin_fuses(plan: &Plan) -> bool {
    matches!(&plan.op, Op::TreeJoin { axis, input, .. }
        if axes::streamable_axis(*axis) && treejoin_streams(input))
        && chain_has_descendant(plan)
}

/// Opens a cursor over a table-valued plan. Streaming operators get their
/// dedicated cursor over their (recursively opened) input; everything else
/// is evaluated to a table here and replayed — the single materialization
/// point of a fused chain.
///
/// With a profiler installed, streaming operators are wrapped in a
/// [`ProfiledCursor`] attributing each `next()` to the plan node. Breakers
/// (the `_` arm) are excluded: they run through `eval`, which records them
/// itself. `Cond` is excluded too — it contributes no cursor of its own
/// (the chosen branch's cursor is returned directly), so its time shows up
/// on the branch.
pub(crate) fn open_cursor<'p>(
    plan: &'p Plan,
    ctx: &mut Ctx<'_>,
    input: Option<&InputVal>,
) -> xqr_xml::Result<BoxCursor<'p>> {
    let stats = match &ctx.profiler {
        Some(p) if streams(&plan.op) && !matches!(plan.op, Op::Cond { .. }) => p.stats_for(plan),
        _ => None,
    };
    let cur = open_cursor_raw(plan, ctx, input)?;
    Ok(match stats {
        Some(stats) => {
            stats.record_open();
            Box::new(ProfiledCursor { inner: cur, stats })
        }
        None => cur,
    })
}

fn open_cursor_raw<'p>(
    plan: &'p Plan,
    ctx: &mut Ctx<'_>,
    input: Option<&InputVal>,
) -> xqr_xml::Result<BoxCursor<'p>> {
    match &plan.op {
        Op::Select { pred, input: src } => {
            // Fusable comparison predicates run through the batched
            // kernel (counters land on the predicate's plan node).
            let kernel = if ctx.batched {
                let stats = ctx.profiler.as_ref().and_then(|p| p.stats_for(pred));
                crate::batch::SelectKernel::build(pred, stats)
            } else {
                None
            };
            Ok(Box::new(SelectCursor {
                src: open_cursor(src, ctx, input)?,
                pred,
                kernel,
            }))
        }
        Op::Product(a, b) => Ok(Box::new(ProductCursor {
            left: open_cursor(a, ctx, input)?,
            right: eval_table(b, ctx, input)?,
            cur: None,
            ridx: 0,
        })),
        Op::Join { pred, left, right } => open_join(plan, pred, left, right, None, ctx, input),
        Op::LOuterJoin {
            null_field,
            pred,
            left,
            right,
        } => open_join(plan, pred, left, right, Some(null_field), ctx, input),
        Op::MapOp { dep, input: src } => Ok(Box::new(DepCursor::new(
            open_cursor(src, ctx, input)?,
            dep,
            DepMode::Replace,
        ))),
        Op::MapConcat { dep, input: src } => Ok(Box::new(DepCursor::new(
            open_cursor(src, ctx, input)?,
            dep,
            DepMode::Concat,
        ))),
        Op::OMapConcat {
            null_field,
            dep,
            input: src,
        } => Ok(Box::new(DepCursor::new(
            open_cursor(src, ctx, input)?,
            dep,
            DepMode::OuterConcat(null_field),
        ))),
        Op::OMap {
            null_field,
            input: src,
        } => Ok(Box::new(OMapCursor {
            src: open_cursor(src, ctx, input)?,
            null_field,
            emitted_any: false,
            done: false,
        })),
        Op::MapIndex { field, input: src } | Op::MapIndexStep { field, input: src } => {
            Ok(Box::new(IndexCursor {
                src: open_cursor(src, ctx, input)?,
                field,
                i: 0,
            }))
        }
        Op::MapFromItem { dep, input: src } => Ok(Box::new(MapFromItemCursor {
            src: open_item_cursor(src, ctx, input)?,
            dep,
            pending: Vec::new().into_iter(),
        })),
        // A conditional in table position streams its chosen branch.
        Op::Cond { cond, then, els } => {
            let c = eval_items(cond, ctx, input)?;
            if effective_boolean_value(&c)? {
                open_cursor(then, ctx, input)
            } else {
                open_cursor(els, ctx, input)
            }
        }
        // Pipeline breakers and the rest: evaluate fully, replay. (The
        // table's bytes were already charged at its materialization point;
        // no second charge here.)
        _ => {
            let table = eval(plan, ctx, input)?.into_table()?;
            Ok(Box::new(MaterializedCursor {
                iter: table.into_iter(),
                _charge: None,
            }))
        }
    }
}

fn open_join<'p>(
    plan: &'p Plan,
    pred: &'p Plan,
    left: &'p Plan,
    right: &'p Plan,
    outer_null: Option<&'p Field>,
    ctx: &mut Ctx<'_>,
    input: Option<&InputVal>,
) -> xqr_xml::Result<BoxCursor<'p>> {
    // The build (inner) side is a breaker: materialized and indexed up
    // front. The probe (outer) side streams.
    let stats = match &ctx.profiler {
        Some(p) => p.stats_for(plan),
        None => None,
    };
    // Past the soft watermark a splittable join runs out-of-core: both
    // sides materialize (the outer order must be recoverable across
    // partitions), the Grace join produces the full output, and the cursor
    // replays it. The result's footprint stays charged until the cursor
    // drops.
    if ctx.governor.should_spill() && !matches!(ctx.join_algorithm, JoinAlgorithm::NestedLoop) {
        if let Some(split) = crate::joins::analyze_predicate(pred, left, right) {
            let left_table = eval_table(left, ctx, input)?;
            let right_table = eval_table(right, ctx, input)?;
            let out = crate::spill::grace_join(
                &split,
                &left_table,
                &right_table,
                outer_null,
                ctx,
                stats.as_deref(),
            )?;
            let mut charge = xqr_xml::ByteCharge::new(&ctx.governor);
            for t in &out {
                charge.add(t.approx_bytes())?;
            }
            return Ok(Box::new(MaterializedCursor {
                iter: out.into_iter(),
                _charge: Some(charge),
            }));
        }
    }
    let t0 = stats.as_ref().map(|_| std::time::Instant::now());
    let right_table = eval_table(right, ctx, input)?;
    let probe = JoinProbe::build(pred, left, right, &right_table, ctx)?;
    if let (Some(s), Some(t0)) = (&stats, t0) {
        // Build phase: inner-side materialization plus probe-index
        // construction (the inner side's own operators also record their
        // share separately).
        s.add_build_nanos(t0.elapsed().as_nanos() as u64);
    }
    Ok(Box::new(JoinCursor {
        left: open_cursor(left, ctx, input)?,
        right: right_table,
        probe,
        outer_null,
        pending: Vec::new().into_iter(),
    }))
}

/// Drains a cursor into a table.
pub(crate) fn collect(mut cur: BoxCursor<'_>, ctx: &mut Ctx<'_>) -> xqr_xml::Result<Table> {
    let mut out = Table::new();
    cur.drain_into(ctx, &mut out)?;
    Ok(out)
}

/// Replays an already-computed table. The optional charge is the table's
/// live-byte accounting, released back to the governor when the cursor
/// drops.
struct MaterializedCursor {
    iter: std::vec::IntoIter<Tuple>,
    _charge: Option<xqr_xml::ByteCharge>,
}

impl<'p> TupleCursor<'p> for MaterializedCursor {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Tuple>> {
        if let Err(e) = ctx.governor.tick() {
            return Some(Err(e));
        }
        self.iter.next().map(Ok)
    }
}

/// Profiling wrapper: attributes each `next()` (sampled timing, see
/// `crate::profile`) and every produced row to one plan node's stats. The
/// wrapper never ticks the governor itself — budget behavior is identical
/// with and without profiling.
struct ProfiledCursor<'p> {
    inner: BoxCursor<'p>,
    stats: std::rc::Rc<crate::profile::OpStats>,
}

impl<'p> TupleCursor<'p> for ProfiledCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Tuple>> {
        let t0 = self.stats.begin(ctx.governor.sampling_clock());
        let r = self.inner.next(ctx);
        self.stats.end(t0);
        if let Some(Ok(_)) = &r {
            self.stats.add_rows(1);
        }
        r
    }

    fn drain_into(&mut self, ctx: &mut Ctx<'_>, out: &mut Table) -> xqr_xml::Result<()> {
        // One exact measurement covers the whole batch; no extrapolation.
        let before = out.len();
        let t0 = std::time::Instant::now();
        let r = self.inner.drain_into(ctx, out);
        self.stats.add_exact_nanos(t0.elapsed().as_nanos() as u64);
        self.stats.add_rows((out.len() - before) as u64);
        r
    }

    fn next_batch(
        &mut self,
        ctx: &mut Ctx<'_>,
        out: &mut Table,
        n: usize,
    ) -> xqr_xml::Result<bool> {
        // Like `drain_into`: one exact measurement per batch.
        let before = out.len();
        let t0 = std::time::Instant::now();
        let r = self.inner.next_batch(ctx, out, n);
        self.stats.add_exact_nanos(t0.elapsed().as_nanos() as u64);
        self.stats.add_rows((out.len() - before) as u64);
        self.stats.add_batches(1);
        r
    }
}

/// Item-stream analogue of [`ProfiledCursor`], wrapping the streaming
/// `TreeJoin` steppers (which never pass through `eval`, so nothing else
/// would record them).
struct ProfiledItemCursor<'p> {
    inner: BoxItemCursor<'p>,
    stats: std::rc::Rc<crate::profile::OpStats>,
}

impl<'p> ItemCursor<'p> for ProfiledItemCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Item>> {
        let t0 = self.stats.begin(ctx.governor.sampling_clock());
        let r = self.inner.next(ctx);
        self.stats.end(t0);
        if let Some(Ok(_)) = &r {
            self.stats.add_rows(1);
        }
        r
    }
}

/// `Select[pred]` — filters, evaluating the predicate with `IN` rebound.
/// A fusable comparison predicate runs through the [`crate::batch`]
/// kernel (type promotion resolved once, no per-row boolean sequence);
/// everything else evaluates the predicate plan per row.
struct SelectCursor<'p> {
    src: BoxCursor<'p>,
    pred: &'p Plan,
    kernel: Option<crate::batch::SelectKernel<'p>>,
}

impl<'p> SelectCursor<'p> {
    /// The scalar predicate: evaluate, take the effective boolean value.
    fn keep_scalar(&self, t: Tuple, ctx: &mut Ctx<'_>) -> (Tuple, xqr_xml::Result<bool>) {
        // Move the tuple into the binding and back out: no clone.
        let bound = InputVal::Tuple(t);
        let keep = crate::eval::eval_dep_items(self.pred, ctx, &bound)
            .and_then(|v| effective_boolean_value(&v));
        let InputVal::Tuple(t) = bound else {
            unreachable!()
        };
        (t, keep)
    }
}

impl<'p> TupleCursor<'p> for SelectCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Tuple>> {
        if let Err(e) = ctx.governor.tick() {
            return Some(Err(e));
        }

        loop {
            let t = match self.src.next(ctx)? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            let (t, keep) = match &self.kernel {
                Some(k) => k.matches(t, ctx),
                None => self.keep_scalar(t, ctx),
            };
            match keep {
                Ok(true) => return Some(Ok(t)),
                Ok(false) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
    }

    fn next_batch(
        &mut self,
        ctx: &mut Ctx<'_>,
        out: &mut Table,
        n: usize,
    ) -> xqr_xml::Result<bool> {
        let Some(kernel) = &self.kernel else {
            // Scalar predicate: the default per-tuple pull.
            for _ in 0..n {
                match self.next(ctx) {
                    Some(Ok(t)) => out.push(t),
                    Some(Err(e)) => return Err(e),
                    None => return Ok(false),
                }
            }
            return Ok(true);
        };
        // Pull a source batch, then filter. A source error is surfaced
        // only after the rows pulled before it have been filtered — the
        // scalar interleaving's error precedence.
        kernel.note_batch();
        let mut batch = Table::with_capacity(n);
        let more = self.src.next_batch(ctx, &mut batch, n);
        for t in batch {
            let (t, keep) = kernel.matches(t, ctx);
            if keep? {
                ctx.governor.tick()?;
                out.push(t);
            }
        }
        more
    }

    fn drain_into(&mut self, ctx: &mut Ctx<'_>, out: &mut Table) -> xqr_xml::Result<()> {
        if self.kernel.is_none() {
            while let Some(t) = self.next(ctx) {
                out.push(t?);
            }
            return Ok(());
        }
        while self.next_batch(ctx, out, crate::batch::BATCH_SIZE)? {}
        Ok(())
    }
}

/// `Product` — streams the left input against a materialized right table.
struct ProductCursor<'p> {
    left: BoxCursor<'p>,
    right: Table,
    cur: Option<Tuple>,
    ridx: usize,
}

impl<'p> TupleCursor<'p> for ProductCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Tuple>> {
        if let Err(e) = ctx.governor.tick() {
            return Some(Err(e));
        }

        loop {
            if let Some(lt) = &self.cur {
                if self.ridx < self.right.len() {
                    let out = lt.concat(&self.right[self.ridx]);
                    self.ridx += 1;
                    return Some(Ok(out));
                }
                self.cur = None;
            }
            match self.left.next(ctx)? {
                Ok(t) => {
                    self.cur = Some(t);
                    self.ridx = 0;
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }

    fn drain_into(&mut self, ctx: &mut Ctx<'_>, out: &mut Table) -> xqr_xml::Result<()> {
        if let Some(lt) = self.cur.take() {
            ctx.governor
                .charge_tuples((self.right.len() - self.ridx) as u64)?;
            for rt in &self.right[self.ridx..] {
                out.push(lt.concat(rt));
            }
        }
        while let Some(lt) = self.left.next(ctx) {
            let lt = lt?;
            // Bulk charge before the batch is built: an exploding product
            // trips the budget before its output is allocated.
            ctx.governor.charge_tuples(self.right.len() as u64)?;
            out.reserve(self.right.len());
            for rt in &self.right {
                out.push(lt.concat(rt));
            }
        }
        Ok(())
    }

    fn next_batch(
        &mut self,
        ctx: &mut Ctx<'_>,
        out: &mut Table,
        n: usize,
    ) -> xqr_xml::Result<bool> {
        let target = out.len() + n;
        if let Some(lt) = self.cur.take() {
            ctx.governor
                .charge_tuples((self.right.len() - self.ridx) as u64)?;
            for rt in &self.right[self.ridx..] {
                out.push(lt.concat(rt));
            }
            self.ridx = 0;
        }
        // Expand whole outer tuples (may overshoot the target by one
        // right-table expansion), bulk-charging each before building it.
        while out.len() < target {
            let Some(lt) = self.left.next(ctx) else {
                return Ok(false);
            };
            let lt = lt?;
            ctx.governor.charge_tuples(self.right.len() as u64)?;
            out.reserve(self.right.len());
            for rt in &self.right {
                out.push(lt.concat(rt));
            }
        }
        Ok(true)
    }
}

/// The three dependent-map shapes share one cursor; they differ only in
/// how a source tuple combines with its dependent table.
enum DepMode<'p> {
    /// `Map` — yield the dependent tuples as-is.
    Replace,
    /// `MapConcat` — yield `t ++ u` for each dependent tuple `u`.
    Concat,
    /// `OMapConcat` — like `Concat`, but an empty dependent table yields
    /// `t` extended with the true null flag (and matches get false).
    OuterConcat(&'p Field),
}

struct DepCursor<'p> {
    src: BoxCursor<'p>,
    dep: &'p Plan,
    mode: DepMode<'p>,
    /// Source tuple being expanded (`None` in `Replace` mode, which never
    /// combines it with the dependent tuples).
    cur: Option<Tuple>,
    inner: std::vec::IntoIter<Tuple>,
}

impl<'p> DepCursor<'p> {
    fn new(src: BoxCursor<'p>, dep: &'p Plan, mode: DepMode<'p>) -> DepCursor<'p> {
        DepCursor {
            src,
            dep,
            mode,
            cur: None,
            inner: Vec::new().into_iter(),
        }
    }

    /// Pulls the next source tuple and evaluates its dependent table into
    /// `inner`; `None` when the source is exhausted. In `OuterConcat` mode
    /// an empty dependent table immediately yields the null-flagged source
    /// tuple instead.
    fn advance(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Option<Tuple>>> {
        let t = match self.src.next(ctx)? {
            Ok(t) => t,
            Err(e) => return Some(Err(e)),
        };
        // `Replace` never revisits the source tuple, so it moves into
        // the binding without a clone (mirroring the eager `MapOp`).
        let bound = match self.mode {
            DepMode::Replace => InputVal::Tuple(t),
            _ => {
                let input = InputVal::Tuple(t.clone());
                self.cur = Some(t);
                input
            }
        };
        let produced = match eval(self.dep, ctx, Some(&bound)).and_then(|v| v.into_table()) {
            Ok(p) => p,
            Err(e) => return Some(Err(e)),
        };
        if produced.is_empty() {
            if let DepMode::OuterConcat(nf) = &self.mode {
                let t = self.cur.take().unwrap();
                return Some(Ok(Some(t.with_bool((*nf).clone(), true))));
            }
        }
        self.inner = produced.into_iter();
        Some(Ok(None))
    }

    fn combine(&self, u: Tuple) -> Tuple {
        match &self.mode {
            DepMode::Replace => u,
            DepMode::Concat => self.cur.as_ref().unwrap().concat(&u),
            DepMode::OuterConcat(nf) => self
                .cur
                .as_ref()
                .unwrap()
                .concat(&u)
                .with_bool((*nf).clone(), false),
        }
    }
}

impl<'p> TupleCursor<'p> for DepCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Tuple>> {
        if let Err(e) = ctx.governor.tick() {
            return Some(Err(e));
        }

        loop {
            if let Some(u) = self.inner.next() {
                return Some(Ok(self.combine(u)));
            }
            match self.advance(ctx)? {
                Ok(None) => continue,
                Ok(Some(t)) => return Some(Ok(t)),
                Err(e) => return Some(Err(e)),
            }
        }
    }

    fn drain_into(&mut self, ctx: &mut Ctx<'_>, out: &mut Table) -> xqr_xml::Result<()> {
        loop {
            for u in &mut self.inner {
                ctx.governor.tick()?;
                let t = match &self.mode {
                    DepMode::Replace => u,
                    DepMode::Concat => self.cur.as_ref().unwrap().concat(&u),
                    DepMode::OuterConcat(nf) => self
                        .cur
                        .as_ref()
                        .unwrap()
                        .concat(&u)
                        .with_bool((*nf).clone(), false),
                };
                out.push(t);
            }
            match self.advance(ctx) {
                None => return Ok(()),
                Some(Ok(None)) => {}
                Some(Ok(Some(t))) => out.push(t),
                Some(Err(e)) => return Err(e),
            }
        }
    }
}

/// `OMap` — null-flags every tuple; an empty input produces the single
/// all-null tuple.
struct OMapCursor<'p> {
    src: BoxCursor<'p>,
    null_field: &'p Field,
    emitted_any: bool,
    done: bool,
}

impl<'p> TupleCursor<'p> for OMapCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Tuple>> {
        if let Err(e) = ctx.governor.tick() {
            return Some(Err(e));
        }

        if self.done {
            return None;
        }
        match self.src.next(ctx) {
            Some(Ok(t)) => {
                self.emitted_any = true;
                Some(Ok(t.with_bool(self.null_field.clone(), false)))
            }
            Some(Err(e)) => Some(Err(e)),
            None => {
                self.done = true;
                if self.emitted_any {
                    None
                } else {
                    Some(Ok(Tuple::from_fields(vec![(
                        self.null_field.clone(),
                        Sequence::singleton(AtomicValue::Boolean(true)),
                    )])))
                }
            }
        }
    }
}

/// `MapIndex` / `MapIndexStep` — adds the 1-based position field.
struct IndexCursor<'p> {
    src: BoxCursor<'p>,
    field: &'p Field,
    i: i64,
}

impl<'p> TupleCursor<'p> for IndexCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Tuple>> {
        if let Err(e) = ctx.governor.tick() {
            return Some(Err(e));
        }

        match self.src.next(ctx)? {
            Ok(t) => {
                self.i += 1;
                Some(Ok(t.with(self.field.clone(), Sequence::integers([self.i]))))
            }
            Err(e) => Some(Err(e)),
        }
    }

    fn next_batch(
        &mut self,
        ctx: &mut Ctx<'_>,
        out: &mut Table,
        n: usize,
    ) -> xqr_xml::Result<bool> {
        // Pull the source batch through, then annotate in place. A budget
        // trip mid-annotation keeps the rows already annotated (the
        // scalar path would have yielded exactly those) and drops the
        // rest with the error.
        let start = out.len();
        let more = self.src.next_batch(ctx, out, n);
        let mut k = start;
        while k < out.len() {
            if let Err(e) = ctx.governor.tick() {
                out.truncate(k);
                return Err(e);
            }
            self.i += 1;
            out[k] = out[k].with(self.field.clone(), Sequence::integers([self.i]));
            k += 1;
        }
        more
    }
}

/// `MapFromItem` — the items-to-tuples boundary: pulls items from an item
/// cursor (a streaming path step or a replayed sequence), streaming out
/// each item's dependent table.
struct MapFromItemCursor<'p> {
    src: BoxItemCursor<'p>,
    dep: &'p Plan,
    pending: std::vec::IntoIter<Tuple>,
}

impl<'p> TupleCursor<'p> for MapFromItemCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Tuple>> {
        if let Err(e) = ctx.governor.tick() {
            return Some(Err(e));
        }

        loop {
            if let Some(t) = self.pending.next() {
                return Some(Ok(t));
            }
            let item = match self.src.next(ctx)? {
                Ok(i) => i,
                Err(e) => return Some(Err(e)),
            };
            match eval(self.dep, ctx, Some(&InputVal::Item(item))).and_then(|v| v.into_table()) {
                Ok(p) => self.pending = p.into_iter(),
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

// ===== item cursors (streaming TreeJoin) ====================================

/// A pull-based item stream — the item-sequence analogue of [`TupleCursor`],
/// used below the items-to-tuples boundary and by the evaluator's `TreeJoin`
/// arm so multi-step paths flow node-by-node instead of materializing every
/// intermediate step result.
pub(crate) trait ItemCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Item>>;
}

pub(crate) type BoxItemCursor<'p> = Box<dyn ItemCursor<'p> + 'p>;

/// Opens an item cursor over an item-valued plan. A *fusing* path chain
/// (see [`treejoin_fuses`]) streams through the incremental steppers;
/// anything else — including lone steps and pure child/self/attribute
/// chains, where the eager kernels win — evaluates eagerly and replays.
pub(crate) fn open_item_cursor<'p>(
    plan: &'p Plan,
    ctx: &mut Ctx<'_>,
    input: Option<&InputVal>,
) -> xqr_xml::Result<BoxItemCursor<'p>> {
    if treejoin_fuses(plan) {
        open_step_cursor(plan, ctx, input)
    } else {
        let items = eval_items(plan, ctx, input)?;
        Ok(Box::new(SeqItemCursor { items, pos: 0 }))
    }
}

/// Streaming arm of [`open_item_cursor`]: unconditionally streams any
/// streamable step (the fuse decision was made at the chain's entry; inner
/// steps of a qualifying chain must keep streaming so intermediates are
/// never built). Each step of the chain gets its own [`ProfiledItemCursor`]
/// when profiling, so per-step cardinalities are visible (a step's context
/// count is its inner step's row count).
fn open_step_cursor<'p>(
    plan: &'p Plan,
    ctx: &mut Ctx<'_>,
    input: Option<&InputVal>,
) -> xqr_xml::Result<BoxItemCursor<'p>> {
    let stats = match &ctx.profiler {
        Some(p) => p.stats_for(plan),
        None => None,
    };
    let cur = open_step_cursor_raw(plan, ctx, input)?;
    Ok(match stats {
        Some(stats) => {
            stats.record_open();
            Box::new(ProfiledItemCursor { inner: cur, stats })
        }
        None => cur,
    })
}

fn open_step_cursor_raw<'p>(
    plan: &'p Plan,
    ctx: &mut Ctx<'_>,
    input: Option<&InputVal>,
) -> xqr_xml::Result<BoxItemCursor<'p>> {
    if let Op::TreeJoin {
        axis,
        test,
        input: src,
    } = &plan.op
    {
        if axes::streamable_axis(*axis) {
            // `descendant-or-self` over attribute contexts is the one case
            // that can emit out of order (a "late" attribute's id exceeds
            // its element's children); prove it can't happen or fall back.
            let attr_sensitive =
                *axis == Axis::DescendantOrSelf && axes::test_can_match_attributes(*axis, test);
            let src_attr_free = matches!(&src.op, Op::TreeJoin { axis: a, test: t, .. }
                if axes::step_never_yields_attributes(*a, t));
            if treejoin_streams(src) && (!attr_sensitive || src_attr_free) {
                return Ok(Box::new(TreeJoinItemCursor::new(
                    open_step_cursor(src, ctx, input)?,
                    *axis,
                    test,
                )));
            }
            // Materialized source: validate + sort once, then stream.
            let items = eval_items(src, ctx, input)?;
            let ctxs = axes::normalize_contexts(&items)?;
            if !attr_sensitive || ctxs.iter().all(|n| n.kind() != NodeKind::Attribute) {
                return Ok(Box::new(TreeJoinItemCursor::new(
                    Box::new(NodeVecCursor {
                        nodes: ctxs.into_iter(),
                    }),
                    *axis,
                    test,
                )));
            }
            // Rare unsafe case: evaluate the step set-at-a-time, replay.
            let out =
                axes::tree_join_governed(&items, *axis, test, ctx.schema, Some(&ctx.governor))?;
            return Ok(Box::new(SeqItemCursor { items: out, pos: 0 }));
        }
    }
    let items = eval_items(plan, ctx, input)?;
    Ok(Box::new(SeqItemCursor { items, pos: 0 }))
}

/// Replays an already-computed item sequence.
struct SeqItemCursor {
    items: Sequence,
    pos: usize,
}

impl<'p> ItemCursor<'p> for SeqItemCursor {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Item>> {
        if let Err(e) = ctx.governor.tick() {
            return Some(Err(e));
        }
        let item = self.items.get(self.pos)?.clone();
        self.pos += 1;
        Some(Ok(item))
    }
}

/// Replays a normalized (document-ordered, deduplicated) context set.
struct NodeVecCursor {
    nodes: std::vec::IntoIter<xqr_xml::NodeHandle>,
}

impl<'p> ItemCursor<'p> for NodeVecCursor {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Item>> {
        if let Err(e) = ctx.governor.tick() {
            return Some(Err(e));
        }
        self.nodes.next().map(|n| Ok(Item::Node(n)))
    }
}

/// Streaming `TreeJoin`: pulls context nodes from the source cursor and
/// yields step results incrementally through [`axes::StepStream`], charging
/// the governor one tuple per context and per produced node (mirroring the
/// set-at-a-time kernel) so exploding steps trip the budget mid-stream.
struct TreeJoinItemCursor<'p> {
    src: BoxItemCursor<'p>,
    stream: axes::StepStream<'p>,
    src_done: bool,
}

impl<'p> TreeJoinItemCursor<'p> {
    fn new(src: BoxItemCursor<'p>, axis: Axis, test: &'p xqr_xml::NodeTest) -> Self {
        TreeJoinItemCursor {
            src,
            stream: axes::StepStream::new(axis, test),
            src_done: false,
        }
    }
}

impl<'p> ItemCursor<'p> for TreeJoinItemCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Item>> {
        if let Err(e) = ctx.governor.tick() {
            return Some(Err(e));
        }
        loop {
            if let Some(n) = self.stream.pop(ctx.schema) {
                if let Err(e) = ctx.governor.charge_tuples(1) {
                    return Some(Err(e));
                }
                return Some(Ok(Item::Node(n)));
            }
            if self.src_done {
                return None;
            }
            match self.src.next(ctx) {
                None => {
                    self.src_done = true;
                    self.stream.finish();
                }
                Some(Ok(item)) => {
                    let Some(node) = item.as_node() else {
                        return Some(Err(XmlError::new(
                            "XPTY0020",
                            "path step applied to a non-node item",
                        )));
                    };
                    if let Err(e) = ctx.governor.charge_tuples(1) {
                        return Some(Err(e));
                    }
                    self.stream.push_context(node, ctx.schema);
                }
                Some(Err(e)) => return Some(Err(e)),
            }
        }
    }
}

/// `Join` / `LOuterJoin` — probes the prebuilt index with each outer tuple.
struct JoinCursor<'p> {
    left: BoxCursor<'p>,
    right: Table,
    probe: JoinProbe<'p>,
    outer_null: Option<&'p Field>,
    pending: std::vec::IntoIter<Tuple>,
}

impl<'p> TupleCursor<'p> for JoinCursor<'p> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<xqr_xml::Result<Tuple>> {
        if let Err(e) = ctx.governor.tick() {
            return Some(Err(e));
        }

        loop {
            // `pending` holds matched tuples only; the outer-join match
            // flag is applied lazily as each one is yielded.
            if let Some(t) = self.pending.next() {
                return Some(Ok(match self.outer_null {
                    Some(nf) => t.with_bool(nf.clone(), false),
                    None => t,
                }));
            }
            let lt = match self.left.next(ctx)? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            let ms = match self.probe.matches(&lt, &self.right, ctx) {
                Ok(ms) => ms,
                Err(e) => return Some(Err(e)),
            };
            if ms.is_empty() {
                if let Some(nf) = self.outer_null {
                    return Some(Ok(lt.with_bool(nf.clone(), true)));
                }
                continue;
            }
            self.pending = ms.into_iter();
        }
    }

    fn drain_into(&mut self, ctx: &mut Ctx<'_>, out: &mut Table) -> xqr_xml::Result<()> {
        for t in &mut self.pending {
            out.push(match self.outer_null {
                Some(nf) => t.with_bool(nf.clone(), false),
                None => t,
            });
        }
        while let Some(lt) = self.left.next(ctx) {
            let lt = lt?;
            let ms = self.probe.matches(&lt, &self.right, ctx)?;
            ctx.governor.charge_tuples(ms.len().max(1) as u64)?;
            match self.outer_null {
                Some(nf) if ms.is_empty() => out.push(lt.with_bool(nf.clone(), true)),
                Some(nf) => out.extend(ms.into_iter().map(|t| t.with_bool(nf.clone(), false))),
                None => out.extend(ms),
            }
        }
        Ok(())
    }

    fn next_batch(
        &mut self,
        ctx: &mut Ctx<'_>,
        out: &mut Table,
        n: usize,
    ) -> xqr_xml::Result<bool> {
        let target = out.len() + n;
        for t in &mut self.pending {
            out.push(match self.outer_null {
                Some(nf) => t.with_bool(nf.clone(), false),
                None => t,
            });
            if out.len() >= target {
                return Ok(true);
            }
        }
        // Probe whole outer tuples; a probe's match set is pushed intact
        // (the batch may overshoot the target by one set).
        while out.len() < target {
            let Some(lt) = self.left.next(ctx) else {
                return Ok(false);
            };
            let lt = lt?;
            let ms = self.probe.matches(&lt, &self.right, ctx)?;
            ctx.governor.charge_tuples(ms.len().max(1) as u64)?;
            match self.outer_null {
                Some(nf) if ms.is_empty() => out.push(lt.with_bool(nf.clone(), true)),
                Some(nf) => out.extend(ms.into_iter().map(|t| t.with_bool(nf.clone(), false))),
                None => out.extend(ms),
            }
        }
        Ok(true)
    }
}

/// Per-operator pipelining summary for `explain()`: which tuple operators
/// of this plan stream through the cursor layer and which materialize.
pub fn pipeline_report(plan: &Plan) -> String {
    use std::collections::BTreeMap;
    let mut streaming: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut breaking: BTreeMap<&'static str, usize> = BTreeMap::new();
    fn walk(
        p: &Plan,
        streaming: &mut BTreeMap<&'static str, usize>,
        breaking: &mut BTreeMap<&'static str, usize>,
    ) {
        match &p.op {
            // Cond appears on both sides of the boundary; don't count it.
            Op::Cond { .. } => {}
            // Path steps stream when fused into a step chain.
            Op::TreeJoin { .. } if treejoin_fuses(p) => {
                *streaming.entry(p.op.name()).or_default() += 1
            }
            op if streams(op) => *streaming.entry(op.name()).or_default() += 1,
            Op::OrderBy { .. }
            | Op::GroupBy { .. }
            | Op::TupleTable
            | Op::Tuple(_)
            | Op::TupleConcat(..) => *breaking.entry(p.op.name()).or_default() += 1,
            _ => {}
        }
        for (c, _) in p.op.children() {
            walk(c, streaming, breaking);
        }
    }
    walk(plan, &mut streaming, &mut breaking);
    let fmt = |m: &BTreeMap<&'static str, usize>| {
        if m.is_empty() {
            "none".to_string()
        } else {
            m.iter()
                .map(|(n, c)| {
                    if *c == 1 {
                        n.to_string()
                    } else {
                        format!("{n}\u{00d7}{c}")
                    }
                })
                .collect::<Vec<_>>()
                .join(", ")
        }
    };
    format!(
        "pipelined (streaming): {}\nmaterialized (breakers; Join/Product inner side also \
         materializes for the build): {}",
        fmt(&streaming),
        fmt(&breaking)
    )
}

/// Per-operator execution notes for `explain()`, preorder-aligned with the
/// plan (`Op::children()` order) for `pretty::indented_annotated` — the
/// same annotation mechanism `explain_analyze()` uses, so the static and
/// measured renderings share one plan-tree shape instead of ad-hoc
/// appended notes.
pub fn explain_annotations(plan: &Plan, pipelined: bool) -> Vec<Option<String>> {
    fn walk(p: &Plan, pipelined: bool, out: &mut Vec<Option<String>>) {
        let note = if !pipelined {
            match &p.op {
                op if streams(op) && !matches!(op, Op::Cond { .. }) => {
                    Some("materializes".to_string())
                }
                Op::OrderBy { .. } | Op::GroupBy { .. } => Some("materializes".to_string()),
                _ => None,
            }
        } else {
            match &p.op {
                Op::Cond { .. } => None,
                Op::TreeJoin { .. } if treejoin_fuses(p) => {
                    Some("streams (fused step chain)".to_string())
                }
                Op::TreeJoin { .. } => None,
                Op::Join { pred, .. } | Op::LOuterJoin { pred, .. } => {
                    let mut s =
                        "streams probe side; inner side materializes for the build".to_string();
                    if xqr_core::fuse::fusable_comparison(pred).is_some() {
                        s.push_str("; batched comparison kernel candidate");
                    }
                    Some(s)
                }
                Op::Product(..) => {
                    Some("streams probe side; inner side materializes for the build".to_string())
                }
                Op::Select { pred, .. } if xqr_core::fuse::fusable_comparison(pred).is_some() => {
                    Some("streams; batched comparison kernel".to_string())
                }
                op if streams(op) => Some("streams".to_string()),
                Op::OrderBy { .. } | Op::GroupBy { .. } => {
                    Some("materializes (pipeline breaker)".to_string())
                }
                _ => None,
            }
        };
        out.push(note);
        for (c, _) in p.op.children() {
            walk(c, pipelined, out);
        }
    }
    let mut out = Vec::new();
    walk(plan, pipelined, &mut out);
    out
}
