//! Tuples, tables, and operator values.
//!
//! Tuples are immutable records of (field → item sequence); cloning is an
//! `Rc` bump. There is no NULL value — absent fields read as the empty
//! sequence, and the outer operators add boolean flag fields instead
//! (paper, Section 3: "we do not model nulls with a special value").

use std::rc::Rc;

use xqr_core::Field;
use xqr_xml::{Sequence, XmlError};

/// An immutable tuple.
#[derive(Clone, Debug, Default)]
pub struct Tuple(Rc<Vec<(Field, Sequence)>>);

impl Tuple {
    pub fn empty() -> Tuple {
        Tuple(Rc::new(Vec::new()))
    }

    pub fn from_fields(fields: Vec<(Field, Sequence)>) -> Tuple {
        Tuple(Rc::new(fields))
    }

    /// Field-name comparison. The compiler allocates each field name once
    /// (`Compiler::fresh_field`) and every later reference is an `Rc` clone
    /// of it, so in the common case both sides point at the same string
    /// data and the pointer/length check settles it without looking at a
    /// single byte. Length inequality also settles it cheaply; only
    /// distinct equal-length names fall through to a byte compare.
    #[inline]
    fn name_eq(f: &str, field: &str) -> bool {
        if f.len() != field.len() {
            return false;
        }
        std::ptr::eq(f.as_ptr(), field.as_ptr()) || f.as_bytes() == field.as_bytes()
    }

    /// Field access — absent fields are the empty sequence.
    pub fn get(&self, field: &str) -> Sequence {
        self.0
            .iter()
            .find(|(f, _)| Self::name_eq(f, field))
            .map(|(_, s)| s.clone())
            .unwrap_or_default()
    }

    pub fn has(&self, field: &str) -> bool {
        self.0.iter().any(|(f, _)| Self::name_eq(f, field))
    }

    /// Tuple concatenation (`++`): right side wins on (rare) collisions.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        if self.0.is_empty() {
            return other.clone();
        }
        if other.0.is_empty() {
            return self.clone();
        }
        let mut v: Vec<(Field, Sequence)> = Vec::with_capacity(self.0.len() + other.0.len());
        for (f, s) in self.0.iter() {
            if !other.has(f) {
                v.push((f.clone(), s.clone()));
            }
        }
        v.extend(other.0.iter().cloned());
        Tuple(Rc::new(v))
    }

    /// Extends with one more field, replacing an existing one of the same
    /// name. The replace case is rare (fields are compiler-fresh), so the
    /// common path is a straight copy-and-push without the retain scan.
    pub fn with(&self, field: Field, value: Sequence) -> Tuple {
        let mut v: Vec<(Field, Sequence)> = Vec::with_capacity(self.0.len() + 1);
        v.extend(
            self.0
                .iter()
                .filter(|(f, _)| !Self::name_eq(f, &field))
                .cloned(),
        );
        v.push((field, value));
        Tuple(Rc::new(v))
    }

    /// Extends with a boolean flag field (the outer operators' null flags).
    pub fn with_bool(&self, field: Field, flag: bool) -> Tuple {
        self.with(
            field,
            Sequence::singleton(xqr_xml::AtomicValue::Boolean(flag)),
        )
    }

    pub fn fields(&self) -> impl Iterator<Item = (&Field, &Sequence)> {
        self.0.iter().map(|(f, s)| (f, s))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Approximate heap footprint in bytes, charged against the governor's
    /// byte budget when a table is materialized. Items are costed at a
    /// flat per-item rate rather than deep-traversed: the budget is a
    /// tripwire for runaway materialization, not an allocator audit.
    pub fn approx_bytes(&self) -> u64 {
        let mut n = 48u64;
        for (f, s) in self.0.iter() {
            n += 48 + f.len() as u64 + 24 * s.len() as u64;
        }
        n
    }
}

/// An ordered table of tuples.
pub type Table = Vec<Tuple>;

/// A value produced by an operator: an item sequence or a table.
#[derive(Clone, Debug)]
pub enum Value {
    Items(Sequence),
    Table(Table),
}

impl Value {
    pub fn empty_items() -> Value {
        Value::Items(Sequence::empty())
    }

    pub fn into_items(self) -> xqr_xml::Result<Sequence> {
        match self {
            Value::Items(s) => Ok(s),
            Value::Table(_) => Err(XmlError::new(
                "XQRT0001",
                "expected an item sequence, found a tuple table",
            )),
        }
    }

    pub fn into_table(self) -> xqr_xml::Result<Table> {
        match self {
            Value::Table(t) => Ok(t),
            Value::Items(_) => Err(XmlError::new(
                "XQRT0002",
                "expected a tuple table, found an item sequence",
            )),
        }
    }

    /// Rows (tables) or items (sequences) in this value — the "rows
    /// produced" unit of the profiler.
    pub fn row_count(&self) -> u64 {
        match self {
            Value::Items(s) => s.len() as u64,
            Value::Table(t) => t.len() as u64,
        }
    }
}

/// The value bound to `IN` while evaluating a dependent sub-operator.
#[derive(Clone, Debug)]
pub enum InputVal {
    /// A tuple (Select predicates, MapConcat deps, per-item GroupBy op, …).
    Tuple(Tuple),
    /// A single item (MapFromItem deps).
    Item(xqr_xml::Item),
    /// An item sequence (GroupBy per-partition op).
    Items(Sequence),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_fields_are_empty() {
        let t = Tuple::empty();
        assert!(t.get("x").is_empty());
        assert!(!t.has("x"));
    }

    #[test]
    fn concat_and_with() {
        let a = Tuple::from_fields(vec![("x".into(), Sequence::integers([1]))]);
        let b = Tuple::from_fields(vec![("y".into(), Sequence::integers([2]))]);
        let c = a.concat(&b);
        assert_eq!(c.get("x").len(), 1);
        assert_eq!(c.get("y").len(), 1);
        let d = c.with("x".into(), Sequence::integers([7, 8]));
        assert_eq!(d.get("x").len(), 2);
        assert_eq!(d.len(), 2, "with() replaces rather than duplicates");
    }

    #[test]
    fn concat_right_wins() {
        let a = Tuple::from_fields(vec![("x".into(), Sequence::integers([1]))]);
        let b = Tuple::from_fields(vec![("x".into(), Sequence::integers([2]))]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.get("x").get(0).unwrap().as_atomic().unwrap(),
            &xqr_xml::AtomicValue::Integer(2)
        );
    }

    #[test]
    fn value_coercions() {
        assert!(Value::Items(Sequence::empty()).into_table().is_err());
        assert!(Value::Table(vec![]).into_items().is_err());
    }
}
