//! The direct Core interpreter — the paper's **"No algebra"** baseline
//! (Table 3, first row).
//!
//! Reproduces the original Galax evaluation strategy: expressions are
//! evaluated directly off the normalized Core AST; variables live in a
//! QName-keyed dynamic context that is *searched* at each reference (the
//! paper attributes a large part of the algebra's 4× speedup to replacing
//! those "dynamic lookups in the dynamic context by direct compiled memory
//! access"); FLWOR tuple streams are materialized as vectors of
//! environment maps; every nested block re-evaluates per binding
//! (nested-loop semantics throughout, no join or unnesting optimization).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use xqr_frontend::core_ast::{CoreClause, CoreExpr, CoreModule, CoreOrderSpec};
use xqr_types::Schema;
use xqr_xml::axes::tree_join_governed;
use xqr_xml::{AtomicValue, Governor, NodeHandle, QName, Sequence, SequenceBuilder, XmlError};

use crate::compare::{atomize_optional, effective_boolean_value, order_key_compare};
use crate::eval::{construct_attribute, construct_element, construct_text};
use crate::functions::{call_builtin, is_builtin, BuiltinCtx};

/// A persistent environment: a linked list searched front-to-back — the
/// deliberate "dynamic lookup" of the baseline.
#[derive(Clone, Default)]
struct Env(Option<Rc<EnvNode>>);

struct EnvNode {
    name: QName,
    value: Sequence,
    parent: Env,
}

impl Env {
    fn bind(&self, name: QName, value: Sequence) -> Env {
        Env(Some(Rc::new(EnvNode {
            name,
            value,
            parent: self.clone(),
        })))
    }

    fn lookup(&self, name: &QName) -> Option<Sequence> {
        let mut cur = &self.0;
        while let Some(node) = cur {
            if &node.name == name {
                return Some(node.value.clone());
            }
            cur = &node.parent.0;
        }
        None
    }
}

/// Evaluation counters for the "No algebra" baseline: one count per Core
/// expression kind plus one per FLWOR clause kind (`clause:for`, …). The
/// baseline has no plan tree to hang per-operator stats on, so the profile
/// is a flat histogram of what the interpreter actually evaluated.
#[derive(Default)]
pub struct InterpProfile {
    counts: RefCell<BTreeMap<&'static str, u64>>,
}

impl InterpProfile {
    fn bump(&self, key: &'static str) {
        *self.counts.borrow_mut().entry(key).or_insert(0) += 1;
    }

    pub fn counts(&self) -> BTreeMap<String, u64> {
        self.counts
            .borrow()
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }
}

fn expr_kind(e: &CoreExpr) -> &'static str {
    match e {
        CoreExpr::Literal(_) => "Literal",
        CoreExpr::Var(_) => "Var",
        CoreExpr::Seq(_) => "Seq",
        CoreExpr::Empty => "Empty",
        CoreExpr::Flwor { .. } => "Flwor",
        CoreExpr::Quantified { .. } => "Quantified",
        CoreExpr::Typeswitch { .. } => "Typeswitch",
        CoreExpr::If { .. } => "If",
        CoreExpr::Step { .. } => "Step",
        CoreExpr::Call { .. } => "Call",
        CoreExpr::ElementCtor { .. } => "ElementCtor",
        CoreExpr::AttributeCtor { .. } => "AttributeCtor",
        CoreExpr::TextCtor(_) => "TextCtor",
        CoreExpr::CommentCtor(_) => "CommentCtor",
        CoreExpr::PiCtor { .. } => "PiCtor",
        CoreExpr::DocumentCtor(_) => "DocumentCtor",
        CoreExpr::Cast { .. } => "Cast",
        CoreExpr::Castable { .. } => "Castable",
        CoreExpr::TypeAssert { .. } => "TypeAssert",
        CoreExpr::InstanceOf { .. } => "InstanceOf",
        CoreExpr::Validate { .. } => "Validate",
    }
}

struct Interp<'a> {
    module: &'a CoreModule,
    schema: &'a Schema,
    documents: &'a HashMap<String, NodeHandle>,
    globals: HashMap<QName, Sequence>,
    /// Shared resource governor: budgets, deadline/cancellation, and the
    /// single recursion-depth authority (the interpreter used to keep its
    /// own `depth` counter next to the plan evaluator's — they now share
    /// this one).
    governor: Governor,
    /// Optional evaluation counters (EXPLAIN ANALYZE on the baseline).
    profile: Option<Rc<InterpProfile>>,
}

/// Evaluates a normalized Core module directly (no algebra), ungoverned.
pub fn eval_core_module(
    module: &CoreModule,
    schema: &Schema,
    documents: &HashMap<String, NodeHandle>,
    externals: HashMap<QName, Sequence>,
) -> xqr_xml::Result<Sequence> {
    eval_core_module_with(module, schema, documents, externals, Governor::unlimited())
}

/// Evaluates a normalized Core module under a resource governor.
pub fn eval_core_module_with(
    module: &CoreModule,
    schema: &Schema,
    documents: &HashMap<String, NodeHandle>,
    externals: HashMap<QName, Sequence>,
    governor: Governor,
) -> xqr_xml::Result<Sequence> {
    eval_core_module_profiled(module, schema, documents, externals, governor, None)
}

/// Evaluates under a governor with optional evaluation counters.
pub fn eval_core_module_profiled(
    module: &CoreModule,
    schema: &Schema,
    documents: &HashMap<String, NodeHandle>,
    externals: HashMap<QName, Sequence>,
    governor: Governor,
    profile: Option<Rc<InterpProfile>>,
) -> xqr_xml::Result<Sequence> {
    let mut it = Interp {
        module,
        schema,
        documents,
        globals: externals,
        governor,
        profile,
    };
    for g in &module.variables {
        if g.external {
            if let Some(bound) = it.globals.get(&g.name) {
                if let Some(st) = &g.as_type {
                    if !st.matches(bound, it.schema) {
                        return Err(XmlError::new(
                            "XPTY0004",
                            format!(
                                "value bound to external variable ${} does not \
                                 match its declared type {st}",
                                g.name
                            ),
                        ));
                    }
                }
                continue;
            }
            let Some(v) = &g.value else {
                return Err(XmlError::new(
                    "XPDY0002",
                    format!("external variable ${} was not bound", g.name),
                ));
            };
            let evaluated = it.eval(v, &Env::default())?;
            it.globals.insert(g.name.clone(), evaluated);
        } else if let Some(v) = &g.value {
            let evaluated = it.eval(v, &Env::default())?;
            it.globals.insert(g.name.clone(), evaluated);
        }
    }
    it.eval(&module.body, &Env::default())
}

impl<'a> Interp<'a> {
    fn eval(&mut self, e: &CoreExpr, env: &Env) -> xqr_xml::Result<Sequence> {
        if let Some(p) = &self.profile {
            p.bump(expr_kind(e));
        }
        match e {
            CoreExpr::Literal(v) => Ok(Sequence::singleton(v.clone())),
            CoreExpr::Var(q) => env
                .lookup(q)
                .or_else(|| self.globals.get(q).cloned())
                .ok_or_else(|| XmlError::new("XPDY0002", format!("unbound variable ${q}"))),
            CoreExpr::Seq(items) => {
                let mut out = SequenceBuilder::new();
                for i in items {
                    out.push(self.eval(i, env)?);
                }
                Ok(out.finish())
            }
            CoreExpr::Empty => Ok(Sequence::empty()),
            CoreExpr::Flwor { clauses, ret } => {
                let envs = self.clause_stream(clauses, env)?;
                let mut out = SequenceBuilder::new();
                for e2 in envs {
                    self.governor.tick()?;
                    out.push(self.eval(ret, &e2)?);
                }
                Ok(out.finish())
            }
            CoreExpr::Quantified {
                every,
                clauses,
                satisfies,
            } => {
                let envs = self.clause_stream(clauses, env)?;
                for e2 in envs {
                    self.governor.tick()?;
                    let v = self.eval(satisfies, &e2)?;
                    let b = effective_boolean_value(&v)?;
                    if *every && !b {
                        return Ok(Sequence::singleton(AtomicValue::Boolean(false)));
                    }
                    if !*every && b {
                        return Ok(Sequence::singleton(AtomicValue::Boolean(true)));
                    }
                }
                Ok(Sequence::singleton(AtomicValue::Boolean(*every)))
            }
            CoreExpr::Typeswitch {
                var,
                input,
                cases,
                default,
            } => {
                let v = self.eval(input, env)?;
                let env = env.bind(var.clone(), v.clone());
                for (st, body) in cases {
                    if st.matches(&v, self.schema) {
                        return self.eval(body, &env);
                    }
                }
                self.eval(default, &env)
            }
            CoreExpr::If { cond, then, els } => {
                let c = self.eval(cond, env)?;
                if effective_boolean_value(&c)? {
                    self.eval(then, env)
                } else {
                    self.eval(els, env)
                }
            }
            CoreExpr::Step { input, axis, test } => {
                let items = self.eval(input, env)?;
                tree_join_governed(&items, *axis, test, self.schema, Some(&self.governor))
            }
            CoreExpr::Call { name, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env)?);
                }
                self.call(name, argv)
            }
            CoreExpr::ElementCtor { name, content } => {
                let q = self.resolve_name(name, env)?;
                let items = self.eval(content, env)?;
                Ok(Sequence::singleton_item(construct_element(&q, &items)?))
            }
            CoreExpr::AttributeCtor { name, content } => {
                let q = self.resolve_name(name, env)?;
                let items = self.eval(content, env)?;
                Ok(Sequence::singleton_item(construct_attribute(&q, &items)?))
            }
            CoreExpr::TextCtor(c) => {
                let items = self.eval(c, env)?;
                construct_text(&items)
            }
            CoreExpr::CommentCtor(c) => {
                let items = self.eval(c, env)?;
                let mut b = xqr_xml::TreeBuilder::new();
                let s: Vec<String> = items.atomized().iter().map(|a| a.string_value()).collect();
                b.comment(&s.join(" "));
                Ok(Sequence::singleton(b.finish(None).root()))
            }
            CoreExpr::PiCtor { target, content } => {
                let items = self.eval(content, env)?;
                let mut b = xqr_xml::TreeBuilder::new();
                let s: Vec<String> = items.atomized().iter().map(|a| a.string_value()).collect();
                b.pi(target, &s.join(" "));
                Ok(Sequence::singleton(b.finish(None).root()))
            }
            CoreExpr::DocumentCtor(c) => {
                let items = self.eval(c, env)?;
                let mut b = xqr_xml::TreeBuilder::new();
                b.start_document();
                for item in items.iter() {
                    match item {
                        xqr_xml::Item::Node(n) => b.copy_node(n),
                        xqr_xml::Item::Atomic(a) => b.text(&a.string_value()),
                    }
                }
                b.end_document();
                Ok(Sequence::singleton(b.try_finish(None)?.root()))
            }
            CoreExpr::Cast { expr, ty, optional } => {
                let items = self.eval(expr, env)?;
                match atomize_optional(&items)? {
                    Some(a) => Ok(Sequence::singleton(xqr_types::cast_atomic(&a, *ty)?)),
                    None if *optional => Ok(Sequence::empty()),
                    None => Err(XmlError::new("XPTY0004", "cast of an empty sequence")),
                }
            }
            CoreExpr::Castable { expr, ty, optional } => {
                let items = self.eval(expr, env)?;
                let ok = match atomize_optional(&items) {
                    Ok(Some(a)) => xqr_types::cast_atomic(&a, *ty).is_ok(),
                    Ok(None) => *optional,
                    Err(_) => false,
                };
                Ok(Sequence::singleton(AtomicValue::Boolean(ok)))
            }
            CoreExpr::TypeAssert { expr, st } => {
                let items = self.eval(expr, env)?;
                st.assert(&items, self.schema)
            }
            CoreExpr::InstanceOf { expr, st } => {
                let items = self.eval(expr, env)?;
                Ok(Sequence::singleton(AtomicValue::Boolean(
                    st.matches(&items, self.schema),
                )))
            }
            CoreExpr::Validate { mode, expr } => {
                let items = self.eval(expr, env)?;
                xqr_types::validate_sequence(&items, self.schema, *mode)
            }
        }
    }

    /// Materializes the FLWOR tuple stream as environment vectors.
    fn clause_stream(&mut self, clauses: &[CoreClause], env: &Env) -> xqr_xml::Result<Vec<Env>> {
        let mut envs = vec![env.clone()];
        for clause in clauses {
            if let Some(p) = &self.profile {
                p.bump(match clause {
                    CoreClause::For { .. } => "clause:for",
                    CoreClause::Let { .. } => "clause:let",
                    CoreClause::Where(_) => "clause:where",
                    CoreClause::OrderBy(_) => "clause:order-by",
                });
            }
            match clause {
                CoreClause::For {
                    var,
                    at,
                    as_type,
                    expr,
                } => {
                    let mut next = Vec::new();
                    for e2 in &envs {
                        let items = self.eval(expr, e2)?;
                        for (i, item) in items.iter().enumerate() {
                            self.governor.tick()?;
                            let v = Sequence::singleton_item(item.clone());
                            if let Some(st) = as_type {
                                let single = xqr_types::SequenceType::new(
                                    st.item.clone(),
                                    xqr_types::Occurrence::One,
                                );
                                single.assert(&v, self.schema)?;
                            }
                            let mut bound = e2.bind(var.clone(), v);
                            if let Some(at_var) = at {
                                bound =
                                    bound.bind(at_var.clone(), Sequence::integers([i as i64 + 1]));
                            }
                            next.push(bound);
                        }
                    }
                    envs = next;
                }
                CoreClause::Let { var, as_type, expr } => {
                    let mut next = Vec::with_capacity(envs.len());
                    for e2 in &envs {
                        self.governor.tick()?;
                        let mut v = self.eval(expr, e2)?;
                        if let Some(st) = as_type {
                            v = st.assert(&v, self.schema)?;
                        }
                        next.push(e2.bind(var.clone(), v));
                    }
                    envs = next;
                }
                CoreClause::Where(pred) => {
                    let mut next = Vec::with_capacity(envs.len());
                    for e2 in envs {
                        self.governor.tick()?;
                        let v = self.eval(pred, &e2)?;
                        if effective_boolean_value(&v)? {
                            next.push(e2);
                        }
                    }
                    envs = next;
                }
                CoreClause::OrderBy(specs) => {
                    envs = self.order_envs(specs, envs)?;
                }
            }
        }
        Ok(envs)
    }

    fn order_envs(&mut self, specs: &[CoreOrderSpec], envs: Vec<Env>) -> xqr_xml::Result<Vec<Env>> {
        let mut keyed: Vec<(Vec<Sequence>, Env)> = Vec::with_capacity(envs.len());
        for e in envs {
            self.governor.tick()?;
            let mut keys = Vec::with_capacity(specs.len());
            for s in specs {
                keys.push(self.eval(&s.key, &e)?);
            }
            keyed.push((keys, e));
        }
        let mut err = None;
        keyed.sort_by(|a, b| {
            for (i, s) in specs.iter().enumerate() {
                match order_key_compare(&a.0[i], &b.0[i], s.empty_least) {
                    Ok(ord) => {
                        let ord = if s.descending { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    Err(e) => {
                        if err.is_none() {
                            err = Some(e);
                        }
                        return std::cmp::Ordering::Equal;
                    }
                }
            }
            std::cmp::Ordering::Equal
        });
        if let Some(e) = err {
            return Err(e);
        }
        Ok(keyed.into_iter().map(|(_, e)| e).collect())
    }

    fn call(&mut self, name: &QName, argv: Vec<Sequence>) -> xqr_xml::Result<Sequence> {
        let local = name.local_part();
        if is_builtin(local) {
            let bctx = BuiltinCtx {
                documents: Some(self.documents),
            };
            return call_builtin(local, &argv, &bctx);
        }
        let func = self
            .module
            .functions
            .iter()
            .find(|f| &f.name == name)
            .cloned()
            .ok_or_else(|| XmlError::new("XPST0017", format!("unknown function {name}()")))?;
        if func.params.len() != argv.len() {
            return Err(XmlError::new(
                "XPST0017",
                format!("{name}() expects {} arguments", func.params.len()),
            ));
        }
        self.governor.enter_frame()?;
        let mut env = Env::default();
        for ((p, ty), v) in func.params.iter().zip(argv) {
            if let Some(st) = ty {
                if let Err(e) = st.assert(&v, self.schema) {
                    self.governor.exit_frame();
                    return Err(e);
                }
            }
            env = env.bind(p.clone(), v);
        }
        let result = self.eval(&func.body, &env);
        self.governor.exit_frame();
        let v = result?;
        if let Some(st) = &func.return_type {
            st.assert(&v, self.schema)?;
        }
        Ok(v)
    }

    fn resolve_name(
        &mut self,
        name: &Result<QName, Box<CoreExpr>>,
        env: &Env,
    ) -> xqr_xml::Result<QName> {
        match name {
            Ok(q) => Ok(q.clone()),
            Err(e) => {
                let items = self.eval(e, env)?;
                let a = atomize_optional(&items)?
                    .ok_or_else(|| XmlError::new("XPTY0004", "empty constructor name"))?;
                match a {
                    AtomicValue::QName(q) => Ok(q),
                    other => {
                        let s = other.string_value();
                        Ok(match s.split_once(':') {
                            Some((p, l)) => QName::full(Some(p), None, l),
                            None => QName::local(&s),
                        })
                    }
                }
            }
        }
    }
}

/// Small extension trait: singleton from an `Item`.
trait SeqExt {
    fn singleton_item(item: xqr_xml::Item) -> Sequence;
}

impl SeqExt for Sequence {
    fn singleton_item(item: xqr_xml::Item) -> Sequence {
        Sequence::from_vec(vec![item])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_shadowing_and_lookup_order() {
        let env = Env::default()
            .bind(QName::local("x"), Sequence::integers([1]))
            .bind(QName::local("y"), Sequence::integers([2]))
            .bind(QName::local("x"), Sequence::integers([3]));
        assert_eq!(
            env.lookup(&QName::local("x")),
            Some(Sequence::integers([3]))
        );
        assert_eq!(
            env.lookup(&QName::local("y")),
            Some(Sequence::integers([2]))
        );
        assert_eq!(env.lookup(&QName::local("z")), None);
    }

    #[test]
    fn env_is_persistent() {
        let base = Env::default().bind(QName::local("x"), Sequence::integers([1]));
        let extended = base.bind(QName::local("x"), Sequence::integers([2]));
        // The original binding is untouched by the extension.
        assert_eq!(
            base.lookup(&QName::local("x")),
            Some(Sequence::integers([1]))
        );
        assert_eq!(
            extended.lookup(&QName::local("x")),
            Some(Sequence::integers([2]))
        );
    }

    #[test]
    fn module_evaluation_with_globals() {
        let module = xqr_frontend::frontend(
            "declare variable $base := 10; \
             declare variable $derived := $base * 2; \
             $base + $derived",
        )
        .unwrap();
        let schema = Schema::new();
        let docs = HashMap::new();
        let out = eval_core_module(&module, &schema, &docs, HashMap::new()).unwrap();
        assert_eq!(out, Sequence::integers([30]));
    }

    #[test]
    fn missing_external_is_an_error() {
        let module =
            xqr_frontend::frontend("declare variable $missing external; $missing").unwrap();
        let schema = Schema::new();
        let docs = HashMap::new();
        let err = eval_core_module(&module, &schema, &docs, HashMap::new()).unwrap_err();
        assert_eq!(err.code, "XPDY0002");
    }
}
