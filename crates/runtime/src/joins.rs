//! The XQuery join algorithms of Section 6.
//!
//! Three physical implementations of `Join`/`LOuterJoin`, all
//! **order-preserving** (output follows the left/outer input's order; for
//! a given outer tuple, matches follow the inner input's order — recovered
//! via the sequence-order counter stored with each hash entry, Fig. 6):
//!
//! * **nested loop** — evaluates the full predicate per tuple pair;
//! * **hash join** — Fig. 6's `materialize` / `allMatches` /
//!   `equalityJoin`: the inner input is materialized into a hash table
//!   keyed on `(value, type)` pairs produced by `promoteToSimpleTypes`, so
//!   each side is independent of the other's *values*; the original types
//!   are checked against Table 2 (`fs:convert-operand`) at probe time, and
//!   per-probe matches are sorted by inner order and de-duplicated to
//!   preserve the existential semantics of the predicate;
//! * **sort (B-tree index) join** — the same structure over an ordered map
//!   (the paper's "variants of standard index-hash and B-tree index
//!   joins").
//!
//! Predicate analysis splits a conjunction (nested `Cond{…}(…)` chains
//! produced by normalizing `and`) into one hashable `fs:general-eq`
//! equality whose sides depend on disjoint inputs, plus residual conjuncts
//! evaluated per candidate pair.

use std::collections::{BTreeMap, HashMap};

use xqr_core::algebra::{Field, Op, Plan};
use xqr_core::fields::{output_fields, used_input_fields};
use xqr_types::convert::{comparable_types, promote_to_simple_types};
use xqr_xml::{AtomicType, AtomicValue};

use crate::compare::effective_boolean_value;
use crate::context::{Ctx, JoinAlgorithm};
use crate::eval::eval_dep_items;
use crate::value::{InputVal, Table, Tuple};

/// Executes a join with the configured algorithm. `outer_null` is the
/// LOuterJoin flag field; `None` means an inner join. `stats` (when
/// profiling) receives the build-phase time — the probe-index construction
/// over the already-materialized inner side.
#[allow(clippy::too_many_arguments)]
pub fn execute_join(
    pred: &Plan,
    left_plan: &Plan,
    right_plan: &Plan,
    left: &Table,
    right: &Table,
    outer_null: Option<&Field>,
    ctx: &mut Ctx<'_>,
    stats: Option<&crate::profile::OpStats>,
) -> xqr_xml::Result<Table> {
    // Past the governor's soft watermark, a splittable predicate goes to
    // the Grace-style partitioned join instead of building the whole inner
    // index in memory (nested-loop predicates have no key to partition on
    // and keep the in-memory path — their per-pair loop holds only the
    // output).
    if ctx.governor.should_spill() && !matches!(ctx.join_algorithm, JoinAlgorithm::NestedLoop) {
        if let Some(split) = analyze_predicate(pred, left_plan, right_plan) {
            return crate::spill::grace_join(&split, left, right, outer_null, ctx, stats);
        }
    }
    let t0 = stats.map(|_| std::time::Instant::now());
    let probe = JoinProbe::build(pred, left_plan, right_plan, right, ctx)?;
    if let (Some(s), Some(t0)) = (stats, t0) {
        s.add_build_nanos(t0.elapsed().as_nanos() as u64);
    }
    let mut out = Table::with_capacity(left.len());
    for lt in left {
        ctx.governor.tick()?;
        let ms = probe.matches(lt, right, ctx)?;
        ctx.governor.charge_tuples(ms.len() as u64)?;
        if ms.is_empty() {
            if let Some(nf) = outer_null {
                out.push(lt.with_bool(nf.clone(), true));
            }
        } else if let Some(nf) = outer_null {
            out.extend(ms.into_iter().map(|t| t.with_bool(nf.clone(), false)));
        } else {
            out.extend(ms);
        }
    }
    Ok(out)
}

/// The probe side of a join, built once over the (materialized) inner
/// input. Separating build from probe lets the pipelined executor stream
/// the outer input through `matches` one tuple at a time — the inner table
/// is the only materialization point — while `execute_join` keeps the
/// all-at-once behaviour on top of the same code.
pub(crate) enum JoinProbe<'p> {
    /// Full-predicate nested loop (also the fallback when the predicate
    /// has no separable equality). When batched execution is on and the
    /// predicate is a fusable comparison whose operands separate by side,
    /// `kernel` memoizes the inner operand per inner row and compares
    /// through a type-specialized lane instead of re-evaluating the
    /// predicate per pair.
    NestedLoop {
        pred: &'p Plan,
        kernel: Option<crate::batch::NlJoinKernel<'p>>,
    },
    /// Fig. 6 hash/B-tree index over the inner side's key values. The
    /// charge is the build side's live-byte accounting: it releases back
    /// to the governor when the probe (and with it the index) drops.
    Indexed {
        split: SplitPredicate<'p>,
        index: KeyIndex,
        _charge: xqr_xml::ByteCharge,
    },
}

impl<'p> JoinProbe<'p> {
    pub(crate) fn build(
        pred: &'p Plan,
        left_plan: &'p Plan,
        right_plan: &'p Plan,
        right: &Table,
        ctx: &mut Ctx<'_>,
    ) -> xqr_xml::Result<JoinProbe<'p>> {
        match ctx.join_algorithm {
            JoinAlgorithm::NestedLoop => Ok(Self::nested_loop(pred, left_plan, right_plan, ctx)),
            algo => match analyze_predicate(pred, left_plan, right_plan) {
                Some(split) => {
                    let (index, charge) =
                        materialize(right, split.right_key, ctx, algo, split.specialized)?;
                    Ok(JoinProbe::Indexed {
                        split,
                        index,
                        _charge: charge,
                    })
                }
                None => Ok(Self::nested_loop(pred, left_plan, right_plan, ctx)),
            },
        }
    }

    /// The nested-loop probe, with the batched kernel attached when the
    /// pipelined+batched strategy is active and the predicate fuses. The
    /// kernel's counters land on the predicate's own plan node, so
    /// `EXPLAIN ANALYZE` shows batches/fused/fallback on the `Call` line.
    fn nested_loop(
        pred: &'p Plan,
        left_plan: &Plan,
        right_plan: &Plan,
        ctx: &Ctx<'_>,
    ) -> JoinProbe<'p> {
        let kernel = if ctx.batched && ctx.pipelined {
            let stats = ctx.profiler.as_ref().and_then(|p| p.stats_for(pred));
            crate::batch::NlJoinKernel::build(pred, left_plan, right_plan, stats)
        } else {
            None
        };
        JoinProbe::NestedLoop { pred, kernel }
    }

    /// The joined output tuples for one outer tuple, in inner order; empty
    /// means unmatched (the caller decides between dropping the tuple and
    /// outer-join null flagging).
    pub(crate) fn matches(
        &self,
        lt: &Tuple,
        right: &Table,
        ctx: &mut Ctx<'_>,
    ) -> xqr_xml::Result<Vec<Tuple>> {
        let mut out = Vec::new();
        match self {
            JoinProbe::NestedLoop { pred, kernel } => {
                if let Some(k) = kernel {
                    return k.matches(lt, right, ctx);
                }
                // A constant-true predicate (cross products from unnesting)
                // skips per-pair evaluation entirely.
                if matches!(&pred.op, Op::Scalar(AtomicValue::Boolean(true))) {
                    // Bulk-charge the cross product before building it.
                    ctx.governor.charge_tuples(right.len() as u64)?;
                    out.reserve(right.len());
                    for rt in right {
                        out.push(lt.concat(rt));
                    }
                    return Ok(out);
                }
                for rt in right {
                    ctx.governor.tick()?;
                    // Move the joined tuple into the binding and back out:
                    // no per-pair clone.
                    let input = InputVal::Tuple(lt.concat(rt));
                    let v = eval_dep_items(pred, ctx, &input)?;
                    let InputVal::Tuple(joined) = input else {
                        unreachable!()
                    };
                    if effective_boolean_value(&v)? {
                        out.push(joined);
                    }
                }
            }
            JoinProbe::Indexed { split, index, .. } => {
                let ms = all_matches(index, lt, split.left_key, ctx, split.specialized)?;
                'candidates: for idx in ms {
                    let input = InputVal::Tuple(lt.concat(&right[idx]));
                    for residual in &split.residual {
                        let v = eval_dep_items(residual, ctx, &input)?;
                        if !effective_boolean_value(&v)? {
                            continue 'candidates;
                        }
                    }
                    let InputVal::Tuple(joined) = input else {
                        unreachable!()
                    };
                    out.push(joined);
                }
            }
        }
        Ok(out)
    }
}

/// One hashable equality plus residual conjuncts.
pub struct SplitPredicate<'p> {
    pub left_key: &'p Plan,
    pub right_key: &'p Plan,
    pub residual: Vec<&'p Plan>,
    /// When static analysis proves both key expressions produce the same
    /// comparable type, keys are stored/probed at that single type instead
    /// of enumerating every promotion — the specialization the paper
    /// suggests ("if we can infer statically that both operands are
    /// integers, we can build a key directly on the integer value").
    pub specialized: Option<AtomicType>,
}

/// Conservative static type inference for join-key expressions.
pub fn static_key_type(p: &Plan) -> Option<AtomicType> {
    match &p.op {
        Op::Scalar(v) => Some(v.type_of()),
        Op::Cast { ty, .. } => Some(*ty),
        Op::Call { name, args } => match name.local_part() {
            "count" | "string-length" | "op:to" => Some(AtomicType::Integer),
            "string" | "concat" | "string-join" | "substring" | "upper-case" | "lower-case"
            | "normalize-space" | "translate" | "fs:avt" => Some(AtomicType::String),
            "number" => Some(AtomicType::Double),
            "fs:numeric-add" | "fs:numeric-subtract" | "fs:numeric-multiply" => {
                let a = static_key_type(args.first()?)?;
                let b = static_key_type(args.get(1)?)?;
                xqr_types::widest_numeric(a, b)
            }
            _ => None,
        },
        _ => None,
    }
}

/// The single comparison type when both static key types are known and
/// comparable without the untyped rules.
fn specialized_type(l: &Plan, r: &Plan) -> Option<AtomicType> {
    let lt = static_key_type(l)?;
    let rt = static_key_type(r)?;
    if lt == AtomicType::UntypedAtomic || rt == AtomicType::UntypedAtomic {
        return None;
    }
    comparable_types(lt, rt)
}

/// Flattens the `Cond{then}(cond)` conjunction chains that `and` lowers to.
fn conjuncts<'p>(pred: &'p Plan, out: &mut Vec<&'p Plan>) {
    if let Op::Cond { cond, then, els } = &pred.op {
        if matches!(&els.op, Op::Scalar(AtomicValue::Boolean(false))) {
            conjuncts(cond, out);
            conjuncts(then, out);
            return;
        }
    }
    out.push(pred);
}

/// Finds an equality conjunct whose operands read disjoint input sides.
pub fn analyze_predicate<'p>(
    pred: &'p Plan,
    left_plan: &Plan,
    right_plan: &Plan,
) -> Option<SplitPredicate<'p>> {
    let left_fields = output_fields(left_plan)?;
    let right_fields = output_fields(right_plan)?;
    let mut cs = Vec::new();
    conjuncts(pred, &mut cs);
    let mut chosen: Option<(usize, &Plan, &Plan)> = None;
    for (i, c) in cs.iter().enumerate() {
        let Op::Call { name, args } = &c.op else {
            continue;
        };
        if name.local_part() != "fs:general-eq" || args.len() != 2 {
            continue;
        }
        let ua = used_input_fields(&args[0]);
        let ub = used_input_fields(&args[1]);
        if ua.is_empty() || ub.is_empty() {
            continue;
        }
        if ua.is_subset(&left_fields) && ub.is_subset(&right_fields) {
            chosen = Some((i, &args[0], &args[1]));
            break;
        }
        if ua.is_subset(&right_fields) && ub.is_subset(&left_fields) {
            chosen = Some((i, &args[1], &args[0]));
            break;
        }
    }
    let (idx, left_key, right_key) = chosen?;
    let residual = cs
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != idx)
        .map(|(_, c)| c)
        .collect();
    let specialized = specialized_type(left_key, right_key);
    Some(SplitPredicate {
        left_key,
        right_key,
        residual,
        specialized,
    })
}

// ===== Fig. 6: typed, order-preserving hash join ============================

/// A canonical, hashable, orderable join-key value. The `(value, type)`
/// pairs of Fig. 6 become `(AtomicType, KeyVal)` — two values collide only
/// when they are equal *at that type*.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub(crate) enum KeyVal {
    Bool(bool),
    Int(i64),
    Dec(i128),
    /// IEEE bits with -0.0 normalized; NaN keys are skipped entirely.
    Bits(u64),
    Str(String),
    Millis(i64),
    Months(i64, i64),
    Greg(i64),
    Bytes(Vec<u8>),
    Name(String),
}

pub(crate) fn key_of(v: &AtomicValue) -> Option<(AtomicType, KeyVal)> {
    use AtomicValue as V;
    let kv = match v {
        V::Boolean(b) => KeyVal::Bool(*b),
        V::Integer(i) => KeyVal::Int(*i),
        V::Decimal(d) => KeyVal::Dec(d.units()),
        V::Double(d) => {
            if d.is_nan() {
                return None;
            }
            KeyVal::Bits(if *d == 0.0 {
                0.0f64.to_bits()
            } else {
                d.to_bits()
            })
        }
        V::Float(f) => {
            if f.is_nan() {
                return None;
            }
            let d = *f as f64;
            KeyVal::Bits(if d == 0.0 {
                0.0f64.to_bits()
            } else {
                d.to_bits()
            })
        }
        V::String(s) | V::UntypedAtomic(s) | V::AnyUri(s) => KeyVal::Str(s.to_string()),
        V::Date(d) => KeyVal::Millis(d.epoch_millis()),
        V::Time(t) => KeyVal::Millis(t.normalized_millis()),
        V::DateTime(dt) => KeyVal::Millis(dt.epoch_millis()),
        V::Duration(d) => KeyVal::Months(d.months, d.millis),
        V::GYear(y) => KeyVal::Greg(*y as i64),
        V::GYearMonth(y, m) => KeyVal::Greg(*y as i64 * 16 + *m as i64),
        V::GMonth(m) => KeyVal::Greg(*m as i64),
        V::GMonthDay(m, d) => KeyVal::Greg(*m as i64 * 64 + *d as i64),
        V::GDay(d) => KeyVal::Greg(*d as i64),
        V::HexBinary(b) | V::Base64Binary(b) => KeyVal::Bytes(b.to_vec()),
        V::QName(q) => KeyVal::Name(q.to_string()),
    };
    Some((v.type_of(), kv))
}

/// One hash-table entry: the original (pre-conversion) value and type, the
/// inner tuple's index/sequence order (Fig. 6 stores "the original value
/// and type …, the corresponding tuple value, and the ordinal position").
#[derive(Clone, Debug)]
pub(crate) struct Entry {
    pub(crate) orig_value: AtomicValue,
    pub(crate) orig_type: AtomicType,
    pub(crate) tuple_idx: usize,
}

/// The two index structures share this small interface.
pub(crate) enum KeyIndex {
    Hash(HashMap<(AtomicType, KeyVal), Vec<Entry>>),
    BTree(BTreeMap<(AtomicType, KeyVal), Vec<Entry>>),
}

impl KeyIndex {
    pub(crate) fn new(algo: JoinAlgorithm) -> KeyIndex {
        match algo {
            JoinAlgorithm::Sort => KeyIndex::BTree(BTreeMap::new()),
            _ => KeyIndex::Hash(HashMap::new()),
        }
    }

    pub(crate) fn put(&mut self, key: (AtomicType, KeyVal), e: Entry) {
        match self {
            KeyIndex::Hash(m) => m.entry(key).or_default().push(e),
            KeyIndex::BTree(m) => m.entry(key).or_default().push(e),
        }
    }

    fn get(&self, key: &(AtomicType, KeyVal)) -> &[Entry] {
        match self {
            KeyIndex::Hash(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
            KeyIndex::BTree(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
        }
    }
}

/// Fig. 6 `materialize`: builds the `(value, type)`-keyed index over the
/// inner input.
fn materialize(
    inner: &Table,
    key_expr: &Plan,
    ctx: &mut Ctx<'_>,
    algo: JoinAlgorithm,
    specialized: Option<AtomicType>,
) -> xqr_xml::Result<(KeyIndex, xqr_xml::ByteCharge)> {
    let mut index = KeyIndex::new(algo);
    let mut charge = xqr_xml::ByteCharge::new(&ctx.governor);
    for (tuple_idx, tup) in inner.iter().enumerate() {
        ctx.governor.tick()?;
        xqr_xml::failpoint::check("join::build_charge")?;
        if ctx.governor.has_byte_budget() {
            // The index retains roughly one entry per key value per tuple;
            // the charge releases when the probe index drops.
            charge.add(tup.approx_bytes())?;
        }
        let key_vals = eval_dep_items(key_expr, ctx, &InputVal::Tuple(tup.clone()))?.atomized();
        for key in key_vals {
            for promoted in promoted_keys(&key, specialized) {
                if let Some(k) = key_of(&promoted) {
                    index.put(
                        k,
                        Entry {
                            orig_value: key.clone(),
                            orig_type: key.type_of(),
                            tuple_idx,
                        },
                    );
                }
            }
        }
    }
    Ok((index, charge))
}

/// The `(value, type)` pairs for one key: the full `promoteToSimpleTypes`
/// enumeration, or — when the join is statically specialized — the single
/// promoted value at the comparison type (values that cannot promote there
/// cannot match and store nothing).
pub(crate) fn promoted_keys(
    key: &AtomicValue,
    specialized: Option<AtomicType>,
) -> Vec<AtomicValue> {
    match specialized {
        None => promote_to_simple_types(key),
        Some(t) => {
            if key.type_of() == t {
                vec![key.clone()]
            } else if key.type_of().is_numeric() && t.is_numeric() {
                xqr_types::promote_numeric(key, t)
                    .map(|v| vec![v])
                    .unwrap_or_default()
            } else if t == AtomicType::String {
                vec![AtomicValue::string(key.string_value())]
            } else {
                // Static prediction missed (dynamic value of another type):
                // fall back to the full enumeration for this value.
                promote_to_simple_types(key)
            }
        }
    }
}

/// Fig. 6 `allMatches`: probes the index with one outer tuple's key values,
/// checks the original types against Table 2, and returns inner tuple
/// indices sorted by the inner sequence order with duplicates removed.
pub(crate) fn all_matches(
    index: &KeyIndex,
    tup: &Tuple,
    key_expr: &Plan,
    ctx: &mut Ctx<'_>,
    specialized: Option<AtomicType>,
) -> xqr_xml::Result<Vec<usize>> {
    let key_vals = eval_dep_items(key_expr, ctx, &InputVal::Tuple(tup.clone()))?.atomized();
    let mut matches: Vec<usize> = Vec::new();
    for key in key_vals {
        for promoted in promoted_keys(&key, specialized) {
            if let Some(k) = key_of(&promoted) {
                for entry in index.get(&k) {
                    // Line 25: is (type1, typeof(key)) in Table 2 — i.e. are
                    // the ORIGINAL types actually comparable? Then recheck
                    // op:equal on the original values: promoted entries can
                    // collide lossily (e.g. two distinct decimals rounding
                    // to the same float).
                    if comparable_types(entry.orig_type, key.type_of()).is_some()
                        && crate::compare::value_compare(
                            crate::compare::CmpOp::Eq,
                            &entry.orig_value,
                            &key,
                        )
                        .unwrap_or(false)
                    {
                        matches.push(entry.tuple_idx);
                    }
                }
            }
        }
    }
    // Sort on original sequence order and remove duplicate tuples.
    matches.sort_unstable();
    matches.dedup();
    Ok(matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xml::QName;

    fn eq_pred(l: &str, r: &str) -> Plan {
        Plan::call("fs:general-eq", vec![Plan::in_field(l), Plan::in_field(r)])
    }

    fn table_plan(field: &str) -> Plan {
        Plan::new(Op::MapFromItem {
            dep: Plan::boxed(Op::Tuple(vec![(field.into(), Plan::input())])),
            input: Plan::boxed(Op::Var(QName::local("x"))),
        })
    }

    #[test]
    fn conjunct_flattening() {
        // and-chains become Cond{b}(a) with else=false.
        let a = eq_pred("l", "r");
        let b = eq_pred("l2", "r2");
        let pred = Plan::new(Op::Cond {
            cond: Box::new(a),
            then: Box::new(b),
            els: Plan::boxed(Op::Scalar(AtomicValue::Boolean(false))),
        });
        let mut cs = Vec::new();
        conjuncts(&pred, &mut cs);
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn predicate_analysis_splits_sides() {
        let pred = eq_pred("r", "l"); // deliberately swapped
        let lp = table_plan("l");
        let rp = table_plan("r");
        let split = analyze_predicate(&pred, &lp, &rp).expect("splittable");
        assert_eq!(
            used_input_fields(split.left_key)
                .iter()
                .next()
                .map(|f| &**f),
            Some("l")
        );
        assert_eq!(
            used_input_fields(split.right_key)
                .iter()
                .next()
                .map(|f| &**f),
            Some("r")
        );
        assert!(split.residual.is_empty());
    }

    #[test]
    fn predicate_analysis_rejects_cross_side_operands() {
        // l + r on one side: not separable.
        let pred = Plan::call(
            "fs:general-eq",
            vec![
                Plan::call(
                    "fs:numeric-add",
                    vec![Plan::in_field("l"), Plan::in_field("r")],
                ),
                Plan::in_field("r"),
            ],
        );
        assert!(analyze_predicate(&pred, &table_plan("l"), &table_plan("r")).is_none());
    }

    #[test]
    fn key_of_merges_zero_signs_and_rejects_nan() {
        let a = key_of(&AtomicValue::Double(0.0)).unwrap();
        let b = key_of(&AtomicValue::Double(-0.0)).unwrap();
        assert_eq!(a, b);
        assert!(key_of(&AtomicValue::Double(f64::NAN)).is_none());
    }

    #[test]
    fn promoted_keys_collide_across_numeric_types() {
        // integer 5 and decimal 5.0 must share their Decimal/Double entries.
        let i5: Vec<_> = promote_to_simple_types(&AtomicValue::Integer(5))
            .iter()
            .filter_map(key_of)
            .collect();
        let d5: Vec<_> =
            promote_to_simple_types(&AtomicValue::Decimal(xqr_xml::Decimal::from_i64(5)))
                .iter()
                .filter_map(key_of)
                .collect();
        assert!(i5.iter().any(|k| d5.contains(k)));
    }
}

#[cfg(test)]
mod specialization_tests {
    use super::*;
    use xqr_xml::QName;

    #[test]
    fn static_types_inferred() {
        assert_eq!(
            static_key_type(&Plan::scalar(AtomicValue::Integer(1))),
            Some(AtomicType::Integer)
        );
        assert_eq!(
            static_key_type(&Plan::call("count", vec![Plan::input()])),
            Some(AtomicType::Integer)
        );
        assert_eq!(
            static_key_type(&Plan::new(Op::Cast {
                ty: AtomicType::Date,
                optional: false,
                input: Plan::boxed(Op::Input),
            })),
            Some(AtomicType::Date)
        );
        assert_eq!(static_key_type(&Plan::in_field("x")), None);
        assert_eq!(
            static_key_type(&Plan::new(Op::Var(QName::local("v")))),
            None
        );
    }

    #[test]
    fn specialized_keys_are_single_entry() {
        // Integer key under integer specialization: one entry, not four.
        assert_eq!(
            promoted_keys(&AtomicValue::Integer(5), Some(AtomicType::Integer)).len(),
            1
        );
        assert_eq!(promoted_keys(&AtomicValue::Integer(5), None).len(), 4);
        // Cross-numeric specialization promotes to the comparison type.
        let ks = promoted_keys(&AtomicValue::Integer(5), Some(AtomicType::Double));
        assert_eq!(ks, vec![AtomicValue::Double(5.0)]);
        // Dynamic value off the static prediction falls back safely.
        let ks = promoted_keys(&AtomicValue::untyped("x"), Some(AtomicType::Date));
        assert_eq!(ks.len(), 1, "full enumeration fallback: {ks:?}");
    }
}
