//! Out-of-core (spilling) operator variants and the spill-file substrate.
//!
//! When the governor's soft watermark flips a run into spill mode (see
//! `xqr_xml::limits`), the three memory-bound operators switch to the
//! variants in this module:
//!
//! * **Grace-style partitioned hash join** ([`grace_join`]) — the build
//!   (inner) side is scattered into hash partitions on disk by its
//!   `(value, type)` join keys; each partition is loaded, indexed, and
//!   probed independently, and a partition that still exceeds the working
//!   budget is recursively repartitioned with a depth-salted hash (capped
//!   at [`MAX_DEPTH`]). Matches are collected as `(outer, inner)` index
//!   pairs and re-emitted in the outer order with per-outer matches in
//!   inner order — exactly the order semantics of `joins::execute_join`.
//! * **Partitioned group-by** ([`GroupSpill`]) — per-item results are
//!   extracted *before* spilling, then `(key, representative, items)`
//!   frames are routed to partition files by key hash; equal keys land in
//!   one file in arrival order, so the per-partition merge reproduces the
//!   in-memory operator's representative-is-first-tuple and
//!   items-in-input-order semantics, and a final key sort restores the
//!   global output order.
//! * **External merge sort** ([`external_sort`]) — bounded sorted runs are
//!   spilled and k-way merged ([`MERGE_FANIN`] at a time, multi-pass when
//!   needed), with ties broken by run index so the sort stays stable.
//!
//! ## Spill files
//!
//! A [`SpillFile`] is a temp file of length-prefixed, CRC-checked frames
//! under a per-query [`SpillManager`] directory
//! (`<parent>/xqr-spill-<pid>-<n>`; parent from `Limits::with_spill_dir`,
//! then `XQR_SPILL_DIR`, then the system temp dir). Files delete
//! themselves on drop and the manager removes the whole directory on drop
//! — the manager lives in the `Ctx`, which the engine drops on every exit
//! path including `catch_unwind`, so cancelled and panicking queries leak
//! nothing. Every write charges the governor's disk budget (`XQRG0006` on
//! exhaustion).
//!
//! Nodes spill *by reference*: an `Item::Node` frame stores a document
//! slot in the file's pin table (which keeps the `Rc<Document>` alive)
//! plus the node id — consistent with the governor's flat per-item byte
//! estimate, and lossless because the arena store never moves nodes.
//!
//! ## Transient-failure handling
//!
//! Every I/O call goes through [`retry_io`], a thin adapter over the
//! shared `xqr_xml::retry` policy: 3 attempts with capped jittered
//! backoff whose sleeps are trimmed to the governor's remaining
//! deadline, a failpoint evaluation per attempt
//! (`spill::open`, `spill::write`, `spill::read`), and `XQRG0005` when
//! the attempts are exhausted. The engine treats `XQRG0005` as a signal
//! to retry the query once with spilling disabled (the PR 2 fallback
//! path), so a broken disk degrades to the strict in-memory budget
//! instead of failing the query outright.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::Instant;

use xqr_core::algebra::{Field, OrderSpecPlan, Plan};
use xqr_xml::failpoint;
use xqr_xml::limits::ERR_SPILL_IO;
use xqr_xml::{
    AtomicType, AtomicValue, ByteCharge, Date, DateTime, Decimal, Document, Governor, Item,
    NodeHandle, NodeId, QName, Sequence, Time, XmlError,
};

use crate::compare::{effective_boolean_value, order_key_compare};
use crate::context::Ctx;
use crate::eval::eval_dep_items;
use crate::joins::{key_of, promoted_keys, Entry, KeyIndex, KeyVal, SplitPredicate};
use crate::profile::OpStats;
use crate::value::{InputVal, Table, Tuple};

/// Hash-partition fan-out per level (join build side, group-by keys).
pub const FANOUT: usize = 8;
/// Maximum recursive repartition depth for skewed join keys; a partition
/// that is still over budget at this depth is processed in memory (the
/// byte budget is advisory in spill mode).
pub const MAX_DEPTH: usize = 4;
/// Sorted runs merged per pass in the external sort.
pub const MERGE_FANIN: usize = 8;

/// In-memory working-set budget for one partition or sort run: a quarter
/// of the byte budget (at least 64 KiB), or 1 MiB when no byte budget is
/// configured (forced spill mode).
fn working_budget(gov: &Governor) -> u64 {
    match gov.max_bytes() {
        Some(b) => (b / 4).max(64 * 1024),
        None => 1 << 20,
    }
}

/// Retries a spill I/O operation through the shared transient-retry
/// policy (`xqr_xml::retry`): 3 attempts, capped jittered backoff with
/// governor-deadline-aware sleeps, a failpoint evaluation per attempt (an
/// injected `XQRFP01` counts as a transient failure and consumes an
/// attempt). Retries are counted into the process metrics; exhaustion
/// surfaces as `XQRG0005`. The closure receives the attempt index so it
/// can rewind to a known offset after a partial write.
pub(crate) fn retry_io<T>(
    site: &str,
    gov: &Governor,
    f: impl FnMut(u32) -> std::io::Result<T>,
) -> xqr_xml::Result<T> {
    xqr_xml::retry::retry_transient(site, gov, &xqr_xml::RetryPolicy::default(), f).map_err(|e| {
        e.into_xml_error(|attempts, last| {
            XmlError::new(
                ERR_SPILL_IO,
                format!("spill I/O failed after {attempts} attempts at {site}: {last}"),
            )
        })
    })
}

// ===== Spill directory and files ===========================================

/// Per-query scoped spill directory. Created lazily on first spill (see
/// `Ctx::spill_manager`); removed recursively on drop, which the engine
/// reaches on success, error, cancellation, and unwinding alike.
pub struct SpillManager {
    dir: PathBuf,
    seq: Cell<u64>,
}

impl SpillManager {
    pub(crate) fn create(gov: &Governor) -> xqr_xml::Result<Rc<SpillManager>> {
        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let parent = gov
            .spill_dir()
            .cloned()
            .or_else(|| std::env::var_os("XQR_SPILL_DIR").map(PathBuf::from))
            .unwrap_or_else(std::env::temp_dir);
        let n = DIR_SEQ.fetch_add(1, AtomicOrdering::Relaxed);
        let dir = parent.join(format!("xqr-spill-{}-{n}", std::process::id()));
        retry_io("spill::open", gov, |_| std::fs::create_dir_all(&dir))?;
        Ok(Rc::new(SpillManager {
            dir,
            seq: Cell::new(0),
        }))
    }

    /// The scoped directory (tests assert it disappears).
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    pub(crate) fn new_file(self: &Rc<Self>, gov: &Governor) -> xqr_xml::Result<SpillFile> {
        let n = self.seq.get();
        self.seq.set(n + 1);
        let path = self.dir.join(format!("part-{n}.spill"));
        let f = retry_io("spill::open", gov, |_| File::create(&path))?;
        Ok(SpillFile {
            _mgr: self.clone(),
            gov: gov.clone(),
            path,
            writer: Some(BufWriter::new(f)),
            reader: None,
            disk_bytes: 0,
            read_pos: 0,
            frames: 0,
            pins: Pins::default(),
        })
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Documents referenced by spilled nodes, pinned for the file's lifetime
/// so a decoded `NodeHandle` points into the same arena.
#[derive(Default)]
struct Pins {
    docs: Vec<Rc<Document>>,
    slots: HashMap<usize, u32>,
}

impl Pins {
    fn slot(&mut self, doc: &Rc<Document>) -> u32 {
        let key = Rc::as_ptr(doc) as usize;
        *self.slots.entry(key).or_insert_with(|| {
            self.docs.push(doc.clone());
            (self.docs.len() - 1) as u32
        })
    }

    fn doc(&self, slot: u32) -> xqr_xml::Result<&Rc<Document>> {
        self.docs
            .get(slot as usize)
            .ok_or_else(|| corrupt("unknown document slot"))
    }
}

fn corrupt(what: &str) -> XmlError {
    XmlError::new(ERR_SPILL_IO, format!("corrupt spill frame: {what}"))
}

/// One temp-file-backed sequence of frames: `[len:u32][crc32:u32][payload]`,
/// written sequentially through a buffer, then re-opened for sequential
/// reads. Deletes its file and releases its disk-budget charge on drop.
pub(crate) struct SpillFile {
    _mgr: Rc<SpillManager>,
    gov: Governor,
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    reader: Option<BufReader<File>>,
    /// Header + payload bytes written == the disk budget charged.
    disk_bytes: u64,
    read_pos: u64,
    frames: u64,
    pins: Pins,
}

impl SpillFile {
    /// Total bytes written (partition-size check for recursive repartition).
    fn bytes(&self) -> u64 {
        self.disk_bytes
    }

    fn frames(&self) -> u64 {
        self.frames
    }

    fn write_frame(&mut self, payload: &[u8]) -> xqr_xml::Result<()> {
        let frame_len = payload.len() as u64 + 8;
        // Charge the disk budget before touching the disk; the charge is
        // released wholesale when the file drops.
        self.gov.charge_spill_bytes(frame_len)?;
        let start = self.disk_bytes;
        self.disk_bytes += frame_len;
        let mut head = [0u8; 8];
        head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        head[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        let writer = self.writer.as_mut().expect("write after start_read");
        retry_io("spill::write", &self.gov, |attempt| {
            if attempt > 0 {
                // A failed attempt may have written part of the frame;
                // rewind to the frame start so the retry is idempotent.
                writer.seek(SeekFrom::Start(start))?;
            }
            writer.write_all(&head)?;
            writer.write_all(payload)
        })?;
        self.frames += 1;
        Ok(())
    }

    /// Flushes pending writes and switches the file into read mode.
    fn start_read(&mut self) -> xqr_xml::Result<()> {
        if let Some(mut w) = self.writer.take() {
            retry_io("spill::write", &self.gov, |_| w.flush())?;
        }
        let f = retry_io("spill::open", &self.gov, |_| File::open(&self.path))?;
        self.reader = Some(BufReader::new(f));
        self.read_pos = 0;
        Ok(())
    }

    /// The next frame's payload, or `None` at end of file. The CRC is
    /// verified after a successful read; a mismatch is not retried (the
    /// bytes on disk are wrong, not the transfer).
    fn read_frame(&mut self) -> xqr_xml::Result<Option<Vec<u8>>> {
        let start = self.read_pos;
        let reader = self.reader.as_mut().expect("read before start_read");
        let frame = retry_io("spill::read", &self.gov, |attempt| {
            if attempt > 0 {
                reader.seek(SeekFrom::Start(start))?;
            }
            let mut head = [0u8; 8];
            match reader.read_exact(&mut head) {
                Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
                r => r?,
            }
            let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(head[4..].try_into().unwrap());
            let mut payload = vec![0u8; len];
            reader.read_exact(&mut payload)?;
            Ok(Some((crc, payload)))
        })?;
        let Some((crc, payload)) = frame else {
            return Ok(None);
        };
        if crc32(&payload) != crc {
            return Err(corrupt("checksum mismatch"));
        }
        self.read_pos += payload.len() as u64 + 8;
        Ok(Some(payload))
    }

    // -- typed frames ------------------------------------------------------

    /// Join build-side frame: `(global tuple index, tuple)`.
    fn write_join_frame(
        &mut self,
        buf: &mut Vec<u8>,
        idx: u64,
        tup: &Tuple,
    ) -> xqr_xml::Result<()> {
        buf.clear();
        enc_u64(buf, idx);
        enc_tuple(buf, &mut self.pins, tup);
        self.write_frame(buf)
    }

    fn read_join_frame(&mut self) -> xqr_xml::Result<Option<(u64, Tuple)>> {
        let Some(payload) = self.read_frame()? else {
            return Ok(None);
        };
        let mut d = Dec::new(&payload);
        let idx = d.u64()?;
        let tup = dec_tuple(&mut d, &self.pins)?;
        Ok(Some((idx, tup)))
    }

    /// Group-by frame: `(key vector, representative tuple, items)`.
    fn write_group_frame(
        &mut self,
        buf: &mut Vec<u8>,
        key: &[i64],
        rep: &Tuple,
        items: &[Item],
    ) -> xqr_xml::Result<()> {
        buf.clear();
        enc_u32(buf, key.len() as u32);
        for k in key {
            enc_i64(buf, *k);
        }
        enc_tuple(buf, &mut self.pins, rep);
        enc_u32(buf, items.len() as u32);
        for it in items {
            enc_item(buf, &mut self.pins, it);
        }
        self.write_frame(buf)
    }

    #[allow(clippy::type_complexity)]
    fn read_group_frame(&mut self) -> xqr_xml::Result<Option<(Vec<i64>, Tuple, Vec<Item>)>> {
        let Some(payload) = self.read_frame()? else {
            return Ok(None);
        };
        let mut d = Dec::new(&payload);
        let klen = d.u32()? as usize;
        let mut key = Vec::with_capacity(klen);
        for _ in 0..klen {
            key.push(d.i64()?);
        }
        let rep = dec_tuple(&mut d, &self.pins)?;
        let ilen = d.u32()? as usize;
        let mut items = Vec::with_capacity(ilen);
        for _ in 0..ilen {
            items.push(dec_item(&mut d, &self.pins)?);
        }
        Ok(Some((key, rep, items)))
    }

    /// Sort-run frame: `(order keys, tuple)`.
    fn write_sort_frame(
        &mut self,
        buf: &mut Vec<u8>,
        keys: &[Sequence],
        tup: &Tuple,
    ) -> xqr_xml::Result<()> {
        buf.clear();
        enc_u32(buf, keys.len() as u32);
        for k in keys {
            enc_seq(buf, &mut self.pins, k);
        }
        enc_tuple(buf, &mut self.pins, tup);
        self.write_frame(buf)
    }

    fn read_sort_frame(&mut self) -> xqr_xml::Result<Option<(Vec<Sequence>, Tuple)>> {
        let Some(payload) = self.read_frame()? else {
            return Ok(None);
        };
        let mut d = Dec::new(&payload);
        let klen = d.u32()? as usize;
        let mut keys = Vec::with_capacity(klen);
        for _ in 0..klen {
            keys.push(dec_seq(&mut d, &self.pins)?);
        }
        let tup = dec_tuple(&mut d, &self.pins)?;
        Ok(Some((keys, tup)))
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        self.writer.take();
        self.reader.take();
        let _ = std::fs::remove_file(&self.path);
        self.gov.release_spill_bytes(self.disk_bytes);
    }
}

// ===== Frame codec =========================================================
//
// Length-prefixed little-endian binary. The encoding is exact (no float
// formatting, decimals as i128 fixed-point units), so a decoded value is
// `==` to the original — the differential suite relies on spilled and
// in-memory plans producing byte-identical serialized results.

fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn enc_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn enc_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn enc_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn enc_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn enc_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn enc_i128(buf: &mut Vec<u8>, v: i128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn enc_str(buf: &mut Vec<u8>, s: &str) {
    enc_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn enc_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => enc_u8(buf, 0),
        Some(s) => {
            enc_u8(buf, 1);
            enc_str(buf, s);
        }
    }
}

fn enc_opt_i32(buf: &mut Vec<u8>, v: Option<i32>) {
    match v {
        None => enc_u8(buf, 0),
        Some(v) => {
            enc_u8(buf, 1);
            enc_i32(buf, v);
        }
    }
}

fn enc_date(buf: &mut Vec<u8>, d: &Date) {
    enc_i32(buf, d.year);
    enc_u8(buf, d.month);
    enc_u8(buf, d.day);
    enc_opt_i32(buf, d.tz_minutes);
}

fn enc_atomic(buf: &mut Vec<u8>, v: &AtomicValue) {
    use AtomicValue as V;
    match v {
        V::String(s) => {
            enc_u8(buf, 0);
            enc_str(buf, s);
        }
        V::Boolean(b) => {
            enc_u8(buf, 1);
            enc_u8(buf, *b as u8);
        }
        V::Decimal(d) => {
            enc_u8(buf, 2);
            enc_i128(buf, d.units());
        }
        V::Integer(i) => {
            enc_u8(buf, 3);
            enc_i64(buf, *i);
        }
        V::Double(d) => {
            enc_u8(buf, 4);
            enc_u64(buf, d.to_bits());
        }
        V::Float(f) => {
            enc_u8(buf, 5);
            enc_u32(buf, f.to_bits());
        }
        V::UntypedAtomic(s) => {
            enc_u8(buf, 6);
            enc_str(buf, s);
        }
        V::AnyUri(s) => {
            enc_u8(buf, 7);
            enc_str(buf, s);
        }
        V::QName(q) => {
            enc_u8(buf, 8);
            enc_opt_str(buf, q.prefix());
            enc_opt_str(buf, q.uri());
            enc_str(buf, q.local_part());
        }
        V::Date(d) => {
            enc_u8(buf, 9);
            enc_date(buf, d);
        }
        V::Time(t) => {
            enc_u8(buf, 10);
            enc_u32(buf, t.millis);
            enc_opt_i32(buf, t.tz_minutes);
        }
        V::DateTime(dt) => {
            enc_u8(buf, 11);
            enc_date(buf, &dt.date);
            enc_u32(buf, dt.millis);
        }
        V::Duration(d) => {
            enc_u8(buf, 12);
            enc_i64(buf, d.months);
            enc_i64(buf, d.millis);
        }
        V::GYear(y) => {
            enc_u8(buf, 13);
            enc_i32(buf, *y);
        }
        V::GYearMonth(y, m) => {
            enc_u8(buf, 14);
            enc_i32(buf, *y);
            enc_u8(buf, *m);
        }
        V::GMonth(m) => {
            enc_u8(buf, 15);
            enc_u8(buf, *m);
        }
        V::GMonthDay(m, d) => {
            enc_u8(buf, 16);
            enc_u8(buf, *m);
            enc_u8(buf, *d);
        }
        V::GDay(d) => {
            enc_u8(buf, 17);
            enc_u8(buf, *d);
        }
        V::HexBinary(b) => {
            enc_u8(buf, 18);
            enc_u32(buf, b.len() as u32);
            buf.extend_from_slice(b);
        }
        V::Base64Binary(b) => {
            enc_u8(buf, 19);
            enc_u32(buf, b.len() as u32);
            buf.extend_from_slice(b);
        }
    }
}

fn enc_item(buf: &mut Vec<u8>, pins: &mut Pins, item: &Item) {
    match item {
        Item::Atomic(v) => {
            enc_u8(buf, 0);
            enc_atomic(buf, v);
        }
        Item::Node(h) => {
            enc_u8(buf, 1);
            enc_u32(buf, pins.slot(&h.doc));
            enc_u32(buf, h.id.0);
        }
    }
}

fn enc_seq(buf: &mut Vec<u8>, pins: &mut Pins, s: &Sequence) {
    enc_u32(buf, s.len() as u32);
    for it in s.iter() {
        enc_item(buf, pins, it);
    }
}

fn enc_tuple(buf: &mut Vec<u8>, pins: &mut Pins, t: &Tuple) {
    enc_u32(buf, t.len() as u32);
    for (f, s) in t.fields() {
        enc_str(buf, f);
        enc_seq(buf, pins, s);
    }
}

/// Bounds-checked decode cursor over one frame payload.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> xqr_xml::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(corrupt("truncated payload"));
        };
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> xqr_xml::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> xqr_xml::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> xqr_xml::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> xqr_xml::Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> xqr_xml::Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i128(&mut self) -> xqr_xml::Result<i128> {
        Ok(i128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn str(&mut self) -> xqr_xml::Result<String> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_string)
            .map_err(|_| corrupt("invalid utf-8"))
    }

    fn opt_str(&mut self) -> xqr_xml::Result<Option<String>> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.str()?),
        })
    }

    fn opt_i32(&mut self) -> xqr_xml::Result<Option<i32>> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.i32()?),
        })
    }

    fn date(&mut self) -> xqr_xml::Result<Date> {
        Ok(Date {
            year: self.i32()?,
            month: self.u8()?,
            day: self.u8()?,
            tz_minutes: self.opt_i32()?,
        })
    }
}

fn dec_atomic(d: &mut Dec<'_>) -> xqr_xml::Result<AtomicValue> {
    use AtomicValue as V;
    Ok(match d.u8()? {
        0 => V::String(d.str()?.into()),
        1 => V::Boolean(d.u8()? != 0),
        2 => V::Decimal(Decimal::from_units(d.i128()?)),
        3 => V::Integer(d.i64()?),
        4 => V::Double(f64::from_bits(d.u64()?)),
        5 => V::Float(f32::from_bits(d.u32()?)),
        6 => V::UntypedAtomic(d.str()?.into()),
        7 => V::AnyUri(d.str()?.into()),
        8 => {
            let prefix = d.opt_str()?;
            let uri = d.opt_str()?;
            let local = d.str()?;
            V::QName(QName::full(prefix.as_deref(), uri.as_deref(), &local))
        }
        9 => V::Date(d.date()?),
        10 => V::Time(Time {
            millis: d.u32()?,
            tz_minutes: d.opt_i32()?,
        }),
        11 => V::DateTime(DateTime {
            date: d.date()?,
            millis: d.u32()?,
        }),
        12 => V::Duration(xqr_xml::Duration {
            months: d.i64()?,
            millis: d.i64()?,
        }),
        13 => V::GYear(d.i32()?),
        14 => V::GYearMonth(d.i32()?, d.u8()?),
        15 => V::GMonth(d.u8()?),
        16 => V::GMonthDay(d.u8()?, d.u8()?),
        17 => V::GDay(d.u8()?),
        18 => {
            let n = d.u32()? as usize;
            V::HexBinary(d.take(n)?.to_vec().into())
        }
        19 => {
            let n = d.u32()? as usize;
            V::Base64Binary(d.take(n)?.to_vec().into())
        }
        _ => return Err(corrupt("unknown atomic tag")),
    })
}

fn dec_item(d: &mut Dec<'_>, pins: &Pins) -> xqr_xml::Result<Item> {
    Ok(match d.u8()? {
        0 => Item::Atomic(dec_atomic(d)?),
        1 => {
            let slot = d.u32()?;
            let id = d.u32()?;
            Item::Node(NodeHandle {
                doc: pins.doc(slot)?.clone(),
                id: NodeId(id),
            })
        }
        _ => return Err(corrupt("unknown item tag")),
    })
}

fn dec_seq(d: &mut Dec<'_>, pins: &Pins) -> xqr_xml::Result<Sequence> {
    let n = d.u32()? as usize;
    let mut items = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        items.push(dec_item(d, pins)?);
    }
    Ok(Sequence::from_vec(items))
}

fn dec_tuple(d: &mut Dec<'_>, pins: &Pins) -> xqr_xml::Result<Tuple> {
    let n = d.u32()? as usize;
    let mut fields = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let name = d.str()?;
        let seq = dec_seq(d, pins)?;
        fields.push((Field::from(name.as_str()), seq));
    }
    Ok(Tuple::from_fields(fields))
}

// ===== Grace-style partitioned hash join ===================================

/// Per-operator spill observability, flushed into `OpStats` at the end.
#[derive(Default)]
struct Tally {
    bytes: u64,
    partitions: u64,
    merge_passes: u64,
}

impl Tally {
    fn flush(&self, stats: Option<&OpStats>) {
        if let Some(s) = stats {
            s.add_spilled_bytes(self.bytes);
            s.add_spill_partitions(self.partitions);
            s.add_spill_merge_passes(self.merge_passes);
        }
    }
}

/// The hash partition of a canonical key at a recursion depth (the depth
/// salts the hash so a repartition actually redistributes).
fn key_partition(key: &(AtomicType, KeyVal), depth: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (depth as u64).hash(&mut h);
    key.hash(&mut h);
    (h.finish() % FANOUT as u64) as usize
}

/// Does this key's partition path match the ancestor partitions? A tuple
/// file at path `[p0, p1]` holds tuples that had at least one key hashing
/// to `p0` at depth 0 and `p1` at depth 1; only such keys are indexed or
/// scattered there — the key's matches live in that key's own subtree.
fn on_path(key: &(AtomicType, KeyVal), path: &[usize]) -> bool {
    path.iter()
        .enumerate()
        .all(|(d, &p)| key_partition(key, d) == p)
}

/// The distinct canonical `(type, value)` keys one tuple exposes through a
/// join-key expression (every promotion of every atomized item).
fn join_keys(
    tup: &Tuple,
    key_expr: &Plan,
    specialized: Option<AtomicType>,
    ctx: &mut Ctx<'_>,
) -> xqr_xml::Result<Vec<(AtomicType, KeyVal)>> {
    let vals = eval_dep_items(key_expr, ctx, &InputVal::Tuple(tup.clone()))?.atomized();
    let mut keys = Vec::new();
    for v in vals {
        for p in promoted_keys(&v, specialized) {
            if let Some(k) = key_of(&p) {
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
        }
    }
    Ok(keys)
}

/// Scatters one build-side tuple into the partition files its on-path keys
/// hash to (one frame per distinct target).
#[allow(clippy::too_many_arguments)]
fn scatter_inner(
    mgr: &Rc<SpillManager>,
    files: &mut [Option<SpillFile>],
    idx: u64,
    tup: &Tuple,
    keys: &[(AtomicType, KeyVal)],
    path: &[usize],
    ctx: &Ctx<'_>,
    buf: &mut Vec<u8>,
) -> xqr_xml::Result<()> {
    let mut targets = [false; FANOUT];
    for k in keys.iter().filter(|k| on_path(k, path)) {
        targets[key_partition(k, path.len())] = true;
    }
    for (p, hit) in targets.iter().enumerate() {
        if !*hit {
            continue;
        }
        if files[p].is_none() {
            files[p] = Some(mgr.new_file(&ctx.governor)?);
        }
        files[p].as_mut().unwrap().write_join_frame(buf, idx, tup)?;
    }
    Ok(())
}

/// Assigns outer tuple indices to the partitions their on-path keys hash
/// to at depth `path.len()` (an outer tuple probes every partition one of
/// its keys belongs to).
fn assign_outers(
    outers: &[u64],
    left: &Table,
    split: &SplitPredicate<'_>,
    path: &[usize],
    ctx: &mut Ctx<'_>,
) -> xqr_xml::Result<Vec<Vec<u64>>> {
    let mut lists: Vec<Vec<u64>> = (0..FANOUT).map(|_| Vec::new()).collect();
    for &o in outers {
        ctx.governor.tick()?;
        let keys = join_keys(&left[o as usize], split.left_key, split.specialized, ctx)?;
        let mut targets = [false; FANOUT];
        for k in keys.iter().filter(|k| on_path(k, path)) {
            targets[key_partition(k, path.len())] = true;
        }
        for (p, hit) in targets.iter().enumerate() {
            if *hit {
                lists[p].push(o);
            }
        }
    }
    Ok(lists)
}

/// Out-of-core `Join`/`LOuterJoin` with the exact output order and
/// `(value, type)` key semantics of `joins::execute_join` over an indexed
/// probe. The caller has already split the predicate; predicates with no
/// separable equality stay on the in-memory nested loop (there is no key
/// to partition on).
pub(crate) fn grace_join(
    split: &SplitPredicate<'_>,
    left: &Table,
    right: &Table,
    outer_null: Option<&Field>,
    ctx: &mut Ctx<'_>,
    stats: Option<&OpStats>,
) -> xqr_xml::Result<Table> {
    let t0 = stats.map(|_| Instant::now());
    let mgr = ctx.spill_manager()?;
    let mut tally = Tally::default();

    // Scatter the build side into depth-0 partitions.
    let mut files: Vec<Option<SpillFile>> = (0..FANOUT).map(|_| None).collect();
    let mut buf = Vec::new();
    for (idx, tup) in right.iter().enumerate() {
        ctx.governor.tick()?;
        let keys = join_keys(tup, split.right_key, split.specialized, ctx)?;
        scatter_inner(&mgr, &mut files, idx as u64, tup, &keys, &[], ctx, &mut buf)?;
    }
    if let (Some(s), Some(t0)) = (stats, t0) {
        s.add_build_nanos(t0.elapsed().as_nanos() as u64);
    }

    // Assign outer tuples to the partitions their keys probe.
    let all_outers: Vec<u64> = (0..left.len() as u64).collect();
    let outer_lists = assign_outers(&all_outers, left, split, &[], ctx)?;

    // Probe partition-at-a-time, recursing on oversized partitions.
    let mut pairs: Vec<(u64, u64, Tuple)> = Vec::new();
    for (p, file) in files.iter_mut().enumerate() {
        let Some(file) = file.take() else { continue };
        probe_partition(
            file,
            &outer_lists[p],
            vec![p],
            split,
            left,
            &mgr,
            ctx,
            &mut pairs,
            &mut tally,
        )?;
    }

    // Merge the per-partition matches back into the global order: outer
    // order first, then inner order per outer — and drop the duplicates a
    // multi-key tuple produces across partitions (the in-memory
    // `allMatches` dedups per probe; here the probes were split).
    pairs.sort_by_key(|a| (a.0, a.1));
    pairs.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    let mut out = Table::with_capacity(pairs.len());
    let mut pi = 0usize;
    for o in 0..left.len() as u64 {
        let start = pi;
        while pi < pairs.len() && pairs[pi].0 == o {
            pi += 1;
        }
        if start == pi {
            if let Some(nf) = outer_null {
                out.push(left[o as usize].with_bool(nf.clone(), true));
            }
        } else {
            for pair in &mut pairs[start..pi] {
                let t = std::mem::take(&mut pair.2);
                out.push(match outer_null {
                    Some(nf) => t.with_bool(nf.clone(), false),
                    None => t,
                });
            }
        }
    }
    tally.flush(stats);
    Ok(out)
}

/// Loads one build-side partition, indexes it, and probes its outer
/// tuples — or, when the partition exceeds the working budget and the
/// depth cap allows, streams it into depth-salted sub-partitions and
/// recurses without ever holding it in memory.
#[allow(clippy::too_many_arguments)]
fn probe_partition(
    mut file: SpillFile,
    outers: &[u64],
    path: Vec<usize>,
    split: &SplitPredicate<'_>,
    left: &Table,
    mgr: &Rc<SpillManager>,
    ctx: &mut Ctx<'_>,
    pairs: &mut Vec<(u64, u64, Tuple)>,
    tally: &mut Tally,
) -> xqr_xml::Result<()> {
    tally.bytes += file.bytes();
    tally.partitions += 1;
    // `frames > 1`: a single oversized tuple can't shrink by repartition.
    if file.bytes() > working_budget(&ctx.governor) && path.len() < MAX_DEPTH && file.frames() > 1 {
        file.start_read()?;
        let mut sub: Vec<Option<SpillFile>> = (0..FANOUT).map(|_| None).collect();
        let mut buf = Vec::new();
        while let Some((idx, tup)) = file.read_join_frame()? {
            ctx.governor.tick()?;
            let keys = join_keys(&tup, split.right_key, split.specialized, ctx)?;
            scatter_inner(mgr, &mut sub, idx, &tup, &keys, &path, ctx, &mut buf)?;
        }
        drop(file); // delete the parent partition before descending
        let outer_sub = assign_outers(outers, left, split, &path, ctx)?;
        for (p, f) in sub.iter_mut().enumerate() {
            let Some(f) = f.take() else { continue };
            let mut sub_path = path.clone();
            sub_path.push(p);
            probe_partition(
                f,
                &outer_sub[p],
                sub_path,
                split,
                left,
                mgr,
                ctx,
                pairs,
                tally,
            )?;
        }
        return Ok(());
    }

    // Load + index this partition; the charge drops with the partition.
    let mut charge = ByteCharge::new(&ctx.governor);
    file.start_read()?;
    let mut by_idx: HashMap<u64, Tuple> = HashMap::new();
    let mut index = KeyIndex::new(ctx.join_algorithm);
    while let Some((idx, tup)) = file.read_join_frame()? {
        ctx.governor.tick()?;
        charge.add(tup.approx_bytes())?;
        let vals = eval_dep_items(split.right_key, ctx, &InputVal::Tuple(tup.clone()))?.atomized();
        for key in vals {
            for promoted in promoted_keys(&key, split.specialized) {
                if let Some(k) = key_of(&promoted) {
                    if on_path(&k, &path) {
                        index.put(
                            k,
                            Entry {
                                orig_value: key.clone(),
                                orig_type: key.type_of(),
                                tuple_idx: idx as usize,
                            },
                        );
                    }
                }
            }
        }
        by_idx.insert(idx, tup);
    }
    drop(file);

    for &o in outers {
        ctx.governor.tick()?;
        let lt = &left[o as usize];
        let ms = crate::joins::all_matches(&index, lt, split.left_key, ctx, split.specialized)?;
        ctx.governor.charge_tuples(ms.len() as u64)?;
        'candidates: for gi in ms {
            let rt = &by_idx[&(gi as u64)];
            let input = InputVal::Tuple(lt.concat(rt));
            for residual in &split.residual {
                let v = eval_dep_items(residual, ctx, &input)?;
                if !effective_boolean_value(&v)? {
                    continue 'candidates;
                }
            }
            let InputVal::Tuple(joined) = input else {
                unreachable!()
            };
            pairs.push((o, gi as u64, joined));
        }
    }
    Ok(())
}

// ===== Partitioned group-by ================================================

/// The spilling half of `GroupBy`: `(key, representative, items)` frames
/// routed to partition files by key hash. Per-item evaluation happens
/// *before* a frame is written (so the dependent plan always sees live
/// tuples), and the per-partition aggregate runs at [`GroupSpill::finish`]
/// over each merged partition. The streaming group-by migrates into this
/// when the governor flips mid-stream — closed partitions are re-fed
/// through [`GroupSpill::add`].
pub(crate) struct GroupSpill {
    mgr: Rc<SpillManager>,
    gov: Governor,
    files: Vec<Option<SpillFile>>,
    buf: Vec<u8>,
}

impl GroupSpill {
    pub(crate) fn new(ctx: &mut Ctx<'_>) -> xqr_xml::Result<GroupSpill> {
        Ok(GroupSpill {
            mgr: ctx.spill_manager()?,
            gov: ctx.governor.clone(),
            files: (0..FANOUT).map(|_| None).collect(),
            buf: Vec::new(),
        })
    }

    fn key_hash(key: &[i64]) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % FANOUT as u64) as usize
    }

    /// Spills one (possibly partial) partition's contribution. Equal keys
    /// always land in the same file, in arrival order.
    pub(crate) fn add(&mut self, key: &[i64], rep: &Tuple, items: &[Item]) -> xqr_xml::Result<()> {
        if let Err(e) = failpoint::check("groupby::flush") {
            // An injected flush failure is a spill I/O failure: it must
            // take the XQRG0005 path so the engine's retry-without-spill
            // fallback can engage.
            if e.code == failpoint::ERR_INJECTED {
                return Err(XmlError::new(ERR_SPILL_IO, e.message));
            }
            return Err(e);
        }
        let p = Self::key_hash(key);
        if self.files[p].is_none() {
            self.files[p] = Some(self.mgr.new_file(&self.gov)?);
        }
        self.files[p]
            .as_mut()
            .unwrap()
            .write_group_frame(&mut self.buf, key, rep, items)
    }

    /// Merges every partition and applies the per-partition aggregate;
    /// output partitions are globally key-sorted, matching
    /// `execute_group_by` exactly.
    pub(crate) fn finish(
        mut self,
        agg: &Field,
        per_partition: &Plan,
        ctx: &mut Ctx<'_>,
        stats: Option<&OpStats>,
    ) -> xqr_xml::Result<Table> {
        let mut tally = Tally::default();
        let mut results: Vec<(Vec<i64>, Tuple)> = Vec::new();
        for slot in self.files.iter_mut() {
            let Some(mut file) = slot.take() else {
                continue;
            };
            tally.bytes += file.bytes();
            tally.partitions += 1;
            file.start_read()?;
            let mut charge = ByteCharge::new(&ctx.governor);
            let mut parts: Vec<(Vec<i64>, Tuple, Vec<Item>)> = Vec::new();
            let mut by_key: HashMap<Vec<i64>, usize> = HashMap::new();
            while let Some((key, rep, items)) = file.read_group_frame()? {
                ctx.governor.tick()?;
                charge.add(rep.approx_bytes() + 24 * items.len() as u64)?;
                match by_key.get(&key) {
                    Some(&i) => parts[i].2.extend(items),
                    None => {
                        by_key.insert(key.clone(), parts.len());
                        parts.push((key, rep, items));
                    }
                }
            }
            drop(file);
            for (key, rep, items) in parts {
                let agg_value = eval_dep_items(
                    per_partition,
                    ctx,
                    &InputVal::Items(Sequence::from_vec(items)),
                )?;
                results.push((key, rep.with(agg.clone(), agg_value)));
            }
        }
        // Equal keys can never straddle partition files, so this sort
        // both orders the output and implies partition uniqueness.
        results.sort_by(|a, b| a.0.cmp(&b.0));
        if let Some(s) = stats {
            s.add_partitions(results.len() as u64);
        }
        tally.flush(stats);
        Ok(results.into_iter().map(|(_, t)| t).collect())
    }
}

/// Out-of-core `GroupBy` over a materialized input: the spilling
/// counterpart of `groupby::execute_group_by`, with per-item evaluation in
/// arrival order (like the streaming variant) and identical output tables.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spill_group_by(
    agg: &Field,
    index_fields: &[Field],
    null_fields: &[Field],
    per_partition: &Plan,
    per_item: &Plan,
    input: Table,
    ctx: &mut Ctx<'_>,
    stats: Option<&OpStats>,
) -> xqr_xml::Result<Table> {
    let mut gs = GroupSpill::new(ctx)?;
    for t in input {
        ctx.governor.tick()?;
        let key = index_fields
            .iter()
            .map(|f| crate::groupby::index_value(&t, f))
            .collect::<xqr_xml::Result<Vec<i64>>>()?;
        let items: Vec<Item> = if crate::groupby::all_nulls_false(&t, null_fields)? {
            eval_dep_items(per_item, ctx, &InputVal::Tuple(t.clone()))?.into_vec()
        } else {
            Vec::new()
        };
        gs.add(&key, &t, &items)?;
    }
    gs.finish(agg, per_partition, ctx, stats)
}

// ===== External merge sort =================================================

fn compare_keys(
    specs: &[OrderSpecPlan],
    a: &[Sequence],
    b: &[Sequence],
) -> xqr_xml::Result<Ordering> {
    for (i, s) in specs.iter().enumerate() {
        let mut ord = order_key_compare(&a[i], &b[i], s.empty_least)?;
        if s.descending {
            ord = ord.reverse();
        }
        if ord != Ordering::Equal {
            return Ok(ord);
        }
    }
    Ok(Ordering::Equal)
}

/// Stable in-memory sort of one run, with the first comparator error
/// captured and re-raised (mirroring `eval::order_by`).
fn sort_run(specs: &[OrderSpecPlan], run: &mut [(Vec<Sequence>, Tuple)]) -> xqr_xml::Result<()> {
    let mut err: Option<XmlError> = None;
    run.sort_by(|a, b| match compare_keys(specs, &a.0, &b.0) {
        Ok(o) => o,
        Err(e) => {
            if err.is_none() {
                err = Some(e);
            }
            Ordering::Equal
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn flush_run(
    mgr: &Rc<SpillManager>,
    specs: &[OrderSpecPlan],
    run: &mut Vec<(Vec<Sequence>, Tuple)>,
    ctx: &Ctx<'_>,
) -> xqr_xml::Result<SpillFile> {
    sort_run(specs, run)?;
    let mut file = mgr.new_file(&ctx.governor)?;
    let mut buf = Vec::new();
    for (keys, tup) in run.drain(..) {
        file.write_sort_frame(&mut buf, &keys, &tup)?;
    }
    Ok(file)
}

/// One open run in a k-way merge.
struct RunHead {
    file: SpillFile,
    head: Option<(Vec<Sequence>, Tuple)>,
}

impl RunHead {
    fn open(mut file: SpillFile) -> xqr_xml::Result<RunHead> {
        file.start_read()?;
        let head = file.read_sort_frame()?;
        Ok(RunHead { file, head })
    }

    fn advance(&mut self) -> xqr_xml::Result<Option<(Vec<Sequence>, Tuple)>> {
        let next = self.file.read_sort_frame()?;
        Ok(std::mem::replace(&mut self.head, next))
    }
}

/// Pops the globally smallest head; ties resolve to the lowest run index,
/// which is the earlier input position — the stability tie-break.
fn merge_step(
    specs: &[OrderSpecPlan],
    runs: &mut [RunHead],
) -> xqr_xml::Result<Option<(Vec<Sequence>, Tuple)>> {
    let mut best: Option<usize> = None;
    for (i, r) in runs.iter().enumerate() {
        let Some(h) = &r.head else { continue };
        match best {
            None => best = Some(i),
            Some(b) => {
                let bh = runs[b].head.as_ref().unwrap();
                if compare_keys(specs, &h.0, &bh.0)? == Ordering::Less {
                    best = Some(i);
                }
            }
        }
    }
    match best {
        Some(i) => runs[i].advance(),
        None => Ok(None),
    }
}

/// Out-of-core `OrderBy`: identical output to `eval::order_by` (stable,
/// same key coercions) with peak memory bounded by one run plus the merge
/// heads. Key evaluation order, and therefore key-error behaviour, matches
/// the in-memory pass (keys are computed per input tuple, in input order).
pub(crate) fn external_sort(
    specs: &[OrderSpecPlan],
    table: Table,
    ctx: &mut Ctx<'_>,
    stats: Option<&OpStats>,
) -> xqr_xml::Result<Table> {
    let budget = working_budget(&ctx.governor);
    let mut tally = Tally::default();
    let mut mgr: Option<Rc<SpillManager>> = None;
    let mut runs: Vec<SpillFile> = Vec::new();
    let mut cur: Vec<(Vec<Sequence>, Tuple)> = Vec::new();
    let mut cur_bytes = 0u64;
    for t in table {
        ctx.governor.tick()?;
        let mut keys = Vec::with_capacity(specs.len());
        for s in specs {
            keys.push(eval_dep_items(&s.key, ctx, &InputVal::Tuple(t.clone()))?);
        }
        cur_bytes += t.approx_bytes() + keys.iter().map(|k| 16 + 24 * k.len() as u64).sum::<u64>();
        cur.push((keys, t));
        if cur_bytes > budget {
            let m = match &mgr {
                Some(m) => m.clone(),
                None => {
                    let m = ctx.spill_manager()?;
                    mgr = Some(m.clone());
                    m
                }
            };
            runs.push(flush_run(&m, specs, &mut cur, ctx)?);
            cur_bytes = 0;
        }
    }
    if runs.is_empty() {
        // Everything fit in one run: plain in-memory sort, no disk.
        sort_run(specs, &mut cur)?;
        return Ok(cur.into_iter().map(|(_, t)| t).collect());
    }
    if !cur.is_empty() {
        runs.push(flush_run(mgr.as_ref().unwrap(), specs, &mut cur, ctx)?);
    }
    for r in &runs {
        tally.bytes += r.bytes();
    }
    tally.partitions += runs.len() as u64;

    // Multi-pass merge under the fan-in cap.
    while runs.len() > MERGE_FANIN {
        let batch: Vec<SpillFile> = runs.drain(..MERGE_FANIN).collect();
        let mut heads = batch
            .into_iter()
            .map(RunHead::open)
            .collect::<xqr_xml::Result<Vec<_>>>()?;
        let mut out = mgr.as_ref().unwrap().new_file(&ctx.governor)?;
        let mut buf = Vec::new();
        while let Some((keys, tup)) = merge_step(specs, &mut heads)? {
            ctx.governor.tick()?;
            out.write_sort_frame(&mut buf, &keys, &tup)?;
        }
        tally.bytes += out.bytes();
        tally.merge_passes += 1;
        runs.push(out);
    }

    // Final merge straight into the output table.
    let mut heads = runs
        .into_iter()
        .map(RunHead::open)
        .collect::<xqr_xml::Result<Vec<_>>>()?;
    let mut out = Table::new();
    while let Some((_, tup)) = merge_step(specs, &mut heads)? {
        ctx.governor.tick()?;
        out.push(tup);
    }
    tally.merge_passes += 1;
    tally.flush(stats);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xml::{CancellationToken, Limits, ParseOptions};

    fn gov_with_spill(disk: u64) -> Governor {
        Governor::new(
            &Limits::default().with_spill(Some(disk)),
            CancellationToken::new(),
        )
    }

    fn sample_tuple() -> Tuple {
        let atomics = vec![
            AtomicValue::string("héllo"),
            AtomicValue::Boolean(true),
            AtomicValue::Decimal(Decimal::from_units(-123_456_789)),
            AtomicValue::Integer(-42),
            AtomicValue::Double(1.5e300),
            AtomicValue::Float(-0.25),
            AtomicValue::untyped("u"),
            AtomicValue::AnyUri("http://example.com/".into()),
            AtomicValue::QName(QName::full(Some("p"), Some("urn:x"), "local")),
            AtomicValue::Date(Date {
                year: 2001,
                month: 12,
                day: 31,
                tz_minutes: Some(-300),
            }),
            AtomicValue::Time(Time {
                millis: 86_399_000,
                tz_minutes: None,
            }),
            AtomicValue::DateTime(DateTime {
                date: Date {
                    year: -44,
                    month: 3,
                    day: 15,
                    tz_minutes: None,
                },
                millis: 12,
            }),
            AtomicValue::Duration(xqr_xml::Duration {
                months: -5,
                millis: 7,
            }),
            AtomicValue::GYear(1999),
            AtomicValue::GYearMonth(2020, 2),
            AtomicValue::GMonth(7),
            AtomicValue::GMonthDay(2, 29),
            AtomicValue::GDay(9),
            AtomicValue::HexBinary(vec![0xDE, 0xAD].into()),
            AtomicValue::Base64Binary(vec![1, 2, 3].into()),
        ];
        Tuple::from_fields(vec![
            (
                Field::from("a"),
                Sequence::from_vec(atomics.into_iter().map(Item::Atomic).collect()),
            ),
            (Field::from("empty"), Sequence::empty()),
        ])
    }

    fn tuples_equal(a: &Tuple, b: &Tuple) -> bool {
        let av: Vec<_> = a.fields().map(|(f, s)| (f.clone(), s.clone())).collect();
        let bv: Vec<_> = b.fields().map(|(f, s)| (f.clone(), s.clone())).collect();
        av == bv
    }

    #[test]
    fn codec_roundtrips_every_atomic_type() {
        let gov = gov_with_spill(1 << 20);
        let mgr = SpillManager::create(&gov).unwrap();
        let mut f = mgr.new_file(&gov).unwrap();
        let t = sample_tuple();
        let mut buf = Vec::new();
        f.write_join_frame(&mut buf, 7, &t).unwrap();
        f.start_read().unwrap();
        let (idx, back) = f.read_join_frame().unwrap().expect("one frame");
        assert_eq!(idx, 7);
        assert!(tuples_equal(&t, &back));
        assert!(f.read_join_frame().unwrap().is_none(), "eof after frame");
    }

    #[test]
    fn nodes_spill_by_reference_into_the_same_arena() {
        let gov = gov_with_spill(1 << 20);
        let mgr = SpillManager::create(&gov).unwrap();
        let mut f = mgr.new_file(&gov).unwrap();
        let doc = xqr_xml::parse_document("<r><a/><b/></r>", &ParseOptions::default()).unwrap();
        let node = Item::Node(NodeHandle {
            doc: doc.clone(),
            id: NodeId(2),
        });
        let t = Tuple::from_fields(vec![(
            Field::from("n"),
            Sequence::from_vec(vec![node.clone()]),
        )]);
        let mut buf = Vec::new();
        f.write_join_frame(&mut buf, 0, &t).unwrap();
        f.start_read().unwrap();
        let (_, back) = f.read_join_frame().unwrap().unwrap();
        let Some(Item::Node(h)) = back.get("n").get(0).cloned() else {
            panic!("expected node item");
        };
        assert!(Rc::ptr_eq(&h.doc, &doc), "pinned to the same document");
        assert_eq!(h.id, NodeId(2));
    }

    #[test]
    fn crc_detects_on_disk_corruption() {
        let gov = gov_with_spill(1 << 20);
        let mgr = SpillManager::create(&gov).unwrap();
        let mut f = mgr.new_file(&gov).unwrap();
        let mut buf = Vec::new();
        f.write_join_frame(&mut buf, 1, &sample_tuple()).unwrap();
        f.writer.as_mut().unwrap().flush().unwrap();
        // Flip one payload byte behind the reader's back.
        {
            let mut raw = std::fs::read(&f.path).unwrap();
            let last = raw.len() - 1;
            raw[last] ^= 0xFF;
            std::fs::write(&f.path, raw).unwrap();
        }
        f.start_read().unwrap();
        assert_eq!(f.read_frame().unwrap_err().code, ERR_SPILL_IO);
    }

    #[test]
    fn spill_files_and_dir_are_removed_on_drop() {
        let gov = gov_with_spill(1 << 20);
        let (dir, path) = {
            let mgr = SpillManager::create(&gov).unwrap();
            let mut f = mgr.new_file(&gov).unwrap();
            let mut buf = Vec::new();
            f.write_join_frame(&mut buf, 0, &sample_tuple()).unwrap();
            f.writer.as_mut().unwrap().flush().unwrap();
            let path = f.path.clone();
            assert!(path.exists());
            drop(f);
            assert!(!path.exists(), "file deleted on drop");
            (mgr.dir().clone(), path)
        };
        assert!(!dir.exists(), "scoped dir deleted with the manager");
        assert!(!path.exists());
        assert_eq!(gov.spill_bytes_used(), 0, "disk charge fully released");
        assert!(gov.spill_bytes_total() > 0);
    }

    #[test]
    fn disk_budget_exhaustion_trips_xqrg0006() {
        let gov = gov_with_spill(64);
        let mgr = SpillManager::create(&gov).unwrap();
        let mut f = mgr.new_file(&gov).unwrap();
        let mut buf = Vec::new();
        let mut last = Ok(());
        for _ in 0..8 {
            last = f.write_join_frame(&mut buf, 0, &sample_tuple());
            if last.is_err() {
                break;
            }
        }
        assert_eq!(last.unwrap_err().code, "XQRG0006");
    }

    #[test]
    fn retry_io_succeeds_after_transient_failures() {
        let gov = Governor::unlimited();
        let mut failures = 2;
        let v = retry_io("spill_test::transient", &gov, |_| {
            if failures > 0 {
                failures -= 1;
                Err(std::io::Error::other("flaky"))
            } else {
                Ok(99)
            }
        })
        .unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn retry_io_exhaustion_is_xqrg0005() {
        let gov = Governor::unlimited();
        let err = retry_io::<()>("spill_test::dead", &gov, |_| {
            Err(std::io::Error::other("disk on fire"))
        })
        .unwrap_err();
        assert_eq!(err.code, ERR_SPILL_IO);
        assert!(err.message.contains("disk on fire"));
    }

    #[test]
    fn key_partitions_are_stable_and_depth_salted() {
        let k = key_of(&AtomicValue::Integer(5)).unwrap();
        assert_eq!(key_partition(&k, 0), key_partition(&k, 0));
        // Some depth within the cap must redistribute this key; otherwise
        // recursion could never help (astronomically unlikely to fail).
        let p0 = key_partition(&k, 0);
        assert!((1..=MAX_DEPTH).any(|d| key_partition(&k, d) != p0) || FANOUT == 1);
        assert!(on_path(&k, &[p0]));
    }
}
