//! Batched, type-specialized comparison kernels for the scalar hot path.
//!
//! Profiling shows the value-heavy XMark queries spend most of their time
//! in per-tuple `Call[fs:*]` nodes: one dynamic dispatch, one
//! atomization, and one type promotion *per row* (Q11 alone runs
//! `fs:numeric-multiply` + `fs:general-gt` 212 036 times). This module
//! replaces those chains with two kernels, both gated on the
//! [`xqr_core::fuse`] peephole so only provably safe shapes fuse:
//!
//! * [`NlJoinKernel`] — a nested-loop join predicate
//!   `op(outer_expr, inner_expr)` whose operands each read only one
//!   side's fields. The inner operand is evaluated **once per inner row**
//!   (memoized in predicate-argument order during the first probe, so the
//!   first probe's evaluation order — and therefore the first dynamic
//!   error — matches the scalar path exactly), and once the cache is
//!   complete and found type-uniform, subsequent probes compare through a
//!   monomorphic `f64`/`i64` lane: the Table 2 promotion is resolved once
//!   per batch instead of once per pair.
//! * [`SelectKernel`] — a `Select`-over-`Call` comparison fused into a
//!   single predicate kernel: no boolean `Sequence` is materialized per
//!   row, constant operands are evaluated once, and the (value,
//!   atomic-type) promotion is resolved from the first row and reused
//!   while the batch stays type-homogeneous.
//!
//! Heterogeneous or non-atomic rows fall back to the existing scalar
//! helpers ([`general_pair`], [`value_compare`]) row by row, so dynamic
//! errors, NaN rules, empty-sequence rules, and promotion order are
//! preserved bit-for-bit. The lanes themselves mirror `value_compare`
//! exactly: promotion targets come from `comparable_types`, conversions
//! from `convert_operand`/`promote_numeric`, IEEE comparisons reproduce
//! the NaN branch (`Ne` is the only operator NaN satisfies), and a failed
//! untyped cast under a *general* comparison contributes no pair (the
//! documented `FORG0001`/`XPTY0004` swallow rule). `fs:value-*` kernels
//! never use a lane — their errors must surface per pair, in pair order.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use xqr_core::algebra::{Op, Plan};
use xqr_core::fields::{output_fields, used_input_fields};
use xqr_core::fuse::{fusable_comparison, uses_input, ComparisonSplit};
use xqr_types::convert::{comparable_types, convert_operand};
use xqr_types::promote_numeric;
use xqr_xml::{AtomicType, AtomicValue, XmlError};

use crate::compare::{atomize_optional, general_pair, value_compare, CmpOp};
use crate::context::Ctx;
use crate::eval::eval_dep_items;
use crate::profile::OpStats;
use crate::value::{InputVal, Table, Tuple};

/// Default number of tuples pulled per `next_batch` call. Budgets still
/// apply per tuple (the governor ticks inside the batch loop), so a batch
/// never outruns the configured limits.
pub(crate) const BATCH_SIZE: usize = 1024;

// ===== Fused operand chains ==================================================

/// An operand of a fusable comparison, pre-compiled once per cursor. The
/// normalizer wraps comparison operands in `fs:numeric-*` arithmetic with
/// one literal side (`5000 * exactly-one($i/text())`); that shape runs
/// without the per-row `Call` dispatch and `Sequence` round-trip.
pub(crate) enum FusedOperand<'p> {
    /// `Call[fs:numeric-*](Scalar, e)` or `(e, Scalar)`: evaluate `e` per
    /// tuple, then run the arithmetic directly on the atoms.
    NumericBinary {
        name: &'p str,
        konst: &'p AtomicValue,
        row: &'p Plan,
        const_is_left: bool,
    },
    /// Any other fusable chain: evaluated through the regular interpreter.
    Generic(&'p Plan),
}

impl<'p> FusedOperand<'p> {
    pub(crate) fn compile(p: &'p Plan) -> FusedOperand<'p> {
        if let Op::Call { name, args } = &p.op {
            let n = name.local_part();
            if args.len() == 2
                && matches!(
                    n,
                    "fs:numeric-add"
                        | "fs:numeric-subtract"
                        | "fs:numeric-multiply"
                        | "fs:numeric-divide"
                        | "fs:numeric-mod"
                )
            {
                if let Op::Scalar(v) = &args[0].op {
                    return FusedOperand::NumericBinary {
                        name: n,
                        konst: v,
                        row: &args[1],
                        const_is_left: true,
                    };
                }
                if let Op::Scalar(v) = &args[1].op {
                    return FusedOperand::NumericBinary {
                        name: n,
                        konst: v,
                        row: &args[0],
                        const_is_left: false,
                    };
                }
            }
        }
        FusedOperand::Generic(p)
    }

    /// The operand's atomized value for one tuple — same evaluation order
    /// and dynamic errors as the scalar `Call` path.
    fn eval_atoms(&self, ctx: &mut Ctx<'_>, input: &InputVal) -> xqr_xml::Result<Vec<AtomicValue>> {
        match self {
            FusedOperand::Generic(p) => Ok(eval_dep_items(p, ctx, input)?.atomized()),
            FusedOperand::NumericBinary {
                name,
                konst,
                row,
                const_is_left,
            } => {
                // Scalar order: both arguments evaluate (the literal is
                // free), then both atomize left-to-right, then the
                // arithmetic dispatches.
                let rv = eval_dep_items(row, ctx, input)?;
                let row_atom = atomize_optional(&rv)?;
                let (x, y) = if *const_is_left {
                    (Some((*konst).clone()), row_atom)
                } else {
                    (row_atom, Some((*konst).clone()))
                };
                match (x, y) {
                    (Some(x), Some(y)) => Ok(vec![crate::functions::arithmetic(name, &x, &y)?]),
                    _ => Ok(Vec::new()),
                }
            }
        }
    }
}

// ===== Shared comparison helpers =============================================

/// IEEE comparison at the promoted `f64` lane — reproduces
/// `value_compare`'s NaN branch exactly (`Ne` is the only operator a NaN
/// pair satisfies; `-0.0 == 0.0`).
#[inline]
fn f64_holds(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

#[inline]
fn i64_holds(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// The value `a` takes at numeric comparison target `target` (Table 2
/// conversion against an operand of type `other`, then numeric
/// promotion), as an `f64`. `None` when the conversion fails — under a
/// general comparison that pair can never match (the swallow rule), which
/// is the only context lanes are used in.
fn lane_f64(a: &AtomicValue, other: AtomicType, target: AtomicType) -> Option<f64> {
    let conv = convert_operand(a, other).ok()?;
    if conv.type_of() == target {
        conv.as_f64()
    } else {
        promote_numeric(&conv, target).ok()?.as_f64()
    }
}

/// Enforces the `fs:value-*` singleton rule on an already-atomized
/// operand — same error as [`atomize_optional`].
fn optional_atom(atoms: &[AtomicValue]) -> xqr_xml::Result<Option<&AtomicValue>> {
    match atoms.len() {
        0 => Ok(None),
        1 => Ok(Some(&atoms[0])),
        _ => Err(XmlError::new(
            "XPTY0004",
            "expected at most one atomic value",
        )),
    }
}

/// One predicate evaluation over pre-atomized operands, in predicate
/// argument order (`first op second`) — general existential semantics or
/// strict value semantics, exactly as `call_builtin` would produce.
fn pair_predicate(
    op: CmpOp,
    general: bool,
    first: &[AtomicValue],
    second: &[AtomicValue],
) -> xqr_xml::Result<bool> {
    if general {
        for a in first {
            for b in second {
                if general_pair(op, a, b)? {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    } else {
        match (optional_atom(first)?, optional_atom(second)?) {
            // Either side empty: the builtin returns the empty sequence,
            // whose effective boolean value is false.
            (Some(a), Some(b)) => value_compare(op, a, b),
            _ => Ok(false),
        }
    }
}

/// The single-atom type shared by every non-empty row, when one exists.
fn uniform_type(rows: &[Option<Vec<AtomicValue>>]) -> Option<AtomicType> {
    let mut t = None;
    for row in rows {
        let atoms = row.as_ref()?;
        match atoms.as_slice() {
            [] => {}
            [a] => match t {
                None => t = Some(a.type_of()),
                Some(seen) if seen == a.type_of() => {}
                Some(_) => return None,
            },
            _ => return None,
        }
    }
    t
}

// ===== Nested-loop join kernel ===============================================

/// Per-row cache and comparison lane for one [`NlJoinKernel`]. Interior
/// mutability because `JoinProbe::matches` takes `&self`.
struct JoinCache {
    /// Atomized inner-operand values, one per inner-table row, filled in
    /// row order (`rows[..filled]` are `Some`).
    rows: Vec<Option<Vec<AtomicValue>>>,
    filled: usize,
    /// `Some` once the cache is complete and uniformity has been checked.
    uniform: Option<Option<AtomicType>>,
    lane: Option<JoinLane>,
}

/// A monomorphic comparison lane, valid for probes whose (single) outer
/// atom has type `outer_type`.
struct JoinLane {
    outer_type: AtomicType,
    inner_type: AtomicType,
    target: AtomicType,
    vals: LaneVals,
}

enum LaneVals {
    /// Per inner row: the promoted f64, or `None` for an empty row / a
    /// failed untyped conversion (no pair can match — swallow rule).
    F64(Vec<Option<f64>>),
    /// Integer × Integer comparisons stay exact.
    I64(Vec<Option<i64>>),
}

/// A fused nested-loop join predicate `op(a, b)` where one operand reads
/// only outer fields and the other only inner fields.
pub(crate) struct NlJoinKernel<'p> {
    op: CmpOp,
    general: bool,
    outer: FusedOperand<'p>,
    inner: FusedOperand<'p>,
    /// Predicate arguments were `(inner, outer)` — the inner operand is
    /// the *first* argument and evaluates first within each pair.
    swapped: bool,
    stats: Option<Rc<OpStats>>,
    cache: RefCell<JoinCache>,
}

impl<'p> NlJoinKernel<'p> {
    /// Builds a kernel when the predicate has the fusable shape and its
    /// operands separate cleanly by side. The outer operand must not
    /// touch any inner field (tuple concatenation lets the right side
    /// shadow the left).
    pub(crate) fn build(
        pred: &'p Plan,
        left_plan: &Plan,
        right_plan: &Plan,
        stats: Option<Rc<OpStats>>,
    ) -> Option<NlJoinKernel<'p>> {
        let ComparisonSplit {
            suffix,
            general,
            lhs,
            rhs,
            ..
        } = fusable_comparison(pred)?;
        let op = CmpOp::by_suffix(suffix)?;
        let lf = output_fields(left_plan)?;
        let rf = output_fields(right_plan)?;
        let a = used_input_fields(lhs);
        let b = used_input_fields(rhs);
        let (outer, inner, swapped) = if a.is_subset(&lf) && a.is_disjoint(&rf) && b.is_subset(&rf)
        {
            (lhs, rhs, false)
        } else if b.is_subset(&lf) && b.is_disjoint(&rf) && a.is_subset(&rf) {
            (rhs, lhs, true)
        } else {
            return None;
        };
        Some(NlJoinKernel {
            op,
            general,
            outer: FusedOperand::compile(outer),
            inner: FusedOperand::compile(inner),
            swapped,
            stats,
            cache: RefCell::new(JoinCache {
                rows: Vec::new(),
                filled: 0,
                uniform: None,
                lane: None,
            }),
        })
    }

    fn fill_row(
        &self,
        cache: &mut JoinCache,
        k: usize,
        right: &Table,
        ctx: &mut Ctx<'_>,
    ) -> xqr_xml::Result<()> {
        debug_assert_eq!(k, cache.filled, "inner rows fill in order");
        let input = InputVal::Tuple(right[k].clone());
        cache.rows[k] = Some(self.inner.eval_atoms(ctx, &input)?);
        cache.filled = k + 1;
        Ok(())
    }

    /// The joined tuples for one outer tuple, in inner order — the fused
    /// equivalent of the scalar `NestedLoop` probe loop.
    pub(crate) fn matches(
        &self,
        lt: &Tuple,
        right: &Table,
        ctx: &mut Ctx<'_>,
    ) -> xqr_xml::Result<Vec<Tuple>> {
        if right.is_empty() {
            // Zero pairs: the scalar loop evaluates nothing.
            return Ok(Vec::new());
        }
        let mut guard = self.cache.borrow_mut();
        let cache = &mut *guard;
        if cache.rows.is_empty() {
            cache.rows = (0..right.len()).map(|_| None).collect();
        }
        if let Some(s) = &self.stats {
            s.add_batches(1);
        }
        // Scalar pair order: the predicate's first argument evaluates
        // first. When the inner operand is the first argument, inner row
        // 0 must evaluate before the outer operand on the very first
        // probe.
        if self.swapped && cache.filled == 0 {
            self.fill_row(cache, 0, right, ctx)?;
        }
        let outer_atoms = self.outer.eval_atoms(ctx, &InputVal::Tuple(lt.clone()))?;

        let mut out = Vec::new();
        if cache.filled == right.len() && self.general && outer_atoms.len() == 1 {
            let tx = outer_atoms[0].type_of();
            if self.ensure_lane(cache, tx) {
                let lane = cache.lane.as_ref().expect("lane just ensured");
                self.run_lane(lane, &outer_atoms[0], lt, right, ctx, &mut out)?;
                if let Some(s) = &self.stats {
                    s.add_fused_rows(right.len() as u64);
                }
                return Ok(out);
            }
        }
        // Filling / generic path: still one operand evaluation per inner
        // row (memoized), per-pair comparison through the scalar helpers.
        for k in 0..right.len() {
            ctx.governor.tick()?;
            if k >= cache.filled {
                self.fill_row(cache, k, right, ctx)?;
            }
            let row = cache.rows[k].as_ref().expect("filled");
            let matched = if self.swapped {
                pair_predicate(self.op, self.general, row, &outer_atoms)?
            } else {
                pair_predicate(self.op, self.general, &outer_atoms, row)?
            };
            if matched {
                out.push(lt.concat(&right[k]));
            }
        }
        if let Some(s) = &self.stats {
            s.add_fallback_rows(right.len() as u64);
        }
        Ok(out)
    }

    /// Builds (or reuses) the lane for outer type `tx`. Returns false when
    /// the batch does not specialize (mixed types, non-numeric target).
    fn ensure_lane(&self, cache: &mut JoinCache, tx: AtomicType) -> bool {
        if let Some(lane) = &cache.lane {
            if lane.outer_type == tx {
                return true;
            }
        }
        let uniform = *cache
            .uniform
            .get_or_insert_with(|| uniform_type(&cache.rows));
        let Some(tin) = uniform else { return false };
        let Some(target) = comparable_types(tx, tin) else {
            return false;
        };
        let vals = match target {
            AtomicType::Double | AtomicType::Float => LaneVals::F64(
                cache
                    .rows
                    .iter()
                    .map(|r| {
                        let atoms = r.as_ref().expect("cache complete");
                        atoms.first().and_then(|a| lane_f64(a, tx, target))
                    })
                    .collect(),
            ),
            AtomicType::Integer => LaneVals::I64(
                cache
                    .rows
                    .iter()
                    .map(|r| {
                        let atoms = r.as_ref().expect("cache complete");
                        atoms.first().and_then(|a| match a {
                            AtomicValue::Integer(i) => Some(*i),
                            _ => None,
                        })
                    })
                    .collect(),
            ),
            _ => return false,
        };
        cache.lane = Some(JoinLane {
            outer_type: tx,
            inner_type: tin,
            target,
            vals,
        });
        true
    }

    fn run_lane(
        &self,
        lane: &JoinLane,
        outer: &AtomicValue,
        lt: &Tuple,
        right: &Table,
        ctx: &mut Ctx<'_>,
        out: &mut Vec<Tuple>,
    ) -> xqr_xml::Result<()> {
        match &lane.vals {
            LaneVals::F64(vals) => {
                let fx = lane_f64(outer, lane.inner_type, lane.target);
                for (k, fy) in vals.iter().enumerate() {
                    ctx.governor.tick()?;
                    if let (Some(fx), Some(fy)) = (fx, *fy) {
                        let (a, b) = if self.swapped { (fy, fx) } else { (fx, fy) };
                        if f64_holds(self.op, a, b) {
                            out.push(lt.concat(&right[k]));
                        }
                    }
                }
            }
            LaneVals::I64(vals) => {
                let ix = match outer {
                    AtomicValue::Integer(i) => Some(*i),
                    _ => None,
                };
                for (k, iy) in vals.iter().enumerate() {
                    ctx.governor.tick()?;
                    if let (Some(ix), Some(iy)) = (ix, *iy) {
                        let (a, b) = if self.swapped { (iy, ix) } else { (ix, iy) };
                        if i64_holds(self.op, a, b) {
                            out.push(lt.concat(&right[k]));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

// ===== Select predicate kernel ===============================================

/// The typed comparison resolved from a batch's first row — reused while
/// rows keep the same (lhs type, rhs type) shape.
#[derive(Clone, Copy)]
struct TypedCmp {
    tx: AtomicType,
    ty: AtomicType,
    kind: CmpKind,
}

#[derive(Clone, Copy)]
enum CmpKind {
    F64 { target: AtomicType },
    I64,
    Generic,
}

#[derive(Default)]
struct ConstCache {
    /// Constant operands (no tuple fields), evaluated once at their
    /// correct position in the first row's argument order.
    lhs: Option<Vec<AtomicValue>>,
    rhs: Option<Vec<AtomicValue>>,
}

/// A fused `Select{Call[fs:general-*|fs:value-*]}` predicate: evaluates
/// the operand chains directly and compares without materializing a
/// boolean sequence per row.
pub(crate) struct SelectKernel<'p> {
    op: CmpOp,
    general: bool,
    lhs: FusedOperand<'p>,
    rhs: FusedOperand<'p>,
    lhs_const: bool,
    rhs_const: bool,
    stats: Option<Rc<OpStats>>,
    consts: RefCell<ConstCache>,
    cmp: Cell<Option<TypedCmp>>,
}

impl<'p> SelectKernel<'p> {
    pub(crate) fn build(pred: &'p Plan, stats: Option<Rc<OpStats>>) -> Option<SelectKernel<'p>> {
        let ComparisonSplit {
            suffix,
            general,
            lhs,
            rhs,
            ..
        } = fusable_comparison(pred)?;
        let op = CmpOp::by_suffix(suffix)?;
        Some(SelectKernel {
            op,
            general,
            lhs_const: !uses_input(lhs),
            rhs_const: !uses_input(rhs),
            lhs: FusedOperand::compile(lhs),
            rhs: FusedOperand::compile(rhs),
            stats,
            consts: RefCell::new(ConstCache::default()),
            cmp: Cell::new(None),
        })
    }

    pub(crate) fn note_batch(&self) {
        if let Some(s) = &self.stats {
            s.add_batches(1);
        }
    }

    /// Does the predicate hold for this tuple? Exactly the effective
    /// boolean value the scalar `Call` would produce, including its
    /// dynamic errors in argument order. Takes the tuple by value and
    /// hands it back (no clone on the per-row path).
    pub(crate) fn matches(&self, t: Tuple, ctx: &mut Ctx<'_>) -> (Tuple, xqr_xml::Result<bool>) {
        let input = InputVal::Tuple(t);
        let r = self.matches_inner(ctx, &input);
        let InputVal::Tuple(t) = input else {
            unreachable!()
        };
        (t, r)
    }

    fn matches_inner(&self, ctx: &mut Ctx<'_>, input: &InputVal) -> xqr_xml::Result<bool> {
        let mut consts = self.consts.borrow_mut();
        let consts = &mut *consts;
        // Argument order: lhs evaluates before rhs, always; a constant
        // operand evaluates once, at its position in the first row.
        let row_l;
        let la: &[AtomicValue] = if self.lhs_const {
            if consts.lhs.is_none() {
                consts.lhs = Some(self.lhs.eval_atoms(ctx, input)?);
            }
            consts.lhs.as_deref().expect("just filled")
        } else {
            row_l = self.lhs.eval_atoms(ctx, input)?;
            &row_l
        };
        let row_r;
        let ra: &[AtomicValue] = if self.rhs_const {
            if consts.rhs.is_none() {
                consts.rhs = Some(self.rhs.eval_atoms(ctx, input)?);
            }
            consts.rhs.as_deref().expect("just filled")
        } else {
            row_r = self.rhs.eval_atoms(ctx, input)?;
            &row_r
        };
        // Resolve the typed comparison from the first single-atom row;
        // rows that keep the same type pair run the monomorphic kernel.
        if let ([a], [b]) = (la, ra) {
            let (tx, ty) = (a.type_of(), b.type_of());
            let cmp = match self.cmp.get() {
                Some(c) if c.tx == tx && c.ty == ty => c,
                _ => {
                    let c = TypedCmp {
                        tx,
                        ty,
                        kind: resolve_kind(self.general, tx, ty),
                    };
                    self.cmp.set(Some(c));
                    c
                }
            };
            match cmp.kind {
                CmpKind::F64 { target } => {
                    if let Some(s) = &self.stats {
                        s.add_fused_rows(1);
                    }
                    let fa = lane_f64(a, ty, target);
                    let fb = lane_f64(b, tx, target);
                    return Ok(match (fa, fb) {
                        (Some(fa), Some(fb)) => f64_holds(self.op, fa, fb),
                        // A failed untyped conversion under a general
                        // comparison: the pair contributes nothing.
                        _ => false,
                    });
                }
                CmpKind::I64 => {
                    if let (AtomicValue::Integer(x), AtomicValue::Integer(y)) = (a, b) {
                        if let Some(s) = &self.stats {
                            s.add_fused_rows(1);
                        }
                        return Ok(i64_holds(self.op, *x, *y));
                    }
                }
                CmpKind::Generic => {}
            }
        }
        if let Some(s) = &self.stats {
            s.add_fallback_rows(1);
        }
        pair_predicate(self.op, self.general, la, ra)
    }
}

/// Picks the monomorphic kernel for a (lhs, rhs) type pair. Lanes are
/// general-comparison only: a failed conversion must *swallow* for the
/// `None` shortcut to be semantics-preserving; `fs:value-*` errors have
/// to surface, so they stay on the generic per-row path.
fn resolve_kind(general: bool, tx: AtomicType, ty: AtomicType) -> CmpKind {
    if !general {
        return CmpKind::Generic;
    }
    match comparable_types(tx, ty) {
        Some(AtomicType::Double) | Some(AtomicType::Float) => CmpKind::F64 {
            target: comparable_types(tx, ty).expect("just matched"),
        },
        Some(AtomicType::Integer) => CmpKind::I64,
        _ => CmpKind::Generic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_lane_reproduces_nan_and_zero_rules() {
        let nan = f64::NAN;
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert!(!f64_holds(op, nan, 1.0), "{op:?}");
            assert!(!f64_holds(op, 1.0, nan), "{op:?}");
            assert!(!f64_holds(op, nan, nan), "{op:?}");
        }
        assert!(f64_holds(CmpOp::Ne, nan, 1.0));
        assert!(f64_holds(CmpOp::Ne, nan, nan));
        assert!(f64_holds(CmpOp::Eq, -0.0, 0.0));
        assert!(!f64_holds(CmpOp::Lt, -0.0, 0.0));
    }

    #[test]
    fn lane_conversion_matches_value_compare() {
        use AtomicType as T;
        // Untyped vs numeric promotes through xs:double (Table 2).
        let u = AtomicValue::untyped("42.5");
        assert_eq!(lane_f64(&u, T::Integer, T::Double), Some(42.5));
        // Unparseable untyped: no lane value — the pair never matches,
        // exactly as the swallowed FORG0001 would behave.
        assert_eq!(
            lane_f64(&AtomicValue::untyped("x"), T::Integer, T::Double),
            None
        );
        // Typed numerics promote with the scalar path's exact casts.
        assert_eq!(
            lane_f64(&AtomicValue::Integer(7), T::Double, T::Double),
            Some(7.0)
        );
        assert_eq!(
            lane_f64(&AtomicValue::Float(1.5), T::Double, T::Double),
            Some(1.5)
        );
    }

    #[test]
    fn uniformity_ignores_empty_rows() {
        use AtomicValue as V;
        let rows = vec![
            Some(vec![V::Double(1.0)]),
            Some(vec![]),
            Some(vec![V::Double(2.0)]),
        ];
        assert_eq!(uniform_type(&rows), Some(AtomicType::Double));
        let mixed = vec![Some(vec![V::Double(1.0)]), Some(vec![V::Integer(2)])];
        assert_eq!(uniform_type(&mixed), None);
        let multi = vec![Some(vec![V::Double(1.0), V::Double(2.0)])];
        assert_eq!(uniform_type(&multi), None);
    }

    #[test]
    fn numeric_binary_compiles_from_literal_side() {
        let p = Plan::call(
            "fs:numeric-multiply",
            vec![
                Plan::scalar(AtomicValue::Integer(5000)),
                Plan::call("exactly-one", vec![Plan::in_field("i")]),
            ],
        );
        match FusedOperand::compile(&p) {
            FusedOperand::NumericBinary {
                name,
                konst,
                const_is_left,
                ..
            } => {
                assert_eq!(name, "fs:numeric-multiply");
                assert_eq!(*konst, AtomicValue::Integer(5000));
                assert!(const_is_left);
            }
            _ => panic!("expected a fused numeric binary"),
        }
        // No literal side: stays generic.
        let g = Plan::call(
            "fs:numeric-add",
            vec![Plan::in_field("a"), Plan::in_field("b")],
        );
        assert!(matches!(
            FusedOperand::compile(&g),
            FusedOperand::Generic(_)
        ));
    }

    #[test]
    fn value_kernels_never_take_a_lane() {
        assert!(matches!(
            resolve_kind(false, AtomicType::Double, AtomicType::Double),
            CmpKind::Generic
        ));
        assert!(matches!(
            resolve_kind(true, AtomicType::Double, AtomicType::Double),
            CmpKind::F64 { .. }
        ));
        assert!(matches!(
            resolve_kind(true, AtomicType::Integer, AtomicType::Integer),
            CmpKind::I64
        ));
        assert!(matches!(
            resolve_kind(true, AtomicType::String, AtomicType::String),
            CmpKind::Generic
        ));
    }
}
