//! Comparison semantics: effective boolean value, `op:equal` (value
//! comparisons with promotion), general comparisons (atomization +
//! existential quantification + `fs:convert-operand`), and the total order
//! used by `OrderBy`.

use std::cmp::Ordering;

use xqr_types::convert::convert_pair;
use xqr_xml::{AtomicType, AtomicValue, Item, Sequence, XmlError};

/// Comparison operators shared by value and general comparisons.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn by_suffix(s: &str) -> Option<CmpOp> {
        Some(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }

    fn holds(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// `fn:boolean` — the effective boolean value.
pub fn effective_boolean_value(seq: &Sequence) -> xqr_xml::Result<bool> {
    if seq.is_empty() {
        return Ok(false);
    }
    if let Item::Node(_) = seq.get(0).expect("non-empty") {
        return Ok(true);
    }
    if seq.len() > 1 {
        return Err(XmlError::new(
            "FORG0006",
            "effective boolean value of a multi-atomic sequence",
        ));
    }
    let Item::Atomic(a) = seq.get(0).expect("non-empty") else {
        unreachable!()
    };
    Ok(match a {
        AtomicValue::Boolean(b) => *b,
        AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) | AtomicValue::AnyUri(s) => {
            !s.is_empty()
        }
        AtomicValue::Integer(i) => *i != 0,
        AtomicValue::Decimal(d) => *d != xqr_xml::Decimal::ZERO,
        AtomicValue::Double(d) => *d != 0.0 && !d.is_nan(),
        AtomicValue::Float(f) => *f != 0.0 && !f.is_nan(),
        other => {
            return Err(XmlError::new(
                "FORG0006",
                format!("no effective boolean value for {}", other.type_of()),
            ))
        }
    })
}

/// Orders two atomic values that are already of a common comparable type
/// (after `convert_pair`). `None` when incomparable at that type.
fn ordering_of(a: &AtomicValue, b: &AtomicValue) -> Option<Ordering> {
    use AtomicValue as V;
    match (a, b) {
        (V::String(x), V::String(y))
        | (V::UntypedAtomic(x), V::UntypedAtomic(y))
        | (V::AnyUri(x), V::AnyUri(y)) => Some(x.cmp(y)),
        (V::Boolean(x), V::Boolean(y)) => Some(x.cmp(y)),
        (V::Integer(x), V::Integer(y)) => Some(x.cmp(y)),
        (V::Decimal(x), V::Decimal(y)) => Some(x.cmp(y)),
        (V::Double(x), V::Double(y)) => x.partial_cmp(y),
        (V::Float(x), V::Float(y)) => x.partial_cmp(y),
        (V::Date(x), V::Date(y)) => x.partial_cmp(y),
        (V::Time(x), V::Time(y)) => x.partial_cmp(y),
        (V::DateTime(x), V::DateTime(y)) => x.partial_cmp(y),
        (V::Duration(x), V::Duration(y)) => x.partial_cmp(y),
        (V::GYear(x), V::GYear(y)) => Some(x.cmp(y)),
        (V::GYearMonth(x1, x2), V::GYearMonth(y1, y2)) => Some((x1, x2).cmp(&(y1, y2))),
        (V::GMonth(x), V::GMonth(y)) => Some(x.cmp(y)),
        (V::GMonthDay(x1, x2), V::GMonthDay(y1, y2)) => Some((x1, x2).cmp(&(y1, y2))),
        (V::GDay(x), V::GDay(y)) => Some(x.cmp(y)),
        (V::HexBinary(x), V::HexBinary(y)) | (V::Base64Binary(x), V::Base64Binary(y)) => {
            Some(x.cmp(y))
        }
        (V::QName(x), V::QName(y)) => {
            if x == y {
                Some(Ordering::Equal)
            } else {
                None
            }
        }
        // Mixed numerics can remain after promotion of like-kinds; coerce
        // through f64 as a last resort.
        _ => {
            let (fx, fy) = (a.as_f64()?, b.as_f64()?);
            fx.partial_cmp(&fy)
        }
    }
}

/// `op:equal` and friends — value comparison of two single atomics,
/// including `fs:convert-operand` on both sides and type promotion.
pub fn value_compare(op: CmpOp, x: &AtomicValue, y: &AtomicValue) -> xqr_xml::Result<bool> {
    let (cx, cy) = convert_pair(x, y)?;
    match ordering_of(&cx, &cy) {
        Some(ord) => Ok(op.holds(ord)),
        None => {
            // NaN: all comparisons false except ne.
            if matches!(cx, AtomicValue::Double(d) if d.is_nan())
                || matches!(cy, AtomicValue::Double(d) if d.is_nan())
                || matches!(cx, AtomicValue::Float(f) if f.is_nan())
                || matches!(cy, AtomicValue::Float(f) if f.is_nan())
            {
                return Ok(op == CmpOp::Ne);
            }
            Err(XmlError::new(
                "XPTY0004",
                format!("{} and {} are not comparable", x.type_of(), y.type_of()),
            ))
        }
    }
}

/// The full general-comparison semantics of Section 6:
///
/// ```text
/// some $x' in fn:data($x) satisfies some $y' in fn:data($y) satisfies
///   op(fs:convert-operand($x',$y'), fs:convert-operand($y',$x'))
/// ```
///
/// Incomparable pairs (e.g. a string against an integer) and untyped
/// values whose lexical form fails the `fs:convert-operand` cast (e.g.
/// content "x" compared to a number) are treated as non-matches rather
/// than raising `XPTY0004`/`FORG0001`. This matches the paper's hash join:
/// `materialize` stores no `xs:double` entry for an unparseable untyped
/// key, and `allMatches` silently *skips* entries whose original types
/// fail the Table 2 check (Fig. 6, line 25) — and it keeps every join
/// algorithm and execution mode deterministic and in agreement.
/// (Strict `eq`/`lt`/… value comparisons still raise both errors.)
pub fn general_compare(op: CmpOp, xs: &Sequence, ys: &Sequence) -> xqr_xml::Result<bool> {
    let dx = xs.atomized();
    let dy = ys.atomized();
    for x in &dx {
        for y in &dy {
            if general_pair(op, x, y)? {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// One atomic pair under general-comparison semantics: `value_compare`
/// with the documented swallow rule (`XPTY0004`/`FORG0001` → non-match).
/// Shared by [`general_compare`] and the batched kernels so the two paths
/// cannot drift.
pub(crate) fn general_pair(op: CmpOp, x: &AtomicValue, y: &AtomicValue) -> xqr_xml::Result<bool> {
    match value_compare(op, x, y) {
        Ok(b) => Ok(b),
        Err(e) if matches!(e.code, "XPTY0004" | "FORG0001") => Ok(false),
        Err(e) => Err(e),
    }
}

/// Order for `OrderBy` keys: atomized singleton values, empty-sequence
/// handling per the `empty least/greatest` spec, untyped compared as
/// strings unless the other side is numeric.
pub fn order_key_compare(
    a: &Sequence,
    b: &Sequence,
    empty_least: bool,
) -> xqr_xml::Result<Ordering> {
    let da = a.atomized();
    let db = b.atomized();
    match (da.first(), db.first()) {
        (None, None) => Ok(Ordering::Equal),
        (None, Some(_)) => Ok(if empty_least {
            Ordering::Less
        } else {
            Ordering::Greater
        }),
        (Some(_), None) => Ok(if empty_least {
            Ordering::Greater
        } else {
            Ordering::Less
        }),
        (Some(x), Some(y)) => {
            let (cx, cy) = convert_pair(x, y)?;
            ordering_of(&cx, &cy)
                .ok_or_else(|| XmlError::new("XPTY0004", "order keys are not comparable"))
        }
    }
}

/// Atomization helper that enforces a 0/1-item cardinality (used by casts
/// and value comparisons at call sites that require singletons).
pub fn atomize_optional(seq: &Sequence) -> xqr_xml::Result<Option<AtomicValue>> {
    let atoms = seq.atomized();
    match atoms.len() {
        0 => Ok(None),
        1 => Ok(Some(atoms.into_iter().next().expect("one"))),
        _ => Err(XmlError::new(
            "XPTY0004",
            "expected at most one atomic value",
        )),
    }
}

/// Numeric promotion of a pair for arithmetic: untyped casts to double,
/// then both promote to their widest common numeric type.
pub fn arithmetic_pair(
    x: &AtomicValue,
    y: &AtomicValue,
) -> xqr_xml::Result<(AtomicValue, AtomicValue, AtomicType)> {
    let cast_num = |v: &AtomicValue| -> xqr_xml::Result<AtomicValue> {
        match v.type_of() {
            AtomicType::UntypedAtomic => xqr_types::cast_atomic(v, AtomicType::Double),
            t if t.is_numeric() => Ok(v.clone()),
            t => Err(XmlError::new("XPTY0004", format!("{t} is not numeric"))),
        }
    };
    let cx = cast_num(x)?;
    let cy = cast_num(y)?;
    let target = xqr_types::widest_numeric(cx.type_of(), cy.type_of())
        .ok_or_else(|| XmlError::new("XPTY0004", "non-numeric operands"))?;
    Ok((
        xqr_types::promote_numeric(&cx, target)?,
        xqr_types::promote_numeric(&cy, target)?,
        target,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vals: Vec<AtomicValue>) -> Sequence {
        Sequence::from_atomics(vals)
    }

    #[test]
    fn ebv_rules() {
        assert!(!effective_boolean_value(&Sequence::empty()).unwrap());
        assert!(effective_boolean_value(&seq(vec![AtomicValue::string("x")])).unwrap());
        assert!(!effective_boolean_value(&seq(vec![AtomicValue::string("")])).unwrap());
        assert!(!effective_boolean_value(&seq(vec![AtomicValue::Double(f64::NAN)])).unwrap());
        assert!(effective_boolean_value(&seq(vec![AtomicValue::Integer(7)])).unwrap());
        assert!(effective_boolean_value(&Sequence::integers([1, 2])).is_err());
    }

    #[test]
    fn value_compare_with_promotion() {
        // integer vs double
        assert!(value_compare(
            CmpOp::Eq,
            &AtomicValue::Integer(5),
            &AtomicValue::Double(5.0)
        )
        .unwrap());
        // untyped vs integer → double
        assert!(value_compare(
            CmpOp::Eq,
            &AtomicValue::untyped("5"),
            &AtomicValue::Integer(5)
        )
        .unwrap());
        // untyped vs untyped → string comparison ("10" < "9")
        assert!(value_compare(
            CmpOp::Lt,
            &AtomicValue::untyped("10"),
            &AtomicValue::untyped("9")
        )
        .unwrap());
        // but untyped vs numeric → numeric comparison (10 > 9)
        assert!(value_compare(
            CmpOp::Gt,
            &AtomicValue::untyped("10"),
            &AtomicValue::Integer(9)
        )
        .unwrap());
        // incomparable
        assert!(value_compare(
            CmpOp::Eq,
            &AtomicValue::Integer(1),
            &AtomicValue::string("1")
        )
        .is_err());
    }

    #[test]
    fn nan_comparisons() {
        let nan = AtomicValue::Double(f64::NAN);
        assert!(!value_compare(CmpOp::Eq, &nan, &nan).unwrap());
        assert!(value_compare(CmpOp::Ne, &nan, &AtomicValue::Double(1.0)).unwrap());
        assert!(!value_compare(CmpOp::Lt, &nan, &AtomicValue::Double(1.0)).unwrap());
    }

    #[test]
    fn general_compare_is_existential() {
        let xs = Sequence::integers([1, 2, 3]);
        let ys = Sequence::integers([3, 4]);
        assert!(general_compare(CmpOp::Eq, &xs, &ys).unwrap());
        assert!(!general_compare(CmpOp::Eq, &xs, &Sequence::integers([9])).unwrap());
        assert!(general_compare(CmpOp::Lt, &xs, &Sequence::integers([2])).unwrap());
        assert!(!general_compare(CmpOp::Eq, &xs, &Sequence::empty()).unwrap());
        // x != x is true for |x| > 1 (classic XQuery existential quirk)
        assert!(general_compare(CmpOp::Ne, &xs, &xs).unwrap());
    }

    #[test]
    fn dates_compare() {
        let d1 = xqr_types::cast::cast_from_string("2001-01-01", AtomicType::Date).unwrap();
        let d2 = xqr_types::cast::cast_from_string("2002-01-01", AtomicType::Date).unwrap();
        assert!(value_compare(CmpOp::Lt, &d1, &d2).unwrap());
        // untyped vs date: cast the untyped side.
        assert!(value_compare(CmpOp::Eq, &AtomicValue::untyped("2001-01-01"), &d1).unwrap());
    }

    #[test]
    fn order_key_semantics() {
        let empty = Sequence::empty();
        let one = Sequence::integers([1]);
        assert_eq!(
            order_key_compare(&empty, &one, true).unwrap(),
            Ordering::Less
        );
        assert_eq!(
            order_key_compare(&empty, &one, false).unwrap(),
            Ordering::Greater
        );
        assert_eq!(
            order_key_compare(&one, &one, true).unwrap(),
            Ordering::Equal
        );
    }

    #[test]
    fn arithmetic_promotion() {
        let (x, y, t) =
            arithmetic_pair(&AtomicValue::Integer(2), &AtomicValue::Double(0.5)).unwrap();
        assert_eq!(t, AtomicType::Double);
        assert_eq!(x, AtomicValue::Double(2.0));
        assert_eq!(y, AtomicValue::Double(0.5));
        let (x, _, t) =
            arithmetic_pair(&AtomicValue::untyped("3"), &AtomicValue::Integer(1)).unwrap();
        assert_eq!(t, AtomicType::Double);
        assert_eq!(x, AtomicValue::Double(3.0));
        assert!(arithmetic_pair(&AtomicValue::string("x"), &AtomicValue::Integer(1)).is_err());
    }
}
