//! The physical XQuery `GroupBy` of Section 5.
//!
//! `GroupBy[qAgg, qIndices, qNulls]{Op2}{Op1}(Op0)`:
//!
//! 1. tuples from `Op0` are stably sorted ascending by the integer values
//!    of the `qIndices` fields and partitioned on equal values;
//! 2. the **pre-grouping** operator `Op1` is applied to each tuple whose
//!    `qNulls` flags are all false, producing items (not tuples — the
//!    paper's partitions "contain sequences of items instead of tuples of
//!    individual items");
//! 3. the **post-grouping** operator `Op2` is applied once per partition to
//!    the concatenated item sequence and bound to `qAgg`;
//! 4. each partition yields one tuple: its first input tuple extended with
//!    the `qAgg` field.
//!
//! Fig. 4 of the paper is reproduced verbatim in this module's tests.

use std::cmp::Ordering;
use std::collections::HashMap;

use xqr_core::algebra::{Field, Plan};
use xqr_xml::{AtomicValue, Item, Sequence, XmlError};

use crate::compare::effective_boolean_value;
use crate::context::Ctx;
use crate::eval::eval_dep_items;
use crate::pipeline::TupleCursor;
use crate::value::{InputVal, Table, Tuple};

/// Executes a GroupBy over a materialized input table. `stats` (when
/// profiling) receives the number of partitions produced.
#[allow(clippy::too_many_arguments)]
pub fn execute_group_by(
    agg: &Field,
    index_fields: &[Field],
    null_fields: &[Field],
    per_partition: &Plan,
    per_item: &Plan,
    input: Table,
    ctx: &mut Ctx<'_>,
    stats: Option<&crate::profile::OpStats>,
) -> xqr_xml::Result<Table> {
    // Past the governor's soft watermark, partitions accumulate on disk
    // instead of in the keyed vector.
    if ctx.governor.should_spill() {
        return crate::spill::spill_group_by(
            agg,
            index_fields,
            null_fields,
            per_partition,
            per_item,
            input,
            ctx,
            stats,
        );
    }
    // Sort stably by the index-field vector (ascending). The unnesting
    // pipeline produces already-sorted input; the sort makes the operator
    // correct for any input.
    let mut keyed: Vec<(Vec<i64>, Tuple)> = input
        .into_iter()
        .map(|t| {
            let key = index_fields
                .iter()
                .map(|f| index_value(&t, f))
                .collect::<xqr_xml::Result<Vec<i64>>>()?;
            Ok((key, t))
        })
        .collect::<xqr_xml::Result<_>>()?;
    keyed.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = Table::new();
    let mut i = 0;
    while i < keyed.len() {
        let mut j = i + 1;
        while j < keyed.len() && keyed[j].0 == keyed[i].0 {
            j += 1;
        }
        let partition = &keyed[i..j];
        let representative = partition[0].1.clone();
        // Pre-grouping: per-item operator on non-null tuples only.
        let mut items: Vec<Item> = Vec::new();
        for (_, tup) in partition {
            ctx.governor.tick()?;
            if all_nulls_false(tup, null_fields)? {
                let produced = eval_dep_items(per_item, ctx, &InputVal::Tuple(tup.clone()))?;
                ctx.governor.charge_bytes(24 * produced.len() as u64)?;
                items.extend(produced.iter().cloned());
            }
        }
        // Post-grouping: per-partition operator on the item sequence.
        let agg_value = eval_dep_items(
            per_partition,
            ctx,
            &InputVal::Items(Sequence::from_vec(items)),
        )?;
        out.push(representative.with(agg.clone(), agg_value));
        i = j;
    }
    if let Some(s) = stats {
        s.add_partitions(out.len() as u64);
    }
    Ok(out)
}

/// One in-progress partition of the streaming GroupBy.
struct Part {
    key: Vec<i64>,
    rep: Tuple,
    items: Vec<Item>,
}

/// Streaming GroupBy: consumes its input as a cursor — the input table
/// (typically a join output, the largest intermediate of the unnesting
/// pipeline) never materializes, and each tuple is released as soon as its
/// pre-grouping items are extracted. While keys arrive in non-decreasing
/// order (which the unnesting pipeline guarantees by construction) no hash
/// table and no sort are needed: a partition closes the moment its key is
/// passed. The first out-of-order key switches to hash-merging, and the
/// output is key-sorted at the end — producing exactly the tables of
/// [`execute_group_by`] for any input: partitions with equal keys merge,
/// output partitions are ordered by ascending key, the representative is
/// the first tuple seen per partition, and items accumulate in input
/// order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_group_by_streaming<'p>(
    agg: &Field,
    index_fields: &[Field],
    null_fields: &[Field],
    per_partition: &Plan,
    per_item: &Plan,
    src: &mut (dyn TupleCursor<'p> + 'p),
    ctx: &mut Ctx<'_>,
    stats: Option<&crate::profile::OpStats>,
) -> xqr_xml::Result<Table> {
    // Closed partitions; during the sorted phase their keys are strictly
    // increasing and unique. `by_key` is `Some` once an out-of-order key
    // has been seen.
    let mut done: Vec<Part> = Vec::new();
    let mut cur_part: Option<Part> = None;
    let mut by_key: Option<HashMap<Vec<i64>, usize>> = None;
    // Set once the governor's watermark flips mid-stream: accumulated
    // partitions migrate to disk and the rest of the cursor streams
    // straight into the spiller.
    let mut spiller: Option<crate::spill::GroupSpill> = None;
    while let Some(t) = src.next(ctx) {
        let t = t?;
        let key = index_fields
            .iter()
            .map(|f| index_value(&t, f))
            .collect::<xqr_xml::Result<Vec<i64>>>()?;
        // Extract the tuple's items up front: the tuple moves through the
        // binding and back out, so a new partition adopts it as its
        // representative without a clone.
        let (t, items) = if all_nulls_false(&t, null_fields)? {
            let bound = InputVal::Tuple(t);
            let produced = eval_dep_items(per_item, ctx, &bound)?;
            let InputVal::Tuple(t) = bound else {
                unreachable!()
            };
            ctx.governor.charge_bytes(24 * produced.len() as u64)?;
            (t, produced.into_vec())
        } else {
            (t, Vec::new())
        };
        if spiller.is_none() && ctx.governor.should_spill() {
            let mut gs = crate::spill::GroupSpill::new(ctx)?;
            for p in done.drain(..) {
                gs.add(&p.key, &p.rep, &p.items)?;
            }
            if let Some(p) = cur_part.take() {
                gs.add(&p.key, &p.rep, &p.items)?;
            }
            by_key = None;
            spiller = Some(gs);
        }
        if let Some(gs) = &mut spiller {
            gs.add(&key, &t, &items)?;
            continue;
        }
        if let Some(map) = &mut by_key {
            merge_hash(&mut done, map, key, t, items);
            continue;
        }
        match cur_part.as_ref().map(|p| p.key.cmp(&key)) {
            Some(Ordering::Equal) => cur_part.as_mut().unwrap().items.extend(items),
            Some(Ordering::Less) => {
                done.push(cur_part.take().unwrap());
                cur_part = Some(Part { key, rep: t, items });
            }
            None => cur_part = Some(Part { key, rep: t, items }),
            Some(Ordering::Greater) => {
                // Out-of-order key: merge via hash from here on.
                done.push(cur_part.take().unwrap());
                by_key = Some(
                    done.iter()
                        .enumerate()
                        .map(|(i, p)| (p.key.clone(), i))
                        .collect(),
                );
                merge_hash(&mut done, by_key.as_mut().unwrap(), key, t, items);
            }
        }
    }
    if let Some(gs) = spiller {
        return gs.finish(agg, per_partition, ctx, stats);
    }
    if let Some(p) = cur_part.take() {
        done.push(p);
    }
    if by_key.is_some() {
        done.sort_by(|a, b| a.key.cmp(&b.key));
    }
    if let Some(s) = stats {
        s.add_partitions(done.len() as u64);
    }
    let mut out = Table::with_capacity(done.len());
    for p in done {
        let agg_value = eval_dep_items(
            per_partition,
            ctx,
            &InputVal::Items(Sequence::from_vec(p.items)),
        )?;
        out.push(p.rep.with(agg.clone(), agg_value));
    }
    Ok(out)
}

fn merge_hash(
    done: &mut Vec<Part>,
    map: &mut HashMap<Vec<i64>, usize>,
    key: Vec<i64>,
    t: Tuple,
    mut items: Vec<Item>,
) {
    match map.get(&key) {
        Some(&i) => done[i].items.append(&mut items),
        None => {
            map.insert(key.clone(), done.len());
            done.push(Part { key, rep: t, items });
        }
    }
}

pub(crate) fn index_value(t: &Tuple, field: &Field) -> xqr_xml::Result<i64> {
    let seq = t.get(field);
    match seq.get(0) {
        Some(Item::Atomic(AtomicValue::Integer(i))) => Ok(*i),
        None => Ok(0),
        other => Err(XmlError::new(
            "XQRT0006",
            format!("GroupBy index field {field} is not an integer: {other:?}"),
        )),
    }
}

pub(crate) fn all_nulls_false(t: &Tuple, null_fields: &[Field]) -> xqr_xml::Result<bool> {
    for f in null_fields {
        let seq = t.get(f);
        if !seq.is_empty() && effective_boolean_value(&seq)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use xqr_core::algebra::Op;
    use xqr_core::compile::CompiledModule;
    use xqr_core::Plan;
    use xqr_types::Schema;

    fn empty_module() -> CompiledModule {
        CompiledModule {
            functions: HashMap::new(),
            globals: Vec::new(),
            body: Plan::new(Op::Empty),
        }
    }

    fn int_field(name: &str, v: i64) -> (Field, Sequence) {
        (name.into(), Sequence::integers([v]))
    }

    fn bool_field(name: &str, v: bool) -> (Field, Sequence) {
        (name.into(), Sequence::singleton(AtomicValue::Boolean(v)))
    }

    /// Reproduces **Fig. 4** exactly: input/output of the GroupBy for
    /// `for $x in (1,1,3) let $a := avg(for $y in (1,2) where $x <= $y
    /// return $y * 10) return ($x, $a)`.
    #[test]
    fn figure4_input_output() {
        let module = empty_module();
        let schema = Schema::new();
        let docs = HashMap::new();
        let mut ctx = Ctx::new(&module, &schema, &docs, crate::JoinAlgorithm::Hash);

        // Input table from the paper's Fig. 4.
        let rows: Vec<(i64, Option<i64>, i64, bool)> = vec![
            (1, Some(1), 1, false),
            (1, Some(2), 1, false),
            (1, Some(1), 2, false),
            (1, Some(2), 2, false),
            (3, None, 3, true),
        ];
        let input: Table = rows
            .into_iter()
            .map(|(x, y, index, null)| {
                let mut fields = vec![int_field("x", x)];
                if let Some(y) = y {
                    fields.push(int_field("y", y));
                }
                fields.push(int_field("index", index));
                fields.push(bool_field("null", null));
                Tuple::from_fields(fields)
            })
            .collect();

        // Pre-grouping operator: IN#y * 10.
        let per_item = Plan::call(
            "fs:numeric-multiply",
            vec![Plan::in_field("y"), Plan::scalar(AtomicValue::Integer(10))],
        );
        // Post-grouping operator: avg(IN).
        let per_partition = Plan::call("avg", vec![Plan::input()]);

        let out = execute_group_by(
            &Field::from("a"),
            &["index".into()],
            &["null".into()],
            &per_partition,
            &per_item,
            input,
            &mut ctx,
            None,
        )
        .unwrap();

        // Expected output (paper Fig. 4): (x=1, a=15), (x=1, a=15), (x=3, a=()).
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("x"), Sequence::integers([1]));
        assert_eq!(out[0].get("a").atomized()[0].string_value(), "15");
        assert_eq!(out[1].get("x"), Sequence::integers([1]));
        assert_eq!(out[1].get("a").atomized()[0].string_value(), "15");
        assert_eq!(out[2].get("x"), Sequence::integers([3]));
        assert!(
            out[2].get("a").is_empty(),
            "null partition aggregates the empty sequence"
        );
    }

    #[test]
    fn trivial_group_by_single_partition() {
        // No index fields: everything in one partition (the trivial GroupBy
        // introduced by the (insert group-by) rule before map-through).
        let module = empty_module();
        let schema = Schema::new();
        let docs = HashMap::new();
        let mut ctx = Ctx::new(&module, &schema, &docs, crate::JoinAlgorithm::Hash);
        let input: Table = (1..=3)
            .map(|v| Tuple::from_fields(vec![int_field("y", v), bool_field("null", false)]))
            .collect();
        let out = execute_group_by(
            &Field::from("a"),
            &[],
            &["null".into()],
            &Plan::call("count", vec![Plan::input()]),
            &Plan::new(Op::FieldAccess {
                field: "y".into(),
                input: Plan::boxed(Op::Input),
            }),
            input,
            &mut ctx,
            None,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("a"), Sequence::integers([3]));
    }

    #[test]
    fn unsorted_input_is_regrouped() {
        let module = empty_module();
        let schema = Schema::new();
        let docs = HashMap::new();
        let mut ctx = Ctx::new(&module, &schema, &docs, crate::JoinAlgorithm::Hash);
        let input: Table = [2, 1, 2, 1]
            .iter()
            .map(|&k| Tuple::from_fields(vec![int_field("index", k), int_field("v", k * 10)]))
            .collect();
        let out = execute_group_by(
            &Field::from("a"),
            &["index".into()],
            &[],
            &Plan::call("count", vec![Plan::input()]),
            &Plan::new(Op::FieldAccess {
                field: "v".into(),
                input: Plan::boxed(Op::Input),
            }),
            input,
            &mut ctx,
            None,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("index"), Sequence::integers([1]));
        assert_eq!(out[1].get("index"), Sequence::integers([2]));
        assert_eq!(out[0].get("a"), Sequence::integers([2]));
    }
}
