//! The built-in function library: `fn:*`, `op:*`, and the `fs:*` helpers
//! introduced by normalization (general comparisons carrying the Section 6
//! predicate semantics, arithmetic with promotion, document-order
//! maintenance, attribute value templates, dynamic predicate tests).
//!
//! Shared by the algebraic evaluator (`Call` operator) and the direct Core
//! interpreter, so both execution paths agree on semantics.

use std::collections::HashMap;
use std::collections::HashSet;

use xqr_xml::{AtomicType, AtomicValue, Decimal, Item, NodeHandle, NodeKind, Sequence, XmlError};

use crate::compare::{
    arithmetic_pair, atomize_optional, effective_boolean_value, general_compare, value_compare,
    CmpOp,
};

/// Context handed to builtins that touch the environment.
pub struct BuiltinCtx<'a> {
    pub documents: Option<&'a HashMap<String, NodeHandle>>,
}

impl<'a> BuiltinCtx<'a> {
    pub fn none() -> BuiltinCtx<'static> {
        BuiltinCtx { documents: None }
    }
}

fn err(code: &'static str, msg: impl Into<String>) -> XmlError {
    XmlError::new(code, msg)
}

fn singleton_string(args: &[Sequence], i: usize) -> xqr_xml::Result<String> {
    let atoms = args[i].atomized();
    match atoms.len() {
        0 => Ok(String::new()),
        1 => Ok(atoms[0].string_value()),
        _ => Err(err("XPTY0004", "expected a single string")),
    }
}

fn bool_seq(b: bool) -> Sequence {
    Sequence::singleton(AtomicValue::Boolean(b))
}

fn int_seq(i: i64) -> Sequence {
    Sequence::singleton(AtomicValue::Integer(i))
}

/// Is `name` one of the built-in functions this module implements?
pub fn is_builtin(name: &str) -> bool {
    BUILTINS.contains(&name)
}

const BUILTINS: &[&str] = &[
    "data",
    "string",
    "concat",
    "string-join",
    "contains",
    "starts-with",
    "ends-with",
    "substring",
    "substring-before",
    "substring-after",
    "string-length",
    "upper-case",
    "lower-case",
    "normalize-space",
    "translate",
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "empty",
    "exists",
    "not",
    "boolean",
    "distinct-values",
    "reverse",
    "subsequence",
    "insert-before",
    "remove",
    "index-of",
    "zero-or-one",
    "one-or-more",
    "exactly-one",
    "number",
    "abs",
    "round",
    "floor",
    "ceiling",
    "name",
    "local-name",
    "namespace-uri",
    "root",
    "deep-equal",
    "doc",
    "document",
    "fs:avt",
    "fs:distinct-docorder",
    "fs:predicate-test",
    "fs:root",
    "fs:general-eq",
    "fs:general-ne",
    "fs:general-lt",
    "fs:general-le",
    "fs:general-gt",
    "fs:general-ge",
    "fs:value-eq",
    "fs:value-ne",
    "fs:value-lt",
    "fs:value-le",
    "fs:value-gt",
    "fs:value-ge",
    "fs:numeric-add",
    "fs:numeric-subtract",
    "fs:numeric-multiply",
    "fs:numeric-divide",
    "fs:numeric-integer-divide",
    "fs:numeric-mod",
    "fs:numeric-unary-minus",
    "op:to",
    "op:union",
    "op:intersect",
    "op:except",
    "op:is-same-node",
    "op:node-before",
    "op:node-after",
    "clio:deep-distinct",
    "compare",
    "codepoints-to-string",
    "string-to-codepoints",
    "round-half-to-even",
    "year-from-date",
    "month-from-date",
    "day-from-date",
    "hours-from-time",
    "minutes-from-time",
    "seconds-from-time",
    "year-from-dateTime",
    "month-from-dateTime",
    "day-from-dateTime",
    "hours-from-dateTime",
    "minutes-from-dateTime",
    "seconds-from-dateTime",
    "timezone-from-date",
    "timezone-from-dateTime",
];

/// Calls a builtin on evaluated arguments.
pub fn call_builtin(
    name: &str,
    args: &[Sequence],
    ctx: &BuiltinCtx<'_>,
) -> xqr_xml::Result<Sequence> {
    match name {
        // ----- comparisons ------------------------------------------------
        n if n.starts_with("fs:general-") => {
            let op = CmpOp::by_suffix(&n["fs:general-".len()..])
                .ok_or_else(|| err("XQRT0003", format!("unknown comparison {n}")))?;
            need_args(args, 2, n)?;
            Ok(bool_seq(general_compare(op, &args[0], &args[1])?))
        }
        n if n.starts_with("fs:value-") => {
            let op = CmpOp::by_suffix(&n["fs:value-".len()..])
                .ok_or_else(|| err("XQRT0003", format!("unknown comparison {n}")))?;
            need_args(args, 2, n)?;
            let x = atomize_optional(&args[0])?;
            let y = atomize_optional(&args[1])?;
            match (x, y) {
                (Some(x), Some(y)) => Ok(bool_seq(value_compare(op, &x, &y)?)),
                _ => Ok(Sequence::empty()),
            }
        }
        // ----- arithmetic -------------------------------------------------
        "fs:numeric-add"
        | "fs:numeric-subtract"
        | "fs:numeric-multiply"
        | "fs:numeric-divide"
        | "fs:numeric-integer-divide"
        | "fs:numeric-mod" => {
            need_args(args, 2, name)?;
            let x = atomize_optional(&args[0])?;
            let y = atomize_optional(&args[1])?;
            match (x, y) {
                (Some(x), Some(y)) => arithmetic(name, &x, &y).map(Sequence::singleton),
                _ => Ok(Sequence::empty()),
            }
        }
        "fs:numeric-unary-minus" => {
            let x = atomize_optional(&args[0])?;
            match x {
                None => Ok(Sequence::empty()),
                Some(v) => {
                    let (v, _, _) = arithmetic_pair(&v, &AtomicValue::Integer(0))?;
                    Ok(Sequence::singleton(match v {
                        AtomicValue::Integer(i) => AtomicValue::Integer(-i),
                        AtomicValue::Decimal(d) => AtomicValue::Decimal(-d),
                        AtomicValue::Double(d) => AtomicValue::Double(-d),
                        AtomicValue::Float(f) => AtomicValue::Float(-f),
                        _ => unreachable!("numeric"),
                    }))
                }
            }
        }
        // ----- sequences --------------------------------------------------
        "data" => Ok(Sequence::from_atomics(args[0].atomized())),
        "count" => Ok(int_seq(args[0].len() as i64)),
        "empty" => Ok(bool_seq(args[0].is_empty())),
        "exists" => Ok(bool_seq(!args[0].is_empty())),
        "not" => Ok(bool_seq(!effective_boolean_value(&args[0])?)),
        "boolean" => Ok(bool_seq(effective_boolean_value(&args[0])?)),
        "reverse" => {
            let mut v: Vec<Item> = args[0].iter().cloned().collect();
            v.reverse();
            Ok(Sequence::from_vec(v))
        }
        "subsequence" => {
            let start = number_arg(args, 1)?.round() as i64;
            let len = if args.len() > 2 {
                number_arg(args, 2)?.round() as i64
            } else {
                i64::MAX
            };
            let items: Vec<Item> = args[0]
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let pos = *i as i64 + 1;
                    pos >= start && (len == i64::MAX || pos < start + len)
                })
                .map(|(_, it)| it.clone())
                .collect();
            Ok(Sequence::from_vec(items))
        }
        "insert-before" => {
            let pos = (number_arg(args, 1)? as i64).max(1) as usize;
            let mut v: Vec<Item> = args[0].iter().cloned().collect();
            let at = (pos - 1).min(v.len());
            let mut out = v[..at].to_vec();
            out.extend(args[2].iter().cloned());
            out.extend(v.drain(at..));
            Ok(Sequence::from_vec(out))
        }
        "remove" => {
            let pos = number_arg(args, 1)? as i64;
            Ok(Sequence::from_vec(
                args[0]
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (*i as i64 + 1) != pos)
                    .map(|(_, it)| it.clone())
                    .collect(),
            ))
        }
        "index-of" => {
            let target = atomize_optional(&args[1])?
                .ok_or_else(|| err("XPTY0004", "index-of needs a search value"))?;
            let mut out = Vec::new();
            for (i, item) in args[0].iter().enumerate() {
                for a in item.atomized() {
                    if value_compare(CmpOp::Eq, &a, &target).unwrap_or(false) {
                        out.push(Item::Atomic(AtomicValue::Integer(i as i64 + 1)));
                        break;
                    }
                }
            }
            Ok(Sequence::from_vec(out))
        }
        "distinct-values" => {
            let mut seen: HashSet<String> = HashSet::new();
            let mut out = Vec::new();
            for a in args[0].atomized() {
                let key = distinct_key(&a);
                if seen.insert(key) {
                    out.push(Item::Atomic(a));
                }
            }
            Ok(Sequence::from_vec(out))
        }
        "zero-or-one" => {
            if args[0].len() <= 1 {
                Ok(args[0].clone())
            } else {
                Err(err("FORG0003", "zero-or-one: more than one item"))
            }
        }
        "one-or-more" => {
            if args[0].is_empty() {
                Err(err("FORG0004", "one-or-more: empty sequence"))
            } else {
                Ok(args[0].clone())
            }
        }
        "exactly-one" => {
            if args[0].len() == 1 {
                Ok(args[0].clone())
            } else {
                Err(err("FORG0005", "exactly-one: cardinality violation"))
            }
        }
        // ----- aggregates ---------------------------------------------------
        "sum" => aggregate_sum(&args[0], args.get(1)),
        "avg" => {
            if args[0].is_empty() {
                return Ok(Sequence::empty());
            }
            let sum = aggregate_sum(&args[0], None)?;
            let sum = sum.atomized().into_iter().next().expect("sum non-empty");
            let n = AtomicValue::Integer(args[0].len() as i64);
            arithmetic("fs:numeric-divide", &sum, &n).map(Sequence::singleton)
        }
        "min" | "max" => {
            let atoms = numeric_or_string_atoms(&args[0])?;
            let mut best: Option<AtomicValue> = None;
            for a in atoms {
                best = Some(match best {
                    None => a,
                    Some(b) => {
                        let keep_a = value_compare(
                            if name == "min" { CmpOp::Lt } else { CmpOp::Gt },
                            &a,
                            &b,
                        )?;
                        if keep_a {
                            a
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.map(Sequence::singleton).unwrap_or_default())
        }
        // ----- strings ------------------------------------------------------
        "string" => {
            let s = match args[0].len() {
                0 => String::new(),
                1 => args[0].get(0).expect("one").string_value(),
                _ => return Err(err("XPTY0004", "fn:string on a multi-item sequence")),
            };
            Ok(Sequence::singleton(AtomicValue::string(s)))
        }
        "concat" => {
            let mut out = String::new();
            for a in args {
                for atom in a.atomized() {
                    out.push_str(&atom.string_value());
                }
            }
            Ok(Sequence::singleton(AtomicValue::string(out)))
        }
        "string-join" => {
            let sep = singleton_string(args, 1)?;
            let parts: Vec<String> = args[0]
                .atomized()
                .iter()
                .map(|a| a.string_value())
                .collect();
            Ok(Sequence::singleton(AtomicValue::string(parts.join(&sep))))
        }
        "contains" => {
            let h = singleton_string(args, 0)?;
            let n = singleton_string(args, 1)?;
            Ok(bool_seq(h.contains(&n)))
        }
        "starts-with" => {
            let h = singleton_string(args, 0)?;
            let n = singleton_string(args, 1)?;
            Ok(bool_seq(h.starts_with(&n)))
        }
        "ends-with" => {
            let h = singleton_string(args, 0)?;
            let n = singleton_string(args, 1)?;
            Ok(bool_seq(h.ends_with(&n)))
        }
        "substring" => {
            let s = singleton_string(args, 0)?;
            let chars: Vec<char> = s.chars().collect();
            let start = number_arg(args, 1)?.round() as i64;
            let len = if args.len() > 2 {
                number_arg(args, 2)?.round() as i64
            } else {
                i64::MAX
            };
            let out: String = chars
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let pos = *i as i64 + 1;
                    pos >= start && (len == i64::MAX || pos < start + len)
                })
                .map(|(_, c)| *c)
                .collect();
            Ok(Sequence::singleton(AtomicValue::string(out)))
        }
        "substring-before" => {
            let s = singleton_string(args, 0)?;
            let n = singleton_string(args, 1)?;
            Ok(Sequence::singleton(AtomicValue::string(
                s.find(&n).map(|i| s[..i].to_string()).unwrap_or_default(),
            )))
        }
        "substring-after" => {
            let s = singleton_string(args, 0)?;
            let n = singleton_string(args, 1)?;
            Ok(Sequence::singleton(AtomicValue::string(
                s.find(&n)
                    .map(|i| s[i + n.len()..].to_string())
                    .unwrap_or_default(),
            )))
        }
        "string-length" => Ok(int_seq(singleton_string(args, 0)?.chars().count() as i64)),
        "upper-case" => Ok(Sequence::singleton(AtomicValue::string(
            singleton_string(args, 0)?.to_uppercase(),
        ))),
        "lower-case" => Ok(Sequence::singleton(AtomicValue::string(
            singleton_string(args, 0)?.to_lowercase(),
        ))),
        "normalize-space" => {
            let s = singleton_string(args, 0)?;
            Ok(Sequence::singleton(AtomicValue::string(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            )))
        }
        "translate" => {
            let s = singleton_string(args, 0)?;
            let from: Vec<char> = singleton_string(args, 1)?.chars().collect();
            let to: Vec<char> = singleton_string(args, 2)?.chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|f| *f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(Sequence::singleton(AtomicValue::string(out)))
        }
        // ----- numerics -------------------------------------------------------
        "number" => {
            let v = atomize_optional(&args[0])?;
            let d = v
                .and_then(|a| xqr_types::cast_atomic(&a, AtomicType::Double).ok())
                .and_then(|a| a.as_f64())
                .unwrap_or(f64::NAN);
            Ok(Sequence::singleton(AtomicValue::Double(d)))
        }
        "abs" | "round" | "floor" | "ceiling" => {
            let v = atomize_optional(&args[0])?;
            match v {
                None => Ok(Sequence::empty()),
                Some(v) => numeric_unary(name, &v).map(Sequence::singleton),
            }
        }
        // ----- nodes ----------------------------------------------------------
        "name" | "local-name" => {
            let node = singleton_node(&args[0])?;
            let s = match node {
                None => String::new(),
                Some(n) => match n.name() {
                    Some(q) if name == "name" => q.lexical(),
                    Some(q) => q.local_part().to_string(),
                    None => String::new(),
                },
            };
            Ok(Sequence::singleton(AtomicValue::string(s)))
        }
        "namespace-uri" => {
            let node = singleton_node(&args[0])?;
            let s = node
                .and_then(|n| n.name().and_then(|q| q.uri().map(String::from)))
                .unwrap_or_default();
            Ok(Sequence::singleton(AtomicValue::string(s)))
        }
        "root" | "fs:root" => {
            let node = singleton_node(&args[0])?;
            Ok(node
                .map(|n| Sequence::singleton(n.tree_root()))
                .unwrap_or_default())
        }
        "deep-equal" => {
            need_args(args, 2, name)?;
            Ok(bool_seq(deep_equal_sequences(&args[0], &args[1])))
        }
        "doc" | "document" => {
            let uri = singleton_string(args, 0)?;
            let docs = ctx
                .documents
                .ok_or_else(|| err("FODC0002", "no document resolver available"))?;
            docs.get(&uri)
                .cloned()
                .map(Sequence::singleton)
                .ok_or_else(|| err("FODC0002", format!("document not available: {uri}")))
        }
        // ----- op: ------------------------------------------------------------
        "op:to" => {
            let lo = atomize_optional(&args[0])?;
            let hi = atomize_optional(&args[1])?;
            match (lo, hi) {
                (Some(lo), Some(hi)) => {
                    let lo = as_integer(&lo)?;
                    let hi = as_integer(&hi)?;
                    if hi < lo {
                        Ok(Sequence::empty())
                    } else {
                        if (hi - lo) as u64 > 50_000_000 {
                            return Err(err("XQRT0004", "range too large"));
                        }
                        Ok(Sequence::integers(lo..=hi))
                    }
                }
                _ => Ok(Sequence::empty()),
            }
        }
        "op:union" => {
            let mut all: Vec<Item> = args[0].iter().cloned().collect();
            all.extend(args[1].iter().cloned());
            docorder_nodes(Sequence::from_vec(all))
        }
        "op:intersect" => {
            let right: Vec<NodeHandle> = nodes_of(&args[1])?;
            let keep: Vec<Item> = nodes_of(&args[0])?
                .into_iter()
                .filter(|n| right.iter().any(|r| r.same_node(n)))
                .map(Item::Node)
                .collect();
            docorder_nodes(Sequence::from_vec(keep))
        }
        "op:except" => {
            let right: Vec<NodeHandle> = nodes_of(&args[1])?;
            let keep: Vec<Item> = nodes_of(&args[0])?
                .into_iter()
                .filter(|n| !right.iter().any(|r| r.same_node(n)))
                .map(Item::Node)
                .collect();
            docorder_nodes(Sequence::from_vec(keep))
        }
        "op:is-same-node" | "op:node-before" | "op:node-after" => {
            let a = singleton_node(&args[0])?;
            let b = singleton_node(&args[1])?;
            match (a, b) {
                (Some(a), Some(b)) => Ok(bool_seq(match name {
                    "op:is-same-node" => a.same_node(&b),
                    "op:node-before" => a.order_key() < b.order_key(),
                    _ => a.order_key() > b.order_key(),
                })),
                _ => Ok(Sequence::empty()),
            }
        }
        // ----- fs: helpers ------------------------------------------------------
        "fs:avt" => {
            let parts: Vec<String> = args[0]
                .atomized()
                .iter()
                .map(|a| a.string_value())
                .collect();
            Ok(Sequence::singleton(AtomicValue::string(parts.join(" "))))
        }
        "fs:distinct-docorder" => {
            // XPath 2.0 path results: all nodes → sort/dedup in document
            // order; all atomics (a final non-node step) → unchanged; a mix
            // is a type error (XPTY0018).
            let nodes = args[0]
                .iter()
                .filter(|i| matches!(i, Item::Node(_)))
                .count();
            if nodes == args[0].len() {
                docorder_nodes(args[0].clone())
            } else if nodes == 0 {
                Ok(args[0].clone())
            } else {
                Err(err("XPTY0018", "path result mixes nodes and atomic values"))
            }
        }
        "fs:predicate-test" => {
            // Dynamic predicate semantics: a singleton numeric value tests
            // the context position; anything else takes its EBV.
            need_args(args, 2, name)?;
            let v = &args[0];
            if v.len() == 1 {
                if let Some(Item::Atomic(a)) = v.get(0) {
                    if a.type_of().is_numeric() {
                        let pos = atomize_optional(&args[1])?
                            .ok_or_else(|| err("XQRT0003", "missing position"))?;
                        return Ok(bool_seq(value_compare(CmpOp::Eq, a, &pos)?));
                    }
                }
            }
            Ok(bool_seq(effective_boolean_value(v)?))
        }
        "clio:deep-distinct" => {
            // Clio's helper: remove deep-equal duplicates, keep first
            // occurrences. Serialization strings act as the equality key.
            let mut seen: HashSet<String> = HashSet::new();
            let mut out = Vec::new();
            for item in args[0].iter() {
                let key = match item {
                    Item::Node(n) => xqr_xml::serialize::serialize_node(n),
                    Item::Atomic(a) => format!("atom:{}:{}", a.type_of(), a.string_value()),
                };
                if seen.insert(key) {
                    out.push(item.clone());
                }
            }
            Ok(Sequence::from_vec(out))
        }
        "compare" => {
            let a = atomize_optional(&args[0])?;
            let b = atomize_optional(&args[1])?;
            match (a, b) {
                (Some(a), Some(b)) => {
                    let (x, y) = (a.string_value(), b.string_value());
                    Ok(int_seq(match x.cmp(&y) {
                        std::cmp::Ordering::Less => -1,
                        std::cmp::Ordering::Equal => 0,
                        std::cmp::Ordering::Greater => 1,
                    }))
                }
                _ => Ok(Sequence::empty()),
            }
        }
        "string-to-codepoints" => {
            let s = singleton_string(args, 0)?;
            Ok(Sequence::integers(s.chars().map(|c| c as i64)))
        }
        "codepoints-to-string" => {
            let mut out = String::new();
            for a in args[0].atomized() {
                let cp = as_integer(&a)?;
                let c = u32::try_from(cp)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| err("FOCH0001", format!("invalid codepoint {cp}")))?;
                out.push(c);
            }
            Ok(Sequence::singleton(AtomicValue::string(out)))
        }
        "round-half-to-even" => {
            let v = atomize_optional(&args[0])?;
            match v {
                None => Ok(Sequence::empty()),
                Some(AtomicValue::Integer(i)) => Ok(int_seq(i)),
                Some(AtomicValue::Decimal(d)) => {
                    // Exact fixed-point banker's rounding: no f64 round-trip.
                    const UNIT: i128 = 1_000_000;
                    let units = d.units();
                    let rem = units.rem_euclid(UNIT);
                    let base = units - rem;
                    let rounded = if rem * 2 > UNIT || (rem * 2 == UNIT && (base / UNIT) % 2 != 0) {
                        base + UNIT
                    } else {
                        base
                    };
                    Ok(Sequence::singleton(AtomicValue::Decimal(
                        Decimal::from_units(rounded),
                    )))
                }
                Some(v) => {
                    let d = v
                        .as_f64()
                        .ok_or_else(|| err("XPTY0004", "round-half-to-even on non-numeric"))?;
                    let r = if (d - d.trunc()).abs() == 0.5 {
                        let down = d.floor();
                        if (down as i64) % 2 == 0 {
                            down
                        } else {
                            down + 1.0
                        }
                    } else {
                        d.round()
                    };
                    Ok(Sequence::singleton(if v.type_of() == AtomicType::Float {
                        AtomicValue::Float(r as f32)
                    } else {
                        AtomicValue::Double(r)
                    }))
                }
            }
        }
        n if n.ends_with("-from-date")
            || n.ends_with("-from-dateTime")
            || n.ends_with("-from-time") =>
        {
            let v = atomize_optional(&args[0])?;
            match v {
                None => Ok(Sequence::empty()),
                Some(v) => temporal_component(n, &v),
            }
        }
        other => Err(err("XPST0017", format!("unknown function {other}()"))),
    }
}

/// `fn:year-from-date` and friends: component accessors on the calendar
/// types.
fn temporal_component(name: &str, v: &AtomicValue) -> xqr_xml::Result<Sequence> {
    use AtomicValue as V;
    let bad = || {
        err(
            "XPTY0004",
            format!("{name}() applied to a {} value", v.type_of()),
        )
    };
    let (date, millis) = match v {
        V::Date(d) => (Some(*d), None),
        V::Time(t) => (None, Some(t.millis as i64)),
        V::DateTime(dt) => (Some(dt.date), Some(dt.millis as i64)),
        V::UntypedAtomic(_) | V::String(_) => {
            // Lexical convenience: cast to the type the accessor names.
            let target = if name.ends_with("-from-date") {
                AtomicType::Date
            } else if name.ends_with("-from-dateTime") {
                AtomicType::DateTime
            } else {
                AtomicType::Time
            };
            let cast = xqr_types::cast_atomic(v, target)?;
            return temporal_component(name, &cast);
        }
        _ => return Err(bad()),
    };
    let part = name.split("-from-").next().unwrap_or(name);
    let out = match part {
        "year" => AtomicValue::Integer(date.ok_or_else(bad)?.year as i64),
        "month" => AtomicValue::Integer(date.ok_or_else(bad)?.month as i64),
        "day" => AtomicValue::Integer(date.ok_or_else(bad)?.day as i64),
        "hours" => AtomicValue::Integer(millis.ok_or_else(bad)? / 3_600_000),
        "minutes" => AtomicValue::Integer(millis.ok_or_else(bad)? / 60_000 % 60),
        "seconds" => {
            let ms = millis.ok_or_else(bad)?;
            let whole = ms / 1000 % 60;
            let frac = ms % 1000;
            if frac == 0 {
                AtomicValue::Decimal(Decimal::from_i64(whole))
            } else {
                AtomicValue::Decimal(Decimal::from_units(
                    (whole * 1_000_000 + frac * 1000) as i128,
                ))
            }
        }
        "timezone" => match date.ok_or_else(bad)?.tz_minutes {
            None => return Ok(Sequence::empty()),
            Some(m) => AtomicValue::Duration(xqr_xml::temporal::Duration {
                months: 0,
                millis: m as i64 * 60_000,
            }),
        },
        _ => return Err(err("XPST0017", format!("unknown accessor {name}()"))),
    };
    Ok(Sequence::singleton(out))
}

fn need_args(args: &[Sequence], n: usize, name: &str) -> xqr_xml::Result<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(err(
            "XPST0017",
            format!("{name}() expects {n} arguments, got {}", args.len()),
        ))
    }
}

fn number_arg(args: &[Sequence], i: usize) -> xqr_xml::Result<f64> {
    atomize_optional(&args[i])?
        .and_then(|a| xqr_types::cast_atomic(&a, AtomicType::Double).ok())
        .and_then(|a| a.as_f64())
        .ok_or_else(|| err("XPTY0004", "expected a numeric argument"))
}

fn as_integer(v: &AtomicValue) -> xqr_xml::Result<i64> {
    match xqr_types::cast_atomic(v, AtomicType::Integer)? {
        AtomicValue::Integer(i) => Ok(i),
        _ => unreachable!(),
    }
}

fn singleton_node(seq: &Sequence) -> xqr_xml::Result<Option<NodeHandle>> {
    match seq.len() {
        0 => Ok(None),
        1 => match seq.get(0).expect("one") {
            Item::Node(n) => Ok(Some(n.clone())),
            Item::Atomic(_) => Err(err("XPTY0004", "expected a node")),
        },
        _ => Err(err("XPTY0004", "expected at most one node")),
    }
}

fn nodes_of(seq: &Sequence) -> xqr_xml::Result<Vec<NodeHandle>> {
    seq.iter()
        .map(|i| match i {
            Item::Node(n) => Ok(n.clone()),
            Item::Atomic(_) => Err(err("XPTY0004", "expected nodes only")),
        })
        .collect()
}

fn docorder_nodes(seq: Sequence) -> xqr_xml::Result<Sequence> {
    let mut nodes = nodes_of(&seq)?;
    nodes.sort_by_key(|n| n.order_key());
    nodes.dedup_by(|a, b| a.same_node(b));
    Ok(Sequence::from_vec(
        nodes.into_iter().map(Item::Node).collect(),
    ))
}

/// Arithmetic dispatch after pair promotion.
pub(crate) fn arithmetic(
    name: &str,
    x: &AtomicValue,
    y: &AtomicValue,
) -> xqr_xml::Result<AtomicValue> {
    use AtomicValue as V;
    let (x, y, t) = arithmetic_pair(x, y)?;
    let op = &name["fs:numeric-".len()..];
    // idiv/div special rules.
    if op == "integer-divide" {
        let (fx, fy) = (x.as_f64().expect("num"), y.as_f64().expect("num"));
        if fy == 0.0 {
            return Err(err("FOAR0001", "integer division by zero"));
        }
        let q = (fx / fy).trunc();
        // NaN operands or a quotient outside the i64 range must be a
        // dynamic error, not a saturated/zeroed cast.
        if !q.is_finite() || q < i64::MIN as f64 || q > i64::MAX as f64 {
            return Err(err("FOAR0002", "integer division overflow"));
        }
        return Ok(V::Integer(q as i64));
    }
    if op == "divide" && matches!(t, AtomicType::Integer | AtomicType::Decimal) {
        // Integer ÷ integer is decimal division per F&O.
        let dx = match &x {
            V::Integer(i) => Decimal::from_i64(*i),
            V::Decimal(d) => *d,
            _ => unreachable!(),
        };
        let dy = match &y {
            V::Integer(i) => Decimal::from_i64(*i),
            V::Decimal(d) => *d,
            _ => unreachable!(),
        };
        return dx
            .checked_div(dy)
            .map(V::Decimal)
            .ok_or_else(|| err("FOAR0001", "division by zero"));
    }
    Ok(match (x, y) {
        (V::Integer(a), V::Integer(b)) => match op {
            "add" => V::Integer(
                a.checked_add(b)
                    .ok_or_else(|| err("FOAR0002", "overflow"))?,
            ),
            "subtract" => V::Integer(
                a.checked_sub(b)
                    .ok_or_else(|| err("FOAR0002", "overflow"))?,
            ),
            "multiply" => V::Integer(
                a.checked_mul(b)
                    .ok_or_else(|| err("FOAR0002", "overflow"))?,
            ),
            "mod" => {
                if b == 0 {
                    return Err(err("FOAR0001", "modulus by zero"));
                }
                V::Integer(a % b)
            }
            _ => unreachable!("{op}"),
        },
        (V::Decimal(a), V::Decimal(b)) => match op {
            "add" => V::Decimal(
                a.checked_add(b)
                    .ok_or_else(|| err("FOAR0002", "overflow"))?,
            ),
            "subtract" => V::Decimal(
                a.checked_sub(b)
                    .ok_or_else(|| err("FOAR0002", "overflow"))?,
            ),
            "multiply" => V::Decimal(
                a.checked_mul(b)
                    .ok_or_else(|| err("FOAR0002", "overflow"))?,
            ),
            "mod" => {
                let q = a
                    .checked_div(b)
                    .ok_or_else(|| err("FOAR0001", "modulus by zero"))?;
                let trunc = Decimal::from_i64(q.trunc_to_i64());
                // a - trunc(a/b)*b can overflow the fixed-point range for
                // extreme operands: a dynamic error, not a panic.
                let prod = trunc
                    .checked_mul(b)
                    .ok_or_else(|| err("FOAR0002", "overflow in mod"))?;
                V::Decimal(
                    a.checked_sub(prod)
                        .ok_or_else(|| err("FOAR0002", "overflow in mod"))?,
                )
            }
            _ => unreachable!("{op}"),
        },
        (vx, vy) => {
            let (a, b) = (vx.as_f64().expect("num"), vy.as_f64().expect("num"));
            let r = match op {
                "add" => a + b,
                "subtract" => a - b,
                "multiply" => a * b,
                "divide" => a / b,
                "mod" => a % b,
                _ => unreachable!("{op}"),
            };
            if t == AtomicType::Float {
                V::Float(r as f32)
            } else {
                V::Double(r)
            }
        }
    })
}

fn numeric_unary(name: &str, v: &AtomicValue) -> xqr_xml::Result<AtomicValue> {
    use AtomicValue as V;
    let v = match v.type_of() {
        AtomicType::UntypedAtomic => xqr_types::cast_atomic(v, AtomicType::Double)?,
        t if t.is_numeric() => v.clone(),
        t => return Err(err("XPTY0004", format!("{name}() on non-numeric {t}"))),
    };
    Ok(match (name, v) {
        ("abs", V::Integer(i)) => V::Integer(i.abs()),
        ("abs", V::Decimal(d)) => V::Decimal(d.abs()),
        ("abs", V::Double(d)) => V::Double(d.abs()),
        ("abs", V::Float(f)) => V::Float(f.abs()),
        ("round", V::Integer(i)) => V::Integer(i),
        ("round", V::Decimal(d)) => V::Decimal(d.round()),
        ("round", V::Double(d)) => V::Double((d + 0.5).floor()),
        ("round", V::Float(f)) => V::Float((f + 0.5).floor()),
        ("floor", V::Integer(i)) => V::Integer(i),
        ("floor", V::Decimal(d)) => V::Decimal(d.floor()),
        ("floor", V::Double(d)) => V::Double(d.floor()),
        ("floor", V::Float(f)) => V::Float(f.floor()),
        ("ceiling", V::Integer(i)) => V::Integer(i),
        ("ceiling", V::Decimal(d)) => V::Decimal(d.ceiling()),
        ("ceiling", V::Double(d)) => V::Double(d.ceil()),
        ("ceiling", V::Float(f)) => V::Float(f.ceil()),
        _ => unreachable!(),
    })
}

fn aggregate_sum(seq: &Sequence, zero: Option<&Sequence>) -> xqr_xml::Result<Sequence> {
    if seq.is_empty() {
        return Ok(match zero {
            Some(z) => z.clone(),
            None => int_seq(0),
        });
    }
    let mut acc: Option<AtomicValue> = None;
    for a in seq.atomized() {
        acc = Some(match acc {
            None => {
                // Untyped leading values become doubles.
                if a.type_of() == AtomicType::UntypedAtomic {
                    xqr_types::cast_atomic(&a, AtomicType::Double)?
                } else {
                    a
                }
            }
            Some(b) => arithmetic("fs:numeric-add", &b, &a)?,
        });
    }
    Ok(Sequence::singleton(acc.expect("non-empty")))
}

fn numeric_or_string_atoms(seq: &Sequence) -> xqr_xml::Result<Vec<AtomicValue>> {
    Ok(seq
        .atomized()
        .into_iter()
        .map(|a| {
            if a.type_of() == AtomicType::UntypedAtomic {
                xqr_types::cast_atomic(&a, AtomicType::Double).unwrap_or(a)
            } else {
                a
            }
        })
        .collect())
}

fn distinct_key(a: &AtomicValue) -> String {
    use AtomicValue as V;
    match a {
        V::Integer(_) | V::Decimal(_) | V::Double(_) | V::Float(_) => {
            format!("num:{}", a.as_f64().expect("numeric"))
        }
        V::String(s) | V::UntypedAtomic(s) | V::AnyUri(s) => format!("str:{s}"),
        V::Boolean(b) => format!("bool:{b}"),
        other => format!("{}:{}", other.type_of(), other.string_value()),
    }
}

/// Deep equality over sequences (fn:deep-equal with default collation).
pub fn deep_equal_sequences(a: &Sequence, b: &Sequence) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b.iter()).all(|(x, y)| deep_equal_items(x, y))
}

fn deep_equal_items(a: &Item, b: &Item) -> bool {
    match (a, b) {
        (Item::Atomic(x), Item::Atomic(y)) => value_compare(CmpOp::Eq, x, y).unwrap_or(false),
        (Item::Node(x), Item::Node(y)) => deep_equal_nodes(x, y),
        _ => false,
    }
}

fn deep_equal_nodes(a: &NodeHandle, b: &NodeHandle) -> bool {
    if a.kind() != b.kind() {
        return false;
    }
    match a.kind() {
        NodeKind::Text | NodeKind::Comment | NodeKind::Pi | NodeKind::Attribute => {
            a.name() == b.name() && a.string_value() == b.string_value()
        }
        NodeKind::Element => {
            if a.name() != b.name() {
                return false;
            }
            let (aa, ba) = (a.attributes(), b.attributes());
            if aa.len() != ba.len() {
                return false;
            }
            for attr in &aa {
                if !ba.iter().any(|other| {
                    other.name() == attr.name() && other.string_value() == attr.string_value()
                }) {
                    return false;
                }
            }
            let (ac, bc) = (a.children(), b.children());
            // Comments/PIs are ignored for element content comparison.
            let keep = |n: &&NodeHandle| matches!(n.kind(), NodeKind::Element | NodeKind::Text);
            let ac: Vec<&NodeHandle> = ac.iter().filter(keep).collect();
            let bc: Vec<&NodeHandle> = bc.iter().filter(keep).collect();
            ac.len() == bc.len()
                && ac
                    .iter()
                    .zip(bc.iter())
                    .all(|(x, y)| deep_equal_nodes(x, y))
        }
        NodeKind::Document => {
            let (ac, bc) = (a.children(), b.children());
            ac.len() == bc.len()
                && ac
                    .iter()
                    .zip(bc.iter())
                    .all(|(x, y)| deep_equal_nodes(x, y))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: &[Sequence]) -> Sequence {
        call_builtin(name, args, &BuiltinCtx::none()).unwrap()
    }

    fn s(v: &str) -> Sequence {
        Sequence::singleton(AtomicValue::string(v))
    }

    #[test]
    fn string_functions() {
        assert_eq!(call("concat", &[s("a"), s("b"), s("c")]), s("abc"));
        assert_eq!(call("contains", &[s("hello"), s("ell")]), bool_seq(true));
        assert_eq!(
            call("substring", &[s("hello"), Sequence::integers([2])]),
            s("ello")
        );
        assert_eq!(
            call(
                "substring",
                &[s("hello"), Sequence::integers([2]), Sequence::integers([2])]
            ),
            s("el")
        );
        assert_eq!(call("string-length", &[s("héllo")]), int_seq(5));
        assert_eq!(call("normalize-space", &[s("  a   b ")]), s("a b"));
        assert_eq!(call("translate", &[s("abcab"), s("ab"), s("x")]), s("xcx"));
        assert_eq!(call("substring-before", &[s("a=b"), s("=")]), s("a"));
        assert_eq!(call("substring-after", &[s("a=b"), s("=")]), s("b"));
        assert_eq!(
            call("string-join", &[Sequence::integers([1, 2]), s("-")]),
            s("1-2")
        );
    }

    #[test]
    fn aggregates() {
        assert_eq!(call("count", &[Sequence::integers([1, 2, 3])]), int_seq(3));
        assert_eq!(call("sum", &[Sequence::integers([1, 2, 3])]), int_seq(6));
        assert_eq!(call("sum", &[Sequence::empty()]), int_seq(0));
        assert_eq!(call("avg", &[Sequence::empty()]), Sequence::empty());
        // avg of integers is a decimal.
        let avg = call("avg", &[Sequence::integers([1, 2])]);
        assert_eq!(avg.atomized()[0].string_value(), "1.5");
        assert_eq!(call("min", &[Sequence::integers([3, 1, 2])]), int_seq(1));
        assert_eq!(call("max", &[Sequence::integers([3, 1, 2])]), int_seq(3));
        // untyped values aggregate as doubles
        let m = call(
            "max",
            &[Sequence::from_atomics(vec![
                AtomicValue::untyped("10"),
                AtomicValue::untyped("9"),
            ])],
        );
        assert_eq!(m.atomized()[0], AtomicValue::Double(10.0));
    }

    #[test]
    fn arithmetic_semantics() {
        // integer div integer → decimal
        let r = call(
            "fs:numeric-divide",
            &[Sequence::integers([1]), Sequence::integers([2])],
        );
        assert_eq!(r.atomized()[0].string_value(), "0.5");
        let r = call(
            "fs:numeric-integer-divide",
            &[Sequence::integers([7]), Sequence::integers([2])],
        );
        assert_eq!(r, int_seq(3));
        let r = call(
            "fs:numeric-mod",
            &[Sequence::integers([7]), Sequence::integers([2])],
        );
        assert_eq!(r, int_seq(1));
        // empty propagates
        assert!(call(
            "fs:numeric-add",
            &[Sequence::empty(), Sequence::integers([1])]
        )
        .is_empty());
        // division by zero
        assert!(call_builtin(
            "fs:numeric-divide",
            &[Sequence::integers([1]), Sequence::integers([0])],
            &BuiltinCtx::none()
        )
        .is_err());
    }

    #[test]
    fn integer_divide_overflow_is_dynamic_error() {
        // Quotient far outside the i64 range: FOAR0002, not a silent
        // saturated cast (and never a panic).
        let huge = Sequence::singleton(AtomicValue::Double(1.0e300));
        let tiny = Sequence::singleton(AtomicValue::Double(1.0e-300));
        let err = call_builtin(
            "fs:numeric-integer-divide",
            &[huge, tiny],
            &BuiltinCtx::none(),
        )
        .unwrap_err();
        assert_eq!(err.code, "FOAR0002");
        // NaN dividend: FOAR0002, not a silent zero.
        let nan = Sequence::singleton(AtomicValue::Double(f64::NAN));
        let err = call_builtin(
            "fs:numeric-integer-divide",
            &[nan, Sequence::integers([2])],
            &BuiltinCtx::none(),
        )
        .unwrap_err();
        assert_eq!(err.code, "FOAR0002");
    }

    #[test]
    fn decimal_mod_stays_correct_after_hardening() {
        let a = Sequence::singleton(AtomicValue::Decimal(Decimal::parse("7.5").unwrap()));
        let b = Sequence::singleton(AtomicValue::Decimal(Decimal::parse("2").unwrap()));
        let r = call("fs:numeric-mod", &[a, b]);
        assert_eq!(r.atomized()[0].string_value(), "1.5");
    }

    #[test]
    fn general_vs_value_comparisons() {
        let r = call(
            "fs:general-eq",
            &[Sequence::integers([1, 2, 3]), Sequence::integers([3, 9])],
        );
        assert_eq!(r, bool_seq(true));
        let r = call(
            "fs:value-eq",
            &[Sequence::integers([1]), Sequence::integers([1])],
        );
        assert_eq!(r, bool_seq(true));
        let r = call("fs:value-eq", &[Sequence::empty(), Sequence::integers([1])]);
        assert!(r.is_empty());
    }

    #[test]
    fn sequence_functions() {
        assert_eq!(
            call("reverse", &[Sequence::integers([1, 2])]),
            Sequence::integers([2, 1])
        );
        assert_eq!(
            call(
                "subsequence",
                &[
                    Sequence::integers([1, 2, 3, 4]),
                    Sequence::integers([2]),
                    Sequence::integers([2])
                ]
            ),
            Sequence::integers([2, 3])
        );
        assert_eq!(
            call(
                "remove",
                &[Sequence::integers([1, 2, 3]), Sequence::integers([2])]
            ),
            Sequence::integers([1, 3])
        );
        assert_eq!(
            call(
                "index-of",
                &[Sequence::integers([10, 20, 10]), Sequence::integers([10])]
            ),
            Sequence::integers([1, 3])
        );
        assert_eq!(
            call("distinct-values", &[Sequence::integers([1, 2, 1, 3, 2])]),
            Sequence::integers([1, 2, 3])
        );
        // distinct-values merges integer and double forms of the same number
        let r = call(
            "distinct-values",
            &[Sequence::from_atomics(vec![
                AtomicValue::Integer(1),
                AtomicValue::Double(1.0),
            ])],
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn range() {
        assert_eq!(
            call("op:to", &[Sequence::integers([2]), Sequence::integers([5])]),
            Sequence::integers([2, 3, 4, 5])
        );
        assert!(call("op:to", &[Sequence::integers([5]), Sequence::integers([2])]).is_empty());
    }

    #[test]
    fn cardinality_checks() {
        assert!(call_builtin(
            "exactly-one",
            &[Sequence::integers([1, 2])],
            &BuiltinCtx::none()
        )
        .is_err());
        assert!(call_builtin("one-or-more", &[Sequence::empty()], &BuiltinCtx::none()).is_err());
        assert_eq!(call("zero-or-one", &[Sequence::empty()]), Sequence::empty());
    }

    #[test]
    fn predicate_test_dynamic() {
        // Numeric value: position test.
        let r = call(
            "fs:predicate-test",
            &[Sequence::integers([2]), Sequence::integers([2])],
        );
        assert_eq!(r, bool_seq(true));
        let r = call(
            "fs:predicate-test",
            &[Sequence::integers([2]), Sequence::integers([3])],
        );
        assert_eq!(r, bool_seq(false));
        // Boolean-ish value: EBV.
        let r = call(
            "fs:predicate-test",
            &[s("nonempty"), Sequence::integers([9])],
        );
        assert_eq!(r, bool_seq(true));
        let r = call(
            "fs:predicate-test",
            &[Sequence::empty(), Sequence::integers([1])],
        );
        assert_eq!(r, bool_seq(false));
    }

    #[test]
    fn deep_equal_and_distinct() {
        use xqr_xml::parse::{parse_document, ParseOptions};
        let d1 = parse_document("<a x=\"1\"><b>t</b></a>", &ParseOptions::default()).unwrap();
        let d2 = parse_document("<a x=\"1\"><b>t</b></a>", &ParseOptions::default()).unwrap();
        let d3 = parse_document("<a x=\"2\"><b>t</b></a>", &ParseOptions::default()).unwrap();
        let s1 = Sequence::singleton(d1.root().children()[0].clone());
        let s2 = Sequence::singleton(d2.root().children()[0].clone());
        let s3 = Sequence::singleton(d3.root().children()[0].clone());
        assert_eq!(
            call("deep-equal", &[s1.clone(), s2.clone()]),
            bool_seq(true)
        );
        assert_eq!(
            call("deep-equal", &[s1.clone(), s3.clone()]),
            bool_seq(false)
        );
        let all = s1.concat(&s2).concat(&s3);
        let distinct = call("clio:deep-distinct", &[all]);
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn unknown_function_errors() {
        assert!(call_builtin("no-such-fn", &[], &BuiltinCtx::none()).is_err());
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    fn call(name: &str, args: &[Sequence]) -> Sequence {
        call_builtin(name, args, &BuiltinCtx::none()).unwrap()
    }

    fn s(v: &str) -> Sequence {
        Sequence::singleton(AtomicValue::string(v))
    }

    #[test]
    fn compare_three_way() {
        assert_eq!(call("compare", &[s("a"), s("b")]), Sequence::integers([-1]));
        assert_eq!(call("compare", &[s("b"), s("b")]), Sequence::integers([0]));
        assert_eq!(call("compare", &[s("c"), s("b")]), Sequence::integers([1]));
        assert!(call("compare", &[Sequence::empty(), s("b")]).is_empty());
    }

    #[test]
    fn codepoints_round_trip() {
        let cps = call("string-to-codepoints", &[s("héllo")]);
        assert_eq!(cps.len(), 5);
        assert_eq!(call("codepoints-to-string", &[cps]), s("héllo"));
        assert!(call_builtin(
            "codepoints-to-string",
            &[Sequence::integers([0x110000])],
            &BuiltinCtx::none()
        )
        .is_err());
    }

    #[test]
    fn round_half_to_even_banker() {
        let half = |v: f64| {
            call(
                "round-half-to-even",
                &[Sequence::singleton(AtomicValue::Double(v))],
            )
            .atomized()[0]
                .string_value()
        };
        assert_eq!(half(0.5), "0");
        assert_eq!(half(1.5), "2");
        assert_eq!(half(2.5), "2");
        assert_eq!(half(-0.5), "0");
        assert_eq!(half(2.4), "2");
        assert!(call("round-half-to-even", &[Sequence::empty()]).is_empty());
    }

    #[test]
    fn date_components() {
        let d = xqr_types::cast::cast_from_string("2004-07-15-05:00", AtomicType::Date).unwrap();
        let arg = [Sequence::singleton(d)];
        assert_eq!(call("year-from-date", &arg), Sequence::integers([2004]));
        assert_eq!(call("month-from-date", &arg), Sequence::integers([7]));
        assert_eq!(call("day-from-date", &arg), Sequence::integers([15]));
        let tz = call("timezone-from-date", &arg);
        assert_eq!(tz.atomized()[0].string_value(), "-PT5H");
    }

    #[test]
    fn time_and_datetime_components() {
        let t = xqr_types::cast::cast_from_string("13:20:30.5", AtomicType::Time).unwrap();
        let arg = [Sequence::singleton(t)];
        assert_eq!(call("hours-from-time", &arg), Sequence::integers([13]));
        assert_eq!(call("minutes-from-time", &arg), Sequence::integers([20]));
        assert_eq!(
            call("seconds-from-time", &arg).atomized()[0].string_value(),
            "30.5"
        );
        let dt = xqr_types::cast::cast_from_string("1999-05-31T13:20:00Z", AtomicType::DateTime)
            .unwrap();
        let arg = [Sequence::singleton(dt)];
        assert_eq!(call("year-from-dateTime", &arg), Sequence::integers([1999]));
        assert_eq!(call("hours-from-dateTime", &arg), Sequence::integers([13]));
        // Lexical convenience: untyped input is cast first.
        assert_eq!(
            call(
                "year-from-date",
                &[Sequence::singleton(AtomicValue::untyped("2003-01-02"))]
            ),
            Sequence::integers([2003])
        );
    }

    #[test]
    fn component_on_wrong_type_errors() {
        assert!(call_builtin(
            "year-from-date",
            &[Sequence::integers([5])],
            &BuiltinCtx::none()
        )
        .is_err());
    }
}

#[cfg(test)]
mod review_regression_tests {
    use super::*;

    #[test]
    fn round_half_to_even_decimal_is_exact() {
        // Regression: big decimals must round exactly (no f64 detour).
        let d = Decimal::parse("123456789.5").unwrap();
        let out = call_builtin(
            "round-half-to-even",
            &[Sequence::singleton(AtomicValue::Decimal(d))],
            &BuiltinCtx::none(),
        )
        .unwrap();
        assert_eq!(out.atomized()[0].string_value(), "123456790");
        let d = Decimal::parse("2.5").unwrap();
        let out = call_builtin(
            "round-half-to-even",
            &[Sequence::singleton(AtomicValue::Decimal(d))],
            &BuiltinCtx::none(),
        )
        .unwrap();
        assert_eq!(out.atomized()[0].string_value(), "2");
        let d = Decimal::parse("-2.5").unwrap();
        let out = call_builtin(
            "round-half-to-even",
            &[Sequence::singleton(AtomicValue::Decimal(d))],
            &BuiltinCtx::none(),
        )
        .unwrap();
        assert_eq!(out.atomized()[0].string_value(), "-2");
    }

    #[test]
    fn timezone_from_datetime_registered() {
        let dt =
            xqr_types::cast::cast_from_string("2001-01-01T00:00:00+05:30", AtomicType::DateTime)
                .unwrap();
        let out = call_builtin(
            "timezone-from-dateTime",
            &[Sequence::singleton(dt)],
            &BuiltinCtx::none(),
        )
        .unwrap();
        assert_eq!(out.atomized()[0].string_value(), "PT5H30M");
    }
}
