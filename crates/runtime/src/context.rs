//! The dynamic evaluation context (the paper's implicit *algebra context*:
//! function parameters and compiled plans for user functions, plus globals,
//! loaded documents, the schema, and physical-operator configuration).

use std::collections::HashMap;

use xqr_core::CompiledModule;
use xqr_types::Schema;
use xqr_xml::{Governor, NodeHandle, QName, Sequence, XmlError};

/// Which physical algorithm `Join`/`LOuterJoin` use when an equality key
/// can be split across the inputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinAlgorithm {
    /// Always nested loop (the paper's "NL Join" column).
    NestedLoop,
    /// The typed, order-preserving hash join of Fig. 6.
    Hash,
    /// The order-preserving B-tree index (sort) join.
    Sort,
}

/// Dynamic context for plan evaluation.
pub struct Ctx<'a> {
    pub module: &'a CompiledModule,
    pub schema: &'a Schema,
    /// Pre-loaded documents for `Parse` (fn:doc), keyed by URI.
    pub documents: &'a HashMap<String, NodeHandle>,
    /// Global variable values (externals and evaluated declarations).
    pub globals: HashMap<QName, Sequence>,
    /// Function-call frames (parameters by name).
    frames: Vec<HashMap<QName, Sequence>>,
    pub join_algorithm: JoinAlgorithm,
    /// Pipelined (cursor) execution of the tuple operators; `false` forces
    /// full materialization between all operators (the original strategy,
    /// kept as `CompileOptions::materialize_all` and for ablation).
    pub pipelined: bool,
    /// Batched (vectorized) execution of the pipelined operators: fused,
    /// type-specialized comparison kernels for provably safe predicate
    /// shapes, with per-row scalar fallback everywhere else. On by
    /// default; `false` (`CompileOptions::scalar_kernels`) forces every
    /// predicate down the row-at-a-time scalar path. No effect when
    /// `pipelined` is false — the materialized strategy stays the plain
    /// scalar reference implementation.
    pub batched: bool,
    /// The resource governor: budgets, deadline, cancellation, and the
    /// single source of truth for user-function recursion depth (shared
    /// with the Core interpreter, which tracks depth through the same
    /// type).
    pub governor: Governor,
    /// Per-operator profiling (`explain_analyze`). `None` — the default —
    /// leaves every instrumentation site at a single branch test.
    pub profiler: Option<crate::profile::Profiler>,
    /// The query's scoped spill directory, created lazily on first spill
    /// and removed (with everything in it) when the context drops — the
    /// engine drops the context on every exit path, including unwinds.
    spill: Option<std::rc::Rc<crate::spill::SpillManager>>,
    /// Per-step-site compiled-test caches for the eager `TreeJoin` arm,
    /// keyed by plan address. A step inside a per-tuple dependent plan is
    /// re-evaluated once per row; without this it recompiles its node test
    /// (a `QName` allocation plus an interned-name hash lookup) every
    /// time. Addresses can be recycled mid-run (per-call function-body
    /// clones), which is safe: the cache verifies its own `(axis, test)`
    /// site and self-clears on mismatch (see `xqr_xml::axes::TestCache`).
    step_tests: std::cell::RefCell<
        HashMap<usize, std::rc::Rc<std::cell::RefCell<xqr_xml::axes::TestCache>>>,
    >,
}

impl<'a> Ctx<'a> {
    pub fn new(
        module: &'a CompiledModule,
        schema: &'a Schema,
        documents: &'a HashMap<String, NodeHandle>,
        join_algorithm: JoinAlgorithm,
    ) -> Self {
        Ctx {
            module,
            schema,
            documents,
            globals: HashMap::new(),
            frames: Vec::new(),
            join_algorithm,
            pipelined: true,
            batched: true,
            governor: Governor::unlimited(),
            profiler: None,
            spill: None,
            step_tests: std::cell::RefCell::new(HashMap::new()),
        }
    }

    /// The compiled-test cache for a `TreeJoin` step site, creating it on
    /// first use. Bounded defensively: a pathological plan churn (many
    /// distinct sites) clears the whole map rather than growing without
    /// limit.
    pub(crate) fn step_cache(
        &self,
        plan: &xqr_core::algebra::Plan,
    ) -> std::rc::Rc<std::cell::RefCell<xqr_xml::axes::TestCache>> {
        let key = plan as *const _ as usize;
        let mut map = self.step_tests.borrow_mut();
        if map.len() > 1024 && !map.contains_key(&key) {
            map.clear();
        }
        map.entry(key).or_default().clone()
    }

    /// The query's spill manager, creating the scoped temp directory on
    /// first use.
    pub(crate) fn spill_manager(
        &mut self,
    ) -> xqr_xml::Result<std::rc::Rc<crate::spill::SpillManager>> {
        if let Some(m) = &self.spill {
            return Ok(m.clone());
        }
        let m = crate::spill::SpillManager::create(&self.governor)?;
        self.spill = Some(m.clone());
        Ok(m)
    }

    /// Resolves a free variable: innermost function frame, then globals.
    pub fn lookup_var(&self, q: &QName) -> xqr_xml::Result<Sequence> {
        if let Some(frame) = self.frames.last() {
            if let Some(v) = frame.get(q) {
                return Ok(v.clone());
            }
        }
        self.globals
            .get(q)
            .cloned()
            .ok_or_else(|| XmlError::new("XPDY0002", format!("unbound variable ${q}")))
    }

    pub fn push_frame(&mut self, frame: HashMap<QName, Sequence>) -> xqr_xml::Result<()> {
        self.governor.enter_frame()?;
        self.frames.push(frame);
        Ok(())
    }

    pub fn pop_frame(&mut self) {
        self.frames.pop();
        self.governor.exit_frame();
    }

    pub fn resolve_document(&self, uri: &str) -> xqr_xml::Result<NodeHandle> {
        self.documents
            .get(uri)
            .cloned()
            .ok_or_else(|| XmlError::new("FODC0002", format!("document not available: {uri}")))
    }
}
