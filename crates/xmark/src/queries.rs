//! The twenty XMark benchmark queries, adapted to the generated schema.
//!
//! Each query preserves the shape of the original benchmark query — the
//! joins (Q8–Q12), aggregations, long paths (Q15/Q16), ordering (Q19),
//! full-text-ish filter (Q14), and the counting query without joins (Q20)
//! that Table 4 uses as its no-join control.

/// Number of benchmark queries.
pub const QUERY_COUNT: usize = 20;

/// Returns the text of XMark query `n` (1-based) against `doc('auction.xml')`.
pub fn query(n: usize) -> &'static str {
    match n {
        1 => {
            // Return the name of the person with id person0.
            "let $auction := doc('auction.xml') return \
             for $b in $auction/site/people/person[@id = 'person0'] \
             return $b/name/text()"
        }
        2 => {
            // Initial increases of all open auctions.
            "let $auction := doc('auction.xml') return \
             for $b in $auction/site/open_auctions/open_auction \
             return <increase>{ $b/bidder[1]/increase/text() }</increase>"
        }
        3 => {
            // Auctions whose current increase is at least twice the first.
            "let $auction := doc('auction.xml') return \
             for $b in $auction/site/open_auctions/open_auction \
             where zero-or-one($b/bidder[1]/increase/text()) * 2 \
                   <= $b/bidder[last()]/increase/text() \
             return <increase first=\"{$b/bidder[1]/increase/text()}\" \
                    last=\"{$b/bidder[last()]/increase/text()}\"/>"
        }
        4 => {
            // Auctions where person20 bid before person51 (document order).
            "let $auction := doc('auction.xml') return \
             for $b in $auction/site/open_auctions/open_auction \
             where some $pr1 in $b/bidder/personref[@person = 'person20'], \
                        $pr2 in $b/bidder/personref[@person = 'person51'] \
                   satisfies $pr1 << $pr2 \
             return <history>{ $b/reserve/text() }</history>"
        }
        5 => {
            // How many sold items cost more than 40?
            "let $auction := doc('auction.xml') return \
             count(for $i in $auction/site/closed_auctions/closed_auction \
                   where $i/price/text() >= 40 return $i/price)"
        }
        6 => {
            // How many items are listed on all continents?
            "let $auction := doc('auction.xml') return \
             for $b in $auction/site/regions return count($b//item)"
        }
        7 => {
            // How many pieces of prose are in the database?
            "let $auction := doc('auction.xml') return \
             for $p in $auction/site \
             return count($p//description) + count($p//annotation) + count($p//emailaddress)"
        }
        8 => {
            // How many items did each person buy? (person ⋈ closed_auction)
            "let $auction := doc('auction.xml') return \
             for $p in $auction/site/people/person \
             let $a := for $t in $auction/site/closed_auctions/closed_auction \
                       where $t/buyer/@person = $p/@id return $t \
             return <item person=\"{$p/name/text()}\">{ count($a) }</item>"
        }
        9 => {
            // Names of items each person bought in Europe (3-way join).
            "let $auction := doc('auction.xml') return \
             let $ca := $auction/site/closed_auctions/closed_auction return \
             let $ei := $auction/site/regions/europe/item return \
             for $p in $auction/site/people/person \
             let $a := for $t in $ca \
                       where $p/@id = $t/buyer/@person \
                       return let $n := for $t2 in $ei \
                                        where $t/itemref/@item = $t2/@id \
                                        return $t2 \
                              return <item>{ $n/name/text() }</item> \
             return <person name=\"{$p/name/text()}\">{ $a }</person>"
        }
        10 => {
            // Group customers by their interest (value join on categories).
            "let $auction := doc('auction.xml') return \
             for $i in distinct-values($auction/site/people/person/profile/interest/@category) \
             let $p := for $t in $auction/site/people/person \
                       where $t/profile/interest/@category = $i \
                       return <personne>\
                                <statistiques>\
                                  <sexe>{ $t/profile/gender/text() }</sexe>\
                                  <age>{ $t/profile/age/text() }</age>\
                                  <education>{ $t/profile/education/text() }</education>\
                                  <revenu>{ fn:data($t/profile/@income) }</revenu>\
                                </statistiques>\
                                <coordonnees>\
                                  <nom>{ $t/name/text() }</nom>\
                                  <rue>{ $t/address/street/text() }</rue>\
                                  <ville>{ $t/address/city/text() }</ville>\
                                  <pays>{ $t/address/country/text() }</pays>\
                                  <reseau>\
                                    <courrier>{ $t/emailaddress/text() }</courrier>\
                                    <pagePerso>{ $t/homepage/text() }</pagePerso>\
                                  </reseau>\
                                </coordonnees>\
                                <cartePaiement>{ $t/creditcard/text() }</cartePaiement>\
                              </personne> \
             return <categorie>{ <id>{ $i }</id>, $p }</categorie>"
        }
        11 => {
            // For each person: open auctions whose initial bid fits the
            // person's income (value inequality join — no hash key).
            "let $auction := doc('auction.xml') return \
             for $p in $auction/site/people/person \
             let $l := for $i in $auction/site/open_auctions/open_auction/initial \
                       where $p/profile/@income > 5000 * exactly-one($i/text()) \
                       return $i \
             return <items name=\"{$p/name/text()}\">{ count($l) }</items>"
        }
        12 => {
            // Q11 restricted to incomes over 50 000.
            "let $auction := doc('auction.xml') return \
             for $p in $auction/site/people/person \
             let $l := for $i in $auction/site/open_auctions/open_auction/initial \
                       where $p/profile/@income > 5000 * exactly-one($i/text()) \
                       return $i \
             where $p/profile/@income > 50000 \
             return <items person=\"{$p/profile/@income}\">{ count($l) }</items>"
        }
        13 => {
            // Names and descriptions of Australian items.
            "let $auction := doc('auction.xml') return \
             for $i in $auction/site/regions/australia/item \
             return <item name=\"{$i/name/text()}\">{ $i/description }</item>"
        }
        14 => {
            // Items whose description contains the word 'gold'.
            "let $auction := doc('auction.xml') return \
             for $i in $auction/site//item \
             where contains(string(exactly-one($i/description)), 'gold') \
             return $i/name/text()"
        }
        15 => {
            // A long path through nested descriptions.
            "let $auction := doc('auction.xml') return \
             for $a in $auction/site/closed_auctions/closed_auction/annotation/\
description/parlist/listitem/text/text() \
             return <text>{ $a }</text>"
        }
        16 => {
            // Like Q15, returning the seller reference.
            "let $auction := doc('auction.xml') return \
             for $a in $auction/site/open_auctions/open_auction \
             where exists($a/annotation/description/parlist/listitem/text/text()) \
             return <person id=\"{$a/seller/@person}\"/>"
        }
        17 => {
            // People without a homepage.
            "let $auction := doc('auction.xml') return \
             for $p in $auction/site/people/person \
             where empty($p/homepage/text()) \
             return <person name=\"{$p/name/text()}\"/>"
        }
        18 => {
            // User-defined currency conversion over reserves.
            "declare function local:convert($v as xs:decimal?) as xs:decimal* \
             { 2.20371 * $v }; \
             let $auction := doc('auction.xml') return \
             for $i in $auction/site/open_auctions/open_auction \
             return local:convert(zero-or-one($i/reserve/text()) cast as xs:decimal?)"
        }
        19 => {
            // Items with location, alphabetical by name (order by).
            "let $auction := doc('auction.xml') return \
             for $b in $auction/site/regions//item \
             let $k := $b/name/text() \
             order by zero-or-one($b/location/text()) ascending \
             return <item name=\"{$k}\">{ $b/location/text() }</item>"
        }
        20 => {
            // Income brackets (no join — Table 4's control query).
            "let $auction := doc('auction.xml') return \
             <result>\
               <preferred>{ count($auction/site/people/person/profile[@income >= 100000]) }</preferred>\
               <standard>{ count($auction/site/people/person/profile[@income < 100000 and @income >= 30000]) }</standard>\
               <challenge>{ count($auction/site/people/person/profile[@income < 30000]) }</challenge>\
               <na>{ count(for $p in $auction/site/people/person \
                           where empty($p/profile/@income) return $p) }</na>\
             </result>"
        }
        other => panic!("XMark queries are numbered 1..=20, got {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_nonempty_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for n in 1..=QUERY_COUNT {
            let q = query(n);
            assert!(!q.is_empty());
            assert!(seen.insert(q), "duplicate query text for Q{n}");
            assert!(
                q.contains("auction.xml"),
                "Q{n} must read the auction document"
            );
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        query(21);
    }
}
