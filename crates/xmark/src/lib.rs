//! # xqr-xmark — the XMark benchmark substrate
//!
//! A from-scratch, deterministic replacement for the XMark project's
//! `xmlgen` data generator plus the twenty benchmark queries, adapted to
//! the generated schema (the paper's Tables 3 and 4 run "XMark Queries
//! 1–20" and the scalability subset Q8/Q9/Q10/Q12/Q20).
//!
//! The generator preserves the structural statistics the queries depend
//! on: person/auction/item key–keyref links (`buyer/@person`,
//! `itemref/@item`, `personref/@person`), optional `profile/@income` and
//! `homepage` (Q17/Q20), interest categories (Q10), nested
//! `parlist/listitem` descriptions (Q15/Q16), occasional "gold" in
//! descriptions (Q14), and multi-bidder auctions (Q2/Q3/Q4).

pub mod gen;
pub mod queries;

pub use gen::{generate, GenOptions};
pub use queries::{query, QUERY_COUNT};
