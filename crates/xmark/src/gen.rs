//! Deterministic XMark-style auction-site document generator.
//!
//! At scale factor 1.0 the original xmlgen produces ≈ 100 MB with 25 500
//! people, 21 750 items, 12 000 open and 9 750 closed auctions; this
//! generator scales those entity counts linearly and produces documents of
//! comparable density, so `GenOptions::for_bytes(…)` hits a requested size
//! to within a few percent.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct GenOptions {
    /// Linear scale factor (1.0 ≈ 100 MB).
    pub factor: f64,
    pub seed: u64,
}

impl GenOptions {
    pub fn scale(factor: f64) -> GenOptions {
        GenOptions {
            factor,
            seed: 0x9e3779b97f4a7c15,
        }
    }

    /// Picks a scale factor so the output is approximately `bytes` long.
    pub fn for_bytes(bytes: usize) -> GenOptions {
        // Calibrated against this generator's output density.
        GenOptions::scale(bytes as f64 / BYTES_AT_SCALE_1)
    }
}

/// Approximate output size at factor 1.0 (calibrated by tests; this
/// generator is terser than xmlgen's prose, so scale 1.0 is ~38 MB).
const BYTES_AT_SCALE_1: f64 = 38_000_000.0;

const WORDS: &[&str] = &[
    "great",
    "dusty",
    "gold",
    "silver",
    "quick",
    "shiny",
    "antique",
    "rare",
    "modest",
    "preciously",
    "wrapped",
    "carefully",
    "summer",
    "winter",
    "harvest",
    "royal",
    "humble",
    "bright",
    "patient",
    "marble",
    "walnut",
    "copper",
    "velvet",
    "crystal",
    "amber",
    "cedar",
    "plain",
    "ornate",
    "sturdy",
    "fragile",
];

const CITIES: &[&str] = &[
    "Tampa", "Lyon", "Bergen", "Osaka", "Perth", "Quito", "Leeds", "Turin", "Basel", "Cairns",
];

const COUNTRIES: &[&str] = &[
    "United States",
    "Germany",
    "Australia",
    "Japan",
    "France",
    "Brazil",
];

const REGIONS: &[&str] = &[
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

const FIRST: &[&str] = &[
    "Kasumi", "Erik", "Amina", "Lucia", "Priya", "Janek", "Moira", "Tarek", "Sofia", "Ulrich",
    "Nadia", "Pablo", "Ingrid", "Wen", "Abeba", "Ronan",
];

const LAST: &[&str] = &[
    "Okafor",
    "Lindqvist",
    "Moreau",
    "Tanaka",
    "Novak",
    "Silva",
    "Haugen",
    "Iyer",
    "Keller",
    "Brennan",
    "Castillo",
    "Duran",
];

struct Counts {
    people: usize,
    items: usize,
    open: usize,
    closed: usize,
    categories: usize,
}

impl Counts {
    fn at(factor: f64) -> Counts {
        let n = |base: f64| ((base * factor).round() as usize).max(2);
        Counts {
            people: n(25_500.0),
            items: n(21_750.0),
            open: n(12_000.0),
            closed: n(9_750.0),
            categories: n(1_000.0).max(5),
        }
    }
}

struct Gen {
    rng: StdRng,
    out: String,
    counts: Counts,
}

/// Generates the auction document as an XML string.
pub fn generate(options: &GenOptions) -> String {
    let counts = Counts::at(options.factor);
    let mut g = Gen {
        rng: StdRng::seed_from_u64(options.seed),
        out: String::with_capacity((options.factor * BYTES_AT_SCALE_1 * 1.1) as usize + 4096),
        counts,
    };
    g.site();
    g.out
}

impl Gen {
    fn words(&mut self, min: usize, max: usize) -> String {
        let n = self.rng.gen_range(min..=max);
        let mut s = String::new();
        for i in 0..n {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
        }
        s
    }

    fn site(&mut self) {
        self.out.push_str("<site>");
        self.regions();
        self.categories();
        self.catgraph();
        self.people();
        self.open_auctions();
        self.closed_auctions();
        self.out.push_str("</site>");
    }

    fn regions(&mut self) {
        self.out.push_str("<regions>");
        let total = self.counts.items;
        let per = (total / REGIONS.len()).max(1);
        let mut id = 0;
        for (ri, region) in REGIONS.iter().enumerate() {
            let _ = write!(self.out, "<{region}>");
            let count = if ri == REGIONS.len() - 1 {
                total - id
            } else {
                per
            };
            for _ in 0..count {
                self.item(id);
                id += 1;
            }
            let _ = write!(self.out, "</{region}>");
        }
        self.out.push_str("</regions>");
    }

    fn item(&mut self, id: usize) {
        let name = self.words(2, 4);
        let location = COUNTRIES[self.rng.gen_range(0..COUNTRIES.len())];
        let quantity = self.rng.gen_range(1..=5);
        let payment = self.words(2, 3);
        let _ = write!(
            self.out,
            "<item id=\"item{id}\"><location>{location}</location>\
             <quantity>{quantity}</quantity><name>{name}</name>\
             <payment>{payment}</payment>"
        );
        self.description();
        self.out.push_str("<shipping>");
        let ship = self.words(1, 3);
        self.out.push_str(&ship);
        self.out.push_str("</shipping>");
        let n_cat = self.rng.gen_range(1..=3);
        for _ in 0..n_cat {
            let c = self.rng.gen_range(0..self.counts.categories);
            let _ = write!(self.out, "<incategory category=\"category{c}\"/>");
        }
        self.mailbox();
        self.out.push_str("</item>");
    }

    fn description(&mut self) {
        self.out.push_str("<description>");
        if self.rng.gen_bool(0.6) {
            let t = self.words(6, 14);
            let _ = write!(self.out, "<text>{t}</text>");
        } else {
            // Nested parlist, the long-path target of Q15/Q16.
            self.out.push_str("<parlist>");
            let n = self.rng.gen_range(1..=3);
            for _ in 0..n {
                let t = self.words(4, 9);
                let _ = write!(self.out, "<listitem><text>{t}</text></listitem>");
            }
            self.out.push_str("</parlist>");
        }
        self.out.push_str("</description>");
    }

    fn mailbox(&mut self) {
        self.out.push_str("<mailbox>");
        let n = self.rng.gen_range(0..=2);
        for _ in 0..n {
            let from = self.rng.gen_range(0..self.counts.people);
            let to = self.rng.gen_range(0..self.counts.people);
            let month = self.rng.gen_range(1..=12);
            let day = self.rng.gen_range(1..=28);
            let body = self.words(5, 12);
            let _ = write!(
                self.out,
                "<mail><from>person{from}</from><to>person{to}</to>\
                 <date>{month:02}/{day:02}/2000</date><text>{body}</text></mail>"
            );
        }
        self.out.push_str("</mailbox>");
    }

    fn categories(&mut self) {
        self.out.push_str("<categories>");
        for c in 0..self.counts.categories {
            let name = self.words(1, 2);
            let desc = self.words(4, 8);
            let _ = write!(
                self.out,
                "<category id=\"category{c}\"><name>{name}</name>\
                 <description><text>{desc}</text></description></category>"
            );
        }
        self.out.push_str("</categories>");
    }

    fn catgraph(&mut self) {
        self.out.push_str("<catgraph>");
        let edges = self.counts.categories;
        for _ in 0..edges {
            let from = self.rng.gen_range(0..self.counts.categories);
            let to = self.rng.gen_range(0..self.counts.categories);
            let _ = write!(
                self.out,
                "<edge from=\"category{from}\" to=\"category{to}\"/>"
            );
        }
        self.out.push_str("</catgraph>");
    }

    fn people(&mut self) {
        self.out.push_str("<people>");
        for p in 0..self.counts.people {
            let first = FIRST[self.rng.gen_range(0..FIRST.len())];
            let last = LAST[self.rng.gen_range(0..LAST.len())];
            let _ = write!(
                self.out,
                "<person id=\"person{p}\"><name>{first} {last}</name>\
                 <emailaddress>mailto:{first}.{last}@example.net</emailaddress>"
            );
            if self.rng.gen_bool(0.4) {
                let ph = self.rng.gen_range(1_000_000..9_999_999);
                let _ = write!(
                    self.out,
                    "<phone>+1 ({}) {ph}</phone>",
                    self.rng.gen_range(100..999)
                );
            }
            if self.rng.gen_bool(0.5) {
                let city = CITIES[self.rng.gen_range(0..CITIES.len())];
                let country = COUNTRIES[self.rng.gen_range(0..COUNTRIES.len())];
                let street_no = self.rng.gen_range(1..120);
                let street = self.words(1, 2);
                let zip = self.rng.gen_range(10000..99999);
                let _ = write!(
                    self.out,
                    "<address><street>{street_no} {street} St</street><city>{city}</city>\
                     <country>{country}</country><zipcode>{zip}</zipcode></address>"
                );
            }
            if self.rng.gen_bool(0.3) {
                let _ = write!(
                    self.out,
                    "<homepage>http://www.example.net/~{last}{p}</homepage>"
                );
            }
            if self.rng.gen_bool(0.6) {
                let cc: u64 = self
                    .rng
                    .gen_range(1_000_000_000_000_000..=9_999_999_999_999_999);
                let _ = write!(self.out, "<creditcard>{cc}</creditcard>");
            }
            // Profile: income present for ~80% of people (Q20's fourth
            // bucket counts people without income).
            self.out.push_str("<profile");
            if self.rng.gen_bool(0.8) {
                let income = self.rng.gen_range(9_000.0..150_000.0);
                let _ = write!(self.out, " income=\"{:.2}\"", income);
            }
            self.out.push('>');
            let n_interests = self.rng.gen_range(0..=4);
            for _ in 0..n_interests {
                let c = self.rng.gen_range(0..self.counts.categories);
                let _ = write!(self.out, "<interest category=\"category{c}\"/>");
            }
            if self.rng.gen_bool(0.5) {
                self.out.push_str("<education>Graduate School</education>");
            }
            if self.rng.gen_bool(0.5) {
                self.out.push_str("<gender>male</gender>");
            } else {
                self.out.push_str("<gender>female</gender>");
            }
            let _ = write!(
                self.out,
                "<business>{}</business>",
                if self.rng.gen_bool(0.5) { "Yes" } else { "No" }
            );
            if self.rng.gen_bool(0.7) {
                let _ = write!(self.out, "<age>{}</age>", self.rng.gen_range(18..80));
            }
            self.out.push_str("</profile>");
            if self.rng.gen_bool(0.3) {
                self.out.push_str("<watches>");
                let n = self.rng.gen_range(1..=3);
                for _ in 0..n {
                    let a = self.rng.gen_range(0..self.counts.open);
                    let _ = write!(self.out, "<watch open_auction=\"open_auction{a}\"/>");
                }
                self.out.push_str("</watches>");
            }
            self.out.push_str("</person>");
        }
        self.out.push_str("</people>");
    }

    fn open_auctions(&mut self) {
        self.out.push_str("<open_auctions>");
        for a in 0..self.counts.open {
            let initial = self.rng.gen_range(1.0..300.0);
            let _ = write!(
                self.out,
                "<open_auction id=\"open_auction{a}\"><initial>{initial:.2}</initial>"
            );
            if self.rng.gen_bool(0.5) {
                let _ = write!(self.out, "<reserve>{:.2}</reserve>", initial * 1.2);
            }
            let n_bids = self.rng.gen_range(0..=5);
            let mut current = initial;
            for b in 0..n_bids {
                let person = self.rng.gen_range(0..self.counts.people);
                let increase = (b as f64 + 1.0) * self.rng.gen_range(1.5..7.5);
                current += increase;
                let month = self.rng.gen_range(1..=12);
                let day = self.rng.gen_range(1..=28);
                let _ = write!(
                    self.out,
                    "<bidder><date>{month:02}/{day:02}/2001</date><time>{:02}:{:02}:00</time>\
                     <personref person=\"person{person}\"/><increase>{increase:.2}</increase></bidder>",
                    self.rng.gen_range(0..24),
                    self.rng.gen_range(0..60),
                );
            }
            let _ = write!(self.out, "<current>{current:.2}</current>");
            if self.rng.gen_bool(0.3) {
                self.out.push_str("<privacy>Yes</privacy>");
            }
            let item = self.rng.gen_range(0..self.counts.items);
            let seller = self.rng.gen_range(0..self.counts.people);
            let _ = write!(
                self.out,
                "<itemref item=\"item{item}\"/><seller person=\"person{seller}\"/>"
            );
            self.annotation();
            let _ = write!(
                self.out,
                "<quantity>{}</quantity><type>Regular</type>\
                 <interval><start>01/01/2001</start><end>12/31/2001</end></interval>\
                 </open_auction>",
                self.rng.gen_range(1..=3)
            );
        }
        self.out.push_str("</open_auctions>");
    }

    fn closed_auctions(&mut self) {
        self.out.push_str("<closed_auctions>");
        for _ in 0..self.counts.closed {
            let seller = self.rng.gen_range(0..self.counts.people);
            let buyer = self.rng.gen_range(0..self.counts.people);
            let item = self.rng.gen_range(0..self.counts.items);
            let price = self.rng.gen_range(5.0..500.0);
            let month = self.rng.gen_range(1..=12);
            let day = self.rng.gen_range(1..=28);
            let _ = write!(
                self.out,
                "<closed_auction><seller person=\"person{seller}\"/>\
                 <buyer person=\"person{buyer}\"/><itemref item=\"item{item}\"/>\
                 <price>{price:.2}</price><date>{month:02}/{day:02}/2001</date>\
                 <quantity>{}</quantity><type>Regular</type>",
                self.rng.gen_range(1..=3)
            );
            self.annotation();
            self.out.push_str("</closed_auction>");
        }
        self.out.push_str("</closed_auctions>");
    }

    fn annotation(&mut self) {
        let author = self.rng.gen_range(0..self.counts.people);
        let _ = write!(self.out, "<annotation><author person=\"person{author}\"/>");
        self.description();
        let happiness = self.rng.gen_range(1..=10);
        let _ = write!(self.out, "<happiness>{happiness}</happiness></annotation>");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xml::parse::{parse_document, ParseOptions};

    #[test]
    fn deterministic() {
        let a = generate(&GenOptions::scale(0.0005));
        let b = generate(&GenOptions::scale(0.0005));
        assert_eq!(a, b);
    }

    #[test]
    fn parses_and_has_expected_structure() {
        let xml = generate(&GenOptions::scale(0.001));
        let doc = parse_document(&xml, &ParseOptions::default()).unwrap();
        let site = &doc.root().children()[0];
        let names: Vec<String> = site
            .children()
            .iter()
            .map(|c| c.name().unwrap().local_part().to_string())
            .collect();
        assert_eq!(
            names,
            [
                "regions",
                "categories",
                "catgraph",
                "people",
                "open_auctions",
                "closed_auctions"
            ]
        );
    }

    #[test]
    fn size_calibration_within_tolerance() {
        let xml = generate(&GenOptions::for_bytes(200_000));
        let ratio = xml.len() as f64 / 200_000.0;
        assert!(
            (0.7..1.4).contains(&ratio),
            "size {} not within tolerance of 200000",
            xml.len()
        );
    }

    #[test]
    fn keyrefs_resolve() {
        let xml = generate(&GenOptions::scale(0.001));
        // Every buyer reference points at a generated person id.
        let people = xml.matches("<person id=\"person").count();
        assert!(people > 10);
        for chunk in xml.split("buyer person=\"person").skip(1).take(20) {
            let id: usize = chunk[..chunk.find('"').unwrap()].parse().unwrap();
            assert!(id < people, "dangling buyer ref person{id}");
        }
    }
}
