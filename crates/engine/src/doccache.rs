//! Shared, byte-budgeted document **text** cache.
//!
//! The node stores are `Rc`-based and deliberately thread-local (the
//! whole runtime is single-threaded per query), so parsed documents
//! cannot be shared across the service's worker threads. What *can* be
//! shared is the raw XML text: this cache holds one `Arc<str>`-style copy
//! of each document's bytes so a hot document is fetched from its source
//! once, not once per worker per re-bind, and each worker parses it into
//! its thread-local arena only when the cached *version* changes.
//!
//! Entries are either bound directly ([`DocTextCache::insert`], the
//! in-process analogue of `Engine::bind_document`) or registered against
//! a pluggable loader ([`DocTextCache::register`] +
//! [`DocTextCache::set_loader`]) that is invoked through the shared
//! transient-retry policy at the `doc::load` failpoint site — a flaky
//! source is retried with capped jittered backoff under the requesting
//! query's governor, and exhaustion surfaces as the standard `FODC0002`.
//!
//! Eviction is LRU by total resident bytes: crossing the byte budget
//! drops the least-recently-used texts (never the one just loaded).
//! Evicting a loader-backed entry is safe (it reloads on next use, with a
//! version bump forcing re-parse); evicting a directly-bound text would
//! lose data, so bound entries are only evicted when a loader is
//! installed to recover them. Hits, misses, and evictions are counted in
//! the process metrics (`doc_cache_*`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use xqr_xml::limits::Governor;
use xqr_xml::metrics::metrics;
use xqr_xml::retry::{retry_transient, RetryPolicy};
use xqr_xml::XmlError;

/// Error code for an unloadable document, matching `fn:doc`'s standard
/// "cannot retrieve resource" error.
pub const ERR_DOC_LOAD: &str = "FODC0002";

type Loader = Arc<dyn Fn(&str) -> std::io::Result<String> + Send + Sync>;

struct Entry {
    /// Resident text; `None` after eviction (reloaded on demand).
    text: Option<Arc<String>>,
    /// Bumped whenever the text (re)enters the cache; workers re-parse
    /// when the version they bound differs.
    version: u64,
    /// Eviction of directly-bound texts is forbidden unless a loader can
    /// recover them.
    loader_backed: bool,
    last_used: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    resident_bytes: u64,
    next_version: u64,
    clock: u64,
}

/// The shared cache. All methods take `&self`; a short mutex guards the
/// map (no I/O is performed under the lock except through [`Self::ensure`]
/// on a miss, where the loader runs *outside* the lock).
pub struct DocTextCache {
    budget: u64,
    inner: Mutex<Inner>,
    loader: Mutex<Option<Loader>>,
}

impl DocTextCache {
    /// `budget` bounds the resident raw-text bytes (not parsed arenas,
    /// which are per-worker and proportional to text size).
    pub fn new(budget: u64) -> DocTextCache {
        DocTextCache {
            budget,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                resident_bytes: 0,
                next_version: 1,
                clock: 0,
            }),
            loader: Mutex::new(None),
        }
    }

    /// Installs the source loader used for registered and evicted
    /// entries.
    pub fn set_loader(&self, f: impl Fn(&str) -> std::io::Result<String> + Send + Sync + 'static) {
        *self.loader.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::new(f));
    }

    /// Binds `uri` to `text` directly (new version; workers re-parse).
    pub fn insert(&self, uri: &str, text: String) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let bytes = text.len() as u64;
        let version = inner.next_version;
        inner.next_version += 1;
        inner.clock += 1;
        let clock = inner.clock;
        let old = inner.entries.insert(
            uri.to_string(),
            Entry {
                text: Some(Arc::new(text)),
                version,
                loader_backed: false,
                last_used: clock,
            },
        );
        if let Some(Entry { text: Some(t), .. }) = old {
            inner.resident_bytes = inner.resident_bytes.saturating_sub(t.len() as u64);
        }
        inner.resident_bytes += bytes;
        self.evict_over_budget(&mut inner);
    }

    /// Registers a loader-backed `uri` without loading it yet.
    pub fn register(&self, uri: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        inner.entries.entry(uri.to_string()).or_insert(Entry {
            text: None,
            version: 0,
            loader_backed: true,
            last_used: clock,
        });
    }

    /// Every known URI (bound or registered), for workers to sync.
    pub fn uris(&self) -> Vec<String> {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entries
            .keys()
            .cloned()
            .collect()
    }

    /// Resident raw-text bytes (diagnostics / tests).
    pub fn resident_bytes(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .resident_bytes
    }

    /// Known entries (bound or registered), for observability gauges.
    pub fn entries(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entries
            .len()
    }

    /// Returns `uri`'s text and version, loading it (under `gov` and
    /// `policy`, through the `doc::load` failpoint) when not resident.
    pub fn ensure(
        &self,
        uri: &str,
        gov: &Governor,
        policy: &RetryPolicy,
    ) -> Result<(u64, Arc<String>), XmlError> {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            inner.clock += 1;
            let clock = inner.clock;
            match inner.entries.get_mut(uri) {
                Some(e) => {
                    e.last_used = clock;
                    if let Some(t) = &e.text {
                        metrics().record_doc_cache_hit();
                        return Ok((e.version, t.clone()));
                    }
                }
                None => {
                    return Err(XmlError::new(
                        ERR_DOC_LOAD,
                        format!("document {uri:?} is not bound or registered"),
                    ))
                }
            }
        }
        // Miss: run the loader outside the lock (it may do slow I/O).
        metrics().record_doc_cache_miss();
        let loader = self
            .loader
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        let Some(loader) = loader else {
            return Err(XmlError::new(
                ERR_DOC_LOAD,
                format!("document {uri:?} was evicted and no loader is installed"),
            ));
        };
        let text = retry_transient("doc::load", gov, policy, |_| loader(uri)).map_err(|e| {
            e.into_xml_error(|attempts, last| {
                XmlError::new(
                    ERR_DOC_LOAD,
                    format!("loading document {uri:?} failed after {attempts} attempts: {last}"),
                )
            })
        })?;
        let text = Arc::new(text);
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        let version = inner.next_version;
        inner.next_version += 1;
        let bytes = text.len() as u64;
        // Two workers may race on the same miss; the second load wins and
        // bumps the version again — wasteful but correct (idempotent
        // re-parse), and only on cold/evicted paths.
        let old = inner.entries.insert(
            uri.to_string(),
            Entry {
                text: Some(text.clone()),
                version,
                loader_backed: true,
                last_used: clock,
            },
        );
        if let Some(Entry { text: Some(t), .. }) = old {
            inner.resident_bytes = inner.resident_bytes.saturating_sub(t.len() as u64);
        }
        inner.resident_bytes += bytes;
        self.evict_over_budget(&mut inner);
        Ok((version, text))
    }

    /// Drops least-recently-used resident texts until under budget. The
    /// most-recently-used entry is never evicted (it is the one the
    /// caller is about to use), and directly-bound texts survive unless a
    /// loader can recover them.
    fn evict_over_budget(&self, inner: &mut Inner) {
        if inner.resident_bytes <= self.budget {
            return;
        }
        let loader_installed = self
            .loader
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_some();
        let newest = inner
            .entries
            .values()
            .filter(|e| e.text.is_some())
            .map(|e| e.last_used)
            .max()
            .unwrap_or(0);
        let mut victims: Vec<(u64, String)> = inner
            .entries
            .iter()
            .filter(|(_, e)| {
                e.text.is_some() && e.last_used != newest && (e.loader_backed || loader_installed)
            })
            .map(|(uri, e)| (e.last_used, uri.clone()))
            .collect();
        victims.sort();
        for (_, uri) in victims {
            if inner.resident_bytes <= self.budget {
                break;
            }
            if let Some(e) = inner.entries.get_mut(&uri) {
                if let Some(t) = e.text.take() {
                    inner.resident_bytes = inner.resident_bytes.saturating_sub(t.len() as u64);
                    metrics().record_doc_cache_eviction();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn gov() -> Governor {
        Governor::unlimited()
    }

    fn policy() -> RetryPolicy {
        RetryPolicy::default().with_base(std::time::Duration::from_micros(10))
    }

    #[test]
    fn bound_text_is_served_and_versioned() {
        let c = DocTextCache::new(1 << 20);
        c.insert("a.xml", "<a/>".to_string());
        let (v1, t1) = c.ensure("a.xml", &gov(), &policy()).unwrap();
        assert_eq!(&**t1, "<a/>");
        let (v2, _) = c.ensure("a.xml", &gov(), &policy()).unwrap();
        assert_eq!(v1, v2, "stable version between binds");
        c.insert("a.xml", "<a x='1'/>".to_string());
        let (v3, t3) = c.ensure("a.xml", &gov(), &policy()).unwrap();
        assert!(v3 > v2, "re-bind bumps the version");
        assert_eq!(&**t3, "<a x='1'/>");
    }

    #[test]
    fn unknown_uri_is_fodc0002() {
        let c = DocTextCache::new(1 << 20);
        let err = c.ensure("nope.xml", &gov(), &policy()).unwrap_err();
        assert_eq!(err.code, ERR_DOC_LOAD);
    }

    #[test]
    fn loader_backed_entries_load_on_demand_and_reload_after_eviction() {
        let c = DocTextCache::new(8); // tiny: each text is 4 bytes
        let loads = Arc::new(AtomicU64::new(0));
        let loads2 = loads.clone();
        c.set_loader(move |uri| {
            loads2.fetch_add(1, Ordering::Relaxed);
            Ok(format!("<{}/>", uri.trim_end_matches(".xml")))
        });
        c.register("a.xml");
        c.register("b.xml");
        c.register("c.xml");
        let (va, _) = c.ensure("a.xml", &gov(), &policy()).unwrap();
        let _ = c.ensure("b.xml", &gov(), &policy()).unwrap();
        let _ = c.ensure("c.xml", &gov(), &policy()).unwrap();
        assert_eq!(loads.load(Ordering::Relaxed), 3);
        assert!(c.resident_bytes() <= 8, "budget enforced by eviction");
        // a.xml was evicted (LRU); re-ensuring reloads with a new version.
        let (va2, ta2) = c.ensure("a.xml", &gov(), &policy()).unwrap();
        assert_eq!(&**ta2, "<a/>");
        assert!(va2 > va);
        assert_eq!(loads.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn bound_texts_are_not_evicted_without_a_loader() {
        let c = DocTextCache::new(4);
        c.insert("a.xml", "<aaaa/>".to_string());
        c.insert("b.xml", "<bbbb/>".to_string());
        // Over budget, but nothing can recover a dropped bound text, so
        // both stay resident.
        assert!(c.ensure("a.xml", &gov(), &policy()).is_ok());
        assert!(c.ensure("b.xml", &gov(), &policy()).is_ok());
    }

    #[test]
    fn loader_failures_retry_then_surface_fodc0002() {
        let c = DocTextCache::new(1 << 20);
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = calls.clone();
        c.set_loader(move |_| {
            calls2.fetch_add(1, Ordering::Relaxed);
            Err(std::io::Error::other("source down"))
        });
        c.register("x.xml");
        let err = c.ensure("x.xml", &gov(), &policy()).unwrap_err();
        assert_eq!(err.code, ERR_DOC_LOAD);
        assert!(err.message.contains("source down"));
        assert_eq!(calls.load(Ordering::Relaxed), 3, "default retry budget");
    }

    #[test]
    fn transient_loader_failure_is_absorbed() {
        let c = DocTextCache::new(1 << 20);
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = calls.clone();
        c.set_loader(move |_| {
            if calls2.fetch_add(1, Ordering::Relaxed) == 0 {
                Err(std::io::Error::other("blip"))
            } else {
                Ok("<ok/>".to_string())
            }
        });
        c.register("y.xml");
        let (_, t) = c.ensure("y.xml", &gov(), &policy()).unwrap();
        assert_eq!(&**t, "<ok/>");
    }
}
