//! A byte/entry-budgeted LRU cache of compiled + rewritten plans.
//!
//! The cache is **per engine** and deliberately not `Send`: plans hold
//! `Rc`-based `QName`/`AtomicValue` data, so they cannot cross threads.
//! What *can* cross threads is plain data about a shape — the
//! [`crate::service::SharedPlanRegistry`] shares canonical hashes between
//! service workers, and each worker re-hydrates the plan into its own
//! engine cache (one compile per worker per shape, then hash-lookup).
//!
//! Entries are keyed two levels deep:
//!
//! * a **text key** (FNV over the query text plus every compile option
//!   that affects the plan: mode, rule config, projection) resolves in one
//!   hash lookup on the hot path, and
//! * the **canonical plan hash** (from [`xqr_core::canon`], computed after
//!   compile + rewrite + canonicalization) is the entry's identity, so
//!   syntactic variants that normalize to the same plan — renamed
//!   variables, flipped comparisons — share one entry via an alias from
//!   their text key.
//!
//! Eviction is least-recently-used over both budgets (`max_entries`,
//! `max_bytes` of *estimated* plan size); every eviction is recorded in
//! the process metrics (`plan_cache_evictions`).

use std::collections::HashMap;
use std::rc::Rc;

use xqr_core::{CompiledModule, RewriteStats};
use xqr_frontend::CoreModule;
use xqr_xml::metrics::metrics;

/// Tuning for an engine's plan cache.
#[derive(Clone, Debug)]
pub struct PlanCacheConfig {
    /// Maximum number of cached plans (0 disables caching outright).
    pub max_entries: usize,
    /// Budget of *estimated* plan bytes (0 disables caching outright).
    pub max_bytes: usize,
    /// Master switch; `false` makes every `prepare_cached` compile fresh.
    pub enabled: bool,
}

impl Default for PlanCacheConfig {
    fn default() -> PlanCacheConfig {
        PlanCacheConfig {
            max_entries: 256,
            max_bytes: 32 << 20,
            enabled: true,
        }
    }
}

/// The immutable compilation artifact a cache entry shares between
/// [`crate::PreparedQuery`] instances (via `Rc`, never deep-cloned).
pub struct CachedPlan {
    /// The normalized Core module (kept for `NoAlgebra` executions).
    pub core: Option<Rc<CoreModule>>,
    /// The compiled + rewritten + canonicalized plan (algebra modes).
    pub plan: Option<Rc<CompiledModule>>,
    pub stats: Option<Rc<RewriteStats>>,
    /// Canonical plan hash ([`xqr_core::canon::module_hash`]); for
    /// `NoAlgebra` a hash of the query text stands in.
    pub canonical_hash: u64,
    /// Estimated retained size (plan ops ≈ 200 bytes each + query text).
    pub estimated_bytes: usize,
}

struct Entry {
    plan: Rc<CachedPlan>,
    last_used: u64,
}

/// The per-engine LRU (see module docs).
pub struct PlanCache {
    cfg: PlanCacheConfig,
    /// Canonical hash → entry: the entry's identity.
    entries: HashMap<u64, Entry>,
    /// Text key → canonical hash: the hot-path alias.
    aliases: HashMap<u64, u64>,
    bytes: usize,
    tick: u64,
}

impl PlanCache {
    pub fn new(cfg: PlanCacheConfig) -> PlanCache {
        PlanCache {
            cfg,
            entries: HashMap::new(),
            aliases: HashMap::new(),
            bytes: 0,
            tick: 0,
        }
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled && self.cfg.max_entries > 0 && self.cfg.max_bytes > 0
    }

    /// Cached plans currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated bytes currently retained.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Looks up by text key, bumping recency on a hit.
    pub fn get(&mut self, text_key: u64) -> Option<Rc<CachedPlan>> {
        if !self.enabled() {
            return None;
        }
        let canon = *self.aliases.get(&text_key)?;
        let e = self.entries.get_mut(&canon)?;
        self.tick += 1;
        e.last_used = self.tick;
        Some(Rc::clone(&e.plan))
    }

    /// Inserts a freshly compiled plan under its text key. If an entry
    /// with the same canonical hash already exists (a syntactic variant
    /// was cached first), the existing entry is kept and aliased — the
    /// shared plan is returned so the caller adopts the canonical one.
    pub fn insert(&mut self, text_key: u64, plan: Rc<CachedPlan>) -> Rc<CachedPlan> {
        if !self.enabled() {
            return plan;
        }
        let canon = plan.canonical_hash;
        self.tick += 1;
        let shared = match self.entries.get_mut(&canon) {
            Some(existing) => {
                existing.last_used = self.tick;
                Rc::clone(&existing.plan)
            }
            None => {
                self.bytes += plan.estimated_bytes;
                self.entries.insert(
                    canon,
                    Entry {
                        plan: Rc::clone(&plan),
                        last_used: self.tick,
                    },
                );
                plan
            }
        };
        self.aliases.insert(text_key, canon);
        self.evict_to_budget(canon);
        shared
    }

    /// Evicts least-recently-used entries until both budgets hold,
    /// sparing `just_inserted` (a fresh entry larger than the whole byte
    /// budget is still cached until something else arrives; refusing it
    /// would make `prepare_cached` silently uncacheable).
    fn evict_to_budget(&mut self, just_inserted: u64) {
        while self.entries.len() > self.cfg.max_entries.max(1)
            || (self.bytes > self.cfg.max_bytes && self.entries.len() > 1)
        {
            let Some((&victim, _)) = self
                .entries
                .iter()
                .filter(|(k, _)| **k != just_inserted)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            let e = self.entries.remove(&victim).expect("victim exists");
            self.bytes = self.bytes.saturating_sub(e.plan.estimated_bytes);
            self.aliases.retain(|_, c| *c != victim);
            metrics().record_plan_cache_eviction();
        }
    }

    /// Drops every entry (document/schema rebinding invalidates nothing —
    /// plans reference documents by URI at execution time — but callers
    /// that want a cold cache, e.g. benchmarks, use this).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.aliases.clear();
        self.bytes = 0;
    }
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new(PlanCacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(canon: u64, bytes: usize) -> Rc<CachedPlan> {
        Rc::new(CachedPlan {
            core: None,
            plan: None,
            stats: None,
            canonical_hash: canon,
            estimated_bytes: bytes,
        })
    }

    #[test]
    fn hit_after_insert_and_alias_sharing() {
        let mut c = PlanCache::default();
        assert!(c.get(1).is_none());
        c.insert(1, plan(100, 10));
        assert_eq!(c.get(1).unwrap().canonical_hash, 100);
        // A different text key with the same canonical hash shares the entry.
        let shared = c.insert(2, plan(100, 10));
        assert_eq!(shared.canonical_hash, 100);
        assert_eq!(c.len(), 1);
        assert!(c.get(2).is_some());
    }

    #[test]
    fn entry_budget_evicts_lru() {
        let mut c = PlanCache::new(PlanCacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
            enabled: true,
        });
        c.insert(1, plan(101, 1));
        c.insert(2, plan(102, 1));
        c.get(1); // 101 is now more recent than 102
        c.insert(3, plan(103, 1));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_some(), "recently used survives");
        assert!(c.get(2).is_none(), "LRU victim evicted");
        assert!(c.get(3).is_some());
    }

    #[test]
    fn byte_budget_evicts_and_accounts() {
        let mut c = PlanCache::new(PlanCacheConfig {
            max_entries: usize::MAX,
            max_bytes: 25,
            enabled: true,
        });
        c.insert(1, plan(101, 10));
        c.insert(2, plan(102, 10));
        c.insert(3, plan(103, 10));
        assert!(c.bytes() <= 25, "bytes {} over budget", c.bytes());
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none());
    }

    #[test]
    fn oversized_entry_still_cached_alone() {
        let mut c = PlanCache::new(PlanCacheConfig {
            max_entries: 8,
            max_bytes: 5,
            enabled: true,
        });
        c.insert(1, plan(101, 100));
        assert_eq!(c.len(), 1, "sole oversized entry is kept");
        c.insert(2, plan(102, 1));
        assert!(
            c.get(1).is_none(),
            "evicted once a fit-in-budget entry arrives"
        );
        assert!(c.get(2).is_some());
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut c = PlanCache::new(PlanCacheConfig {
            enabled: false,
            ..PlanCacheConfig::default()
        });
        c.insert(1, plan(101, 1));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }
}
