//! Service-level query lifecycle observability.
//!
//! Every submission the [`crate::service::QueryService`] admits carries a
//! `QueryId` (the ticket id) through its whole lifecycle — admission →
//! queue → dispatch → prepare → execute → serialize — and finishes as a
//! [`QueryTimeline`]: one wide event holding the per-phase durations, the
//! canonical plan hash, the memory reservation, the plan-cache outcome,
//! spill/fallback flags, and the error code if any. Completed timelines
//! land in three sinks:
//!
//! * **per-phase latency histograms** — log-linear HDR-style
//!   ([`xqr_xml::metrics::LatencyHistogram`], ≤ 6.25% relative error)
//!   for admit, queue, prepare, execute, serialize, and total, giving
//!   p50/p95/p99 per phase without storing raw samples;
//! * **a per-plan-shape statistics table** keyed by the canonical plan
//!   hash — invocations, errors, rows, cache hits, spill/fallback counts,
//!   and a latency histogram per shape. The same hash appears in
//!   `EXPLAIN` and in profile JSON, so shape rows join to `EXPLAIN
//!   ANALYZE` output directly;
//! * **a bounded journal** (ring buffer) of recent timelines, plus a
//!   separate **slow-query log** of timelines whose total exceeded
//!   [`ObserveConfig::slow_query`] (or that were sampled in via
//!   [`ObserveConfig::sample_every`]).
//!
//! Everything is snapshotted by [`ObserveReport`], rendered as JSON or
//! Prometheus-style text, and served over a minimal blocking HTTP
//! listener ([`MetricsServer`], started by
//! `QueryService::serve_metrics`). Recording is a handful of relaxed
//! atomics plus one short mutex hold per *completed query* — nothing
//! touches the per-tuple path — so the layer stays on by default
//! (measured ≤ 2% service throughput overhead; see `benches/observe.rs`).

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use xqr_xml::metrics::{json_escape, HistogramSnapshot, LatencyHistogram, ShedReason};

/// Tuning for the service observability layer.
#[derive(Clone, Debug)]
pub struct ObserveConfig {
    /// Master switch: `false` skips timelines, histograms, journal, and
    /// shape accounting entirely (the scrape surface then serves only the
    /// process-wide counters).
    pub enabled: bool,
    /// Completed timelines retained in the journal ring.
    pub journal_capacity: usize,
    /// Timelines retained in the slow-query log ring.
    pub slow_log_capacity: usize,
    /// Total-latency threshold above which a completed timeline is copied
    /// into the slow-query log. `None` disables threshold capture.
    pub slow_query: Option<Duration>,
    /// Also capture every Nth completed timeline into the slow-query log
    /// regardless of latency (wide-event sampling). 0 disables sampling.
    pub sample_every: u64,
    /// Query text is truncated to this many bytes in timelines (wide
    /// events carry the head of the text, not an unbounded copy).
    pub max_query_text: usize,
    /// Distinct plan shapes tracked in the statistics table; shapes seen
    /// past the cap are counted in `shapes_dropped` instead of growing
    /// the table without bound.
    pub max_shapes: usize,
}

impl Default for ObserveConfig {
    fn default() -> ObserveConfig {
        ObserveConfig {
            enabled: true,
            journal_capacity: 256,
            slow_log_capacity: 64,
            slow_query: Some(Duration::from_millis(250)),
            sample_every: 0,
            max_query_text: 120,
            max_shapes: 512,
        }
    }
}

/// Lifecycle phases a query moves through inside the service. `Total`
/// covers admission + queue + worker-side run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecyclePhase {
    Admit,
    Queue,
    Prepare,
    Execute,
    Serialize,
    Total,
}

/// All phases, in pipeline order (also the histogram index order).
pub const LIFECYCLE_PHASES: [LifecyclePhase; 6] = [
    LifecyclePhase::Admit,
    LifecyclePhase::Queue,
    LifecyclePhase::Prepare,
    LifecyclePhase::Execute,
    LifecyclePhase::Serialize,
    LifecyclePhase::Total,
];

impl LifecyclePhase {
    pub fn label(self) -> &'static str {
        match self {
            LifecyclePhase::Admit => "admit",
            LifecyclePhase::Queue => "queue",
            LifecyclePhase::Prepare => "prepare",
            LifecyclePhase::Execute => "execute",
            LifecyclePhase::Serialize => "serialize",
            LifecyclePhase::Total => "total",
        }
    }

    fn index(self) -> usize {
        match self {
            LifecyclePhase::Admit => 0,
            LifecyclePhase::Queue => 1,
            LifecyclePhase::Prepare => 2,
            LifecyclePhase::Execute => 3,
            LifecyclePhase::Serialize => 4,
            LifecyclePhase::Total => 5,
        }
    }
}

/// One completed (or terminally rejected) submission as a wide event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryTimeline {
    /// The ticket id ([`crate::service::QueryTicket::id`]); profiles run
    /// with this id set carry it in their JSON, so `EXPLAIN ANALYZE`
    /// output joins to this entry.
    pub id: u64,
    /// Head of the query text (truncated to the configured bound).
    pub query: String,
    /// Canonical plan hash once preparation succeeded (`None` for
    /// prepare-time failures and pre-dispatch rejections); joins to the
    /// plan-shape table, `EXPLAIN`, and the breaker registry.
    pub plan_hash: Option<u64>,
    /// Admitted memory reservation in bytes.
    pub reservation: u64,
    /// Admission-decision duration (inside `submit`).
    pub admit_nanos: u64,
    /// Time spent queued before a worker picked the job up (or before it
    /// was drained/expired).
    pub queue_nanos: u64,
    pub prepare_nanos: u64,
    pub execute_nanos: u64,
    pub serialize_nanos: u64,
    /// Admission + queue + worker-side wall time.
    pub total_nanos: u64,
    /// Result rows (0 on failure).
    pub rows: u64,
    /// Plan-cache outcome: `"hit"`, `"rehydrated"`, `"miss"`, or `"none"`
    /// (never reached preparation / cache disabled).
    pub cache: &'static str,
    /// Stable error code (`XQRG*`, `XPST*`, …), `"internal"`, or
    /// `"syntax"`; `None` for success.
    pub error: Option<String>,
    /// The run crossed the spill watermark.
    pub spilled: bool,
    /// The run fell back to the materialized strategy.
    pub fell_back: bool,
    /// Whether a worker actually executed the query (false: shed while
    /// queued, deadline expired in queue, cancelled, drained at
    /// shutdown).
    pub dispatched: bool,
    /// Completion wall-clock time (ms since the Unix epoch).
    pub finished_unix_ms: u64,
}

impl QueryTimeline {
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"id\":{},\"query\":\"{}\",\"plan_hash\":{},\"reservation\":{},\
             \"admit_nanos\":{},\"queue_nanos\":{},\"prepare_nanos\":{},\
             \"execute_nanos\":{},\"serialize_nanos\":{},\"total_nanos\":{},\
             \"rows\":{},\"cache\":\"{}\",\"error\":{},\"spilled\":{},\
             \"fell_back\":{},\"dispatched\":{},\"finished_unix_ms\":{}",
            self.id,
            json_escape(&self.query),
            match self.plan_hash {
                Some(h) => format!("\"{h:016x}\""),
                None => "null".to_string(),
            },
            self.reservation,
            self.admit_nanos,
            self.queue_nanos,
            self.prepare_nanos,
            self.execute_nanos,
            self.serialize_nanos,
            self.total_nanos,
            self.rows,
            self.cache,
            match &self.error {
                Some(e) => format!("\"{}\"", json_escape(e)),
                None => "null".to_string(),
            },
            self.spilled,
            self.fell_back,
            self.dispatched,
            self.finished_unix_ms
        );
        s.push('}');
        s
    }
}

/// Latency summary of one lifecycle phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseLatency {
    pub phase: &'static str,
    pub count: u64,
    pub p50_nanos: u64,
    pub p95_nanos: u64,
    pub p99_nanos: u64,
    pub max_nanos: u64,
    pub mean_nanos: u64,
    pub sum_nanos: u64,
}

impl PhaseLatency {
    fn from_snapshot(phase: &'static str, s: &HistogramSnapshot) -> PhaseLatency {
        PhaseLatency {
            phase,
            count: s.count,
            p50_nanos: s.quantile(0.50),
            p95_nanos: s.quantile(0.95),
            p99_nanos: s.quantile(0.99),
            max_nanos: s.max,
            mean_nanos: s.mean(),
            sum_nanos: s.sum,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"phase\":\"{}\",\"count\":{},\"p50_nanos\":{},\"p95_nanos\":{},\
             \"p99_nanos\":{},\"max_nanos\":{},\"mean_nanos\":{},\"sum_nanos\":{}}}",
            self.phase,
            self.count,
            self.p50_nanos,
            self.p95_nanos,
            self.p99_nanos,
            self.max_nanos,
            self.mean_nanos,
            self.sum_nanos
        )
    }
}

/// One row of the per-plan-shape statistics table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShapeStats {
    /// Canonical plan hash — the join key against `EXPLAIN` output,
    /// profile JSON, and the circuit-breaker registry.
    pub plan_hash: u64,
    pub invocations: u64,
    pub errors: u64,
    pub rows: u64,
    pub cache_hits: u64,
    pub spills: u64,
    pub fallbacks: u64,
    pub p50_nanos: u64,
    pub p95_nanos: u64,
    pub p99_nanos: u64,
    pub max_nanos: u64,
    pub sum_nanos: u64,
    /// Breaker state for this shape: `"closed"`, `"open"`, `"half-open"`.
    pub breaker: &'static str,
    /// Most recent error code recorded for this shape.
    pub last_error: Option<String>,
    /// Head of the first query text seen compiling to this shape.
    pub example_query: String,
}

impl ShapeStats {
    fn to_json(&self) -> String {
        format!(
            "{{\"plan_hash\":\"{:016x}\",\"invocations\":{},\"errors\":{},\"rows\":{},\
             \"cache_hits\":{},\"spills\":{},\"fallbacks\":{},\"p50_nanos\":{},\
             \"p95_nanos\":{},\"p99_nanos\":{},\"max_nanos\":{},\"sum_nanos\":{},\
             \"breaker\":\"{}\",\"last_error\":{},\"example_query\":\"{}\"}}",
            self.plan_hash,
            self.invocations,
            self.errors,
            self.rows,
            self.cache_hits,
            self.spills,
            self.fallbacks,
            self.p50_nanos,
            self.p95_nanos,
            self.p99_nanos,
            self.max_nanos,
            self.sum_nanos,
            self.breaker,
            match &self.last_error {
                Some(e) => format!("\"{}\"", json_escape(e)),
                None => "null".to_string(),
            },
            json_escape(&self.example_query)
        )
    }
}

/// A frozen view of everything the observability layer knows, plus the
/// service gauges filled in by `QueryService::observe`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObserveReport {
    pub admitted: u64,
    pub shed: u64,
    pub shed_queue_full: u64,
    pub shed_reservation: u64,
    pub shed_deadline: u64,
    pub shed_shutdown: u64,
    pub completed_ok: u64,
    pub completed_err: u64,
    /// Shapes seen past `max_shapes` and not tracked individually.
    pub shapes_dropped: u64,
    // Service gauges (point-in-time, filled by the service).
    pub queue_depth: usize,
    pub reserved_bytes: u64,
    pub doc_cache_bytes: u64,
    pub known_plan_shapes: usize,
    pub open_breakers: usize,
    pub phases: Vec<PhaseLatency>,
    /// Shape table, most-invoked first.
    pub shapes: Vec<ShapeStats>,
    /// Most recent completed timelines, oldest first.
    pub journal: Vec<QueryTimeline>,
    /// Slow/sampled wide events, oldest first.
    pub slow: Vec<QueryTimeline>,
}

impl ObserveReport {
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"admitted\":{},\"shed\":{},\"shed_queue_full\":{},\"shed_reservation\":{},\
             \"shed_deadline\":{},\"shed_shutdown\":{},\"completed_ok\":{},\
             \"completed_err\":{},\"shapes_dropped\":{},\"queue_depth\":{},\
             \"reserved_bytes\":{},\"doc_cache_bytes\":{},\"known_plan_shapes\":{},\
             \"open_breakers\":{}",
            self.admitted,
            self.shed,
            self.shed_queue_full,
            self.shed_reservation,
            self.shed_deadline,
            self.shed_shutdown,
            self.completed_ok,
            self.completed_err,
            self.shapes_dropped,
            self.queue_depth,
            self.reserved_bytes,
            self.doc_cache_bytes,
            self.known_plan_shapes,
            self.open_breakers
        );
        for (key, items) in [
            (
                "phases",
                self.phases.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
            ),
            (
                "shapes",
                self.shapes.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
            ),
            (
                "journal",
                self.journal.iter().map(|t| t.to_json()).collect::<Vec<_>>(),
            ),
            (
                "slow",
                self.slow.iter().map(|t| t.to_json()).collect::<Vec<_>>(),
            ),
        ] {
            let _ = write!(s, ",\"{key}\":[{}]", items.join(","));
        }
        s.push('}');
        s
    }

    /// Service-local Prometheus-style series (summary form with
    /// `quantile` labels for the phase and shape histograms), appended to
    /// the process-wide exposition by `QueryService::prometheus_text`.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "# TYPE xqr_service_sheds_total counter");
        for (reason, v) in [
            ("queue-full", self.shed_queue_full),
            ("unservable-reservation", self.shed_reservation),
            ("ewma-deadline", self.shed_deadline),
            ("shutdown", self.shed_shutdown),
        ] {
            let _ = writeln!(s, "xqr_service_sheds_total{{reason=\"{reason}\"}} {v}");
        }
        for (name, v) in [
            ("admitted_total", self.admitted),
            ("completed_ok_total", self.completed_ok),
            ("completed_err_total", self.completed_err),
        ] {
            let _ = writeln!(
                s,
                "# TYPE xqr_service_{name} counter\nxqr_service_{name} {v}"
            );
        }
        let _ = writeln!(
            s,
            "# TYPE xqr_service_reserved_bytes gauge\nxqr_service_reserved_bytes {}",
            self.reserved_bytes
        );
        let _ = writeln!(s, "# TYPE xqr_service_phase_latency_seconds summary");
        for p in &self.phases {
            for (q, v) in [(0.5, p.p50_nanos), (0.95, p.p95_nanos), (0.99, p.p99_nanos)] {
                let _ = writeln!(
                    s,
                    "xqr_service_phase_latency_seconds{{phase=\"{}\",quantile=\"{q}\"}} {:.9}",
                    p.phase,
                    v as f64 / 1e9
                );
            }
            let _ = writeln!(
                s,
                "xqr_service_phase_latency_seconds_sum{{phase=\"{}\"}} {:.9}\n\
                 xqr_service_phase_latency_seconds_count{{phase=\"{}\"}} {}",
                p.phase,
                p.sum_nanos as f64 / 1e9,
                p.phase,
                p.count
            );
        }
        let _ = writeln!(s, "# TYPE xqr_service_shape_invocations_total counter");
        for sh in &self.shapes {
            let _ = writeln!(
                s,
                "xqr_service_shape_invocations_total{{plan=\"{:016x}\"}} {}",
                sh.plan_hash, sh.invocations
            );
        }
        let _ = writeln!(s, "# TYPE xqr_service_shape_latency_seconds summary");
        for sh in &self.shapes {
            for (q, v) in [
                (0.5, sh.p50_nanos),
                (0.95, sh.p95_nanos),
                (0.99, sh.p99_nanos),
            ] {
                let _ = writeln!(
                    s,
                    "xqr_service_shape_latency_seconds{{plan=\"{:016x}\",quantile=\"{q}\"}} {:.9}",
                    sh.plan_hash,
                    v as f64 / 1e9
                );
            }
        }
        s
    }

    /// Human-readable dump: counters, the per-phase quantile table, the
    /// shape table, and the slow-query log.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        fn ms(n: u64) -> f64 {
            n as f64 / 1e6
        }
        let mut s = String::new();
        let _ = writeln!(
            s,
            "admitted {}  ok {}  err {}  shed {} (queue-full {}, reservation {}, \
             ewma-deadline {}, shutdown {})",
            self.admitted,
            self.completed_ok,
            self.completed_err,
            self.shed,
            self.shed_queue_full,
            self.shed_reservation,
            self.shed_deadline,
            self.shed_shutdown
        );
        let _ = writeln!(
            s,
            "queue depth {}  reserved {} B  doc cache {} B  shapes {}  open breakers {}",
            self.queue_depth,
            self.reserved_bytes,
            self.doc_cache_bytes,
            self.known_plan_shapes,
            self.open_breakers
        );
        let _ = writeln!(
            s,
            "phase        count        p50        p95        p99        max"
        );
        for p in &self.phases {
            let _ = writeln!(
                s,
                "{:<10} {:>7} {:>9.3}ms {:>9.3}ms {:>9.3}ms {:>9.3}ms",
                p.phase,
                p.count,
                ms(p.p50_nanos),
                ms(p.p95_nanos),
                ms(p.p99_nanos),
                ms(p.max_nanos)
            );
        }
        for sh in &self.shapes {
            let _ = writeln!(
                s,
                "shape {:016x}  n={} err={} rows={} hits={} spills={} fallbacks={} \
                 p50={:.3}ms p99={:.3}ms breaker={}  {}",
                sh.plan_hash,
                sh.invocations,
                sh.errors,
                sh.rows,
                sh.cache_hits,
                sh.spills,
                sh.fallbacks,
                ms(sh.p50_nanos),
                ms(sh.p99_nanos),
                sh.breaker,
                sh.example_query
            );
        }
        for t in &self.slow {
            let _ = writeln!(s, "slow {}", t.to_json());
        }
        s
    }
}

struct ShapeAccum {
    invocations: u64,
    errors: u64,
    rows: u64,
    cache_hits: u64,
    spills: u64,
    fallbacks: u64,
    hist: LatencyHistogram,
    last_error: Option<String>,
    example_query: String,
}

/// The always-on accumulator a [`crate::service::QueryService`] owns.
/// Shared across worker threads: counters and histograms are atomic, the
/// journal/shape sinks take a short mutex per completed query.
pub(crate) struct ServiceObservability {
    cfg: ObserveConfig,
    admitted: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_reservation: AtomicU64,
    shed_deadline: AtomicU64,
    shed_shutdown: AtomicU64,
    completed_ok: AtomicU64,
    completed_err: AtomicU64,
    shapes_dropped: AtomicU64,
    completed_seq: AtomicU64,
    hist: [LatencyHistogram; 6],
    journal: Mutex<VecDeque<QueryTimeline>>,
    slow: Mutex<VecDeque<QueryTimeline>>,
    shapes: Mutex<HashMap<u64, ShapeAccum>>,
}

impl ServiceObservability {
    pub(crate) fn new(cfg: ObserveConfig) -> ServiceObservability {
        ServiceObservability {
            cfg,
            admitted: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_reservation: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_shutdown: AtomicU64::new(0),
            completed_ok: AtomicU64::new(0),
            completed_err: AtomicU64::new(0),
            shapes_dropped: AtomicU64::new(0),
            completed_seq: AtomicU64::new(0),
            hist: std::array::from_fn(|_| LatencyHistogram::new()),
            journal: Mutex::new(VecDeque::new()),
            slow: Mutex::new(VecDeque::new()),
            shapes: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Truncates query text to the configured wide-event bound (on a char
    /// boundary).
    pub(crate) fn clip_query(&self, q: &str) -> String {
        let mut end = self.cfg.max_query_text.min(q.len());
        while end < q.len() && !q.is_char_boundary(end) {
            end += 1;
        }
        q[..end].to_string()
    }

    pub(crate) fn record_admitted(&self) {
        if self.cfg.enabled {
            self.admitted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the admission-decision duration — for admitted *and* shed
    /// submissions, so overload leaves a latency trace too.
    pub(crate) fn record_admit_decision(&self, nanos: u64) {
        if self.cfg.enabled {
            self.hist[LifecyclePhase::Admit.index()].record(nanos);
        }
    }

    pub(crate) fn record_shed(&self, reason: ShedReason) {
        if !self.cfg.enabled {
            return;
        }
        let c = match reason {
            ShedReason::QueueFull => &self.shed_queue_full,
            ShedReason::Reservation => &self.shed_reservation,
            ShedReason::Deadline => &self.shed_deadline,
            ShedReason::Shutdown => &self.shed_shutdown,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Ingests a finished timeline: phase histograms, shape table, the
    /// journal ring, and the slow-query log.
    pub(crate) fn complete(&self, tl: QueryTimeline) {
        if !self.cfg.enabled {
            return;
        }
        if tl.error.is_none() {
            self.completed_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.completed_err.fetch_add(1, Ordering::Relaxed);
        }
        self.hist[LifecyclePhase::Queue.index()].record(tl.queue_nanos);
        self.hist[LifecyclePhase::Total.index()].record(tl.total_nanos);
        if tl.dispatched {
            self.hist[LifecyclePhase::Prepare.index()].record(tl.prepare_nanos);
            self.hist[LifecyclePhase::Execute.index()].record(tl.execute_nanos);
            self.hist[LifecyclePhase::Serialize.index()].record(tl.serialize_nanos);
        }
        if let Some(hash) = tl.plan_hash {
            let mut shapes = self.shapes.lock().unwrap_or_else(|p| p.into_inner());
            let len = shapes.len();
            match shapes.entry(hash) {
                std::collections::hash_map::Entry::Vacant(_) if len >= self.cfg.max_shapes => {
                    self.shapes_dropped.fetch_add(1, Ordering::Relaxed);
                }
                e => {
                    let acc = e.or_insert_with(|| ShapeAccum {
                        invocations: 0,
                        errors: 0,
                        rows: 0,
                        cache_hits: 0,
                        spills: 0,
                        fallbacks: 0,
                        hist: LatencyHistogram::new(),
                        last_error: None,
                        example_query: tl.query.clone(),
                    });
                    acc.invocations += 1;
                    acc.rows += tl.rows;
                    acc.cache_hits += u64::from(tl.cache == "hit");
                    acc.spills += u64::from(tl.spilled);
                    acc.fallbacks += u64::from(tl.fell_back);
                    acc.hist
                        .record(tl.prepare_nanos + tl.execute_nanos + tl.serialize_nanos);
                    if let Some(e) = &tl.error {
                        acc.errors += 1;
                        acc.last_error = Some(e.clone());
                    }
                }
            }
        }
        let seq = self.completed_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let slow_hit = self
            .cfg
            .slow_query
            .is_some_and(|t| tl.total_nanos >= t.as_nanos() as u64)
            || (self.cfg.sample_every > 0 && seq.is_multiple_of(self.cfg.sample_every));
        if slow_hit && self.cfg.slow_log_capacity > 0 {
            let mut slow = self.slow.lock().unwrap_or_else(|p| p.into_inner());
            if slow.len() >= self.cfg.slow_log_capacity {
                slow.pop_front();
            }
            slow.push_back(tl.clone());
        }
        if self.cfg.journal_capacity > 0 {
            let mut journal = self.journal.lock().unwrap_or_else(|p| p.into_inner());
            if journal.len() >= self.cfg.journal_capacity {
                journal.pop_front();
            }
            journal.push_back(tl);
        }
    }

    /// Freezes the layer's state (gauges and breaker states are filled in
    /// by the service).
    pub(crate) fn report(&self) -> ObserveReport {
        let shed_queue_full = self.shed_queue_full.load(Ordering::Relaxed);
        let shed_reservation = self.shed_reservation.load(Ordering::Relaxed);
        let shed_deadline = self.shed_deadline.load(Ordering::Relaxed);
        let shed_shutdown = self.shed_shutdown.load(Ordering::Relaxed);
        let mut shapes: Vec<ShapeStats> = {
            let map = self.shapes.lock().unwrap_or_else(|p| p.into_inner());
            map.iter()
                .map(|(&hash, acc)| {
                    let h = acc.hist.snapshot();
                    ShapeStats {
                        plan_hash: hash,
                        invocations: acc.invocations,
                        errors: acc.errors,
                        rows: acc.rows,
                        cache_hits: acc.cache_hits,
                        spills: acc.spills,
                        fallbacks: acc.fallbacks,
                        p50_nanos: h.quantile(0.50),
                        p95_nanos: h.quantile(0.95),
                        p99_nanos: h.quantile(0.99),
                        max_nanos: h.max,
                        sum_nanos: h.sum,
                        breaker: "closed",
                        last_error: acc.last_error.clone(),
                        example_query: acc.example_query.clone(),
                    }
                })
                .collect()
        };
        shapes.sort_by(|a, b| {
            b.invocations
                .cmp(&a.invocations)
                .then(a.plan_hash.cmp(&b.plan_hash))
        });
        ObserveReport {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: shed_queue_full + shed_reservation + shed_deadline + shed_shutdown,
            shed_queue_full,
            shed_reservation,
            shed_deadline,
            shed_shutdown,
            completed_ok: self.completed_ok.load(Ordering::Relaxed),
            completed_err: self.completed_err.load(Ordering::Relaxed),
            shapes_dropped: self.shapes_dropped.load(Ordering::Relaxed),
            queue_depth: 0,
            reserved_bytes: 0,
            doc_cache_bytes: 0,
            known_plan_shapes: 0,
            open_breakers: 0,
            phases: LIFECYCLE_PHASES
                .iter()
                .map(|p| PhaseLatency::from_snapshot(p.label(), &self.hist[p.index()].snapshot()))
                .collect(),
            shapes,
            journal: self
                .journal
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .iter()
                .cloned()
                .collect(),
            slow: self
                .slow
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .iter()
                .cloned()
                .collect(),
        }
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub(crate) fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

// ===== scrape endpoint =====================================================

/// Handle to a running scrape listener (started by
/// `QueryService::serve_metrics`). Dropping it stops the listener thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Hard ceiling on the bytes of request line + headers the scrape
/// listener reads before answering `431`.
pub(crate) const MAX_SCRAPE_HEAD_BYTES: usize = 8192;
/// Total wall-clock budget for receiving one request head. A client that
/// dribbles bytes (slow-loris) keeps each individual read under the
/// socket timeout but cannot stretch the head past this.
const SCRAPE_HEAD_DEADLINE: Duration = Duration::from_secs(2);
/// Concurrent scrape connections served at once; extras get a fast 503.
const MAX_SCRAPE_CONNS: usize = 16;

/// Starts a minimal blocking HTTP/1.1 listener serving GET requests
/// through `router` (path → `(status, content type, body)`; `None` →
/// 404). One request per connection, bounded head size, per-read *and*
/// whole-head deadlines, no keep-alive — a scrape surface, not a web
/// server. Each connection is served on its own short-lived thread
/// (capped at [`MAX_SCRAPE_CONNS`]) so one stalled scraper cannot pin
/// the accept loop.
pub(crate) fn serve(
    addr: impl ToSocketAddrs,
    router: impl Fn(&str) -> Option<(u16, &'static str, String)> + Send + Sync + 'static,
) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let router = Arc::new(router);
    let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let handle = std::thread::Builder::new()
        .name("xqr-metrics".to_string())
        .spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if active.load(Ordering::SeqCst) >= MAX_SCRAPE_CONNS {
                            // Refuse inline with tight timeouts; never
                            // block the accept loop on a hostile peer.
                            let _ = refuse_busy(stream);
                            continue;
                        }
                        active.fetch_add(1, Ordering::SeqCst);
                        let router = Arc::clone(&router);
                        let conn_active = Arc::clone(&active);
                        let spawned = std::thread::Builder::new()
                            .name("xqr-scrape-conn".to_string())
                            .spawn(move || {
                                let _ = handle_conn(stream, &*router);
                                conn_active.fetch_sub(1, Ordering::SeqCst);
                            });
                        if spawned.is_err() {
                            active.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        })
        .expect("spawn metrics listener thread");
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn refuse_busy(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_millis(250)))?;
    stream.write_all(
        http_response(
            503,
            "text/plain; charset=utf-8",
            "scrape listener busy\n",
            &[],
        )
        .as_bytes(),
    )
}

/// Reads one request head from `stream` — bounded by `max_bytes` and a
/// total `deadline` — and returns the raw bytes. `Ok(None)` means the
/// peer closed before completing a head. An oversized or slow-dribbled
/// head is an `InvalidData`/`TimedOut` error for the caller to map.
pub(crate) fn read_head(
    stream: &mut TcpStream,
    max_bytes: usize,
    deadline: Duration,
) -> std::io::Result<Option<Vec<u8>>> {
    let t0 = Instant::now();
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() >= max_bytes {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request head exceeds the configured bound",
            ));
        }
        let remaining = deadline.saturating_sub(t0.elapsed());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request head not completed within the deadline",
            ));
        }
        // Cap each read by the remaining head budget so a byte-at-a-time
        // dribble cannot stretch the head past the deadline.
        stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        let want = (max_bytes - buf.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                break;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Some(buf))
}

fn handle_conn(
    mut stream: TcpStream,
    router: &impl Fn(&str) -> Option<(u16, &'static str, String)>,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let buf = match read_head(&mut stream, MAX_SCRAPE_HEAD_BYTES, SCRAPE_HEAD_DEADLINE) {
        Ok(Some(buf)) => buf,
        Ok(None) => return Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            let resp = http_response(
                431,
                "text/plain; charset=utf-8",
                "request head too large\n",
                &[],
            );
            let _ = stream.write_all(resp.as_bytes());
            return Ok(());
        }
        Err(e) => return Err(e),
    };
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or("/"));
    let response = if method != "GET" {
        http_response(
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
            &[],
        )
    } else {
        match router(path) {
            Some((status, ctype, body)) => http_response(status, ctype, &body, &[]),
            None => http_response(404, "text/plain; charset=utf-8", "not found\n", &[]),
        }
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Renders one `Connection: close` HTTP/1.1 response. `extra` headers
/// (e.g. `Retry-After`) are emitted after the standard ones.
pub(crate) fn http_response(
    status: u16,
    ctype: &str,
    body: &str,
    extra: &[(&str, String)],
) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let mut headers = String::new();
    for (k, v) in extra {
        headers.push_str(k);
        headers.push_str(": ");
        headers.push_str(v);
        headers.push_str("\r\n");
    }
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n{headers}\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(id: u64, total_ms: u64, hash: Option<u64>, error: Option<&str>) -> QueryTimeline {
        QueryTimeline {
            id,
            query: format!("q{id}"),
            plan_hash: hash,
            reservation: 1024,
            admit_nanos: 500,
            queue_nanos: 10_000,
            prepare_nanos: 20_000,
            execute_nanos: total_ms * 1_000_000,
            serialize_nanos: 5_000,
            total_nanos: total_ms * 1_000_000 + 35_500,
            rows: 3,
            cache: "hit",
            error: error.map(str::to_string),
            spilled: false,
            fell_back: false,
            dispatched: true,
            finished_unix_ms: 1,
        }
    }

    #[test]
    fn journal_is_bounded_and_ordered() {
        let obs = ServiceObservability::new(ObserveConfig {
            journal_capacity: 4,
            slow_query: None,
            ..ObserveConfig::default()
        });
        for i in 0..10 {
            obs.complete(timeline(i, 1, Some(7), None));
        }
        let r = obs.report();
        assert_eq!(r.journal.len(), 4);
        let ids: Vec<u64> = r.journal.iter().map(|t| t.id).collect();
        assert_eq!(
            ids,
            vec![6, 7, 8, 9],
            "ring keeps the most recent, oldest first"
        );
        assert_eq!(r.completed_ok, 10);
        assert_eq!(r.shapes.len(), 1);
        assert_eq!(r.shapes[0].invocations, 10);
        assert_eq!(r.shapes[0].rows, 30);
        assert_eq!(r.shapes[0].cache_hits, 10);
    }

    #[test]
    fn slow_log_threshold_and_sampling() {
        let obs = ServiceObservability::new(ObserveConfig {
            slow_query: Some(Duration::from_millis(50)),
            slow_log_capacity: 8,
            ..ObserveConfig::default()
        });
        obs.complete(timeline(1, 1, None, None)); // fast: not captured
        obs.complete(timeline(2, 80, None, None)); // slow: captured
        let r = obs.report();
        assert_eq!(r.slow.len(), 1);
        assert_eq!(r.slow[0].id, 2);

        let sampled = ServiceObservability::new(ObserveConfig {
            slow_query: None,
            sample_every: 3,
            ..ObserveConfig::default()
        });
        for i in 0..9 {
            sampled.complete(timeline(i, 1, None, None));
        }
        assert_eq!(sampled.report().slow.len(), 3, "every 3rd sampled");
    }

    #[test]
    fn errors_and_shape_cap() {
        let obs = ServiceObservability::new(ObserveConfig {
            max_shapes: 2,
            slow_query: None,
            ..ObserveConfig::default()
        });
        obs.complete(timeline(1, 1, Some(1), Some("XQRG0003")));
        obs.complete(timeline(2, 1, Some(2), None));
        obs.complete(timeline(3, 1, Some(3), None)); // over the cap
        let r = obs.report();
        assert_eq!(r.completed_ok, 2);
        assert_eq!(r.completed_err, 1);
        assert_eq!(r.shapes.len(), 2);
        assert_eq!(r.shapes_dropped, 1);
        let errored = r.shapes.iter().find(|s| s.plan_hash == 1).unwrap();
        assert_eq!(errored.errors, 1);
        assert_eq!(errored.last_error.as_deref(), Some("XQRG0003"));
    }

    #[test]
    fn disabled_layer_records_nothing() {
        let obs = ServiceObservability::new(ObserveConfig {
            enabled: false,
            ..ObserveConfig::default()
        });
        obs.record_admitted();
        obs.record_admit_decision(10);
        obs.record_shed(ShedReason::QueueFull);
        obs.complete(timeline(1, 1, Some(7), None));
        let r = obs.report();
        assert_eq!(r.admitted, 0);
        assert_eq!(r.shed, 0);
        assert_eq!(r.completed_ok, 0);
        assert!(r.journal.is_empty());
        assert!(r.shapes.is_empty());
    }

    #[test]
    fn report_json_and_prometheus_render() {
        let obs = ServiceObservability::new(ObserveConfig {
            slow_query: Some(Duration::ZERO),
            ..ObserveConfig::default()
        });
        obs.record_admitted();
        obs.record_admit_decision(700);
        obs.complete(timeline(1, 2, Some(0xabcd), None));
        let r = obs.report();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"phases\":["));
        assert!(j.contains("\"plan_hash\":\"000000000000abcd\""));
        assert!(j.contains("\"journal\":[{"));
        assert!(j.contains("\"slow\":[{"));
        let p = r.prometheus_text();
        assert!(p.contains("xqr_service_admitted_total 1"));
        assert!(
            p.contains("xqr_service_phase_latency_seconds{phase=\"execute\",quantile=\"0.99\"}")
        );
        assert!(p.contains("xqr_service_shape_invocations_total{plan=\"000000000000abcd\"} 1"));
        assert!(!r.render_text().is_empty());
    }

    #[test]
    fn clip_query_respects_char_boundaries() {
        let obs = ServiceObservability::new(ObserveConfig {
            max_query_text: 5,
            ..ObserveConfig::default()
        });
        assert_eq!(obs.clip_query("abcdefgh"), "abcde");
        // 'é' is 2 bytes; the cut lands mid-char and must move forward.
        assert_eq!(obs.clip_query("abcdéf"), "abcdé");
        assert_eq!(obs.clip_query("ab"), "ab");
    }

    #[test]
    fn http_server_serves_and_404s() {
        let srv = serve("127.0.0.1:0", |path| match path {
            "/metrics" => Some((200, "text/plain; version=0.0.4", "xqr_up 1\n".to_string())),
            _ => None,
        })
        .expect("bind");
        let addr = srv.addr();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.ends_with("xqr_up 1\n"), "{resp}");

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
        srv.shutdown();
    }

    #[test]
    fn http_server_bounds_header_floods() {
        let srv = serve("127.0.0.1:0", |_| {
            Some((200, "text/plain", "ok".to_string()))
        })
        .expect("bind");
        let addr = srv.addr();
        // A head larger than the bound gets 431, not unbounded buffering.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n").unwrap();
        let filler = format!("X-Flood: {}\r\n", "y".repeat(1000));
        for _ in 0..(MAX_SCRAPE_HEAD_BYTES / filler.len() + 2) {
            if s.write_all(filler.as_bytes()).is_err() {
                break; // server already hung up on us — also acceptable
            }
        }
        let mut resp = String::new();
        let _ = s.read_to_string(&mut resp);
        assert!(
            resp.is_empty() || resp.starts_with("HTTP/1.1 431"),
            "{resp}"
        );
        // The listener survives and keeps serving well-formed requests.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        srv.shutdown();
    }
}
