//! # xqr-engine — the public facade
//!
//! Ties the pipeline together: parse → normalize (paper-modified Core) →
//! compile into the algebra → optionally rewrite (Section 5 unnesting) →
//! evaluate with the selected join algorithm (Section 6). The
//! [`ExecutionMode`] enum matches the four configurations of the paper's
//! **Table 3**:
//!
//! | mode | paper row |
//! |---|---|
//! | [`ExecutionMode::NoAlgebra`] | "No algebra" — direct Core interpreter |
//! | [`ExecutionMode::AlgebraNoOptim`] | "Algebra + No optim" |
//! | [`ExecutionMode::OptimNestedLoop`] | "Optim + nested-loop joins" |
//! | [`ExecutionMode::OptimHashJoin`] | "Optim + XQuery joins" (hash) |
//! | [`ExecutionMode::OptimSortJoin`] | "Optim + XQuery joins" (sort) |
//!
//! ```
//! use xqr_engine::{CompileOptions, Engine, ExecutionMode};
//!
//! let mut engine = Engine::new();
//! engine.bind_document("catalog.xml", "<items><item id='1'/><item id='2'/></items>").unwrap();
//! let q = engine
//!     .prepare(
//!         "for $i in doc('catalog.xml')//item return <got>{ $i/@id }</got>",
//!         &CompileOptions::default(),
//!     )
//!     .unwrap();
//! let result = q.run(&engine).unwrap();
//! assert_eq!(result.len(), 2);
//! ```

pub mod breaker;
pub mod doccache;
pub mod service;

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::time::Instant;

use xqr_core::algebra::plan_size;
use xqr_core::{
    compile_module, pretty, rewrite_module_traced, rewrite_module_with, CompiledModule,
    RewriteStats,
};

pub use xqr_core::RuleConfig;
pub use xqr_core::{CollectingTracer, NoopTracer, StderrTracer, TraceEvent, Tracer};
use xqr_frontend::{frontend_with, normalize_module, parse_query_with, CoreModule, SyntaxError};
use xqr_runtime::{eval_core_module_profiled, Ctx, InterpProfile, Profiler};
use xqr_types::Schema;
use xqr_xml::limits::{
    ERR_BREAKER, ERR_BYTES, ERR_CANCELLED, ERR_DEADLINE, ERR_OVERLOADED, ERR_RECURSION,
    ERR_SPILL_BUDGET, ERR_SPILL_IO, ERR_TUPLES,
};
use xqr_xml::metrics::metrics;
use xqr_xml::parse::{parse_document, ParseOptions};
use xqr_xml::{Governor, NodeHandle, QName, Sequence, XmlError};

pub use xqr_runtime::{JoinAlgorithm, ProfileNode, QueryProfile};
pub use xqr_xml::{CancellationToken, Limits, MetricsSnapshot, RetryPolicy};

pub use breaker::{BreakerConfig, CircuitBreakers};
pub use doccache::DocTextCache;
pub use service::{QueryRequest, QueryService, QueryTicket, ServiceConfig, ServiceOutput};

/// How a prepared query executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecutionMode {
    /// Direct Core interpretation — the paper's "No algebra" baseline.
    NoAlgebra,
    /// Algebraic compilation without the Section 5 rewritings.
    AlgebraNoOptim,
    /// Rewritten plans, all joins nested-loop.
    OptimNestedLoop,
    /// Rewritten plans, typed hash joins (Fig. 6) where applicable.
    #[default]
    OptimHashJoin,
    /// Rewritten plans, order-preserving B-tree (sort) joins.
    OptimSortJoin,
}

impl ExecutionMode {
    /// All modes, in the order of Table 3.
    pub const ALL: [ExecutionMode; 4] = [
        ExecutionMode::NoAlgebra,
        ExecutionMode::AlgebraNoOptim,
        ExecutionMode::OptimNestedLoop,
        ExecutionMode::OptimHashJoin,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::NoAlgebra => "No algebra",
            ExecutionMode::AlgebraNoOptim => "Algebra + No optim",
            ExecutionMode::OptimNestedLoop => "Optim + nested-loop joins",
            ExecutionMode::OptimHashJoin => "Optim + XQuery joins",
            ExecutionMode::OptimSortJoin => "Optim + XQuery sort joins",
        }
    }

    fn join_algorithm(self) -> JoinAlgorithm {
        match self {
            ExecutionMode::OptimHashJoin => JoinAlgorithm::Hash,
            ExecutionMode::OptimSortJoin => JoinAlgorithm::Sort,
            _ => JoinAlgorithm::NestedLoop,
        }
    }
}

/// Compilation options.
#[derive(Clone, Debug, Default)]
pub struct CompileOptions {
    pub mode: ExecutionMode,
    /// Rewrite-rule families applied in the optimizing modes (ablation
    /// studies disable subsets; see `crates/bench/benches/ablation.rs`).
    pub rules: Option<RuleConfig>,
    /// Infer and install `TreeProject` document projections (see
    /// `xqr_core::project`). Off by default: profitable for
    /// navigation-heavy queries over large documents.
    pub projection: bool,
    /// Escape hatch: evaluate every tuple operator to a complete
    /// intermediate table (the original strategy) instead of the default
    /// pipelined cursor execution. Kept for ablation benchmarks and the
    /// cross-strategy differential suite.
    pub materialize_all: bool,
    /// Per-query resource limits; `None` falls back to the engine-wide
    /// limits installed with [`Engine::set_limits`] (and to
    /// [`Limits::default`] when neither is set).
    pub limits: Option<Limits>,
    /// Opt-in graceful degradation: when a *pipelined* execution fails
    /// with an internal error (a caught panic), retry once under the
    /// materialized strategy. The fallback is recorded and reported by
    /// [`PreparedQuery::explain`]. Limit violations are never retried.
    pub fallback_to_materialized: bool,
    /// Collect a per-operator runtime profile on every run (EXPLAIN
    /// ANALYZE). Off by default: the disabled path is a single `Option`
    /// check per operator open/dispatch.
    pub profile: bool,
    /// Escape hatch: disable the batched (vectorized) execution of the
    /// pipelined operators — fused, type-specialized comparison kernels
    /// for provably safe predicate shapes — and force every predicate
    /// down the row-at-a-time scalar path. Kept for ablation benchmarks
    /// and the batched/scalar differential suite, mirroring
    /// [`CompileOptions::materialize_all`]. No effect under the
    /// materialized strategy, which is always scalar.
    pub scalar_kernels: bool,
}

impl CompileOptions {
    pub fn mode(mode: ExecutionMode) -> CompileOptions {
        CompileOptions {
            mode,
            ..CompileOptions::default()
        }
    }

    pub fn with_rules(mode: ExecutionMode, rules: RuleConfig) -> CompileOptions {
        CompileOptions {
            mode,
            rules: Some(rules),
            ..CompileOptions::default()
        }
    }

    pub fn with_projection(mode: ExecutionMode) -> CompileOptions {
        CompileOptions {
            mode,
            projection: true,
            ..CompileOptions::default()
        }
    }

    pub fn materialized(mode: ExecutionMode) -> CompileOptions {
        CompileOptions {
            mode,
            materialize_all: true,
            ..CompileOptions::default()
        }
    }

    /// Attaches per-query resource limits.
    pub fn limits(mut self, limits: Limits) -> CompileOptions {
        self.limits = Some(limits);
        self
    }

    /// Enables the materialized-strategy retry on pipelined failure.
    pub fn with_fallback(mut self) -> CompileOptions {
        self.fallback_to_materialized = true;
        self
    }

    /// Enables per-operator runtime profiling ([`PreparedQuery::explain_analyze`]).
    pub fn with_profiling(mut self) -> CompileOptions {
        self.profile = true;
        self
    }

    /// Disables the batched (vectorized) kernels; every predicate runs
    /// the row-at-a-time scalar path.
    pub fn with_scalar_kernels(mut self) -> CompileOptions {
        self.scalar_kernels = true;
        self
    }
}

/// Which pipeline stage an error arose in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Service-side admission/dispatch (queueing, shedding, breakers),
    /// before the query pipeline proper starts.
    Admit,
    Parse,
    Normalize,
    Compile,
    Rewrite,
    Execute,
}

impl Phase {
    pub fn label(self) -> &'static str {
        match self {
            Phase::Admit => "admit",
            Phase::Parse => "parse",
            Phase::Normalize => "normalize",
            Phase::Compile => "compile",
            Phase::Rewrite => "rewrite",
            Phase::Execute => "execute",
        }
    }
}

/// Which resource budget a [`EngineError::LimitExceeded`] tripped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetKind {
    Deadline,
    Cancelled,
    Tuples,
    Bytes,
    Recursion,
    /// Spill I/O failed irrecoverably (`XQRG0005`: retries exhausted or a
    /// corrupt frame).
    SpillIo,
    /// The spill *disk* budget (`Limits::with_spill`) is exhausted
    /// (`XQRG0006`).
    SpillDisk,
    /// The query service shed this submission (`XQRG0007`): queue full,
    /// reservation unservable, or deadline shorter than the estimated
    /// queue wait.
    Overloaded,
    /// A circuit breaker fast-failed this plan shape (`XQRG0008`) after
    /// repeated internal failures; retry after the cooldown.
    BreakerOpen,
}

impl BudgetKind {
    fn from_code(code: &str) -> Option<BudgetKind> {
        match code {
            ERR_DEADLINE => Some(BudgetKind::Deadline),
            ERR_CANCELLED => Some(BudgetKind::Cancelled),
            ERR_TUPLES => Some(BudgetKind::Tuples),
            ERR_BYTES => Some(BudgetKind::Bytes),
            ERR_RECURSION => Some(BudgetKind::Recursion),
            ERR_SPILL_IO => Some(BudgetKind::SpillIo),
            ERR_SPILL_BUDGET => Some(BudgetKind::SpillDisk),
            ERR_OVERLOADED => Some(BudgetKind::Overloaded),
            ERR_BREAKER => Some(BudgetKind::BreakerOpen),
            _ => None,
        }
    }
}

/// Errors from preparation or execution.
#[derive(Debug, Clone)]
pub enum EngineError {
    Syntax(SyntaxError),
    Dynamic(XmlError),
    /// A resource budget tripped (governor codes `XQRG0001`–`XQRG0008`,
    /// recursion `XQRT0005`).
    LimitExceeded {
        /// The stable `err:`-style code of the violated budget.
        code: &'static str,
        /// Pipeline stage where the budget tripped.
        phase: Phase,
        /// Which budget tripped.
        budget: BudgetKind,
        message: String,
    },
    /// A panic caught at the engine's isolation boundary: the fault is
    /// contained to this query instead of unwinding through the caller.
    Internal {
        /// Pipeline stage that panicked.
        phase: Phase,
        /// What was being evaluated (mode label plus the plan's root).
        plan_context: String,
        message: String,
    },
}

impl EngineError {
    /// The `err:`-style code, when one applies.
    pub fn code(&self) -> Option<&str> {
        match self {
            EngineError::Syntax(_) => None,
            EngineError::Dynamic(e) => Some(e.code),
            EngineError::LimitExceeded { code, .. } => Some(code),
            EngineError::Internal { .. } => None,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Syntax(e) => write!(f, "{e}"),
            EngineError::Dynamic(e) => write!(f, "{e}"),
            EngineError::LimitExceeded {
                code,
                phase,
                budget,
                message,
            } => write!(
                f,
                "[{code}] limit exceeded ({budget:?}, during {}): {message}",
                phase.label()
            ),
            EngineError::Internal {
                phase,
                plan_context,
                message,
            } => write!(
                f,
                "internal error during {} of {plan_context}: {message}",
                phase.label()
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SyntaxError> for EngineError {
    fn from(e: SyntaxError) -> Self {
        EngineError::Syntax(e)
    }
}

impl From<XmlError> for EngineError {
    fn from(e: XmlError) -> Self {
        EngineError::Dynamic(e)
    }
}

/// Classifies a dynamic error: governor codes become structured
/// [`EngineError::LimitExceeded`], everything else stays [`EngineError::Dynamic`].
fn classify(e: XmlError, phase: Phase) -> EngineError {
    match BudgetKind::from_code(e.code) {
        Some(budget) => EngineError::LimitExceeded {
            code: e.code,
            phase,
            budget,
            message: e.message,
        },
        None => EngineError::Dynamic(e),
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs a closure behind the isolation boundary: a panic becomes
/// [`EngineError::Internal`] instead of unwinding through the caller.
fn isolate<T>(phase: Phase, plan_context: &str, f: impl FnOnce() -> T) -> Result<T, EngineError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| EngineError::Internal {
        phase,
        plan_context: plan_context.to_string(),
        message: panic_message(p),
    })
}

/// The engine: documents, schema, and external variable bindings shared by
/// prepared queries.
#[derive(Default)]
pub struct Engine {
    documents: HashMap<String, NodeHandle>,
    schema: Schema,
    externals: HashMap<QName, Sequence>,
    /// Engine-wide resource limits, the default for every prepare/run and
    /// for document parsing. Overridden per query by
    /// [`CompileOptions::limits`].
    limits: Option<Limits>,
    /// Receiver of phase/rule trace events; `None` skips event
    /// construction entirely.
    tracer: Option<Rc<dyn Tracer>>,
}

impl Engine {
    pub fn new() -> Engine {
        #[allow(unused_mut)]
        let mut e = Engine::default();
        #[cfg(feature = "trace-log")]
        if std::env::var_os("XQR_TRACE").is_some_and(|v| !v.is_empty() && v != "0") {
            e.tracer = Some(Rc::new(StderrTracer));
        }
        e
    }

    /// Installs a tracer receiving one span per pipeline phase and one
    /// event per rewrite rule that fires.
    pub fn set_tracer(&mut self, tracer: Rc<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Removes the installed tracer.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    fn trace(&self, ev: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.event(&ev);
        }
    }

    /// Process-wide engine metrics, rendered as aligned text.
    pub fn metrics_text(&self) -> String {
        metrics().snapshot().dump_text()
    }

    /// Process-wide engine metrics as JSON.
    pub fn metrics_json(&self) -> String {
        metrics().snapshot().dump_json()
    }

    /// A frozen copy of the process-wide engine metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        metrics().snapshot()
    }

    /// Installs engine-wide resource limits (deadline, budgets, depth
    /// guards) applied to every subsequent `bind_document`/`prepare`/`run`
    /// unless a query overrides them via [`CompileOptions::limits`].
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = Some(limits);
    }

    /// Parses and registers a document under a URI for `fn:doc`. Document
    /// parsing runs under the engine-wide limits: element nesting is
    /// bounded by `max_document_depth`, and a configured deadline or a
    /// cancelled token aborts the parse cooperatively.
    pub fn bind_document(&mut self, uri: &str, xml: &str) -> Result<(), EngineError> {
        let opts = match &self.limits {
            None => ParseOptions::default(),
            Some(l) => ParseOptions {
                max_depth: l.max_document_depth,
                governor: Some(Governor::new(l, CancellationToken::new())),
                ..ParseOptions::default()
            },
        };
        let doc = parse_document(xml, &opts).map_err(|e| {
            let e: XmlError = e.into();
            classify(e, Phase::Parse)
        })?;
        self.documents.insert(uri.to_string(), doc.root());
        Ok(())
    }

    /// Registers an already-parsed node under a URI.
    pub fn bind_document_node(&mut self, uri: &str, node: NodeHandle) {
        self.documents.insert(uri.to_string(), node);
    }

    /// Binds an external variable.
    pub fn bind_variable(&mut self, name: &str, value: Sequence) {
        self.externals.insert(QName::local(name), value);
    }

    /// Installs the schema used by validation and `element(*, T)` tests.
    pub fn set_schema(&mut self, schema: Schema) {
        self.schema = schema;
    }

    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Parses, normalizes, and (depending on the mode) compiles + rewrites.
    pub fn prepare(
        &self,
        query: &str,
        options: &CompileOptions,
    ) -> Result<PreparedQuery, EngineError> {
        xqr_xml::failpoint::check("phase::parse").map_err(|e| classify(e, Phase::Parse))?;
        let limits = options.limits.clone().or_else(|| self.limits.clone());
        let parse_depth = limits
            .as_ref()
            .map(|l| l.max_parse_depth)
            .unwrap_or(Limits::default().max_parse_depth);
        // With a tracer installed, parse and normalize are timed as
        // separate spans; otherwise the fused frontend path runs as before.
        let core = if self.tracer.is_some() {
            let t0 = Instant::now();
            let module = isolate(Phase::Parse, "query parser", || {
                parse_query_with(query, parse_depth)
            })??;
            self.trace(TraceEvent::Span {
                phase: "parse",
                nanos: t0.elapsed().as_nanos() as u64,
                detail: String::new(),
            });
            let t0 = Instant::now();
            let core = isolate(Phase::Normalize, "parsed module", || {
                normalize_module(&module)
            })?;
            self.trace(TraceEvent::Span {
                phase: "normalize",
                nanos: t0.elapsed().as_nanos() as u64,
                detail: String::new(),
            });
            core
        } else {
            isolate(Phase::Normalize, "query frontend", || {
                frontend_with(query, parse_depth)
            })??
        };
        let mode = options.mode;
        let materialize_all = options.materialize_all;
        let fallback = options.fallback_to_materialized;
        let profile = options.profile;
        let scalar_kernels = options.scalar_kernels;
        if mode == ExecutionMode::NoAlgebra {
            return Ok(PreparedQuery {
                mode,
                core: Some(core),
                plan: None,
                stats: None,
                materialize_all,
                limits,
                fallback,
                fallback_note: RefCell::new(None),
                profile,
                last_profile: RefCell::new(None),
                scalar_kernels,
            });
        }
        xqr_xml::failpoint::check("phase::compile").map_err(|e| classify(e, Phase::Compile))?;
        let t0 = self.tracer.as_ref().map(|_| Instant::now());
        let mut compiled = isolate(Phase::Compile, "normalized core module", || {
            compile_module(&core)
        })?;
        if let Some(t0) = t0 {
            self.trace(TraceEvent::Span {
                phase: "compile",
                nanos: t0.elapsed().as_nanos() as u64,
                detail: format!("{} ops", plan_size(&compiled.body)),
            });
        }
        let stats = if mode == ExecutionMode::AlgebraNoOptim {
            None
        } else {
            xqr_xml::failpoint::check("phase::rewrite").map_err(|e| classify(e, Phase::Rewrite))?;
            let rules = options.rules.unwrap_or_default();
            let projection = options.projection;
            let tracing = self.tracer.is_some();
            let t0 = tracing.then(Instant::now);
            let stats = isolate(Phase::Rewrite, "compiled plan", || {
                let stats = if tracing {
                    rewrite_module_traced(&mut compiled, rules)
                } else {
                    rewrite_module_with(&mut compiled, rules)
                };
                if projection {
                    xqr_core::apply_document_projection(&mut compiled);
                }
                stats
            })?;
            if let Some(t0) = t0 {
                for ev in &stats.events {
                    self.trace(TraceEvent::Rule {
                        rule: ev.rule,
                        before_ops: ev.before_ops,
                        after_ops: ev.after_ops,
                        nanos: ev.nanos,
                    });
                }
                self.trace(TraceEvent::Span {
                    phase: "rewrite",
                    nanos: t0.elapsed().as_nanos() as u64,
                    detail: format!(
                        "{} rule firings, {} ops",
                        stats.events.len(),
                        plan_size(&compiled.body)
                    ),
                });
            }
            Some(stats)
        };
        Ok(PreparedQuery {
            mode,
            core: None,
            plan: Some(compiled),
            stats,
            materialize_all,
            limits,
            fallback,
            fallback_note: RefCell::new(None),
            profile,
            last_profile: RefCell::new(None),
            scalar_kernels,
        })
    }

    /// One-shot convenience: prepare + run with default options.
    pub fn execute(&self, query: &str) -> Result<Sequence, EngineError> {
        self.prepare(query, &CompileOptions::default())?.run(self)
    }

    /// One-shot convenience returning serialized XML.
    pub fn execute_to_string(&self, query: &str) -> Result<String, EngineError> {
        Ok(xqr_xml::serialize_sequence(&self.execute(query)?))
    }
}

/// A prepared query, bound to an execution mode.
pub struct PreparedQuery {
    mode: ExecutionMode,
    core: Option<CoreModule>,
    plan: Option<CompiledModule>,
    stats: Option<RewriteStats>,
    materialize_all: bool,
    /// Effective limits (query-level, else engine-wide) captured at
    /// prepare time.
    limits: Option<Limits>,
    fallback: bool,
    /// Set when a run fell back to the materialized strategy; surfaced by
    /// [`PreparedQuery::explain`].
    fallback_note: RefCell<Option<String>>,
    /// Collect per-operator stats on every run.
    profile: bool,
    /// The profile of the most recent run (when `profile` is set).
    last_profile: RefCell<Option<QueryProfile>>,
    /// Force the row-at-a-time scalar path (no batched kernels).
    scalar_kernels: bool,
}

impl PreparedQuery {
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Rewrite statistics (None for NoAlgebra / AlgebraNoOptim).
    pub fn rewrite_stats(&self) -> Option<&RewriteStats> {
        self.stats.as_ref()
    }

    /// The optimized (or naive) algebra plan, in the paper's notation,
    /// with a per-operator streams/materializes note on the plan tree
    /// itself, followed by a summary of the pipeline strategy. Uses the
    /// same annotation mechanism as [`PreparedQuery::explain_analyze`].
    pub fn explain(&self) -> String {
        let base = match &self.plan {
            Some(m) => {
                let pipelined = !self.materialize_all;
                let ann = xqr_runtime::explain_annotations(&m.body, pipelined);
                let plan = pretty::indented_annotated(&m.body, &ann);
                let strategy = if self.materialize_all {
                    "execution: materialized (all operators evaluate to full tables)".to_string()
                } else {
                    format!(
                        "execution: pipelined\n{}",
                        xqr_runtime::pipeline_report(&m.body)
                    )
                };
                format!("{plan}\n{strategy}")
            }
            None => "(no algebra: direct Core interpretation)".to_string(),
        };
        match &*self.fallback_note.borrow() {
            Some(note) => format!("{base}\n{note}"),
            None => base,
        }
    }

    /// The plan annotated with the measured per-operator stats of the most
    /// recent run: rows produced, `next()`/eval calls, estimated inclusive
    /// and self time, join build time, peak materialized bytes, group-by
    /// partitions, and kernel dispatches. Requires preparing with
    /// [`CompileOptions::with_profiling`] and running the query first.
    pub fn explain_analyze(&self) -> String {
        let profile = self.last_profile.borrow();
        let Some(p) = &*profile else {
            return "(no profile recorded: prepare with CompileOptions::with_profiling() \
                    and run the query first)"
                .to_string();
        };
        let mut out = String::new();
        if let (Some(m), Some(_)) = (&self.plan, &p.root) {
            out.push_str(&pretty::indented_annotated(&m.body, &p.annotations()));
            out.push('\n');
        }
        out.push_str(&format!(
            "strategy: {}\nwall: {}",
            p.strategy,
            xqr_runtime::fmt_nanos(p.wall_nanos)
        ));
        if let Some(counts) = &p.interp {
            for (k, v) in counts {
                out.push_str(&format!("\n{k}  {v}"));
            }
        }
        out
    }

    /// The profile of the most recent run, if profiling was enabled.
    pub fn profile(&self) -> Option<QueryProfile> {
        self.last_profile.borrow().clone()
    }

    /// The most recent profile as JSON.
    pub fn profile_json(&self) -> Option<String> {
        self.last_profile.borrow().as_ref().map(|p| p.to_json())
    }

    /// The compiled module (algebra modes only).
    pub fn compiled(&self) -> Option<&CompiledModule> {
        self.plan.as_ref()
    }

    /// Executes against the engine's documents/bindings under the
    /// effective [`Limits`], behind the panic-isolation boundary.
    pub fn run(&self, engine: &Engine) -> Result<Sequence, EngineError> {
        self.run_cancellable(engine, CancellationToken::new())
    }

    /// [`PreparedQuery::run`] with an externally held cancellation handle:
    /// `token.cancel()` from any thread makes the query fail with
    /// `XQRG0002` at its next cooperative check.
    pub fn run_cancellable(
        &self,
        engine: &Engine,
        token: CancellationToken,
    ) -> Result<Sequence, EngineError> {
        metrics().record_query_start();
        let t0 = Instant::now();
        let limits = self.limits.clone().unwrap_or_default();
        let governor = Governor::new(&limits, token.clone());
        let pipelined = !self.materialize_all;
        let result = match self.run_once(engine, &governor, pipelined) {
            Err(EngineError::Internal {
                phase,
                plan_context,
                message,
            }) if self.fallback && pipelined && self.plan.is_some() => {
                // Graceful degradation: the pipelined attempt panicked;
                // retry once fully materialized. The governor (and thus
                // the deadline and the budgets already spent) carries
                // over; only test-only fault injection is disarmed.
                governor.disarm_fault_injection();
                metrics().record_fallback();
                *self.fallback_note.borrow_mut() = Some(format!(
                    "fallback: pipelined execution failed during {} ({message}); \
                     retried under the materialized strategy",
                    phase.label()
                ));
                match self.run_once(engine, &governor, false) {
                    Ok(v) => Ok(v),
                    Err(_retry_err) => Err(EngineError::Internal {
                        phase,
                        plan_context,
                        message,
                    }),
                }
            }
            Err(EngineError::LimitExceeded {
                code,
                phase,
                budget,
                message,
            }) if code == ERR_SPILL_IO && self.fallback && self.plan.is_some() => {
                // Spilling itself failed irrecoverably (retries exhausted
                // or a corrupt frame): retry once with spilling disabled,
                // degrading to the strict in-memory byte budget — a broken
                // disk shouldn't fail a query that fits in memory.
                metrics().record_fallback();
                *self.fallback_note.borrow_mut() = Some(format!(
                    "fallback: spilling failed during {} ({message}); \
                     retried with spilling disabled",
                    phase.label()
                ));
                let strict = Governor::new(&limits.clone().with_spill(None), token);
                match self.run_once(engine, &strict, pipelined) {
                    Ok(v) => Ok(v),
                    Err(_retry_err) => Err(EngineError::LimitExceeded {
                        code,
                        phase,
                        budget,
                        message,
                    }),
                }
            }
            other => other,
        };
        let wall = t0.elapsed().as_nanos() as u64;
        match &result {
            Ok(v) => {
                metrics().record_query_ok(wall);
                if engine.tracer.is_some() {
                    if governor.spilled() {
                        engine.trace(TraceEvent::Span {
                            phase: "spill",
                            nanos: 0,
                            detail: format!(
                                "memory watermark crossed; {} bytes spilled to disk",
                                governor.spill_bytes_total()
                            ),
                        });
                    }
                    engine.trace(TraceEvent::Span {
                        phase: "execute",
                        nanos: wall,
                        detail: format!("rows={}", v.len()),
                    });
                }
            }
            Err(e) => metrics().record_query_error(e.code().unwrap_or("internal")),
        }
        result
    }

    /// One governed execution attempt behind `catch_unwind`.
    fn run_once(
        &self,
        engine: &Engine,
        governor: &Governor,
        pipelined: bool,
    ) -> Result<Sequence, EngineError> {
        xqr_xml::failpoint::check("phase::execute").map_err(|e| classify(e, Phase::Execute))?;
        let profiler =
            (self.profile && self.plan.is_some()).then(|| Profiler::new(governor.clone()));
        let interp_profile =
            (self.profile && self.plan.is_none()).then(|| Rc::new(InterpProfile::default()));
        let t0 = self.profile.then(Instant::now);
        let outcome = catch_unwind(AssertUnwindSafe(|| match self.mode {
            ExecutionMode::NoAlgebra => {
                let core = self.core.as_ref().expect("core kept for NoAlgebra");
                eval_core_module_profiled(
                    core,
                    &engine.schema,
                    &engine.documents,
                    engine.externals.clone(),
                    governor.clone(),
                    interp_profile.clone(),
                )
            }
            mode => {
                let module = self.plan.as_ref().expect("compiled plan");
                let mut ctx = Ctx::new(
                    module,
                    &engine.schema,
                    &engine.documents,
                    mode.join_algorithm(),
                );
                ctx.pipelined = pipelined;
                ctx.batched = !self.scalar_kernels;
                ctx.globals = engine.externals.clone();
                ctx.governor = governor.clone();
                ctx.profiler = profiler.clone();
                xqr_runtime::eval::eval_module(&mut ctx)
            }
        }));
        if let Some(t0) = t0 {
            // Snapshot even on a failed run: the partial profile shows how
            // far the plan got before the error.
            let wall = t0.elapsed().as_nanos() as u64;
            let snap = if let Some(p) = &profiler {
                let strategy = if pipelined {
                    "pipelined"
                } else {
                    "materialized"
                };
                p.snapshot(strategy, wall)
            } else {
                QueryProfile {
                    strategy: "core-interp".to_string(),
                    wall_nanos: wall,
                    root: None,
                    interp: interp_profile.as_ref().map(|ip| ip.counts()),
                }
            };
            *self.last_profile.borrow_mut() = Some(snap);
        }
        match outcome {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(classify(e, Phase::Execute)),
            Err(p) => Err(EngineError::Internal {
                phase: Phase::Execute,
                plan_context: self.plan_context(),
                message: panic_message(p),
            }),
        }
    }

    /// Short description of what was executing, for [`EngineError::Internal`].
    fn plan_context(&self) -> String {
        match &self.plan {
            None => format!("{} (Core interpreter)", self.mode.label()),
            Some(m) => {
                let plan = pretty::indented(&m.body);
                let root = plan.lines().next().unwrap_or("?").trim().to_string();
                format!("{} plan rooted at {root}", self.mode.label())
            }
        }
    }

    /// Executes and serializes.
    pub fn run_to_string(&self, engine: &Engine) -> Result<String, EngineError> {
        Ok(xqr_xml::serialize_sequence(&self.run(engine)?))
    }

    /// [`PreparedQuery::run_cancellable`], serialized.
    pub fn run_cancellable_to_string(
        &self,
        engine: &Engine,
        token: CancellationToken,
    ) -> Result<String, EngineError> {
        Ok(xqr_xml::serialize_sequence(
            &self.run_cancellable(engine, token)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(xml: &str) -> Engine {
        let mut e = Engine::new();
        e.bind_document("doc.xml", xml).unwrap();
        e
    }

    fn run_all_modes(engine: &Engine, q: &str) -> Vec<String> {
        ExecutionMode::ALL
            .iter()
            .map(|m| {
                engine
                    .prepare(q, &CompileOptions::mode(*m))
                    .unwrap_or_else(|e| panic!("{m:?} prepare: {e}"))
                    .run_to_string(engine)
                    .unwrap_or_else(|e| panic!("{m:?} run: {e}"))
            })
            .collect()
    }

    /// All four execution modes must agree — the central cross-check.
    fn assert_modes_agree(engine: &Engine, q: &str) -> String {
        let results = run_all_modes(engine, q);
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "modes disagree on {q:?}");
        }
        results.into_iter().next().expect("non-empty")
    }

    #[test]
    fn arithmetic_and_sequences() {
        let e = Engine::new();
        assert_eq!(assert_modes_agree(&e, "1 + 2 * 3"), "7");
        assert_eq!(assert_modes_agree(&e, "(1, 2, 3)"), "1 2 3");
        assert_eq!(assert_modes_agree(&e, "sum(1 to 10)"), "55");
        assert_eq!(assert_modes_agree(&e, "7 div 2"), "3.5");
        assert_eq!(assert_modes_agree(&e, "7 idiv 2"), "3");
    }

    #[test]
    fn flwor_basics() {
        let e = Engine::new();
        assert_eq!(
            assert_modes_agree(&e, "for $x in (1,2,3) where $x > 1 return $x * 10"),
            "20 30"
        );
        assert_eq!(
            assert_modes_agree(&e, "for $x at $i in ('a','b') return $i"),
            "1 2"
        );
        assert_eq!(
            assert_modes_agree(&e, "for $x in (3,1,2) order by $x descending return $x"),
            "3 2 1"
        );
        assert_eq!(
            assert_modes_agree(&e, "for $x in (1,2), $y in (10,20) return $x + $y"),
            "11 21 12 22"
        );
    }

    #[test]
    fn figure4_query_all_modes() {
        // The Section 5 / Fig. 4 example; ensures the GroupBy pipeline
        // computes the same result as plain interpretation.
        let e = Engine::new();
        assert_eq!(
            assert_modes_agree(
                &e,
                "for $x in (1,1,3) \
                 let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) \
                 return ($x, $a)"
            ),
            "1 15 1 15 3"
        );
    }

    #[test]
    fn paths_and_predicates() {
        let e = engine_with("<r><a id='1'>x</a><a id='2'>y</a><b/></r>");
        assert_eq!(
            assert_modes_agree(&e, "doc('doc.xml')/r/a[@id = '2']/text()"),
            "y"
        );
        assert_eq!(assert_modes_agree(&e, "count(doc('doc.xml')//a)"), "2");
        assert_eq!(
            assert_modes_agree(&e, "doc('doc.xml')/r/a[2]/@id/string(.)"),
            "2"
        );
        assert_eq!(
            assert_modes_agree(&e, "doc('doc.xml')/r/a[last()]/text()"),
            "y"
        );
    }

    #[test]
    fn join_query_all_modes() {
        let e = engine_with("<db><p id='1'/><p id='2'/><o ref='1'/><o ref='1'/><o ref='3'/></db>");
        // Correlated count per p — the unnesting pipeline.
        assert_eq!(
            assert_modes_agree(
                &e,
                "for $p in doc('doc.xml')//p \
                 let $os := for $o in doc('doc.xml')//o \
                            where $o/@ref = $p/@id return $o \
                 return count($os)"
            ),
            "2 0"
        );
    }

    #[test]
    fn constructors() {
        let e = Engine::new();
        assert_eq!(
            assert_modes_agree(&e, "<a x=\"{1+1}\">t{2+3}</a>"),
            "<a x=\"2\">t5</a>"
        );
        assert_eq!(
            assert_modes_agree(&e, "element item { attribute id {'7'}, text {'v'} }"),
            "<item id=\"7\">v</item>"
        );
    }

    #[test]
    fn quantifiers_and_conditionals() {
        let e = Engine::new();
        assert_eq!(
            assert_modes_agree(&e, "some $x in (1,2,3) satisfies $x = 2"),
            "true"
        );
        assert_eq!(
            assert_modes_agree(&e, "every $x in (1,2,3) satisfies $x < 3"),
            "false"
        );
        assert_eq!(assert_modes_agree(&e, "if (1 = 1) then 'y' else 'n'"), "y");
    }

    #[test]
    fn user_functions() {
        let e = Engine::new();
        let q = "declare function local:fact($n as xs:integer) as xs:integer \
                 { if ($n <= 1) then 1 else $n * local:fact($n - 1) }; \
                 local:fact(6)";
        assert_eq!(assert_modes_agree(&e, q), "720");
    }

    #[test]
    fn external_variables() {
        let mut e = Engine::new();
        e.bind_variable("size", Sequence::integers([5]));
        let q = "declare variable $size external; $size * 2";
        assert_eq!(assert_modes_agree(&e, q), "10");
    }

    #[test]
    fn explain_shows_group_by_for_nested_query() {
        let e = Engine::new();
        let q = "for $x in (1,2) let $a := (for $y in (1,2) where $y = $x return $y) \
                 return count($a)";
        let prepared = e
            .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap();
        assert!(
            prepared.explain().contains("GroupBy"),
            "{}",
            prepared.explain()
        );
        assert!(prepared.explain().contains("LOuterJoin"));
        assert!(prepared.rewrite_stats().unwrap().count("insert group-by") >= 1);
    }

    #[test]
    fn explain_reports_execution_strategy() {
        let e = Engine::new();
        let q = "for $x in (1,2,3) where $x > 1 return $x";
        let pipelined = e
            .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap();
        assert!(
            pipelined.explain().contains("execution: pipelined"),
            "{}",
            pipelined.explain()
        );
        assert!(pipelined.explain().contains("pipelined (streaming):"));
        let materialized = e
            .prepare(
                q,
                &CompileOptions::materialized(ExecutionMode::OptimHashJoin),
            )
            .unwrap();
        assert!(materialized.explain().contains("execution: materialized"));
    }

    #[test]
    fn materialized_escape_hatch_agrees() {
        let e = engine_with("<r><a id='1'>x</a><a id='2'>y</a></r>");
        for q in [
            "for $x in (1,2,3) where $x > 1 return $x * 10",
            "for $a in doc('doc.xml')//a order by $a/@id descending return string($a)",
            "some $x in (1,2,3) satisfies $x = 2",
        ] {
            let p = e
                .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
                .unwrap()
                .run_to_string(&e)
                .unwrap();
            let m = e
                .prepare(
                    q,
                    &CompileOptions::materialized(ExecutionMode::OptimHashJoin),
                )
                .unwrap()
                .run_to_string(&e)
                .unwrap();
            assert_eq!(p, m, "strategies disagree on {q:?}");
        }
    }

    #[test]
    fn mode_errors_match() {
        let e = Engine::new();
        for m in ExecutionMode::ALL {
            let r = e
                .prepare("exactly-one(())", &CompileOptions::mode(m))
                .unwrap()
                .run(&e);
            assert!(r.is_err(), "{m:?}");
        }
    }
}
