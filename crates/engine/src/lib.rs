//! # xqr-engine — the public facade
//!
//! Ties the pipeline together: parse → normalize (paper-modified Core) →
//! compile into the algebra → optionally rewrite (Section 5 unnesting) →
//! evaluate with the selected join algorithm (Section 6). The
//! [`ExecutionMode`] enum matches the four configurations of the paper's
//! **Table 3**:
//!
//! | mode | paper row |
//! |---|---|
//! | [`ExecutionMode::NoAlgebra`] | "No algebra" — direct Core interpreter |
//! | [`ExecutionMode::AlgebraNoOptim`] | "Algebra + No optim" |
//! | [`ExecutionMode::OptimNestedLoop`] | "Optim + nested-loop joins" |
//! | [`ExecutionMode::OptimHashJoin`] | "Optim + XQuery joins" (hash) |
//! | [`ExecutionMode::OptimSortJoin`] | "Optim + XQuery joins" (sort) |
//!
//! ```
//! use xqr_engine::{CompileOptions, Engine, ExecutionMode};
//!
//! let mut engine = Engine::new();
//! engine.bind_document("catalog.xml", "<items><item id='1'/><item id='2'/></items>").unwrap();
//! let q = engine
//!     .prepare(
//!         "for $i in doc('catalog.xml')//item return <got>{ $i/@id }</got>",
//!         &CompileOptions::default(),
//!     )
//!     .unwrap();
//! let result = q.run(&engine).unwrap();
//! assert_eq!(result.len(), 2);
//! ```

pub mod breaker;
pub mod doccache;
pub mod observe;
pub mod plancache;
pub mod server;
pub mod service;
pub mod session;

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::time::Instant;

use xqr_core::algebra::plan_size;
use xqr_core::{
    compile_module, pretty, rewrite_module_traced, rewrite_module_with, CompiledModule,
    RewriteStats,
};

pub use xqr_core::RuleConfig;
pub use xqr_core::{CollectingTracer, NoopTracer, StderrTracer, TraceEvent, Tracer};
use xqr_frontend::{frontend_with, normalize_module, parse_query_with, CoreModule, SyntaxError};
use xqr_runtime::{eval_core_module_profiled, Ctx, InterpProfile, Profiler};
use xqr_types::Schema;
use xqr_xml::limits::{
    ERR_BREAKER, ERR_BYTES, ERR_CANCELLED, ERR_DEADLINE, ERR_OVERLOADED, ERR_RECURSION,
    ERR_SPILL_BUDGET, ERR_SPILL_IO, ERR_TENANT, ERR_TUPLES,
};
use xqr_xml::metrics::metrics;
use xqr_xml::parse::{parse_document, ParseOptions};
use xqr_xml::{Governor, NodeHandle, QName, Sequence, XmlError};

pub use xqr_runtime::{JoinAlgorithm, ProfileNode, QueryProfile};
pub use xqr_xml::{CancellationToken, Limits, MetricsSnapshot, RetryPolicy};

pub use breaker::{BreakerConfig, CircuitBreakers};
pub use doccache::DocTextCache;
pub use observe::{
    LifecyclePhase, MetricsServer, ObserveConfig, ObserveReport, PhaseLatency, QueryTimeline,
    ShapeStats, LIFECYCLE_PHASES,
};
pub use plancache::{PlanCache, PlanCacheConfig};
pub use server::{QueryServer, ServerConfig, ServerDrainReport, WatchdogConfig};
pub use service::{
    DrainReport, InflightQuery, QueryRequest, QueryService, QueryTicket, ServiceConfig,
    ServiceOutput,
};
pub use session::{QuotaError, SessionConfig, SessionManager, SessionPermit, TenantQuotas};
pub use xqr_xml::metrics::ShedReason;

/// How a prepared query executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecutionMode {
    /// Direct Core interpretation — the paper's "No algebra" baseline.
    NoAlgebra,
    /// Algebraic compilation without the Section 5 rewritings.
    AlgebraNoOptim,
    /// Rewritten plans, all joins nested-loop.
    OptimNestedLoop,
    /// Rewritten plans, typed hash joins (Fig. 6) where applicable.
    #[default]
    OptimHashJoin,
    /// Rewritten plans, order-preserving B-tree (sort) joins.
    OptimSortJoin,
}

impl ExecutionMode {
    /// All modes, in the order of Table 3.
    pub const ALL: [ExecutionMode; 4] = [
        ExecutionMode::NoAlgebra,
        ExecutionMode::AlgebraNoOptim,
        ExecutionMode::OptimNestedLoop,
        ExecutionMode::OptimHashJoin,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::NoAlgebra => "No algebra",
            ExecutionMode::AlgebraNoOptim => "Algebra + No optim",
            ExecutionMode::OptimNestedLoop => "Optim + nested-loop joins",
            ExecutionMode::OptimHashJoin => "Optim + XQuery joins",
            ExecutionMode::OptimSortJoin => "Optim + XQuery sort joins",
        }
    }

    fn join_algorithm(self) -> JoinAlgorithm {
        match self {
            ExecutionMode::OptimHashJoin => JoinAlgorithm::Hash,
            ExecutionMode::OptimSortJoin => JoinAlgorithm::Sort,
            _ => JoinAlgorithm::NestedLoop,
        }
    }
}

/// Compilation options.
#[derive(Clone, Debug, Default)]
pub struct CompileOptions {
    pub mode: ExecutionMode,
    /// Rewrite-rule families applied in the optimizing modes (ablation
    /// studies disable subsets; see `crates/bench/benches/ablation.rs`).
    pub rules: Option<RuleConfig>,
    /// Infer and install `TreeProject` document projections (see
    /// `xqr_core::project`). Off by default: profitable for
    /// navigation-heavy queries over large documents.
    pub projection: bool,
    /// Escape hatch: evaluate every tuple operator to a complete
    /// intermediate table (the original strategy) instead of the default
    /// pipelined cursor execution. Kept for ablation benchmarks and the
    /// cross-strategy differential suite.
    pub materialize_all: bool,
    /// Per-query resource limits; `None` falls back to the engine-wide
    /// limits installed with [`Engine::set_limits`] (and to
    /// [`Limits::default`] when neither is set).
    pub limits: Option<Limits>,
    /// Opt-in graceful degradation: when a *pipelined* execution fails
    /// with an internal error (a caught panic), retry once under the
    /// materialized strategy. The fallback is recorded and reported by
    /// [`PreparedQuery::explain`]. Limit violations are never retried.
    pub fallback_to_materialized: bool,
    /// Collect a per-operator runtime profile on every run (EXPLAIN
    /// ANALYZE). Off by default: the disabled path is a single `Option`
    /// check per operator open/dispatch.
    pub profile: bool,
    /// Escape hatch: disable the batched (vectorized) execution of the
    /// pipelined operators — fused, type-specialized comparison kernels
    /// for provably safe predicate shapes — and force every predicate
    /// down the row-at-a-time scalar path. Kept for ablation benchmarks
    /// and the batched/scalar differential suite, mirroring
    /// [`CompileOptions::materialize_all`]. No effect under the
    /// materialized strategy, which is always scalar.
    pub scalar_kernels: bool,
}

impl CompileOptions {
    pub fn mode(mode: ExecutionMode) -> CompileOptions {
        CompileOptions {
            mode,
            ..CompileOptions::default()
        }
    }

    pub fn with_rules(mode: ExecutionMode, rules: RuleConfig) -> CompileOptions {
        CompileOptions {
            mode,
            rules: Some(rules),
            ..CompileOptions::default()
        }
    }

    pub fn with_projection(mode: ExecutionMode) -> CompileOptions {
        CompileOptions {
            mode,
            projection: true,
            ..CompileOptions::default()
        }
    }

    pub fn materialized(mode: ExecutionMode) -> CompileOptions {
        CompileOptions {
            mode,
            materialize_all: true,
            ..CompileOptions::default()
        }
    }

    /// Attaches per-query resource limits.
    pub fn limits(mut self, limits: Limits) -> CompileOptions {
        self.limits = Some(limits);
        self
    }

    /// Enables the materialized-strategy retry on pipelined failure.
    pub fn with_fallback(mut self) -> CompileOptions {
        self.fallback_to_materialized = true;
        self
    }

    /// Enables per-operator runtime profiling ([`PreparedQuery::explain_analyze`]).
    pub fn with_profiling(mut self) -> CompileOptions {
        self.profile = true;
        self
    }

    /// Disables the batched (vectorized) kernels; every predicate runs
    /// the row-at-a-time scalar path.
    pub fn with_scalar_kernels(mut self) -> CompileOptions {
        self.scalar_kernels = true;
        self
    }
}

/// Which pipeline stage an error arose in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Service-side admission/dispatch (queueing, shedding, breakers),
    /// before the query pipeline proper starts.
    Admit,
    Parse,
    Normalize,
    Compile,
    Rewrite,
    Execute,
}

impl Phase {
    pub fn label(self) -> &'static str {
        match self {
            Phase::Admit => "admit",
            Phase::Parse => "parse",
            Phase::Normalize => "normalize",
            Phase::Compile => "compile",
            Phase::Rewrite => "rewrite",
            Phase::Execute => "execute",
        }
    }
}

/// Which resource budget a [`EngineError::LimitExceeded`] tripped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetKind {
    Deadline,
    Cancelled,
    Tuples,
    Bytes,
    Recursion,
    /// Spill I/O failed irrecoverably (`XQRG0005`: retries exhausted or a
    /// corrupt frame).
    SpillIo,
    /// The spill *disk* budget (`Limits::with_spill`) is exhausted
    /// (`XQRG0006`).
    SpillDisk,
    /// The query service shed this submission (`XQRG0007`): queue full,
    /// reservation unservable, or deadline shorter than the estimated
    /// queue wait.
    Overloaded,
    /// A circuit breaker fast-failed this plan shape (`XQRG0008`) after
    /// repeated internal failures; retry after the cooldown.
    BreakerOpen,
    /// A per-tenant session quota refused the request (`XQRG0009`):
    /// concurrent-query cap, aggregate reservation share, or request
    /// rate. The service itself may be perfectly healthy.
    TenantQuota,
}

impl BudgetKind {
    fn from_code(code: &str) -> Option<BudgetKind> {
        match code {
            ERR_DEADLINE => Some(BudgetKind::Deadline),
            ERR_CANCELLED => Some(BudgetKind::Cancelled),
            ERR_TUPLES => Some(BudgetKind::Tuples),
            ERR_BYTES => Some(BudgetKind::Bytes),
            ERR_RECURSION => Some(BudgetKind::Recursion),
            ERR_SPILL_IO => Some(BudgetKind::SpillIo),
            ERR_SPILL_BUDGET => Some(BudgetKind::SpillDisk),
            ERR_OVERLOADED => Some(BudgetKind::Overloaded),
            ERR_BREAKER => Some(BudgetKind::BreakerOpen),
            ERR_TENANT => Some(BudgetKind::TenantQuota),
            _ => None,
        }
    }
}

/// Errors from preparation or execution.
#[derive(Debug, Clone)]
pub enum EngineError {
    Syntax(SyntaxError),
    Dynamic(XmlError),
    /// A resource budget tripped (governor codes `XQRG0001`–`XQRG0008`,
    /// recursion `XQRT0005`).
    LimitExceeded {
        /// The stable `err:`-style code of the violated budget.
        code: &'static str,
        /// Pipeline stage where the budget tripped.
        phase: Phase,
        /// Which budget tripped.
        budget: BudgetKind,
        message: String,
    },
    /// A panic caught at the engine's isolation boundary: the fault is
    /// contained to this query instead of unwinding through the caller.
    Internal {
        /// Pipeline stage that panicked.
        phase: Phase,
        /// What was being evaluated (mode label plus the plan's root).
        plan_context: String,
        message: String,
    },
}

impl EngineError {
    /// The `err:`-style code, when one applies.
    pub fn code(&self) -> Option<&str> {
        match self {
            EngineError::Syntax(_) => None,
            EngineError::Dynamic(e) => Some(e.code),
            EngineError::LimitExceeded { code, .. } => Some(code),
            EngineError::Internal { .. } => None,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Syntax(e) => write!(f, "{e}"),
            EngineError::Dynamic(e) => write!(f, "{e}"),
            EngineError::LimitExceeded {
                code,
                phase,
                budget,
                message,
            } => write!(
                f,
                "[{code}] limit exceeded ({budget:?}, during {}): {message}",
                phase.label()
            ),
            EngineError::Internal {
                phase,
                plan_context,
                message,
            } => write!(
                f,
                "internal error during {} of {plan_context}: {message}",
                phase.label()
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SyntaxError> for EngineError {
    fn from(e: SyntaxError) -> Self {
        EngineError::Syntax(e)
    }
}

impl From<XmlError> for EngineError {
    fn from(e: XmlError) -> Self {
        EngineError::Dynamic(e)
    }
}

/// Classifies a dynamic error: governor codes become structured
/// [`EngineError::LimitExceeded`], everything else stays [`EngineError::Dynamic`].
fn classify(e: XmlError, phase: Phase) -> EngineError {
    match BudgetKind::from_code(e.code) {
        Some(budget) => EngineError::LimitExceeded {
            code: e.code,
            phase,
            budget,
            message: e.message,
        },
        None => EngineError::Dynamic(e),
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs a closure behind the isolation boundary: a panic becomes
/// [`EngineError::Internal`] instead of unwinding through the caller.
fn isolate<T>(phase: Phase, plan_context: &str, f: impl FnOnce() -> T) -> Result<T, EngineError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| EngineError::Internal {
        phase,
        plan_context: plan_context.to_string(),
        message: panic_message(p),
    })
}

/// The engine: documents, schema, and external variable bindings shared by
/// prepared queries.
#[derive(Default)]
pub struct Engine {
    documents: HashMap<String, NodeHandle>,
    schema: Schema,
    externals: HashMap<QName, Sequence>,
    /// Engine-wide resource limits, the default for every prepare/run and
    /// for document parsing. Overridden per query by
    /// [`CompileOptions::limits`].
    limits: Option<Limits>,
    /// Receiver of phase/rule trace events; `None` skips event
    /// construction entirely.
    tracer: Option<Rc<dyn Tracer>>,
    /// The plan cache behind [`Engine::prepare_cached`] (plain
    /// [`Engine::prepare`] never consults it).
    plan_cache: RefCell<PlanCache>,
}

impl Engine {
    pub fn new() -> Engine {
        #[allow(unused_mut)]
        let mut e = Engine::default();
        #[cfg(feature = "trace-log")]
        if std::env::var_os("XQR_TRACE").is_some_and(|v| !v.is_empty() && v != "0") {
            e.tracer = Some(Rc::new(StderrTracer));
        }
        e
    }

    /// Installs a tracer receiving one span per pipeline phase and one
    /// event per rewrite rule that fires.
    pub fn set_tracer(&mut self, tracer: Rc<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Removes the installed tracer.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    fn trace(&self, ev: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.event(&ev);
        }
    }

    /// Process-wide engine metrics, rendered as aligned text.
    pub fn metrics_text(&self) -> String {
        metrics().snapshot().dump_text()
    }

    /// Process-wide engine metrics as JSON.
    pub fn metrics_json(&self) -> String {
        metrics().snapshot().dump_json()
    }

    /// A frozen copy of the process-wide engine metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        metrics().snapshot()
    }

    /// Process-wide engine metrics in Prometheus text exposition format
    /// (counters, per-reason/per-code label series, and the query duration
    /// histogram in cumulative bucket form).
    pub fn metrics_prometheus(&self) -> String {
        metrics().snapshot().prometheus_text()
    }

    /// Installs engine-wide resource limits (deadline, budgets, depth
    /// guards) applied to every subsequent `bind_document`/`prepare`/`run`
    /// unless a query overrides them via [`CompileOptions::limits`].
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = Some(limits);
    }

    /// Parses and registers a document under a URI for `fn:doc`. Document
    /// parsing runs under the engine-wide limits: element nesting is
    /// bounded by `max_document_depth`, and a configured deadline or a
    /// cancelled token aborts the parse cooperatively.
    pub fn bind_document(&mut self, uri: &str, xml: &str) -> Result<(), EngineError> {
        let opts = match &self.limits {
            None => ParseOptions::default(),
            Some(l) => ParseOptions {
                max_depth: l.max_document_depth,
                governor: Some(Governor::new(l, CancellationToken::new())),
                ..ParseOptions::default()
            },
        };
        let doc = parse_document(xml, &opts).map_err(|e| {
            let e: XmlError = e.into();
            classify(e, Phase::Parse)
        })?;
        self.documents.insert(uri.to_string(), doc.root());
        Ok(())
    }

    /// Registers an already-parsed node under a URI.
    pub fn bind_document_node(&mut self, uri: &str, node: NodeHandle) {
        self.documents.insert(uri.to_string(), node);
    }

    /// Binds an external variable.
    pub fn bind_variable(&mut self, name: &str, value: Sequence) {
        self.externals.insert(QName::local(name), value);
    }

    /// Installs the schema used by validation and `element(*, T)` tests.
    pub fn set_schema(&mut self, schema: Schema) {
        self.schema = schema;
    }

    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Parses, normalizes, and (depending on the mode) compiles + rewrites.
    pub fn prepare(
        &self,
        query: &str,
        options: &CompileOptions,
    ) -> Result<PreparedQuery, EngineError> {
        xqr_xml::failpoint::check("phase::parse").map_err(|e| classify(e, Phase::Parse))?;
        let limits = options.limits.clone().or_else(|| self.limits.clone());
        let parse_depth = limits
            .as_ref()
            .map(|l| l.max_parse_depth)
            .unwrap_or(Limits::default().max_parse_depth);
        // With a tracer installed, parse and normalize are timed as
        // separate spans; otherwise the fused frontend path runs as before.
        let core = if self.tracer.is_some() {
            let t0 = Instant::now();
            let module = isolate(Phase::Parse, "query parser", || {
                parse_query_with(query, parse_depth)
            })??;
            self.trace(TraceEvent::Span {
                phase: "parse",
                nanos: t0.elapsed().as_nanos() as u64,
                detail: String::new(),
            });
            let t0 = Instant::now();
            let core = isolate(Phase::Normalize, "parsed module", || {
                normalize_module(&module)
            })?;
            self.trace(TraceEvent::Span {
                phase: "normalize",
                nanos: t0.elapsed().as_nanos() as u64,
                detail: String::new(),
            });
            core
        } else {
            isolate(Phase::Normalize, "query frontend", || {
                frontend_with(query, parse_depth)
            })??
        };
        let mode = options.mode;
        let materialize_all = options.materialize_all;
        let fallback = options.fallback_to_materialized;
        let profile = options.profile;
        let scalar_kernels = options.scalar_kernels;
        if mode == ExecutionMode::NoAlgebra {
            return Ok(PreparedQuery {
                mode,
                core: Some(Rc::new(core)),
                plan: None,
                stats: None,
                canonical_hash: None,
                params: HashMap::new(),
                materialize_all,
                limits,
                fallback,
                fallback_note: RefCell::new(None),
                profile,
                last_profile: RefCell::new(None),
                scalar_kernels,
                query_id: Cell::new(None),
                last_spilled: Cell::new(false),
                last_fell_back: Cell::new(false),
            });
        }
        xqr_xml::failpoint::check("phase::compile").map_err(|e| classify(e, Phase::Compile))?;
        let t0 = self.tracer.as_ref().map(|_| Instant::now());
        let mut compiled = isolate(Phase::Compile, "normalized core module", || {
            compile_module(&core)
        })?;
        if let Some(t0) = t0 {
            self.trace(TraceEvent::Span {
                phase: "compile",
                nanos: t0.elapsed().as_nanos() as u64,
                detail: format!("{} ops", plan_size(&compiled.body)),
            });
        }
        let stats = if mode == ExecutionMode::AlgebraNoOptim {
            None
        } else {
            xqr_xml::failpoint::check("phase::rewrite").map_err(|e| classify(e, Phase::Rewrite))?;
            let rules = options.rules.unwrap_or_default();
            let projection = options.projection;
            let tracing = self.tracer.is_some();
            let t0 = tracing.then(Instant::now);
            let stats = isolate(Phase::Rewrite, "compiled plan", || {
                let stats = if tracing {
                    rewrite_module_traced(&mut compiled, rules)
                } else {
                    rewrite_module_with(&mut compiled, rules)
                };
                if projection {
                    xqr_core::apply_document_projection(&mut compiled);
                }
                stats
            })?;
            if let Some(t0) = t0 {
                for ev in &stats.events {
                    self.trace(TraceEvent::Rule {
                        rule: ev.rule,
                        before_ops: ev.before_ops,
                        after_ops: ev.after_ops,
                        nanos: ev.nanos,
                    });
                }
                self.trace(TraceEvent::Span {
                    phase: "rewrite",
                    nanos: t0.elapsed().as_nanos() as u64,
                    detail: format!(
                        "{} rule firings, {} ops",
                        stats.events.len(),
                        plan_size(&compiled.body)
                    ),
                });
            }
            Some(stats)
        };
        // Canonical normalization (deterministic field/constant renaming,
        // commutative-operand ordering) runs last, so the plan that
        // executes, renders in EXPLAIN, and keys the plan cache and the
        // circuit breakers is the same canonical form.
        let canonical_hash = isolate(Phase::Rewrite, "canonicalization", || {
            xqr_core::canonicalize_module(&mut compiled);
            xqr_core::module_hash(&compiled)
        })?;
        Ok(PreparedQuery {
            mode,
            core: None,
            plan: Some(Rc::new(compiled)),
            stats: stats.map(Rc::new),
            canonical_hash: Some(canonical_hash),
            params: HashMap::new(),
            materialize_all,
            limits,
            fallback,
            fallback_note: RefCell::new(None),
            profile,
            last_profile: RefCell::new(None),
            scalar_kernels,
            query_id: Cell::new(None),
            last_spilled: Cell::new(false),
            last_fell_back: Cell::new(false),
        })
    }

    /// Like [`Engine::prepare`], but consults (and fills) the engine's
    /// plan cache: a repeat preparation of the same query shape skips
    /// parse/normalize/compile/rewrite entirely and costs one hash lookup
    /// plus an `Rc` clone. Records `plan_cache_hits`/`plan_cache_misses`
    /// in the process metrics.
    pub fn prepare_cached(
        &self,
        query: &str,
        options: &CompileOptions,
    ) -> Result<PreparedQuery, EngineError> {
        let (prepared, hit) = self.prepare_cached_outcome(query, options)?;
        if hit {
            metrics().record_plan_cache_hit();
        } else {
            metrics().record_plan_cache_miss();
        }
        Ok(prepared)
    }

    /// [`Engine::prepare_cached`] without the metrics recording; returns
    /// whether the plan came out of this engine's cache. The service uses
    /// this to distinguish a true miss (shape never seen anywhere) from a
    /// per-worker re-hydration of a shape the shared registry knows.
    pub fn prepare_cached_outcome(
        &self,
        query: &str,
        options: &CompileOptions,
    ) -> Result<(PreparedQuery, bool), EngineError> {
        xqr_xml::failpoint::check("engine::prepare").map_err(|e| classify(e, Phase::Parse))?;
        let text_key = text_cache_key(query, options);
        if let Some(cached) = self.plan_cache.borrow_mut().get(text_key) {
            return Ok((self.rehydrate_prepared(&cached, options), true));
        }
        let prepared = self.prepare(query, options)?;
        if !self.plan_cache.borrow().enabled() {
            return Ok((prepared, false));
        }
        let estimated_bytes = prepared.estimated_bytes(query.len());
        let cached = Rc::new(plancache::CachedPlan {
            core: prepared.core.clone(),
            plan: prepared.plan.clone(),
            stats: prepared.stats.clone(),
            canonical_hash: prepared
                .canonical_hash
                // NoAlgebra keeps no plan to canonicalize; the text key
                // stands in as the entry identity.
                .unwrap_or(text_key),
            estimated_bytes,
        });
        // A syntactic variant may already be cached under the same
        // canonical hash; adopt the shared entry so equal plans are
        // stored (and counted) once.
        let shared = self.plan_cache.borrow_mut().insert(text_key, cached);
        Ok((self.rehydrate_prepared(&shared, options), false))
    }

    /// Builds a [`PreparedQuery`] from a cached artifact: the immutable
    /// compiled plan is shared by `Rc`, the mutable execution state
    /// (params, fallback note, profile) is fresh per instance.
    fn rehydrate_prepared(
        &self,
        cached: &plancache::CachedPlan,
        options: &CompileOptions,
    ) -> PreparedQuery {
        PreparedQuery {
            mode: options.mode,
            core: cached.core.clone(),
            plan: cached.plan.clone(),
            stats: cached.stats.clone(),
            canonical_hash: cached.plan.is_some().then_some(cached.canonical_hash),
            params: HashMap::new(),
            materialize_all: options.materialize_all,
            limits: options.limits.clone().or_else(|| self.limits.clone()),
            fallback: options.fallback_to_materialized,
            fallback_note: RefCell::new(None),
            profile: options.profile,
            last_profile: RefCell::new(None),
            scalar_kernels: options.scalar_kernels,
            query_id: Cell::new(None),
            last_spilled: Cell::new(false),
            last_fell_back: Cell::new(false),
        }
    }

    /// Replaces the plan-cache configuration (and drops cached plans).
    pub fn set_plan_cache_config(&mut self, cfg: PlanCacheConfig) {
        *self.plan_cache.borrow_mut() = PlanCache::new(cfg);
    }

    /// Number of plans in this engine's cache.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.borrow().len()
    }

    /// Estimated bytes retained by this engine's plan cache.
    pub fn plan_cache_bytes(&self) -> usize {
        self.plan_cache.borrow().bytes()
    }

    /// Drops every cached plan (benchmarks use this for cold-cache runs).
    pub fn clear_plan_cache(&self) {
        self.plan_cache.borrow_mut().clear();
    }

    /// One-shot convenience: prepare + run with default options.
    pub fn execute(&self, query: &str) -> Result<Sequence, EngineError> {
        self.prepare(query, &CompileOptions::default())?.run(self)
    }

    /// One-shot convenience returning serialized XML.
    pub fn execute_to_string(&self, query: &str) -> Result<String, EngineError> {
        Ok(xqr_xml::serialize_sequence(&self.execute(query)?))
    }
}

/// The plan-cache text key: FNV over the query text plus every compile
/// option that affects the resulting plan. Execution-only options
/// (limits, materialization, profiling, kernels, fallback) are *not*
/// keyed — they live on the `PreparedQuery`, not the cached plan.
fn text_cache_key(query: &str, options: &CompileOptions) -> u64 {
    let rules = options.rules.unwrap_or_default();
    let fingerprint = [
        options.mode as u8,
        u8::from(options.projection),
        u8::from(rules.remove_map),
        u8::from(rules.unnesting),
        u8::from(rules.join_insertion),
        u8::from(rules.push_rules),
    ];
    let mut h = xqr_core::canon::fnv1a(query.as_bytes());
    for b in fingerprint {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A prepared query, bound to an execution mode. The compiled artifacts
/// are shared (`Rc`) so cache hits re-use one plan across many prepared
/// instances; per-run state (parameter bindings, profiles) is per
/// instance.
pub struct PreparedQuery {
    mode: ExecutionMode,
    core: Option<Rc<CoreModule>>,
    plan: Option<Rc<CompiledModule>>,
    stats: Option<Rc<RewriteStats>>,
    /// Canonical plan hash (`None` for NoAlgebra, which keeps no plan).
    canonical_hash: Option<u64>,
    /// Per-instance external-variable bindings ([`PreparedQuery::bind_param`]),
    /// overlaid over the engine-wide [`Engine::bind_variable`] bindings at
    /// run time — one compiled plan serves many argument sets.
    params: HashMap<QName, Sequence>,
    materialize_all: bool,
    /// Effective limits (query-level, else engine-wide) captured at
    /// prepare time.
    limits: Option<Limits>,
    fallback: bool,
    /// Set when a run fell back to the materialized strategy; surfaced by
    /// [`PreparedQuery::explain`].
    fallback_note: RefCell<Option<String>>,
    /// Collect per-operator stats on every run.
    profile: bool,
    /// The profile of the most recent run (when `profile` is set).
    last_profile: RefCell<Option<QueryProfile>>,
    /// Force the row-at-a-time scalar path (no batched kernels).
    scalar_kernels: bool,
    /// Service query id ([`PreparedQuery::set_query_id`]); stamped into
    /// recorded profiles so `EXPLAIN ANALYZE` joins to lifecycle journals.
    query_id: Cell<Option<u64>>,
    /// Whether the most recent run crossed the spill watermark.
    last_spilled: Cell<bool>,
    /// Whether the most recent run degraded to a fallback strategy.
    last_fell_back: Cell<bool>,
}

impl PreparedQuery {
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Rewrite statistics (None for NoAlgebra / AlgebraNoOptim).
    pub fn rewrite_stats(&self) -> Option<&RewriteStats> {
        self.stats.as_deref()
    }

    /// The canonical plan hash ([`xqr_core::canon`]): identical for
    /// queries whose plans normalize to the same form. `None` for
    /// NoAlgebra, which compiles no plan.
    pub fn canonical_hash(&self) -> Option<u64> {
        self.canonical_hash
    }

    /// Tags subsequent runs with a service query id: profiles recorded by
    /// those runs carry the id (see [`QueryProfile::query_id`]), joining
    /// `EXPLAIN ANALYZE` output to the service's lifecycle journal.
    pub fn set_query_id(&self, id: u64) {
        self.query_id.set(Some(id));
    }

    /// The service query id, if one was set.
    pub fn query_id(&self) -> Option<u64> {
        self.query_id.get()
    }

    /// Whether the most recent run crossed the spill watermark (wrote
    /// intermediate state to disk).
    pub fn last_run_spilled(&self) -> bool {
        self.last_spilled.get()
    }

    /// Whether the most recent run degraded to a fallback strategy
    /// (materialized retry or spill-disabled retry).
    pub fn last_run_fell_back(&self) -> bool {
        self.last_fell_back.get()
    }

    /// The query's external parameters: name, declared type (if any), and
    /// whether a default value exists.
    pub fn parameters(&self) -> Vec<(QName, Option<xqr_types::SequenceType>, bool)> {
        match (&self.plan, &self.core) {
            (Some(m), _) => m
                .parameters()
                .map(|g| (g.name.clone(), g.as_type.clone(), g.plan.is_some()))
                .collect(),
            (None, Some(core)) => core
                .variables
                .iter()
                .filter(|g| g.external)
                .map(|g| (g.name.clone(), g.as_type.clone(), g.value.is_some()))
                .collect(),
            (None, None) => Vec::new(),
        }
    }

    /// Binds a value to a declared external variable for this prepared
    /// instance (overriding any engine-wide [`Engine::bind_variable`]
    /// binding of the same name). Fails with `XPST0008` when the query
    /// declares no such external variable; a declared-type mismatch
    /// surfaces as `XPTY0004` at run time.
    pub fn bind_param(&mut self, name: &str, value: Sequence) -> Result<(), EngineError> {
        let q = QName::local(name);
        if !self.parameters().iter().any(|(n, _, _)| *n == q) {
            return Err(EngineError::Dynamic(XmlError::new(
                "XPST0008",
                format!("query declares no external variable ${name}"),
            )));
        }
        self.params.insert(q, value);
        Ok(())
    }

    /// Removes every [`PreparedQuery::bind_param`] binding.
    pub fn clear_params(&mut self) {
        self.params.clear();
    }

    /// Estimated retained bytes of the compiled artifacts (for the plan
    /// cache's byte budget): ~200 bytes per algebra op plus the query
    /// text.
    fn estimated_bytes(&self, query_len: usize) -> usize {
        let mut ops = 0usize;
        if let Some(m) = &self.plan {
            ops += plan_size(&m.body);
            for g in &m.globals {
                if let Some(p) = &g.plan {
                    ops += plan_size(p);
                }
            }
            for f in m.functions.values() {
                ops += plan_size(&f.body);
            }
        }
        ops * 200 + query_len + 64
    }

    /// The optimized (or naive) algebra plan, in the paper's notation,
    /// with a per-operator streams/materializes note on the plan tree
    /// itself, followed by a summary of the pipeline strategy. Uses the
    /// same annotation mechanism as [`PreparedQuery::explain_analyze`].
    pub fn explain(&self) -> String {
        let base = match &self.plan {
            Some(m) => {
                let pipelined = !self.materialize_all;
                let ann = xqr_runtime::explain_annotations(&m.body, pipelined);
                let plan = pretty::indented_annotated(&m.body, &ann);
                let strategy = if self.materialize_all {
                    "execution: materialized (all operators evaluate to full tables)".to_string()
                } else {
                    format!(
                        "execution: pipelined\n{}",
                        xqr_runtime::pipeline_report(&m.body)
                    )
                };
                format!("{plan}\n{strategy}")
            }
            None => "(no algebra: direct Core interpretation)".to_string(),
        };
        match &*self.fallback_note.borrow() {
            Some(note) => format!("{base}\n{note}"),
            None => base,
        }
    }

    /// The plan annotated with the measured per-operator stats of the most
    /// recent run: rows produced, `next()`/eval calls, estimated inclusive
    /// and self time, join build time, peak materialized bytes, group-by
    /// partitions, and kernel dispatches. Requires preparing with
    /// [`CompileOptions::with_profiling`] and running the query first.
    pub fn explain_analyze(&self) -> String {
        let profile = self.last_profile.borrow();
        let Some(p) = &*profile else {
            return "(no profile recorded: prepare with CompileOptions::with_profiling() \
                    and run the query first)"
                .to_string();
        };
        let mut out = String::new();
        if let (Some(m), Some(_)) = (&self.plan, &p.root) {
            out.push_str(&pretty::indented_annotated(&m.body, &p.annotations()));
            out.push('\n');
        }
        out.push_str(&format!(
            "strategy: {}\nwall: {}",
            p.strategy,
            xqr_runtime::fmt_nanos(p.wall_nanos)
        ));
        // The journal join keys: a service-assigned query id and the
        // canonical plan hash correlate this rendering with the lifecycle
        // timeline and the per-shape statistics table.
        if let Some(id) = p.query_id {
            out.push_str(&format!("\nquery: {id}"));
        }
        if let Some(h) = p.plan_hash {
            out.push_str(&format!("\nplan: {h:016x}"));
        }
        if let Some(counts) = &p.interp {
            for (k, v) in counts {
                out.push_str(&format!("\n{k}  {v}"));
            }
        }
        out
    }

    /// The profile of the most recent run, if profiling was enabled.
    pub fn profile(&self) -> Option<QueryProfile> {
        self.last_profile.borrow().clone()
    }

    /// The most recent profile as JSON.
    pub fn profile_json(&self) -> Option<String> {
        self.last_profile.borrow().as_ref().map(|p| p.to_json())
    }

    /// The compiled module (algebra modes only).
    pub fn compiled(&self) -> Option<&CompiledModule> {
        self.plan.as_deref()
    }

    /// Executes against the engine's documents/bindings under the
    /// effective [`Limits`], behind the panic-isolation boundary.
    pub fn run(&self, engine: &Engine) -> Result<Sequence, EngineError> {
        self.run_cancellable(engine, CancellationToken::new())
    }

    /// [`PreparedQuery::run`] with an externally held cancellation handle:
    /// `token.cancel()` from any thread makes the query fail with
    /// `XQRG0002` at its next cooperative check.
    pub fn run_cancellable(
        &self,
        engine: &Engine,
        token: CancellationToken,
    ) -> Result<Sequence, EngineError> {
        metrics().record_query_start();
        let t0 = Instant::now();
        let limits = self.limits.clone().unwrap_or_default();
        let governor = Governor::new(&limits, token.clone());
        let pipelined = !self.materialize_all;
        self.last_spilled.set(false);
        self.last_fell_back.set(false);
        let result = match self.run_once(engine, &governor, pipelined) {
            Err(EngineError::Internal {
                phase,
                plan_context,
                message,
            }) if self.fallback && pipelined && self.plan.is_some() => {
                // Graceful degradation: the pipelined attempt panicked;
                // retry once fully materialized. The governor (and thus
                // the deadline and the budgets already spent) carries
                // over; only test-only fault injection is disarmed.
                governor.disarm_fault_injection();
                metrics().record_fallback();
                self.last_fell_back.set(true);
                *self.fallback_note.borrow_mut() = Some(format!(
                    "fallback: pipelined execution failed during {} ({message}); \
                     retried under the materialized strategy",
                    phase.label()
                ));
                match self.run_once(engine, &governor, false) {
                    Ok(v) => Ok(v),
                    Err(_retry_err) => Err(EngineError::Internal {
                        phase,
                        plan_context,
                        message,
                    }),
                }
            }
            Err(EngineError::LimitExceeded {
                code,
                phase,
                budget,
                message,
            }) if code == ERR_SPILL_IO && self.fallback && self.plan.is_some() => {
                // Spilling itself failed irrecoverably (retries exhausted
                // or a corrupt frame): retry once with spilling disabled,
                // degrading to the strict in-memory byte budget — a broken
                // disk shouldn't fail a query that fits in memory.
                metrics().record_fallback();
                self.last_fell_back.set(true);
                *self.fallback_note.borrow_mut() = Some(format!(
                    "fallback: spilling failed during {} ({message}); \
                     retried with spilling disabled",
                    phase.label()
                ));
                let strict = Governor::new(&limits.clone().with_spill(None), token);
                match self.run_once(engine, &strict, pipelined) {
                    Ok(v) => Ok(v),
                    Err(_retry_err) => Err(EngineError::LimitExceeded {
                        code,
                        phase,
                        budget,
                        message,
                    }),
                }
            }
            other => other,
        };
        let wall = t0.elapsed().as_nanos() as u64;
        if governor.spilled() {
            self.last_spilled.set(true);
        }
        match &result {
            Ok(v) => {
                metrics().record_query_ok(wall);
                if engine.tracer.is_some() {
                    if governor.spilled() {
                        engine.trace(TraceEvent::Span {
                            phase: "spill",
                            nanos: 0,
                            detail: format!(
                                "memory watermark crossed; {} bytes spilled to disk",
                                governor.spill_bytes_total()
                            ),
                        });
                    }
                    engine.trace(TraceEvent::Span {
                        phase: "execute",
                        nanos: wall,
                        detail: format!("rows={}", v.len()),
                    });
                }
            }
            Err(e) => metrics().record_query_error(e.code().unwrap_or("internal")),
        }
        result
    }

    /// One governed execution attempt behind `catch_unwind`.
    fn run_once(
        &self,
        engine: &Engine,
        governor: &Governor,
        pipelined: bool,
    ) -> Result<Sequence, EngineError> {
        xqr_xml::failpoint::check("phase::execute").map_err(|e| classify(e, Phase::Execute))?;
        let profiler =
            (self.profile && self.plan.is_some()).then(|| Profiler::new(governor.clone()));
        let interp_profile =
            (self.profile && self.plan.is_none()).then(|| Rc::new(InterpProfile::default()));
        let t0 = self.profile.then(Instant::now);
        // Engine-wide externals overlaid by this instance's bind_param
        // bindings: the parameter-binding half of the prepared-query path.
        let globals = || {
            let mut g = engine.externals.clone();
            g.extend(self.params.iter().map(|(k, v)| (k.clone(), v.clone())));
            g
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| match self.mode {
            ExecutionMode::NoAlgebra => {
                let core = self.core.as_deref().expect("core kept for NoAlgebra");
                eval_core_module_profiled(
                    core,
                    &engine.schema,
                    &engine.documents,
                    globals(),
                    governor.clone(),
                    interp_profile.clone(),
                )
            }
            mode => {
                let module = self.plan.as_deref().expect("compiled plan");
                let mut ctx = Ctx::new(
                    module,
                    &engine.schema,
                    &engine.documents,
                    mode.join_algorithm(),
                );
                ctx.pipelined = pipelined;
                ctx.batched = !self.scalar_kernels;
                ctx.globals = globals();
                ctx.governor = governor.clone();
                ctx.profiler = profiler.clone();
                xqr_runtime::eval::eval_module(&mut ctx)
            }
        }));
        if let Some(t0) = t0 {
            // Snapshot even on a failed run: the partial profile shows how
            // far the plan got before the error.
            let wall = t0.elapsed().as_nanos() as u64;
            let mut snap = if let Some(p) = &profiler {
                let strategy = if pipelined {
                    "pipelined"
                } else {
                    "materialized"
                };
                p.snapshot(strategy, wall)
            } else {
                QueryProfile {
                    strategy: "core-interp".to_string(),
                    wall_nanos: wall,
                    query_id: None,
                    plan_hash: None,
                    root: None,
                    interp: interp_profile.as_ref().map(|ip| ip.counts()),
                }
            };
            snap.query_id = self.query_id.get();
            snap.plan_hash = self.canonical_hash;
            *self.last_profile.borrow_mut() = Some(snap);
        }
        match outcome {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(classify(e, Phase::Execute)),
            Err(p) => Err(EngineError::Internal {
                phase: Phase::Execute,
                plan_context: self.plan_context(),
                message: panic_message(p),
            }),
        }
    }

    /// Short description of what was executing, for [`EngineError::Internal`].
    fn plan_context(&self) -> String {
        match &self.plan {
            None => format!("{} (Core interpreter)", self.mode.label()),
            Some(m) => {
                let plan = pretty::indented(&m.body);
                let root = plan.lines().next().unwrap_or("?").trim().to_string();
                format!("{} plan rooted at {root}", self.mode.label())
            }
        }
    }

    /// Executes and serializes.
    pub fn run_to_string(&self, engine: &Engine) -> Result<String, EngineError> {
        Ok(xqr_xml::serialize_sequence(&self.run(engine)?))
    }

    /// [`PreparedQuery::run_cancellable`], serialized.
    pub fn run_cancellable_to_string(
        &self,
        engine: &Engine,
        token: CancellationToken,
    ) -> Result<String, EngineError> {
        Ok(xqr_xml::serialize_sequence(
            &self.run_cancellable(engine, token)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(xml: &str) -> Engine {
        let mut e = Engine::new();
        e.bind_document("doc.xml", xml).unwrap();
        e
    }

    fn run_all_modes(engine: &Engine, q: &str) -> Vec<String> {
        ExecutionMode::ALL
            .iter()
            .map(|m| {
                engine
                    .prepare(q, &CompileOptions::mode(*m))
                    .unwrap_or_else(|e| panic!("{m:?} prepare: {e}"))
                    .run_to_string(engine)
                    .unwrap_or_else(|e| panic!("{m:?} run: {e}"))
            })
            .collect()
    }

    /// All four execution modes must agree — the central cross-check.
    fn assert_modes_agree(engine: &Engine, q: &str) -> String {
        let results = run_all_modes(engine, q);
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "modes disagree on {q:?}");
        }
        results.into_iter().next().expect("non-empty")
    }

    #[test]
    fn arithmetic_and_sequences() {
        let e = Engine::new();
        assert_eq!(assert_modes_agree(&e, "1 + 2 * 3"), "7");
        assert_eq!(assert_modes_agree(&e, "(1, 2, 3)"), "1 2 3");
        assert_eq!(assert_modes_agree(&e, "sum(1 to 10)"), "55");
        assert_eq!(assert_modes_agree(&e, "7 div 2"), "3.5");
        assert_eq!(assert_modes_agree(&e, "7 idiv 2"), "3");
    }

    #[test]
    fn flwor_basics() {
        let e = Engine::new();
        assert_eq!(
            assert_modes_agree(&e, "for $x in (1,2,3) where $x > 1 return $x * 10"),
            "20 30"
        );
        assert_eq!(
            assert_modes_agree(&e, "for $x at $i in ('a','b') return $i"),
            "1 2"
        );
        assert_eq!(
            assert_modes_agree(&e, "for $x in (3,1,2) order by $x descending return $x"),
            "3 2 1"
        );
        assert_eq!(
            assert_modes_agree(&e, "for $x in (1,2), $y in (10,20) return $x + $y"),
            "11 21 12 22"
        );
    }

    #[test]
    fn figure4_query_all_modes() {
        // The Section 5 / Fig. 4 example; ensures the GroupBy pipeline
        // computes the same result as plain interpretation.
        let e = Engine::new();
        assert_eq!(
            assert_modes_agree(
                &e,
                "for $x in (1,1,3) \
                 let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) \
                 return ($x, $a)"
            ),
            "1 15 1 15 3"
        );
    }

    #[test]
    fn paths_and_predicates() {
        let e = engine_with("<r><a id='1'>x</a><a id='2'>y</a><b/></r>");
        assert_eq!(
            assert_modes_agree(&e, "doc('doc.xml')/r/a[@id = '2']/text()"),
            "y"
        );
        assert_eq!(assert_modes_agree(&e, "count(doc('doc.xml')//a)"), "2");
        assert_eq!(
            assert_modes_agree(&e, "doc('doc.xml')/r/a[2]/@id/string(.)"),
            "2"
        );
        assert_eq!(
            assert_modes_agree(&e, "doc('doc.xml')/r/a[last()]/text()"),
            "y"
        );
    }

    #[test]
    fn join_query_all_modes() {
        let e = engine_with("<db><p id='1'/><p id='2'/><o ref='1'/><o ref='1'/><o ref='3'/></db>");
        // Correlated count per p — the unnesting pipeline.
        assert_eq!(
            assert_modes_agree(
                &e,
                "for $p in doc('doc.xml')//p \
                 let $os := for $o in doc('doc.xml')//o \
                            where $o/@ref = $p/@id return $o \
                 return count($os)"
            ),
            "2 0"
        );
    }

    #[test]
    fn constructors() {
        let e = Engine::new();
        assert_eq!(
            assert_modes_agree(&e, "<a x=\"{1+1}\">t{2+3}</a>"),
            "<a x=\"2\">t5</a>"
        );
        assert_eq!(
            assert_modes_agree(&e, "element item { attribute id {'7'}, text {'v'} }"),
            "<item id=\"7\">v</item>"
        );
    }

    #[test]
    fn quantifiers_and_conditionals() {
        let e = Engine::new();
        assert_eq!(
            assert_modes_agree(&e, "some $x in (1,2,3) satisfies $x = 2"),
            "true"
        );
        assert_eq!(
            assert_modes_agree(&e, "every $x in (1,2,3) satisfies $x < 3"),
            "false"
        );
        assert_eq!(assert_modes_agree(&e, "if (1 = 1) then 'y' else 'n'"), "y");
    }

    #[test]
    fn user_functions() {
        let e = Engine::new();
        let q = "declare function local:fact($n as xs:integer) as xs:integer \
                 { if ($n <= 1) then 1 else $n * local:fact($n - 1) }; \
                 local:fact(6)";
        assert_eq!(assert_modes_agree(&e, q), "720");
    }

    #[test]
    fn external_variables() {
        let mut e = Engine::new();
        e.bind_variable("size", Sequence::integers([5]));
        let q = "declare variable $size external; $size * 2";
        assert_eq!(assert_modes_agree(&e, q), "10");
    }

    #[test]
    fn explain_shows_group_by_for_nested_query() {
        let e = Engine::new();
        let q = "for $x in (1,2) let $a := (for $y in (1,2) where $y = $x return $y) \
                 return count($a)";
        let prepared = e
            .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap();
        assert!(
            prepared.explain().contains("GroupBy"),
            "{}",
            prepared.explain()
        );
        assert!(prepared.explain().contains("LOuterJoin"));
        assert!(prepared.rewrite_stats().unwrap().count("insert group-by") >= 1);
    }

    #[test]
    fn explain_reports_execution_strategy() {
        let e = Engine::new();
        let q = "for $x in (1,2,3) where $x > 1 return $x";
        let pipelined = e
            .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap();
        assert!(
            pipelined.explain().contains("execution: pipelined"),
            "{}",
            pipelined.explain()
        );
        assert!(pipelined.explain().contains("pipelined (streaming):"));
        let materialized = e
            .prepare(
                q,
                &CompileOptions::materialized(ExecutionMode::OptimHashJoin),
            )
            .unwrap();
        assert!(materialized.explain().contains("execution: materialized"));
    }

    #[test]
    fn materialized_escape_hatch_agrees() {
        let e = engine_with("<r><a id='1'>x</a><a id='2'>y</a></r>");
        for q in [
            "for $x in (1,2,3) where $x > 1 return $x * 10",
            "for $a in doc('doc.xml')//a order by $a/@id descending return string($a)",
            "some $x in (1,2,3) satisfies $x = 2",
        ] {
            let p = e
                .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
                .unwrap()
                .run_to_string(&e)
                .unwrap();
            let m = e
                .prepare(
                    q,
                    &CompileOptions::materialized(ExecutionMode::OptimHashJoin),
                )
                .unwrap()
                .run_to_string(&e)
                .unwrap();
            assert_eq!(p, m, "strategies disagree on {q:?}");
        }
    }

    #[test]
    fn mode_errors_match() {
        let e = Engine::new();
        for m in ExecutionMode::ALL {
            let r = e
                .prepare("exactly-one(())", &CompileOptions::mode(m))
                .unwrap()
                .run(&e);
            assert!(r.is_err(), "{m:?}");
        }
    }

    #[test]
    fn prepare_cached_hits_on_repeat() {
        let e = Engine::new();
        let opts = CompileOptions::mode(ExecutionMode::OptimHashJoin);
        let q = "for $x in (1,2,3) where $x > 1 return $x * 10";
        let (p1, hit1) = e.prepare_cached_outcome(q, &opts).unwrap();
        assert!(!hit1, "first preparation is a miss");
        assert_eq!(e.plan_cache_len(), 1);
        let (p2, hit2) = e.prepare_cached_outcome(q, &opts).unwrap();
        assert!(hit2, "repeat preparation hits the cache");
        assert_eq!(p1.run_to_string(&e).unwrap(), p2.run_to_string(&e).unwrap());
        assert_eq!(
            p1.explain(),
            p2.explain(),
            "cached plan explains identically"
        );
        assert_eq!(p1.canonical_hash(), p2.canonical_hash());
    }

    #[test]
    fn prepare_cached_dedups_renamed_queries() {
        // Alpha-renamed queries canonicalize to the same plan: two text
        // keys, one cache entry, equal canonical hashes.
        let e = Engine::new();
        let opts = CompileOptions::mode(ExecutionMode::OptimHashJoin);
        let a = e
            .prepare_cached("for $x in (1,2,3) where $x > 1 return $x * 10", &opts)
            .unwrap();
        let b = e
            .prepare_cached("for $y in (1,2,3) where $y > 1 return $y * 10", &opts)
            .unwrap();
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        assert_eq!(e.plan_cache_len(), 1, "variants share one entry");
    }

    #[test]
    fn cache_keys_by_mode_and_options() {
        let e = Engine::new();
        let q = "1 + 2";
        e.prepare_cached(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap();
        let (_, hit) = e
            .prepare_cached_outcome(q, &CompileOptions::mode(ExecutionMode::AlgebraNoOptim))
            .unwrap();
        assert!(!hit, "a different mode is a different plan");
    }

    #[test]
    fn bind_param_runs_with_bound_value() {
        let e = Engine::new();
        let q = "declare variable $n as xs:integer external; $n * 2";
        let mut p = e
            .prepare_cached(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap();
        let params = p.parameters();
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].0, QName::local("n"));
        assert!(params[0].1.is_some(), "declared type is surfaced");
        assert!(!params[0].2, "no default value");
        p.bind_param("n", Sequence::integers([21])).unwrap();
        assert_eq!(p.run_to_string(&e).unwrap(), "42");
        // Re-binding the same prepared instance re-uses the plan.
        p.bind_param("n", Sequence::integers([5])).unwrap();
        assert_eq!(p.run_to_string(&e).unwrap(), "10");
    }

    #[test]
    fn bind_param_overrides_engine_binding_per_instance() {
        let mut e = Engine::new();
        e.bind_variable("n", Sequence::integers([1]));
        let q = "declare variable $n as xs:integer external; $n";
        let mut p = e
            .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap();
        assert_eq!(p.run_to_string(&e).unwrap(), "1");
        p.bind_param("n", Sequence::integers([7])).unwrap();
        assert_eq!(p.run_to_string(&e).unwrap(), "7");
        p.clear_params();
        assert_eq!(p.run_to_string(&e).unwrap(), "1");
    }

    #[test]
    fn external_default_used_when_unbound() {
        let e = Engine::new();
        let q = "declare variable $n as xs:integer external := 9; $n + 1";
        assert_eq!(assert_modes_agree(&e, q), "10");
        let mut p = e
            .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap();
        assert!(p.parameters()[0].2, "default value is surfaced");
        p.bind_param("n", Sequence::integers([99])).unwrap();
        assert_eq!(p.run_to_string(&e).unwrap(), "100");
    }

    #[test]
    fn external_binding_errors() {
        let e = Engine::new();
        let q = "declare variable $n as xs:integer external; $n";
        let mut p = e
            .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap();
        // Unbound required external: XPDY0002 at run time, all modes.
        for m in ExecutionMode::ALL {
            let err = e
                .prepare(q, &CompileOptions::mode(m))
                .unwrap()
                .run(&e)
                .unwrap_err();
            assert!(err.to_string().contains("XPDY0002"), "{m:?}: {err}");
        }
        // Unknown parameter name: XPST0008 at bind time.
        let err = p.bind_param("nope", Sequence::integers([1])).unwrap_err();
        assert!(err.to_string().contains("XPST0008"), "{err}");
        // Declared-type mismatch: XPTY0004 at run time.
        p.bind_param("n", Sequence::singleton(xqr_xml::AtomicValue::string("x")))
            .unwrap();
        let err = p.run(&e).unwrap_err();
        assert!(err.to_string().contains("XPTY0004"), "{err}");
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn prepare_failpoint_fails_cached_preparation() {
        let _g = xqr_xml::failpoint::FailGuard::new("engine::prepare", "err(1)").unwrap();
        let e = Engine::new();
        let err = match e.prepare_cached("1", &CompileOptions::default()) {
            Err(err) => err,
            Ok(_) => panic!("prepare should trip the armed failpoint"),
        };
        assert!(
            err.to_string().contains(xqr_xml::failpoint::ERR_INJECTED),
            "{err}"
        );
        // The failure is injected before the cache is consulted; the next
        // preparation succeeds and populates the cache.
        assert!(e.prepare_cached("1", &CompileOptions::default()).is_ok());
    }
}
