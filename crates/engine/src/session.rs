//! Per-tenant sessions and quotas for the network frontend.
//!
//! The [`crate::service::QueryService`] admission gates protect the
//! *process* — bounded queue, aggregate memory budget, deadline
//! shedding. They say nothing about *who* is submitting: one client can
//! fill the queue and starve everyone else while staying under every
//! global limit. This module adds the missing per-principal layer:
//! every network request carries a **tenant id** (the `X-Tenant` header;
//! absent means the `"default"` tenant), resolved to a [`TenantQuotas`]
//! record, and must take a [`SessionPermit`] *before* the service's own
//! admission runs. A permit enforces three independent budgets:
//!
//! * **concurrency** — at most `max_concurrent` queries in flight per
//!   tenant (queued + running, counted from permit grant to drop);
//! * **reservation share** — the sum of the tenant's in-flight memory
//!   reservations stays under `max_reserved_bytes`, so one tenant
//!   cannot monopolize the service's aggregate memory budget;
//! * **request rate** — a token bucket (`rate_per_sec` steady state,
//!   `burst` capacity) refused *before* any queue slot is consumed.
//!
//! Refusals are [`QuotaError`]s carrying the stable `XQRG0009` code —
//! deliberately distinct from the service-wide `XQRG0007` so a client
//! can tell "over *your* budget, back off and retry" (429) from "the
//! service is full" — and count into the process metrics
//! (`tenant_rejections`). Permits are RAII: dropping one (on reply,
//! disconnect, or panic unwind) releases the concurrency slot and the
//! reservation share, so a hostile client that vanishes mid-query can
//! never leak quota.
//!
//! Tenants may also carry their own default [`Limits`]
//! ([`TenantQuotas::limits`]), applied to requests that do not bring
//! their own — a cheap way to give untrusted tenants tighter deadlines
//! and memory caps than in-process callers.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use xqr_xml::limits::ERR_TENANT;
use xqr_xml::metrics::metrics;
use xqr_xml::Limits;

/// Per-tenant admission budgets. `0` disables the corresponding gate
/// (unlimited), so `TenantQuotas::default()` admits everything — quotas
/// are opt-in per deployment.
#[derive(Clone, Debug, Default)]
pub struct TenantQuotas {
    /// Queries in flight (permit granted, not yet dropped) at once;
    /// 0 = unlimited.
    pub max_concurrent: usize,
    /// Sum of in-flight memory reservations; 0 = unlimited.
    pub max_reserved_bytes: u64,
    /// Steady-state requests per second for the token bucket;
    /// 0 = unlimited (the bucket is bypassed).
    pub rate_per_sec: u32,
    /// Bucket capacity — the tolerated burst above the steady rate.
    /// Clamped up to 1 whenever rate limiting is active.
    pub burst: u32,
    /// Default [`Limits`] for this tenant's requests that do not carry
    /// their own; `None` falls through to the service default.
    pub limits: Option<Limits>,
}

impl TenantQuotas {
    pub fn with_max_concurrent(mut self, n: usize) -> TenantQuotas {
        self.max_concurrent = n;
        self
    }

    pub fn with_max_reserved_bytes(mut self, n: u64) -> TenantQuotas {
        self.max_reserved_bytes = n;
        self
    }

    pub fn with_rate(mut self, per_sec: u32, burst: u32) -> TenantQuotas {
        self.rate_per_sec = per_sec;
        self.burst = burst;
        self
    }

    pub fn with_limits(mut self, limits: Limits) -> TenantQuotas {
        self.limits = Some(limits);
        self
    }
}

/// Tenant resolution table for a [`SessionManager`]: named tenants get
/// their own quotas, everyone else shares `default_quotas`.
#[derive(Clone, Debug, Default)]
pub struct SessionConfig {
    /// Quotas for tenants without an explicit entry (including the
    /// implicit `"default"` tenant of requests with no `X-Tenant`).
    pub default_quotas: TenantQuotas,
    /// Per-tenant overrides, keyed by tenant id.
    pub tenants: HashMap<String, TenantQuotas>,
}

impl SessionConfig {
    pub fn with_default_quotas(mut self, q: TenantQuotas) -> SessionConfig {
        self.default_quotas = q;
        self
    }

    pub fn with_tenant(mut self, id: impl Into<String>, q: TenantQuotas) -> SessionConfig {
        self.tenants.insert(id.into(), q);
        self
    }
}

/// Why a tenant's request was refused. All variants map to the stable
/// `XQRG0009` code ([`QuotaError::code`]) and an HTTP 429 at the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuotaError {
    /// `max_concurrent` in-flight queries already held.
    Concurrency { tenant: String, limit: usize },
    /// Granting `asked` reservation bytes would push the tenant's
    /// in-flight total past `max_reserved_bytes`.
    Reservation {
        tenant: String,
        asked: u64,
        held: u64,
        limit: u64,
    },
    /// The token bucket is empty; retry after roughly `retry_after_ms`.
    Rate { tenant: String, retry_after_ms: u64 },
}

impl QuotaError {
    /// The stable error code (`XQRG0009`) carried in structured replies.
    pub fn code(&self) -> &'static str {
        ERR_TENANT
    }

    /// Client back-off hint in milliseconds (the server's `Retry-After`
    /// source): rate refusals know their refill time; concurrency and
    /// reservation refusals suggest a generic short wait.
    pub fn retry_after_ms(&self) -> u64 {
        match self {
            QuotaError::Rate { retry_after_ms, .. } => (*retry_after_ms).max(1),
            _ => 1000,
        }
    }
}

impl std::fmt::Display for QuotaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuotaError::Concurrency { tenant, limit } => write!(
                f,
                "[{}] tenant {tenant:?} is at its concurrency limit ({limit} in flight)",
                ERR_TENANT
            ),
            QuotaError::Reservation {
                tenant,
                asked,
                held,
                limit,
            } => write!(
                f,
                "[{}] tenant {tenant:?} reservation share exhausted: \
                 {asked} bytes asked, {held} held, {limit} allowed",
                ERR_TENANT
            ),
            QuotaError::Rate {
                tenant,
                retry_after_ms,
            } => write!(
                f,
                "[{}] tenant {tenant:?} is over its request rate; retry in ~{retry_after_ms} ms",
                ERR_TENANT
            ),
        }
    }
}

impl std::error::Error for QuotaError {}

/// Live admission state for one tenant.
struct TenantState {
    in_flight: usize,
    reserved: u64,
    /// Token bucket: fractional tokens remaining and the last refill
    /// instant. Initialized full (burst capacity).
    tokens: f64,
    last_refill: Instant,
}

struct Inner {
    cfg: SessionConfig,
    state: Mutex<HashMap<String, TenantState>>,
}

impl Inner {
    fn quotas_for(&self, tenant: &str) -> &TenantQuotas {
        self.cfg
            .tenants
            .get(tenant)
            .unwrap_or(&self.cfg.default_quotas)
    }
}

/// Resolves tenant ids to quotas and hands out RAII [`SessionPermit`]s.
/// Cheap to clone (shared interior); one per [`crate::server::QueryServer`].
#[derive(Clone)]
pub struct SessionManager {
    inner: Arc<Inner>,
}

impl SessionManager {
    pub fn new(cfg: SessionConfig) -> SessionManager {
        SessionManager {
            inner: Arc::new(Inner {
                cfg,
                state: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The tenant's default [`Limits`], if its quotas carry one.
    pub fn limits_for(&self, tenant: &str) -> Option<Limits> {
        self.inner.quotas_for(tenant).limits.clone()
    }

    /// Takes a permit for one query by `tenant` reserving `reservation`
    /// bytes, enforcing rate, concurrency, and reservation-share gates
    /// in that order (rate first: a rate-limited client should be turned
    /// away as cheaply as possible). Refusals count into the process
    /// `tenant_rejections` metric.
    pub fn admit(&self, tenant: &str, reservation: u64) -> Result<SessionPermit, QuotaError> {
        self.admit_at(tenant, reservation, Instant::now())
    }

    /// [`Self::admit`] with an explicit clock, for deterministic tests.
    pub(crate) fn admit_at(
        &self,
        tenant: &str,
        reservation: u64,
        now: Instant,
    ) -> Result<SessionPermit, QuotaError> {
        let q = self.inner.quotas_for(tenant).clone();
        let mut map = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        let st = map
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                in_flight: 0,
                reserved: 0,
                tokens: f64::from(q.burst.max(1)),
                last_refill: now,
            });
        let refuse = |e: QuotaError| {
            metrics().record_tenant_rejection();
            Err(e)
        };
        if q.rate_per_sec > 0 {
            let cap = f64::from(q.burst.max(1));
            let elapsed = now.saturating_duration_since(st.last_refill);
            st.tokens = (st.tokens + elapsed.as_secs_f64() * f64::from(q.rate_per_sec)).min(cap);
            st.last_refill = now;
            if st.tokens < 1.0 {
                let deficit = 1.0 - st.tokens;
                let retry_after_ms = (deficit / f64::from(q.rate_per_sec) * 1000.0).ceil() as u64;
                return refuse(QuotaError::Rate {
                    tenant: tenant.to_string(),
                    retry_after_ms,
                });
            }
            st.tokens -= 1.0;
        }
        if q.max_concurrent > 0 && st.in_flight >= q.max_concurrent {
            return refuse(QuotaError::Concurrency {
                tenant: tenant.to_string(),
                limit: q.max_concurrent,
            });
        }
        if q.max_reserved_bytes > 0
            && st.reserved.saturating_add(reservation) > q.max_reserved_bytes
        {
            return refuse(QuotaError::Reservation {
                tenant: tenant.to_string(),
                asked: reservation,
                held: st.reserved,
                limit: q.max_reserved_bytes,
            });
        }
        st.in_flight += 1;
        st.reserved += reservation;
        Ok(SessionPermit {
            inner: Arc::clone(&self.inner),
            tenant: tenant.to_string(),
            reservation,
        })
    }

    /// `(in_flight, reserved_bytes)` for a tenant (diagnostics / tests).
    pub fn tenant_load(&self, tenant: &str) -> (usize, u64) {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(tenant)
            .map(|s| (s.in_flight, s.reserved))
            .unwrap_or((0, 0))
    }
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionManager")
            .field("tenants", &self.inner.cfg.tenants.len())
            .finish_non_exhaustive()
    }
}

/// One granted admission: holds a concurrency slot and a reservation
/// share until dropped. Dropping on *any* path — reply sent, client
/// disconnected, worker panicked — releases both, so quota can never
/// leak past a query's lifetime.
pub struct SessionPermit {
    inner: Arc<Inner>,
    tenant: String,
    reservation: u64,
}

impl std::fmt::Debug for SessionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPermit")
            .field("tenant", &self.tenant)
            .field("reservation", &self.reservation)
            .finish()
    }
}

impl SessionPermit {
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        let mut map = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(st) = map.get_mut(&self.tenant) {
            st.in_flight = st.in_flight.saturating_sub(1);
            st.reserved = st.reserved.saturating_sub(self.reservation);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn mgr(q: TenantQuotas) -> SessionManager {
        SessionManager::new(SessionConfig::default().with_tenant("t", q))
    }

    #[test]
    fn default_quotas_admit_everything() {
        let m = SessionManager::new(SessionConfig::default());
        let permits: Vec<_> = (0..64)
            .map(|_| m.admit("anyone", 1 << 30).unwrap())
            .collect();
        assert_eq!(m.tenant_load("anyone").0, 64);
        drop(permits);
        assert_eq!(m.tenant_load("anyone"), (0, 0));
    }

    #[test]
    fn concurrency_gate_refuses_and_releases() {
        let m = mgr(TenantQuotas::default().with_max_concurrent(2));
        let p1 = m.admit("t", 0).unwrap();
        let _p2 = m.admit("t", 0).unwrap();
        let err = m.admit("t", 0).unwrap_err();
        assert!(matches!(err, QuotaError::Concurrency { limit: 2, .. }));
        assert_eq!(err.code(), ERR_TENANT);
        drop(p1);
        assert!(m.admit("t", 0).is_ok());
        // An unrelated tenant is untouched by t's quotas.
        assert!(m.admit("other", 0).is_ok());
    }

    #[test]
    fn reservation_share_gate_counts_bytes() {
        let m = mgr(TenantQuotas::default().with_max_reserved_bytes(100));
        let p1 = m.admit("t", 60).unwrap();
        let err = m.admit("t", 60).unwrap_err();
        assert!(matches!(
            err,
            QuotaError::Reservation {
                asked: 60,
                held: 60,
                limit: 100,
                ..
            }
        ));
        drop(p1);
        assert!(m.admit("t", 60).is_ok());
    }

    #[test]
    fn rate_gate_is_a_token_bucket() {
        let m = mgr(TenantQuotas::default().with_rate(10, 2));
        let t0 = Instant::now();
        // Burst of 2 passes, the third is refused with a refill hint.
        assert!(m.admit_at("t", 0, t0).is_ok());
        assert!(m.admit_at("t", 0, t0).is_ok());
        let err = m.admit_at("t", 0, t0).unwrap_err();
        match &err {
            QuotaError::Rate { retry_after_ms, .. } => {
                assert!(*retry_after_ms >= 1 && *retry_after_ms <= 100, "{err}");
            }
            other => panic!("expected rate refusal, got {other}"),
        }
        // 100 ms refills one token at 10/s.
        assert!(m.admit_at("t", 0, t0 + Duration::from_millis(150)).is_ok());
        assert!(m.admit_at("t", 0, t0 + Duration::from_millis(150)).is_err());
    }

    #[test]
    fn permits_release_on_drop_even_after_panic_unwind() {
        let m = mgr(TenantQuotas::default().with_max_concurrent(1));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _p = m2.admit("t", 0).unwrap();
            panic!("query blew up");
        });
        assert_eq!(m.tenant_load("t"), (0, 0));
        assert!(m.admit("t", 0).is_ok());
    }

    #[test]
    fn tenant_limits_resolve() {
        let m = mgr(TenantQuotas::default().with_limits(Limits::default().with_max_tuples(7)));
        assert_eq!(m.limits_for("t").unwrap().max_tuples, Some(7));
        assert!(m.limits_for("untracked").is_none());
        // Rejections are metered.
        let before = metrics().snapshot().tenant_rejections;
        let m = mgr(TenantQuotas::default().with_max_concurrent(1));
        let _p = m.admit("t", 0).unwrap();
        let _ = m.admit("t", 0).unwrap_err();
        assert!(metrics().snapshot().tenant_rejections >= before + 1);
    }
}
