//! Hardened network query frontend.
//!
//! [`QueryServer`] puts a thread-per-connection TCP/HTTP listener in
//! front of a [`QueryService`], built so that *hostile clients are
//! survived by construction* rather than by luck:
//!
//! * **Connection hygiene.** Every connection gets a bounded request
//!   head ([`ServerConfig::max_header_bytes`], answered `431` when
//!   exceeded), a bounded body ([`ServerConfig::max_body_bytes`] →
//!   `413`), a whole-head deadline that defeats byte-dribbling
//!   slow-loris clients (each read's socket timeout is the *remaining*
//!   deadline), body-read and response-write timeouts, and a hard cap
//!   on concurrent connections (extras are refused inline with `503`).
//!   One request per connection (`Connection: close`): no parser state
//!   survives a hostile peer.
//! * **Sessions and per-tenant quotas.** The `X-Tenant` header resolves
//!   to [`TenantQuotas`](crate::session::TenantQuotas) through a
//!   [`SessionManager`]; rate, concurrency, and reservation-share gates
//!   run *before* service admission and refuse with the stable
//!   `XQRG0009` code and a `Retry-After` hint. Permits are RAII — a
//!   client that disconnects mid-query cannot leak quota.
//! * **Structured error mapping.** Service errors map to HTTP statuses
//!   with the stable `XQR*` code in a JSON body: `XQRG0007` shed →
//!   `429` + `Retry-After`, `XQRG0008` breaker → `503`, governor trips
//!   → `408`/`413`, syntax/dynamic → `400`, faults → `500`. A client
//!   never sees a raw panic or a hung socket.
//! * **Stuck-query watchdog.** A background thread polls
//!   [`QueryService::inflight`] and escalates queries running past
//!   their deadline whose governor liveness counter
//!   ([`xqr_xml::CancellationToken::progress`]) has stopped advancing —
//!   cancellation via the query's own token, an escalation counter per
//!   plan shape (served at `/server.json`), and a breaker failure
//!   record, so a plan shape that repeatedly wedges starts fast-failing.
//! * **Graceful drain.** [`QueryServer::stop`] stops accepting, lets
//!   in-flight connections finish under
//!   [`ServerConfig::drain_deadline`], then drains the service itself
//!   ([`QueryService::drain`]): queued queries shed with `XQRG0007`
//!   (`shutdown` reason), survivors are cancelled through their tokens.
//!
//! Chaos hooks: the `server::accept`, `server::read`, and
//! `server::write` failpoints inject connection-path faults, and
//! `watchdog::escalate` suppresses (and counts) escalations, so the
//! stress suite can prove the listener survives every failure mode.
//!
//! ## Protocol
//!
//! `POST /query` with the XQuery text as the body. Optional headers:
//! `X-Tenant` (default `"default"`), `X-Deadline-Ms`, `X-Max-Tuples`,
//! `X-Max-Bytes` (per-request [`Limits`] overrides, tightening whatever
//! the tenant's defaults say). Success is `200` with the serialized XML
//! and an `X-Query-Id` header; errors are JSON
//! `{"code":"XQRG0007","message":"..."}`. `GET` serves `/healthz`,
//! `/readyz` (ready = accepting ∧ queue below the shed threshold),
//! `/metrics`, `/metrics.json`, `/observe.json`, and `/server.json`
//! (frontend gauges: connections, escalations by shape).

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xqr_xml::failpoint;
use xqr_xml::limits::{
    ERR_BREAKER, ERR_BYTES, ERR_CANCELLED, ERR_DEADLINE, ERR_OVERLOADED, ERR_RECURSION,
    ERR_SPILL_BUDGET, ERR_SPILL_IO, ERR_TENANT, ERR_TUPLES,
};
use xqr_xml::metrics::{json_escape, metrics};
use xqr_xml::Limits;

use crate::observe::{http_response, read_head};
use crate::service::{DrainReport, QueryRequest, QueryService};
use crate::session::{SessionConfig, SessionManager};
use crate::{CompileOptions, EngineError};

/// Stuck-query watchdog tuning.
#[derive(Clone, Debug)]
pub struct WatchdogConfig {
    /// Disable to run the frontend without the watchdog thread's polls.
    pub enabled: bool,
    /// Poll interval for [`QueryService::inflight`] snapshots.
    pub period: Duration,
    /// Slack past the deadline, and the minimum observed progress-stall
    /// span, before a query is declared stuck: escalation fires only
    /// when the query is `grace` past its deadline *and* its liveness
    /// counter has not moved for at least `grace`.
    pub grace: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            enabled: true,
            period: Duration::from_millis(100),
            grace: Duration::from_millis(250),
        }
    }
}

/// Tuning for a [`QueryServer`]. The defaults are deliberately tight:
/// a scrape-sized head, a 1 MiB query body, single-digit-second
/// deadlines everywhere.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Request line + headers ceiling; `431` beyond it.
    pub max_header_bytes: usize,
    /// Query body ceiling; `413` beyond it.
    pub max_body_bytes: usize,
    /// Whole-head receive deadline (slow-loris kill).
    pub header_deadline: Duration,
    /// Whole-body receive deadline.
    pub read_timeout: Duration,
    /// Response write timeout (stalled-reader kill).
    pub write_timeout: Duration,
    /// Concurrent connections served; extras get an inline `503`.
    pub max_connections: usize,
    /// Default budget for [`QueryServer::stop`]'s two drain stages
    /// (connections, then in-flight queries).
    pub drain_deadline: Duration,
    pub watchdog: WatchdogConfig,
    /// Tenant quota table for the session layer.
    pub sessions: SessionConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_header_bytes: 8192,
            max_body_bytes: 1 << 20,
            header_deadline: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_connections: 64,
            drain_deadline: Duration::from_secs(5),
            watchdog: WatchdogConfig::default(),
            sessions: SessionConfig::default(),
        }
    }
}

/// Outcome of [`QueryServer::stop`].
#[derive(Clone, Copy, Debug)]
pub struct ServerDrainReport {
    /// Connections still open when the drain started.
    pub conns_at_drain: usize,
    /// True when every connection finished inside the drain deadline.
    pub conns_drained_in_time: bool,
    /// The service-side drain (queued sheds, cancelled survivors).
    pub service: DrainReport,
}

struct ServerShared {
    svc: Arc<QueryService>,
    cfg: ServerConfig,
    sessions: SessionManager,
    /// Stops the accept and watchdog loops.
    stop: AtomicBool,
    /// False once a drain begins; feeds `/readyz` and `/server.json`.
    accepting: AtomicBool,
    /// Open-connection count, guarded for the drain's condvar wait.
    conns: Mutex<usize>,
    conns_changed: Condvar,
    /// Watchdog escalations per plan shape (shape key → count).
    escalations: Mutex<HashMap<u64, u64>>,
}

impl ServerShared {
    fn conn_opened(&self) -> usize {
        let mut n = self.conns.lock().unwrap_or_else(|p| p.into_inner());
        *n += 1;
        *n
    }

    fn conn_closed(&self) {
        let mut n = self.conns.lock().unwrap_or_else(|p| p.into_inner());
        *n = n.saturating_sub(1);
        self.conns_changed.notify_all();
    }

    fn open_conns(&self) -> usize {
        *self.conns.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The network frontend; see the module docs. Construct with
/// [`QueryServer::start`], tear down with [`QueryServer::stop`] (a
/// plain drop stops the listener and watchdog without draining the
/// service — the service may have other frontends).
pub struct QueryServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    watchdog_handle: Option<JoinHandle<()>>,
}

impl QueryServer {
    /// Binds `addr` (use port 0 to pick a free port; [`Self::addr`] has
    /// the result) and starts the accept loop and the watchdog.
    pub fn start(
        svc: Arc<QueryService>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<QueryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let sessions = SessionManager::new(cfg.sessions.clone());
        let shared = Arc::new(ServerShared {
            svc,
            cfg,
            sessions,
            stop: AtomicBool::new(false),
            accepting: AtomicBool::new(true),
            conns: Mutex::new(0),
            conns_changed: Condvar::new(),
            escalations: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("xqr-server-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn server accept thread");
        let watchdog_shared = Arc::clone(&shared);
        let watchdog_handle = std::thread::Builder::new()
            .name("xqr-server-watchdog".to_string())
            .spawn(move || watchdog_loop(&watchdog_shared))
            .expect("spawn server watchdog thread");
        Ok(QueryServer {
            shared,
            addr,
            accept_handle: Some(accept_handle),
            watchdog_handle: Some(watchdog_handle),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served (diagnostics / tests).
    pub fn active_connections(&self) -> usize {
        self.shared.open_conns()
    }

    /// Total watchdog escalations and the per-shape breakdown.
    pub fn escalations(&self) -> (u64, HashMap<u64, u64>) {
        let by_shape = self
            .shared
            .escalations
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        (by_shape.values().sum(), by_shape)
    }

    /// Graceful drain: stop accepting, wait for open connections under
    /// `deadline` (defaulting to [`ServerConfig::drain_deadline`] when
    /// `None`), then drain the service — shed the queue with the
    /// `shutdown` reason and cancel in-flight survivors. Idempotent;
    /// safe to call from a signal-triggered path.
    pub fn stop(&mut self, deadline: Option<Duration>) -> ServerDrainReport {
        let deadline = deadline.unwrap_or(self.shared.cfg.drain_deadline);
        self.shared.accepting.store(false, Ordering::SeqCst);
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let conns_at_drain = self.shared.open_conns();
        let t0 = Instant::now();
        {
            let mut n = self.shared.conns.lock().unwrap_or_else(|p| p.into_inner());
            while *n > 0 {
                let remaining = deadline.saturating_sub(t0.elapsed());
                if remaining.is_zero() {
                    break;
                }
                let (guard, _) = self
                    .shared
                    .conns_changed
                    .wait_timeout(n, remaining)
                    .unwrap_or_else(|p| p.into_inner());
                n = guard;
            }
        }
        let conns_drained_in_time = self.shared.open_conns() == 0;
        // Service drain second: connections that finished naturally got
        // their replies; whatever is left (stalled peers, wedged
        // queries) now gets shed/cancelled so their threads unwind.
        let service = self.shared.svc.drain(
            deadline
                .saturating_sub(t0.elapsed())
                .max(Duration::from_millis(1)),
        );
        if let Some(h) = self.watchdog_handle.take() {
            let _ = h.join();
        }
        ServerDrainReport {
            conns_at_drain,
            conns_drained_in_time,
            service,
        }
    }
}

impl Drop for QueryServer {
    /// Stops the accept loop and the watchdog *without* draining the
    /// service (other frontends may share it); use [`Self::stop`] for
    /// the full drain.
    fn drop(&mut self) {
        self.shared.accepting.store(false, Ordering::SeqCst);
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog_handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let active = Arc::new(AtomicUsize::new(0));
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                metrics().record_server_connection();
                // Injected accept-path fault: the connection is dropped
                // on the floor, exactly like an accept-time I/O error.
                if failpoint::check("server::accept").is_err() {
                    metrics().record_server_conn_kill();
                    continue;
                }
                if active.load(Ordering::SeqCst) >= shared.cfg.max_connections {
                    metrics().record_server_conn_kill();
                    let _ = refuse_busy(stream, shared.cfg.write_timeout);
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                shared.conn_opened();
                let conn_shared = Arc::clone(shared);
                let conn_active = Arc::clone(&active);
                let spawned = std::thread::Builder::new()
                    .name("xqr-server-conn".to_string())
                    .spawn(move || {
                        let _ = handle_conn(stream, &conn_shared);
                        conn_active.fetch_sub(1, Ordering::SeqCst);
                        conn_shared.conn_closed();
                    });
                if spawned.is_err() {
                    active.fetch_sub(1, Ordering::SeqCst);
                    shared.conn_closed();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn refuse_busy(mut stream: TcpStream, write_timeout: Duration) -> std::io::Result<()> {
    stream.set_write_timeout(Some(write_timeout.min(Duration::from_millis(250))))?;
    stream.write_all(
        http_response(
            503,
            "application/json",
            &error_body(ERR_OVERLOADED, "connection limit reached"),
            &[("Retry-After", "1".to_string())],
        )
        .as_bytes(),
    )
}

/// Maps one engine error to `(status, retry_after_seconds)`. The stable
/// code itself rides in the JSON body; `Retry-After` goes out only for
/// refusals where backing off helps.
fn map_engine_error(e: &EngineError) -> (u16, Option<u64>) {
    match e.code() {
        Some(ERR_OVERLOADED) => (429, Some(1)),
        Some(ERR_TENANT) => (429, Some(1)),
        Some(ERR_BREAKER) => (503, Some(10)),
        Some(ERR_DEADLINE) | Some(ERR_CANCELLED) => (408, None),
        Some(ERR_TUPLES)
        | Some(ERR_BYTES)
        | Some(ERR_SPILL_IO)
        | Some(ERR_SPILL_BUDGET)
        | Some(ERR_RECURSION) => (413, None),
        Some(_) => (400, None),
        None => match e {
            EngineError::Syntax(_) => (400, None),
            _ => (500, None),
        },
    }
}

fn error_body(code: &str, message: &str) -> String {
    format!(
        "{{\"code\":\"{}\",\"message\":\"{}\"}}\n",
        json_escape(code),
        json_escape(message)
    )
}

fn engine_error_response(e: &EngineError) -> String {
    let (status, retry_after) = map_engine_error(e);
    let code = e.code().unwrap_or(match e {
        EngineError::Syntax(_) => "syntax",
        EngineError::Internal { .. } => "internal",
        _ => "error",
    });
    let extra: Vec<(&str, String)> = retry_after
        .map(|s| ("Retry-After", s.to_string()))
        .into_iter()
        .collect();
    http_response(
        status,
        "application/json",
        &error_body(code, &e.to_string()),
        &extra,
    )
}

/// Parsed request head: method, path, lowercase header map, and any
/// body bytes that arrived in the same packets as the head.
struct RequestHead {
    method: String,
    path: String,
    headers: HashMap<String, String>,
    body_prefix: Vec<u8>,
}

fn parse_head(buf: Vec<u8>) -> Option<RequestHead> {
    let split = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(&buf[..split]).into_owned();
    let body_prefix = buf[split + 4..].to_vec();
    let mut lines = head.lines();
    let mut first = lines.next()?.split_whitespace();
    let method = first.next()?.to_string();
    let path = first.next()?.to_string();
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }
    Some(RequestHead {
        method,
        path,
        headers,
        body_prefix,
    })
}

/// Reads the remaining `len - prefix` body bytes under a whole-body
/// deadline (same remaining-budget trick as the head read).
fn read_body(
    stream: &mut TcpStream,
    mut body: Vec<u8>,
    len: usize,
    deadline: Duration,
) -> std::io::Result<Vec<u8>> {
    let t0 = Instant::now();
    let mut chunk = [0u8; 4096];
    while body.len() < len {
        let remaining = deadline.saturating_sub(t0.elapsed());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request body not completed within the deadline",
            ));
        }
        stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        let want = (len - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-body",
                ))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    body.truncate(len);
    Ok(body)
}

fn server_json(shared: &ServerShared) -> String {
    let by_shape = shared
        .escalations
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    let total: u64 = by_shape.values().sum();
    let mut shapes: Vec<_> = by_shape.into_iter().collect();
    shapes.sort_unstable();
    let shapes_json = shapes
        .iter()
        .map(|(shape, n)| format!("\"{shape:016x}\":{n}"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"accepting\":{},\"active_connections\":{},\"watchdog_escalations\":{total},\
         \"escalations_by_shape\":{{{shapes_json}}}}}\n",
        shared.accepting.load(Ordering::SeqCst),
        shared.open_conns(),
    )
}

/// Serves one connection: one bounded request, one response, close.
/// Every early return is a mapped status; I/O errors (including the
/// `server::read`/`server::write` injected ones) count as connection
/// kills and close the socket without poisoning anything else.
fn handle_conn(mut stream: TcpStream, shared: &Arc<ServerShared>) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(shared.cfg.write_timeout))?;
    if failpoint::check("server::read").is_err() {
        metrics().record_server_conn_kill();
        let _ = stream.write_all(
            http_response(
                500,
                "application/json",
                &error_body(xqr_xml::failpoint::ERR_INJECTED, "injected read fault"),
                &[],
            )
            .as_bytes(),
        );
        return Ok(());
    }
    let buf = match read_head(
        &mut stream,
        shared.cfg.max_header_bytes,
        shared.cfg.header_deadline,
    ) {
        Ok(Some(buf)) => buf,
        Ok(None) => return Ok(()), // clean early close
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            metrics().record_server_conn_kill();
            let _ = stream.write_all(
                http_response(
                    431,
                    "application/json",
                    &error_body("http", "request head exceeds the configured bound"),
                    &[],
                )
                .as_bytes(),
            );
            return Ok(());
        }
        Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
            metrics().record_server_conn_kill();
            let _ = stream.write_all(
                http_response(
                    408,
                    "application/json",
                    &error_body("http", "request head not received in time"),
                    &[],
                )
                .as_bytes(),
            );
            return Ok(());
        }
        Err(_) => {
            // Torn reads, resets: nothing to say to a gone peer.
            metrics().record_server_conn_kill();
            return Ok(());
        }
    };
    let Some(head) = parse_head(buf) else {
        metrics().record_server_conn_kill();
        let _ = stream.write_all(
            http_response(
                400,
                "application/json",
                &error_body("http", "malformed request line"),
                &[],
            )
            .as_bytes(),
        );
        return Ok(());
    };
    metrics().record_server_request();
    let response = match (head.method.as_str(), head.path.as_str()) {
        ("POST", "/query") => handle_query(&mut stream, shared, &head)?,
        ("GET", "/server.json") => {
            http_response(200, "application/json", &server_json(shared), &[])
        }
        ("GET", "/readyz") => {
            // Readiness folds in the frontend's own accept state: a
            // draining server is not ready even while the service is.
            if shared.accepting.load(Ordering::SeqCst) && shared.svc.ready() {
                http_response(200, "text/plain; charset=utf-8", "ready\n", &[])
            } else {
                http_response(503, "text/plain; charset=utf-8", "not ready\n", &[])
            }
        }
        ("GET", path) => match shared.svc.route(path) {
            Some((status, ctype, body)) => http_response(status, ctype, &body, &[]),
            None => http_response(
                404,
                "application/json",
                &error_body("http", "not found"),
                &[],
            ),
        },
        _ => http_response(
            405,
            "application/json",
            &error_body("http", "method not allowed"),
            &[],
        ),
    };
    if failpoint::check("server::write").is_err() {
        // Injected write fault: the peer sees a dropped connection, the
        // server sees one more killed connection — and nothing else.
        metrics().record_server_conn_kill();
        return Ok(());
    }
    if stream.write_all(response.as_bytes()).is_err() {
        // Stalled or vanished reader; the write timeout already bounded
        // how long this connection could hold its thread.
        metrics().record_server_conn_kill();
        return Ok(());
    }
    let _ = stream.flush();
    Ok(())
}

/// The `POST /query` path: body receive → tenant resolution → session
/// permit → per-request limit overrides → service submit → reply.
/// Returns the rendered response (the caller owns the write so the
/// `server::write` failpoint covers every response uniformly).
fn handle_query(
    stream: &mut TcpStream,
    shared: &Arc<ServerShared>,
    head: &RequestHead,
) -> std::io::Result<String> {
    let err400 = |msg: &str| http_response(400, "application/json", &error_body("http", msg), &[]);
    let Some(len) = head
        .headers
        .get("content-length")
        .and_then(|v| v.parse::<usize>().ok())
    else {
        return Ok(err400("missing or malformed Content-Length"));
    };
    if len > shared.cfg.max_body_bytes {
        return Ok(http_response(
            413,
            "application/json",
            &error_body(
                "http",
                &format!(
                    "body of {len} bytes exceeds the {}-byte bound",
                    shared.cfg.max_body_bytes
                ),
            ),
            &[],
        ));
    }
    let body = match read_body(
        stream,
        head.body_prefix.clone(),
        len,
        shared.cfg.read_timeout,
    ) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
            metrics().record_server_conn_kill();
            return Ok(http_response(
                408,
                "application/json",
                &error_body("http", "request body not received in time"),
                &[],
            ));
        }
        Err(_) => {
            // Torn frame: peer closed mid-body. Nobody to reply to.
            metrics().record_server_conn_kill();
            return Ok(String::new());
        }
    };
    let Ok(query) = String::from_utf8(body) else {
        return Ok(err400("query body is not valid UTF-8"));
    };

    let tenant = head
        .headers
        .get("x-tenant")
        .map(String::as_str)
        .unwrap_or("default");
    // Per-request limit overrides tighten the tenant defaults.
    let mut limits = shared.sessions.limits_for(tenant);
    let mut override_limit =
        |value: Option<&String>, apply: &mut dyn FnMut(&mut Limits, u64)| -> Result<(), String> {
            if let Some(raw) = value {
                let n: u64 = raw
                    .parse()
                    .map_err(|_| format!("malformed numeric header value {raw:?}"))?;
                apply(limits.get_or_insert_with(Limits::default), n);
            }
            Ok(())
        };
    let parsed = override_limit(head.headers.get("x-deadline-ms"), &mut |l, n| {
        l.deadline = Some(Duration::from_millis(n));
    })
    .and(override_limit(
        head.headers.get("x-max-tuples"),
        &mut |l, n| l.max_tuples = Some(n),
    ))
    .and(override_limit(
        head.headers.get("x-max-bytes"),
        &mut |l, n| l.max_bytes = Some(n),
    ));
    if let Err(msg) = parsed {
        return Ok(err400(&msg));
    }

    let reservation = shared.svc.effective_reservation(limits.as_ref());
    let _permit = match shared.sessions.admit(tenant, reservation) {
        Ok(p) => p,
        Err(e) => {
            return Ok(http_response(
                429,
                "application/json",
                &error_body(e.code(), &e.to_string()),
                &[(
                    "Retry-After",
                    e.retry_after_ms().div_ceil(1000).max(1).to_string(),
                )],
            ))
        }
    };

    let options = CompileOptions {
        limits,
        ..CompileOptions::default()
    };
    let req = QueryRequest { query, options };
    let outcome = shared.svc.submit(req).and_then(|t| t.wait());
    Ok(match outcome {
        Ok(out) => http_response(
            200,
            "application/xml; charset=utf-8",
            &out.xml,
            &[
                ("X-Query-Id", out.id.to_string()),
                ("X-Rows", out.rows.to_string()),
            ],
        ),
        Err(e) => engine_error_response(&e),
    })
}

/// The stuck-query watchdog: polls in-flight snapshots and escalates
/// queries past their deadline whose liveness counter has stopped. An
/// armed `watchdog::escalate` failpoint suppresses the escalation for
/// that round (and counts a trip), so chaos runs can prove both the
/// detection and the suppression paths.
fn watchdog_loop(shared: &Arc<ServerShared>) {
    // id → (last seen progress counter, when it last changed)
    let mut seen: HashMap<u64, (u64, Instant)> = HashMap::new();
    let mut escalated: HashSet<u64> = HashSet::new();
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(shared.cfg.watchdog.period);
        if !shared.cfg.watchdog.enabled {
            continue;
        }
        let snapshot = shared.svc.inflight();
        let now = Instant::now();
        let live: HashSet<u64> = snapshot.iter().map(|q| q.id).collect();
        seen.retain(|id, _| live.contains(id));
        escalated.retain(|id| live.contains(id));
        for q in snapshot {
            let entry = seen.entry(q.id).or_insert((q.progress, now));
            if q.progress != entry.0 {
                *entry = (q.progress, now);
                continue;
            }
            let Some(deadline) = q.deadline else {
                continue; // no deadline → nothing to run past
            };
            let grace = shared.cfg.watchdog.grace;
            if q.running_for <= deadline + grace
                || now.duration_since(entry.1) <= grace
                || escalated.contains(&q.id)
            {
                continue;
            }
            if failpoint::check("watchdog::escalate").is_err() {
                continue;
            }
            escalated.insert(q.id);
            q.token.cancel();
            metrics().record_watchdog_escalation();
            // A wedged shape is an engine fault as far as the breaker is
            // concerned: repeat offenders start fast-failing.
            shared.svc.breakers().record(q.shape, true);
            *shared
                .escalations
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .entry(q.shape)
                .or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::session::TenantQuotas;

    fn serve(cfg: ServerConfig) -> (Arc<QueryService>, QueryServer) {
        let svc = Arc::new(QueryService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServiceConfig::default()
        }));
        let server = QueryServer::start(Arc::clone(&svc), "127.0.0.1:0", cfg).unwrap();
        (svc, server)
    }

    /// Minimal raw HTTP client: one request, reads to EOF, returns
    /// `(status, headers, body)`.
    fn roundtrip(addr: SocketAddr, request: &str) -> (u16, HashMap<String, String>, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let _ = stream.write_all(request.as_bytes());
        let mut raw = Vec::new();
        // A server that closes with unread client bytes (header floods)
        // may RST; whatever arrived before that is the response.
        let _ = stream.read_to_end(&mut raw);
        let text = String::from_utf8_lossy(&raw).into_owned();
        let (head, body) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
        let mut lines = head.lines();
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let headers = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        (status, headers, body.to_string())
    }

    fn post_query(addr: SocketAddr, query: &str, extra_headers: &str) -> (u16, String) {
        let req = format!(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n{extra_headers}\r\n{query}",
            query.len()
        );
        let (status, _, body) = roundtrip(addr, &req);
        (status, body)
    }

    #[test]
    fn query_roundtrip_over_tcp() {
        let (_svc, server) = serve(ServerConfig::default());
        let addr = server.addr();
        let req = format!("POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\n1 + 1");
        let (status, headers, body) = roundtrip(addr, &req);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, "2");
        assert!(headers.contains_key("x-query-id"));
        assert_eq!(headers.get("x-rows").map(String::as_str), Some("1"));
    }

    #[test]
    fn health_metrics_and_404_routes() {
        let (_svc, server) = serve(ServerConfig::default());
        let addr = server.addr();
        let get = |path: &str| roundtrip(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"));
        assert_eq!(get("/healthz").0, 200);
        assert_eq!(get("/readyz").0, 200);
        assert_eq!(get("/metrics").0, 200);
        assert!(get("/metrics").2.contains("xqr_server_connections"));
        assert_eq!(get("/server.json").0, 200);
        assert!(get("/server.json").2.contains("\"accepting\":true"));
        assert_eq!(get("/no-such").0, 404);
        // Non-POST on /query and bad methods are mapped, not dropped.
        assert_eq!(get("/query").0, 404);
        let (status, _, _) = roundtrip(addr, "PUT /query HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 405);
    }

    #[test]
    fn errors_map_to_statuses_with_stable_codes() {
        let (_svc, server) = serve(ServerConfig::default());
        let addr = server.addr();
        // Syntax error → 400 (no stable code; the parser's own).
        let (status, body) = post_query(addr, "for $x in", "");
        assert_eq!(status, 400, "{body}");
        // Governor budget trip → 413 with the stable code in the body.
        let (status, body) = post_query(
            addr,
            "for $x in 1 to 100000 where $x > 2 return $x",
            "X-Max-Tuples: 10\r\n",
        );
        assert_eq!(status, 413, "{body}");
        assert!(body.contains(ERR_TUPLES), "{body}");
        // Malformed numeric header → 400 before any admission work.
        let (status, _) = post_query(addr, "1", "X-Deadline-Ms: soon\r\n");
        assert_eq!(status, 400);
        // Missing Content-Length → 400.
        let (status, _, _) = roundtrip(addr, "POST /query HTTP/1.1\r\nHost: x\r\n\r\n1");
        assert_eq!(status, 400);
    }

    #[test]
    fn tenant_rate_quota_maps_to_429_with_retry_after() {
        let cfg = ServerConfig {
            sessions: SessionConfig::default()
                .with_tenant("burst", TenantQuotas::default().with_rate(1, 1)),
            ..ServerConfig::default()
        };
        let (_svc, server) = serve(cfg);
        let addr = server.addr();
        let (status, body) = post_query(addr, "1", "X-Tenant: burst\r\n");
        assert_eq!(status, 200, "{body}");
        let req = format!(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 1\r\nX-Tenant: burst\r\n\r\n1"
        );
        let (status, headers, body) = roundtrip(addr, &req);
        assert_eq!(status, 429, "{body}");
        assert!(body.contains(ERR_TENANT), "{body}");
        assert!(headers.contains_key("retry-after"));
        // Other tenants are unaffected.
        let (status, _) = post_query(addr, "1", "X-Tenant: other\r\n");
        assert_eq!(status, 200);
    }

    #[test]
    fn oversized_body_and_head_are_refused() {
        let cfg = ServerConfig {
            max_body_bytes: 64,
            max_header_bytes: 512,
            ..ServerConfig::default()
        };
        let (_svc, server) = serve(cfg);
        let addr = server.addr();
        // Declared oversized body → 413 without reading it.
        let (status, _, body) = roundtrip(
            addr,
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 100000\r\n\r\n",
        );
        assert_eq!(status, 413, "{body}");
        // Header flood → 431.
        let flood = format!(
            "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Flood: {}\r\n\r\n",
            "a".repeat(2048)
        );
        let (status, _, _) = roundtrip(addr, &flood);
        // Either the 431 landed, or the kernel RST the tail of the
        // flood before the client could read it; both are refusals.
        assert!(status == 431 || status == 0, "status={status}");
        // Whatever happened, the listener survived.
        let (status, _, _) = roundtrip(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);
    }

    #[test]
    fn stop_drains_and_reports() {
        let (svc, mut server) = serve(ServerConfig::default());
        let addr = server.addr();
        let (status, _) = post_query(addr, "1", "");
        assert_eq!(status, 200);
        let report = server.stop(Some(Duration::from_secs(2)));
        assert!(report.conns_drained_in_time);
        assert_eq!(report.service.cancelled, 0);
        assert!(report.service.completed_in_time);
        // The listener is gone and the service sheds with shutdown.
        assert!(
            TcpStream::connect(addr).is_err() || {
                // Some platforms accept then reset; either way no service.
                true
            }
        );
        assert!(svc.submit(QueryRequest::new("1")).is_err());
    }

    #[test]
    fn watchdog_ignores_live_queries() {
        let cfg = ServerConfig {
            watchdog: WatchdogConfig {
                enabled: true,
                period: Duration::from_millis(5),
                grace: Duration::from_millis(50),
            },
            ..ServerConfig::default()
        };
        let (_svc, server) = serve(cfg);
        let addr = server.addr();
        // A query that runs well under its deadline is never escalated.
        let (status, body) = post_query(addr, "sum(1 to 2000)", "X-Deadline-Ms: 10000\r\n");
        assert_eq!(status, 200, "{body}");
        let (total, _) = server.escalations();
        assert_eq!(total, 0);
    }
}
