//! Per-query-shape circuit breakers.
//!
//! A query shape that repeatedly dies with internal errors (caught
//! panics, or pipelined failures whose materialized fallback was also
//! exhausted) is a standing hazard in a multi-tenant service: every
//! resubmission burns a worker slot, a memory reservation, and a full
//! execution before failing the same way. The breaker registry keys a
//! classic closed → open → half-open state machine by the query's
//! *normalized plan hash* (the stable rendering of the rewritten algebra
//! plan, so syntactic variants that compile to the same plan share one
//! breaker; queries that fail before a plan exists fall back to a
//! query-text hash).
//!
//! * **Closed** — failures are counted; `failure_threshold` *consecutive*
//!   internal failures trip the breaker (successes and non-internal
//!   errors reset the count: a budget trip or a dynamic error is the
//!   query's fault, not the engine's).
//! * **Open** — submissions fast-fail with `XQRG0008` (no execution, no
//!   reservation held) until `cooldown` has elapsed.
//! * **Half-open** — the first submission after the cooldown is admitted
//!   as a *probe*; concurrent submissions keep fast-failing while the
//!   probe is in flight. A successful probe closes the breaker; an
//!   internal failure re-opens it for another cooldown.
//!
//! Failures flow in from two directions: the worker records each run's
//! outcome itself, and the network frontend's stuck-query watchdog
//! ([`crate::server`]) records an *escalation* — a query cancelled for
//! running past its deadline without governor progress — as an internal
//! failure too, so a plan shape that repeatedly wedges starts
//! fast-failing even though each wedged run "only" times out.
//!
//! The registry is shared across worker threads behind a mutex; every
//! operation is a short map lookup, far off any per-tuple path.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use xqr_xml::limits::ERR_BREAKER;
use xqr_xml::metrics::metrics;
use xqr_xml::XmlError;

/// Tuning for the per-shape circuit breakers.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive internal failures that trip a closed breaker.
    pub failure_threshold: u32,
    /// How long an open breaker fast-fails before half-opening.
    pub cooldown: Duration,
    /// Master switch; `false` makes every admission pass and nothing is
    /// recorded.
    pub enabled: bool,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(10),
            enabled: true,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Closed,
    Open,
    /// A probe is in flight; everyone else keeps fast-failing.
    HalfOpen,
}

#[derive(Debug)]
struct Shape {
    state: State,
    consecutive_failures: u32,
    opened_at: Instant,
}

/// The outcome of [`CircuitBreakers::admit`] for an admitted submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed (or disabled): normal execution.
    Normal,
    /// Half-open probe: the run's outcome decides the breaker's fate.
    Probe,
}

/// Registry of breakers, keyed by normalized plan-shape hash.
pub struct CircuitBreakers {
    cfg: BreakerConfig,
    shapes: Mutex<HashMap<u64, Shape>>,
}

impl CircuitBreakers {
    pub fn new(cfg: BreakerConfig) -> CircuitBreakers {
        CircuitBreakers {
            cfg,
            shapes: Mutex::new(HashMap::new()),
        }
    }

    /// Gates a submission for `shape`. Fast-fails with `XQRG0008` while
    /// the breaker is open (or a half-open probe is already in flight).
    pub fn admit(&self, shape: u64) -> Result<Admission, XmlError> {
        if !self.cfg.enabled {
            return Ok(Admission::Normal);
        }
        let mut shapes = self.shapes.lock().unwrap_or_else(|p| p.into_inner());
        let Some(s) = shapes.get_mut(&shape) else {
            return Ok(Admission::Normal);
        };
        match s.state {
            State::Closed => Ok(Admission::Normal),
            State::HalfOpen => {
                // A probe whose outcome never came back (worker died mid
                // run) must not wedge the shape half-open forever; after a
                // full extra cooldown another probe may go out.
                if s.opened_at.elapsed() >= self.cfg.cooldown.saturating_mul(2) {
                    s.opened_at = Instant::now();
                    Ok(Admission::Probe)
                } else {
                    Err(self.fast_fail(shape, "probe in flight"))
                }
            }
            State::Open => {
                if s.opened_at.elapsed() >= self.cfg.cooldown {
                    s.state = State::HalfOpen;
                    // From here `opened_at` marks the probe's start (the
                    // stale-probe recovery above measures against it).
                    s.opened_at = Instant::now();
                    Ok(Admission::Probe)
                } else {
                    Err(self.fast_fail(shape, "cooling down"))
                }
            }
        }
    }

    /// Records a run's outcome for `shape`. `internal_failure` is true
    /// only for engine-fault failures (caught panics / exhausted
    /// fallbacks); ordinary dynamic or limit errors count as the breaker's
    /// notion of success.
    pub fn record(&self, shape: u64, internal_failure: bool) {
        if !self.cfg.enabled {
            return;
        }
        let mut shapes = self.shapes.lock().unwrap_or_else(|p| p.into_inner());
        if internal_failure {
            let s = shapes.entry(shape).or_insert(Shape {
                state: State::Closed,
                consecutive_failures: 0,
                opened_at: Instant::now(),
            });
            match s.state {
                State::Closed => {
                    s.consecutive_failures += 1;
                    if s.consecutive_failures >= self.cfg.failure_threshold {
                        s.state = State::Open;
                        s.opened_at = Instant::now();
                        metrics().record_breaker_trip();
                    }
                }
                // A failed probe re-opens for a fresh cooldown. (An Open
                // record can only come from a submission admitted before
                // the trip; re-arm the cooldown there too.)
                State::HalfOpen | State::Open => {
                    s.state = State::Open;
                    s.opened_at = Instant::now();
                    metrics().record_breaker_trip();
                }
            }
        } else {
            // Success (or a non-internal error): close and forget. The
            // entry is removed so the hot path for healthy shapes stays a
            // missing-key lookup.
            shapes.remove(&shape);
        }
    }

    /// The current state of `shape`'s breaker: `"closed"` (including
    /// never-seen and disabled), `"open"`, or `"half-open"`. Read-only —
    /// does not advance the open → half-open transition.
    pub fn state_of(&self, shape: u64) -> &'static str {
        if !self.cfg.enabled {
            return "closed";
        }
        match self
            .shapes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&shape)
            .map(|s| s.state)
        {
            None | Some(State::Closed) => "closed",
            Some(State::Open) => "open",
            Some(State::HalfOpen) => "half-open",
        }
    }

    /// The current number of open or half-open breakers (diagnostics).
    pub fn open_count(&self) -> usize {
        self.shapes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .filter(|s| s.state != State::Closed)
            .count()
    }

    fn fast_fail(&self, shape: u64, why: &str) -> XmlError {
        metrics().record_breaker_fast_fail();
        XmlError::new(
            ERR_BREAKER,
            format!(
                "circuit breaker open for plan shape {shape:016x} ({why}); \
                 retry after the cooldown"
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakers(threshold: u32, cooldown: Duration) -> CircuitBreakers {
        CircuitBreakers::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown,
            enabled: true,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_and_fast_fails() {
        let b = breakers(2, Duration::from_secs(60));
        assert_eq!(b.admit(1).unwrap(), Admission::Normal);
        b.record(1, true);
        assert_eq!(b.admit(1).unwrap(), Admission::Normal);
        b.record(1, true);
        let err = b.admit(1).unwrap_err();
        assert_eq!(err.code, ERR_BREAKER);
        assert_eq!(b.open_count(), 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = breakers(2, Duration::from_secs(60));
        b.record(7, true);
        b.record(7, false); // resets
        b.record(7, true);
        assert_eq!(b.admit(7).unwrap(), Admission::Normal, "not tripped");
    }

    #[test]
    fn cooldown_half_opens_and_probe_outcome_decides() {
        let b = breakers(1, Duration::from_millis(5));
        b.record(3, true); // trips immediately (threshold 1)
        assert!(b.admit(3).is_err(), "open: fast fail");
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(b.admit(3).unwrap(), Admission::Probe, "half-open probe");
        assert!(b.admit(3).is_err(), "second caller fails while probing");
        b.record(3, true); // probe failed: re-open
        assert!(b.admit(3).is_err(), "re-opened");
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(b.admit(3).unwrap(), Admission::Probe);
        b.record(3, false); // probe succeeded: closed
        assert_eq!(b.admit(3).unwrap(), Admission::Normal);
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn disabled_breakers_never_interfere() {
        let b = CircuitBreakers::new(BreakerConfig {
            enabled: false,
            failure_threshold: 1,
            cooldown: Duration::from_secs(60),
        });
        b.record(9, true);
        b.record(9, true);
        assert_eq!(b.admit(9).unwrap(), Admission::Normal);
    }

    #[test]
    fn shapes_are_independent() {
        let b = breakers(1, Duration::from_secs(60));
        b.record(1, true);
        assert!(b.admit(1).is_err());
        assert_eq!(b.admit(2).unwrap(), Admission::Normal);
    }
}
