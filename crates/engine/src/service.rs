//! Admission-controlled concurrent query service.
//!
//! The engine core is deliberately single-threaded — node stores, tuple
//! tables, and the governor are `Rc`-based — so concurrency lives one
//! layer up: [`QueryService`] owns a pool of worker threads, each with a
//! **private** [`Engine`] (its own parsed documents, its own arenas), and
//! the only state crossing threads is plain data: query text, compile
//! options, raw document bytes (the shared [`DocTextCache`]),
//! cancellation flags, reply channels, and the service control plane.
//!
//! A submission passes three gates before it runs:
//!
//! 1. **Admission** ([`QueryService::submit`]) — the service holds a
//!    bounded FIFO queue and an aggregate *memory-reservation* budget.
//!    Each query reserves `Limits::max_bytes` (or
//!    [`ServiceConfig::default_reservation`]); a full queue, a
//!    reservation that can never fit, or a deadline that an EWMA-based
//!    wait estimate says will expire in the queue are **shed**
//!    immediately with `XQRG0007` — predictable rejection instead of
//!    queue collapse.
//! 2. **Dispatch** — a worker takes the queue head once its reservation
//!    fits under the in-flight total (strict FIFO: the head blocks
//!    rather than being bypassed, which is safe because reservations
//!    larger than the whole budget were already shed). The query's
//!    deadline is *rebased* by its queue wait, documents are synced from
//!    the shared text cache (loading through the transient-retry policy
//!    at the `doc::load` failpoint), and the `service::dispatch`
//!    failpoint can inject faults for chaos tests.
//! 3. **Circuit breakers** ([`CircuitBreakers`]) — a plan shape that
//!    repeatedly dies with internal errors fast-fails with `XQRG0008`
//!    until a cooldown half-opens it. Prepare-time panics are keyed by a
//!    query-text hash; execution panics by the normalized plan hash.
//!
//! Workers run each query behind their own `catch_unwind` (in addition
//! to the engine's internal isolation) so a worker thread survives any
//! single query's failure; results are serialized to XML *inside* the
//! worker (sequences hold `Rc` nodes and must not cross threads) and
//! delivered through the ticket's channel.
//!
//! Shedding, admission, queue depth, breaker trips, and cache traffic
//! are all metered in the process [`metrics`] registry; per-query
//! `queue`/`admit` trace spans flow through any tracer installed by
//! [`ServiceConfig::configure_engine`].
//!
//! Every submission additionally carries a **query id** through its whole
//! lifecycle: the service's [`crate::observe`] layer turns each finished
//! query into a [`QueryTimeline`] wide event (per-phase durations, plan
//! hash, reservation, cache outcome, error code) feeding per-phase latency
//! histograms, a per-plan-shape statistics table, a bounded journal, and a
//! slow-query log. [`QueryService::observe`] snapshots all of it;
//! [`QueryService::serve_metrics`] serves it over HTTP (Prometheus text at
//! `/metrics`, process counters at `/metrics.json`, the full report at
//! `/observe.json`).

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::net::ToSocketAddrs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xqr_core::TraceEvent;
use xqr_xml::limits::{ERR_DEADLINE, ERR_OVERLOADED};
use xqr_xml::metrics::{metrics, ShedReason};
use xqr_xml::retry::RetryPolicy;
use xqr_xml::{CancellationToken, Governor, Limits};

use crate::breaker::{BreakerConfig, CircuitBreakers};
use crate::doccache::DocTextCache;
use crate::observe::{
    self, MetricsServer, ObserveConfig, ObserveReport, QueryTimeline, ServiceObservability,
};
use crate::plancache::PlanCacheConfig;
use crate::{classify, panic_message, BudgetKind, CompileOptions, Engine, EngineError, Phase};

/// Per-worker engine setup hook (see [`ServiceConfig::configure_engine`]).
pub type EngineHook = Arc<dyn Fn(&mut Engine) + Send + Sync>;

/// Tuning for a [`QueryService`].
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads (= concurrency slots).
    pub workers: usize,
    /// Bounded admission queue; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Aggregate memory-reservation budget across in-flight queries.
    pub memory_budget: u64,
    /// Reservation for queries without an explicit `Limits::max_bytes`.
    pub default_reservation: u64,
    /// Byte budget of the shared raw-document-text cache.
    pub doc_cache_budget: u64,
    /// Service-wide default [`Limits`] for requests that do not carry
    /// their own (`CompileOptions::limits` wins).
    pub default_limits: Option<Limits>,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Transient-retry policy for document loading.
    pub retry: RetryPolicy,
    /// Per-worker engine hook, run once when each worker builds its
    /// private [`Engine`] — install tracers, schemas, or external
    /// variable bindings here.
    pub configure_engine: Option<EngineHook>,
    /// Per-worker plan-cache tuning (each worker caches compiled plans
    /// privately; the shapes seen are shared through a `Send` registry
    /// of canonical hashes).
    pub plan_cache: PlanCacheConfig,
    /// Lifecycle-observability tuning (journal size, slow-query
    /// threshold, sampling); on by default.
    pub observe: ObserveConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            memory_budget: 256 << 20,
            default_reservation: 16 << 20,
            doc_cache_budget: 64 << 20,
            default_limits: None,
            breaker: BreakerConfig::default(),
            retry: RetryPolicy::default(),
            configure_engine: None,
            plan_cache: PlanCacheConfig::default(),
            observe: ObserveConfig::default(),
        }
    }
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("memory_budget", &self.memory_budget)
            .field("default_reservation", &self.default_reservation)
            .field("doc_cache_budget", &self.doc_cache_budget)
            .field("observe", &self.observe)
            .finish_non_exhaustive()
    }
}

/// One query submission.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    pub query: String,
    pub options: CompileOptions,
}

impl QueryRequest {
    pub fn new(query: impl Into<String>) -> QueryRequest {
        QueryRequest {
            query: query.into(),
            options: CompileOptions::default(),
        }
    }

    pub fn with_options(mut self, options: CompileOptions) -> QueryRequest {
        self.options = options;
        self
    }
}

/// A successful run's result, serialized inside the worker (node trees
/// are thread-local and cannot cross the channel).
#[derive(Clone, Debug)]
pub struct ServiceOutput {
    /// The query id assigned at admission (same as the ticket's); joins
    /// this result to the service's lifecycle journal and to profile
    /// output.
    pub id: u64,
    /// The serialized result sequence.
    pub xml: String,
    /// Items in the result sequence.
    pub rows: usize,
    /// Time spent queued before a worker picked the query up.
    pub queue_nanos: u64,
    /// Wall time of the worker-side execution (prepare + run + serialize).
    pub run_nanos: u64,
}

/// Handle to an admitted submission.
#[derive(Debug)]
pub struct QueryTicket {
    id: u64,
    token: CancellationToken,
    rx: Receiver<Result<ServiceOutput, EngineError>>,
}

impl QueryTicket {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The cancellation handle: callable from any thread; the query
    /// fails with `XQRG0002` at its next cooperative check (including
    /// while still queued).
    pub fn token(&self) -> CancellationToken {
        self.token.clone()
    }

    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Blocks until the query finishes (or is shed/cancelled/failed).
    pub fn wait(self) -> Result<ServiceOutput, EngineError> {
        match self.rx.recv() {
            Ok(reply) => reply,
            // Workers reply through `catch_unwind`, so a dropped sender
            // means the whole service was torn down abnormally.
            Err(_) => Err(EngineError::Internal {
                phase: Phase::Execute,
                plan_context: "query service".to_string(),
                message: "worker dropped the reply channel".to_string(),
            }),
        }
    }

    /// Non-blocking poll; `None` while the query is still in flight.
    pub fn try_wait(&self) -> Option<Result<ServiceOutput, EngineError>> {
        self.rx.try_recv().ok()
    }
}

struct Job {
    id: u64,
    query: String,
    options: CompileOptions,
    /// Effective limits (request-level, else service default) captured
    /// at admission; the deadline is rebased by the queue wait at
    /// dispatch.
    limits: Option<Limits>,
    reservation: u64,
    token: CancellationToken,
    reply: Sender<Result<ServiceOutput, EngineError>>,
    enqueued: Instant,
    /// Admission-decision duration, carried into the lifecycle timeline.
    admit_nanos: u64,
}

/// One running query, as seen by [`QueryService::inflight`]. Everything
/// here is plain data or `Send` handles: the snapshot is safe to poll
/// from any thread (the server's stuck-query watchdog does).
#[derive(Clone, Debug)]
pub struct InflightQuery {
    pub id: u64,
    /// The breaker shape key: the canonical plan hash when the shared
    /// registry already knows this query's shape, else the text hash.
    pub shape: u64,
    /// The query's cancellation handle (escalation path).
    pub token: CancellationToken,
    /// Wall time since the worker picked the query up.
    pub running_for: Duration,
    /// The queue-rebased deadline, when the query carries one.
    pub deadline: Option<Duration>,
    /// The governor's liveness counter at snapshot time; it advances on
    /// every governed clock consultation, so a stalled value means the
    /// query is not reaching cooperative checkpoints.
    pub progress: u64,
}

/// Outcome of [`QueryService::drain`].
#[derive(Clone, Copy, Debug)]
pub struct DrainReport {
    /// Queued-but-undispatched queries shed with `XQRG0007`.
    pub drained_queued: usize,
    /// In-flight queries still running at the drain deadline, cancelled
    /// through their tokens.
    pub cancelled: usize,
    /// True when every in-flight query finished inside the deadline
    /// without needing cancellation.
    pub completed_in_time: bool,
}

/// Worker-side registration of a running query (see
/// [`QueryService::inflight`]).
struct InflightEntry {
    shape: u64,
    token: CancellationToken,
    started: Instant,
    deadline: Option<Duration>,
}

struct State {
    queue: VecDeque<Job>,
    /// Sum of in-flight (dispatched, not yet finished) reservations.
    reserved: u64,
    /// Workers currently executing a query.
    running: usize,
    /// Exponentially weighted moving average of worker-side run time,
    /// feeding the admission-time wait estimate. 0 = no history yet.
    ewma_run_nanos: u64,
    shutdown: bool,
    next_id: u64,
}

/// The cross-worker view of the plan cache. Compiled plans are `Rc`-based
/// and live in each worker's private [`Engine`] cache; the only plan state
/// that crosses threads is plain data — text key → canonical plan hash.
/// The registry serves two purposes:
///
/// * **miss accounting**: the first worker anywhere to compile a shape
///   records a `plan_cache_miss`; later workers compiling the same shape
///   into their private caches record `plan_cache_rehydrations` instead,
///   keeping the reported miss count O(distinct shapes), not
///   O(shapes × workers);
/// * **breaker keying**: once any worker has published a shape's
///   canonical hash, dispatches of that shape consult the *plan-keyed*
///   circuit breaker before compiling — a tripped plan fast-fails even
///   on a worker that never compiled it.
pub(crate) struct SharedPlanRegistry {
    map: Mutex<HashMap<u64, u64>>,
}

impl SharedPlanRegistry {
    fn new() -> SharedPlanRegistry {
        SharedPlanRegistry {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Canonical hash for a text key, if any worker published it.
    fn lookup(&self, text_key: u64) -> Option<u64> {
        self.map
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&text_key)
            .copied()
    }

    /// Publishes a freshly compiled shape; `true` when this is the first
    /// sighting of the text key anywhere in the service.
    fn register(&self, text_key: u64, canonical: u64) -> bool {
        self.map
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(text_key, canonical)
            .is_none()
    }

    fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

struct Shared {
    workers: usize,
    queue_capacity: usize,
    memory_budget: u64,
    default_reservation: u64,
    default_limits: Option<Limits>,
    retry: RetryPolicy,
    breakers: CircuitBreakers,
    cache: DocTextCache,
    plans: SharedPlanRegistry,
    plan_cache: PlanCacheConfig,
    /// Queries currently executing on workers, keyed by id; polled by
    /// the watchdog, drained by [`QueryService::drain`].
    inflight: Mutex<HashMap<u64, InflightEntry>>,
    state: Mutex<State>,
    /// Signalled on new work, freed reservations, and shutdown.
    work_ready: Condvar,
    configure_engine: Option<EngineHook>,
    /// The lifecycle-observability accumulator (timelines, histograms,
    /// journal, per-shape stats).
    observe: ServiceObservability,
}

/// The concurrent query service. See the module docs for the admission /
/// dispatch / breaker pipeline.
pub struct QueryService {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl QueryService {
    pub fn new(cfg: ServiceConfig) -> QueryService {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            workers,
            queue_capacity: cfg.queue_capacity.max(1),
            memory_budget: cfg.memory_budget,
            default_reservation: cfg.default_reservation.min(cfg.memory_budget).max(1),
            default_limits: cfg.default_limits,
            retry: cfg.retry,
            breakers: CircuitBreakers::new(cfg.breaker),
            cache: DocTextCache::new(cfg.doc_cache_budget),
            plans: SharedPlanRegistry::new(),
            plan_cache: cfg.plan_cache,
            inflight: Mutex::new(HashMap::new()),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                reserved: 0,
                running: 0,
                ewma_run_nanos: 0,
                shutdown: false,
                next_id: 1,
            }),
            work_ready: Condvar::new(),
            configure_engine: cfg.configure_engine,
            observe: ServiceObservability::new(cfg.observe),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("xqr-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        QueryService { shared, handles }
    }

    /// Binds a document for all workers (new version; each worker
    /// re-parses into its private store on its next dispatch).
    pub fn bind_document(&self, uri: &str, xml: impl Into<String>) {
        self.shared.cache.insert(uri, xml.into());
    }

    /// Registers a loader-backed document URI (see [`Self::set_loader`]).
    pub fn register_document(&self, uri: &str) {
        self.shared.cache.register(uri);
    }

    /// Installs the document source loader used for registered URIs and
    /// for re-fetching evicted texts. Flaky loaders are retried under
    /// the service's [`RetryPolicy`] at the `doc::load` failpoint site.
    pub fn set_loader(&self, f: impl Fn(&str) -> std::io::Result<String> + Send + Sync + 'static) {
        self.shared.cache.set_loader(f);
    }

    /// Submits a query. Returns a ticket on admission; sheds with
    /// `XQRG0007` ([`EngineError::LimitExceeded`], phase `admit`) when
    /// the service is overloaded.
    pub fn submit(&self, req: QueryRequest) -> Result<QueryTicket, EngineError> {
        xqr_xml::failpoint::check("service::admit").map_err(|e| classify(e, Phase::Admit))?;
        let t_admit = Instant::now();
        let limits = req
            .options
            .limits
            .clone()
            .or_else(|| self.shared.default_limits.clone());
        let reservation = limits
            .as_ref()
            .and_then(|l| l.max_bytes)
            .unwrap_or(self.shared.default_reservation);
        let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.shutdown {
            return Err(self.shed(
                ShedReason::Shutdown,
                t_admit,
                "service is shutting down".into(),
            ));
        }
        if reservation > self.shared.memory_budget {
            return Err(self.shed(
                ShedReason::Reservation,
                t_admit,
                format!(
                    "memory reservation {reservation} exceeds the service budget {}",
                    self.shared.memory_budget
                ),
            ));
        }
        if st.queue.len() >= self.shared.queue_capacity {
            return Err(self.shed(
                ShedReason::QueueFull,
                t_admit,
                format!("admission queue full ({} queued)", st.queue.len()),
            ));
        }
        // Deadline-aware shedding: estimate this query's queue wait from
        // the run-time EWMA and the backlog; a deadline that would expire
        // while waiting is refused now, not after burning a slot.
        if let (Some(deadline), true) = (
            limits.as_ref().and_then(|l| l.deadline),
            st.ewma_run_nanos > 0,
        ) {
            let backlog = st.queue.len() as u64 + u64::from(st.running >= self.shared.workers);
            let wait_estimate =
                Duration::from_nanos((backlog * st.ewma_run_nanos) / self.shared.workers as u64);
            if wait_estimate >= deadline {
                return Err(self.shed(
                    ShedReason::Deadline,
                    t_admit,
                    format!(
                        "estimated queue wait {wait_estimate:?} exceeds the query \
                         deadline {deadline:?}"
                    ),
                ));
            }
        }
        let id = st.next_id;
        st.next_id += 1;
        let token = CancellationToken::new();
        let (tx, rx) = mpsc::channel();
        let admit_nanos = t_admit.elapsed().as_nanos() as u64;
        st.queue.push_back(Job {
            id,
            query: req.query,
            options: req.options,
            limits,
            reservation,
            token: token.clone(),
            reply: tx,
            enqueued: Instant::now(),
            admit_nanos,
        });
        metrics().record_service_admitted();
        metrics().record_queue_enter();
        drop(st);
        self.shared.observe.record_admitted();
        self.shared.observe.record_admit_decision(admit_nanos);
        self.shared.work_ready.notify_one();
        Ok(QueryTicket { id, token, rx })
    }

    /// Convenience: submit and block for the result.
    pub fn run(&self, req: QueryRequest) -> Result<ServiceOutput, EngineError> {
        self.submit(req)?.wait()
    }

    /// Queries waiting for a worker (diagnostics / tests).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .queue
            .len()
    }

    /// Sum of in-flight memory reservations (diagnostics / tests).
    pub fn reserved_bytes(&self) -> u64 {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .reserved
    }

    /// Open or half-open circuit breakers (diagnostics / tests).
    pub fn open_breakers(&self) -> usize {
        self.shared.breakers.open_count()
    }

    /// Resident bytes in the shared document text cache.
    pub fn doc_cache_bytes(&self) -> u64 {
        self.shared.cache.resident_bytes()
    }

    /// Distinct plan shapes the shared registry has seen (diagnostics /
    /// tests); service-wide `plan_cache_misses` is bounded by this, not
    /// by shapes × workers.
    pub fn known_plan_shapes(&self) -> usize {
        self.shared.plans.len()
    }

    /// Builds the overload rejection for one shed submission, counting it
    /// per reason (process-wide and per-service) and recording the
    /// admission-decision duration — overload leaves a latency trace too.
    fn shed(&self, reason: ShedReason, t_admit: Instant, message: String) -> EngineError {
        metrics().record_service_shed(reason);
        self.shared.observe.record_shed(reason);
        self.shared
            .observe
            .record_admit_decision(t_admit.elapsed().as_nanos() as u64);
        EngineError::LimitExceeded {
            code: ERR_OVERLOADED,
            phase: Phase::Admit,
            budget: BudgetKind::Overloaded,
            message,
        }
    }

    /// A frozen view of the lifecycle-observability layer: per-phase
    /// latency quantiles, the per-plan-shape statistics table (annotated
    /// with each shape's breaker state), the recent-query journal, the
    /// slow-query log, and point-in-time service gauges.
    pub fn observe(&self) -> ObserveReport {
        observe_of(&self.shared)
    }

    /// [`QueryService::observe`] as JSON.
    pub fn observe_json(&self) -> String {
        self.observe().to_json()
    }

    /// Prometheus text exposition: the process-wide counter registry
    /// (including the query-duration histogram in cumulative bucket form)
    /// followed by this service's series (shed reasons, per-phase and
    /// per-shape latency summaries).
    pub fn prometheus_text(&self) -> String {
        prometheus_of(&self.shared)
    }

    /// Liveness/readiness gate shared by `/readyz` on both listeners:
    /// the service accepts work (not shutting down) *and* the admission
    /// queue is below its shed threshold, so an admitted probe query
    /// would not be rejected outright.
    pub fn ready(&self) -> bool {
        let st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        !st.shutdown && st.queue.len() < self.shared.queue_capacity
    }

    /// Snapshot of the queries currently executing on workers: id, the
    /// breaker shape key, a clone of the cancellation token, wall time
    /// since dispatch, the (queue-rebased) deadline, and the governor's
    /// liveness counter. The stuck-query watchdog polls this.
    pub fn inflight(&self) -> Vec<InflightQuery> {
        self.shared
            .inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(&id, e)| InflightQuery {
                id,
                shape: e.shape,
                token: e.token.clone(),
                running_for: e.started.elapsed(),
                deadline: e.deadline,
                progress: e.token.progress(),
            })
            .collect()
    }

    /// The per-shape circuit breakers (crate-internal: the server's
    /// watchdog records escalations as breaker failures).
    pub(crate) fn breakers(&self) -> &CircuitBreakers {
        &self.shared.breakers
    }

    /// The memory reservation [`Self::submit`] would charge for a query
    /// running under `limits` — the same arithmetic, exposed so the
    /// network frontend can charge tenant reservation shares
    /// consistently with service admission.
    pub(crate) fn effective_reservation(&self, limits: Option<&Limits>) -> u64 {
        limits
            .and_then(|l| l.max_bytes)
            .unwrap_or(self.shared.default_reservation)
    }

    /// Drains the service for shutdown. Three stages, in order:
    ///
    /// 1. **Stop admitting.** The shutdown flag flips; new submissions
    ///    shed with `ShedReason::Shutdown`.
    /// 2. **Shed the queue.** Every queued-but-undispatched query is
    ///    failed with `XQRG0007`, counted as a `shutdown` shed, and
    ///    journaled with a `dispatched: false` timeline.
    /// 3. **Drain in-flight.** Running queries get up to `deadline` to
    ///    finish; survivors are cancelled through their tokens (failing
    ///    with `XQRG0002`, journaled like any other error) and given the
    ///    same grace again to unwind.
    ///
    /// Idempotent; [`Drop`] performs the same teardown with an
    /// effectively unbounded in-flight wait (it must join the workers).
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        let drained_queued = shed_queue_for_shutdown(&self.shared);
        self.shared.work_ready.notify_all();
        let t0 = Instant::now();
        let completed_before = |shared: &Shared| {
            let st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
            st.running == 0
        };
        while !completed_before(&self.shared) && t0.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Cancel the survivors; they unwind at their next governed tick.
        let survivors = self.inflight();
        for q in &survivors {
            q.token.cancel();
        }
        let grace = Instant::now();
        while !completed_before(&self.shared) && grace.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        DrainReport {
            drained_queued,
            cancelled: survivors.len(),
            completed_in_time: survivors.is_empty(),
        }
    }

    /// Starts a minimal blocking HTTP scrape listener on `addr` serving:
    ///
    /// * `GET /metrics` — Prometheus text exposition,
    /// * `GET /metrics.json` — the process-wide counter registry as JSON,
    /// * `GET /observe.json` — the full [`ObserveReport`] as JSON,
    /// * `GET /healthz` — 200 while the listener is up,
    /// * `GET /readyz` — 200 when [`QueryService::ready`], else 503.
    ///
    /// Bind to port 0 to pick a free port ([`MetricsServer::addr`] has
    /// the bound address). The listener stops when the returned handle is
    /// dropped; it holds the service's shared state alive (but not the
    /// workers), so it may outlive the `QueryService` itself.
    pub fn serve_metrics(&self, addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
        let shared = Arc::clone(&self.shared);
        observe::serve(addr, move |path| route_shared(&shared, path))
    }

    /// Routes the scrape/health GET endpoints (`/metrics`,
    /// `/metrics.json`, `/observe.json`, `/healthz`, `/readyz`) for this
    /// service; shared by [`Self::serve_metrics`] and the full query
    /// frontend ([`crate::server::QueryServer`]) so the two surfaces
    /// never drift.
    pub(crate) fn route(&self, path: &str) -> Option<(u16, &'static str, String)> {
        route_shared(&self.shared, path)
    }
}

/// Routes the scrape/health endpoints for a shared service handle.
fn route_shared(shared: &Shared, path: &str) -> Option<(u16, &'static str, String)> {
    const TEXT: &str = "text/plain; charset=utf-8";
    match path {
        "/metrics" => Some((
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_of(shared),
        )),
        "/metrics.json" => Some((200, "application/json", metrics().snapshot().dump_json())),
        "/observe.json" | "/observe" => {
            Some((200, "application/json", observe_of(shared).to_json()))
        }
        "/healthz" => Some((200, TEXT, "ok\n".to_string())),
        "/readyz" => {
            let (shutdown, depth, cap) = {
                let st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
                (st.shutdown, st.queue.len(), shared.queue_capacity)
            };
            if !shutdown && depth < cap {
                Some((200, TEXT, "ready\n".to_string()))
            } else {
                Some((
                    503,
                    TEXT,
                    format!("not ready (shutdown={shutdown}, queue {depth}/{cap})\n"),
                ))
            }
        }
        _ => None,
    }
}

/// Builds the observe report for a shared service handle: the layer's own
/// counters plus the service gauges and per-shape breaker states.
fn observe_of(shared: &Shared) -> ObserveReport {
    let mut r = shared.observe.report();
    {
        let st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
        r.queue_depth = st.queue.len();
        r.reserved_bytes = st.reserved;
    }
    r.doc_cache_bytes = shared.cache.resident_bytes();
    r.known_plan_shapes = shared.plans.len();
    r.open_breakers = shared.breakers.open_count();
    for s in &mut r.shapes {
        s.breaker = shared.breakers.state_of(s.plan_hash);
    }
    r
}

fn prometheus_of(shared: &Shared) -> String {
    let mut s = metrics().snapshot().prometheus_text();
    s.push_str(&observe_of(shared).prometheus_text());
    s
}

/// Flips the shutdown flag and sheds every queued-but-undispatched job:
/// `XQRG0007` reply, a `shutdown` shed in both the process registry and
/// the service accumulator, and a `dispatched: false` timeline (the
/// query was admitted, waited, and never ran — so it counts as admitted
/// *and* failed *and* shutdown-shed, keeping the accounting identity
/// `completed_ok + completed_err == admitted` intact). Returns the
/// number of jobs shed. Shared by [`QueryService::drain`] and [`Drop`];
/// idempotent — an already-empty queue sheds nothing.
fn shed_queue_for_shutdown(shared: &Shared) -> usize {
    let mut st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
    st.shutdown = true;
    let mut drained = 0usize;
    while let Some(job) = st.queue.pop_front() {
        drained += 1;
        metrics().record_queue_leave();
        metrics().record_service_shed(ShedReason::Shutdown);
        shared.observe.record_shed(ShedReason::Shutdown);
        let err = EngineError::LimitExceeded {
            code: ERR_OVERLOADED,
            phase: Phase::Admit,
            budget: BudgetKind::Overloaded,
            message: "service shut down before the query was dispatched".to_string(),
        };
        if shared.observe.enabled() {
            let queue_nanos = job.enqueued.elapsed().as_nanos() as u64;
            shared.observe.complete(QueryTimeline {
                id: job.id,
                query: shared.observe.clip_query(&job.query),
                plan_hash: None,
                reservation: job.reservation,
                admit_nanos: job.admit_nanos,
                queue_nanos,
                prepare_nanos: 0,
                execute_nanos: 0,
                serialize_nanos: 0,
                total_nanos: job.admit_nanos + queue_nanos,
                rows: 0,
                cache: "none",
                error: Some(ERR_OVERLOADED.to_string()),
                spilled: false,
                fell_back: false,
                dispatched: false,
                finished_unix_ms: observe::unix_ms(),
            });
        }
        let _ = job.reply.send(Err(err));
    }
    drained
}

impl Drop for QueryService {
    /// Graceful teardown: in-flight queries finish, queued queries are
    /// shed through the shutdown drain path (`XQRG0007` with a
    /// `shutdown` shed timeline — same as [`QueryService::drain`]),
    /// workers are joined.
    fn drop(&mut self) {
        shed_queue_for_shutdown(&self.shared);
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut engine = Engine::new();
    engine.set_plan_cache_config(shared.plan_cache.clone());
    if let Some(f) = &shared.configure_engine {
        f(&mut engine);
    }
    // Versions of the cache texts this worker has parsed into its
    // private document store.
    let mut doc_versions: HashMap<String, u64> = HashMap::new();
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if st.shutdown {
                    return;
                }
                // Strict FIFO with memory-fit gating: only the head is
                // eligible, and only once its reservation fits. Safe from
                // permanent starvation because reservations exceeding the
                // whole budget are shed at submit.
                let head_fits = st
                    .queue
                    .front()
                    .is_some_and(|j| st.reserved + j.reservation <= shared.memory_budget);
                if head_fits {
                    let job = st.queue.pop_front().expect("head exists");
                    st.reserved += job.reservation;
                    st.running += 1;
                    metrics().record_queue_leave();
                    break job;
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        let reservation = job.reservation;
        let run_nanos = execute_job(shared, &mut engine, &mut doc_versions, job);
        let mut st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
        st.reserved = st.reserved.saturating_sub(reservation);
        st.running -= 1;
        if let Some(n) = run_nanos {
            st.ewma_run_nanos = if st.ewma_run_nanos == 0 {
                n
            } else {
                (st.ewma_run_nanos * 7 + n) / 8
            };
        }
        drop(st);
        // A freed reservation may unblock the queue head for every
        // waiting worker, not just one.
        shared.work_ready.notify_all();
    }
}

/// Per-run observability state, filled in by the execution closure via
/// `Cell`s so the values survive the `catch_unwind` edge on every exit
/// path (including panics).
#[derive(Default)]
struct RunMeta {
    prepare_nanos: Cell<u64>,
    execute_nanos: Cell<u64>,
    serialize_nanos: Cell<u64>,
    plan_hash: Cell<Option<u64>>,
    rows: Cell<u64>,
    spilled: Cell<bool>,
    fell_back: Cell<bool>,
}

/// Completes the lifecycle timeline for one job picked up by a worker.
/// `worker_nanos` counts from dispatch; `dispatched` is false when the
/// query never reached its execution closure (deadline expired in queue,
/// cancelled while queued, document sync failure, breaker fast-fail).
#[allow(clippy::too_many_arguments)]
fn finish_timeline(
    shared: &Shared,
    job: &Job,
    queue_nanos: u64,
    worker_nanos: u64,
    meta: &RunMeta,
    cache: &'static str,
    error: Option<&EngineError>,
    dispatched: bool,
) {
    if !shared.observe.enabled() {
        return;
    }
    shared.observe.complete(QueryTimeline {
        id: job.id,
        query: shared.observe.clip_query(&job.query),
        plan_hash: meta.plan_hash.get(),
        reservation: job.reservation,
        admit_nanos: job.admit_nanos,
        queue_nanos,
        prepare_nanos: meta.prepare_nanos.get(),
        execute_nanos: meta.execute_nanos.get(),
        serialize_nanos: meta.serialize_nanos.get(),
        total_nanos: job.admit_nanos + queue_nanos + worker_nanos,
        rows: meta.rows.get(),
        cache,
        error: error.map(|e| e.code().unwrap_or("internal").to_string()),
        spilled: meta.spilled.get(),
        fell_back: meta.fell_back.get(),
        dispatched,
        finished_unix_ms: observe::unix_ms(),
    });
}

/// Runs one dispatched job and replies on its channel. Returns the
/// worker-side wall time when the query actually executed (feeding the
/// admission EWMA); `None` for pre-execution rejections.
fn execute_job(
    shared: &Shared,
    engine: &mut Engine,
    doc_versions: &mut HashMap<String, u64>,
    job: Job,
) -> Option<u64> {
    let queue_nanos = job.enqueued.elapsed().as_nanos() as u64;
    let t_dispatch = Instant::now();
    let meta = RunMeta::default();
    // Pre-execution rejection: reply + timeline in one place.
    let reject = |e: EngineError| {
        finish_timeline(
            shared,
            &job,
            queue_nanos,
            t_dispatch.elapsed().as_nanos() as u64,
            &meta,
            "none",
            Some(&e),
            false,
        );
        let _ = job.reply.send(Err(e));
    };
    engine.trace(TraceEvent::Span {
        phase: "queue",
        nanos: queue_nanos,
        detail: format!("query {} waited for a worker", job.id),
    });

    // Rebase the deadline by the time already spent queued: a 100 ms
    // deadline submitted 80 ms ago has 20 ms left, not 100.
    let mut limits = job.limits.clone();
    if let Some(l) = &mut limits {
        if let Some(d) = l.deadline {
            match d.checked_sub(Duration::from_nanos(queue_nanos)) {
                Some(rem) if !rem.is_zero() => l.deadline = Some(rem),
                _ => {
                    reject(EngineError::LimitExceeded {
                        code: ERR_DEADLINE,
                        phase: Phase::Admit,
                        budget: BudgetKind::Deadline,
                        message: format!("deadline {d:?} expired while queued ({queue_nanos} ns)"),
                    });
                    return None;
                }
            }
        }
    }
    let mut options = job.options.clone();
    options.limits = limits.clone();
    let effective = limits.clone().unwrap_or_default();
    let gov = Governor::new(&effective, job.token.clone());

    // Cancelled while queued (or deadline raced to zero just now).
    if let Err(e) = gov.check_time() {
        reject(classify(e, Phase::Admit));
        return None;
    }
    engine.trace(TraceEvent::Span {
        phase: "admit",
        nanos: 0,
        detail: format!(
            "query {} dispatched; reservation={} bytes",
            job.id, job.reservation
        ),
    });

    // The breaker/watchdog shape key: the canonical plan hash when the
    // shared registry already knows this text key's plan, else the
    // query-text hash (computed up front so the in-flight registration
    // below covers document sync too — loader stalls are watchable).
    let text_key = crate::text_cache_key(&job.query, &options);
    let text_shape = text_key;
    let known_shape = shared.plans.lookup(text_key);

    // Register with the watchdog-visible in-flight table for the whole
    // worker-side lifetime; the guard removes the entry on every exit
    // path, including panics unwinding past `catch_unwind` below.
    shared
        .inflight
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(
            job.id,
            InflightEntry {
                shape: known_shape.unwrap_or(text_shape),
                token: job.token.clone(),
                started: t_dispatch,
                deadline: limits.as_ref().and_then(|l| l.deadline),
            },
        );
    struct InflightGuard<'a> {
        shared: &'a Shared,
        id: u64,
    }
    impl Drop for InflightGuard<'_> {
        fn drop(&mut self) {
            self.shared
                .inflight
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .remove(&self.id);
        }
    }
    let _inflight = InflightGuard { shared, id: job.id };

    // Sync this worker's private document store with the shared text
    // cache: (re)parse any text whose version moved, loading evicted or
    // registered texts through the retry policy under this query's
    // governor (so a cancel or deadline aborts the backoff).
    for uri in shared.cache.uris() {
        match shared.cache.ensure(&uri, &gov, &shared.retry) {
            Ok((version, text)) => {
                if doc_versions.get(&uri) != Some(&version) {
                    match engine.bind_document(&uri, &text) {
                        Ok(()) => {
                            doc_versions.insert(uri.clone(), version);
                        }
                        Err(e) => {
                            reject(e);
                            return None;
                        }
                    }
                }
            }
            Err(e) => {
                reject(classify(e, Phase::Admit));
                return None;
            }
        }
    }

    if let Err(e) = xqr_xml::failpoint::check("service::dispatch") {
        reject(classify(e, Phase::Execute));
        return None;
    }

    // Breaker pre-check: by *canonical plan hash* when the shared
    // registry already knows this text key's plan (so a tripped plan
    // shape fast-fails before any worker pays a compile), else by the
    // query-text hash — the fallback key that catches prepare-time
    // failures, which happen before a plan (and its canonical hash)
    // exists.
    if let Err(e) = shared.breakers.admit(known_shape.unwrap_or(text_shape)) {
        meta.plan_hash.set(known_shape);
        reject(classify(e, Phase::Admit));
        return None;
    }

    let t0 = Instant::now();
    // The run-time breaker key, published by the closure once the plan
    // exists so that a panic unwinding past the closure is still charged
    // to the right shape (not the text shape, whose count every
    // successful prepare resets).
    let run_shape = Cell::new(known_shape.unwrap_or(text_shape));
    // Plan-cache outcome for the timeline, set once preparation resolves.
    let cache_outcome = Cell::new("none");
    // Belt and braces: the engine isolates panics itself, but the worker
    // thread must survive even a panic outside that boundary (prepare
    // glue, serialization). The reply is sent *after* the unwind edge.
    let outcome = catch_unwind(AssertUnwindSafe(
        || -> Result<(String, usize), (Option<u64>, EngineError)> {
            let t_prep = Instant::now();
            let (prepared, local_hit) = engine
                .prepare_cached_outcome(&job.query, &options)
                .map_err(|e| (Some(text_shape), e))?;
            meta.prepare_nanos.set(t_prep.elapsed().as_nanos() as u64);
            shared.breakers.record(text_shape, false);
            // Cache traffic accounting through the shared registry: a
            // true miss is the first sighting of the shape *anywhere* in
            // the service; a worker-local miss on a registered shape is
            // a re-hydration (each worker compiles each shape once), so
            // `plan_cache_misses` stays O(distinct shapes).
            // The run-time breaker key: the canonical plan hash, so
            // syntactic variants normalizing to the same plan share one
            // breaker. NoAlgebra has no plan; the text shape stands in.
            let shape = prepared.canonical_hash().unwrap_or(text_shape);
            if local_hit {
                metrics().record_plan_cache_hit();
                cache_outcome.set("hit");
            } else if known_shape.is_some() || !shared.plans.register(text_key, shape) {
                metrics().record_plan_cache_rehydration();
                cache_outcome.set("rehydrated");
            } else {
                metrics().record_plan_cache_miss();
                cache_outcome.set("miss");
            }
            run_shape.set(shape);
            meta.plan_hash.set(Some(shape));
            // Profiles recorded by this run carry the query id, joining
            // EXPLAIN ANALYZE output to the lifecycle journal.
            prepared.set_query_id(job.id);
            if shape != text_shape && known_shape != Some(shape) {
                if let Err(e) = shared.breakers.admit(shape) {
                    return Err((None, classify(e, Phase::Admit)));
                }
            }
            let t_exec = Instant::now();
            let run = prepared.run_cancellable(engine, job.token.clone());
            meta.execute_nanos.set(t_exec.elapsed().as_nanos() as u64);
            meta.spilled.set(prepared.last_run_spilled());
            meta.fell_back.set(prepared.last_run_fell_back());
            let seq = run.map_err(|e| (Some(shape), e))?;
            let t_ser = Instant::now();
            let xml = xqr_xml::serialize_sequence(&seq);
            meta.serialize_nanos.set(t_ser.elapsed().as_nanos() as u64);
            meta.rows.set(seq.len() as u64);
            shared.breakers.record(shape, false);
            Ok((xml, seq.len()))
        },
    ));
    let run_nanos = t0.elapsed().as_nanos() as u64;
    let reply = match outcome {
        Ok(Ok((xml, rows))) => Ok(ServiceOutput {
            id: job.id,
            xml,
            rows,
            queue_nanos,
            run_nanos,
        }),
        Ok(Err((record_shape, e))) => {
            // Only engine-fault failures feed the breaker; budget trips
            // and dynamic errors are the query's own problem. A `None`
            // shape marks a breaker fast-fail (no outcome to record).
            if let Some(shape) = record_shape {
                shared
                    .breakers
                    .record(shape, matches!(e, EngineError::Internal { .. }));
            }
            Err(e)
        }
        Err(p) => {
            shared.breakers.record(run_shape.get(), true);
            Err(EngineError::Internal {
                phase: Phase::Execute,
                plan_context: "service worker".to_string(),
                message: panic_message(p),
            })
        }
    };
    finish_timeline(
        shared,
        &job,
        queue_nanos,
        t_dispatch.elapsed().as_nanos() as u64,
        &meta,
        cache_outcome.get(),
        reply.as_ref().err(),
        true,
    );
    let _ = job.reply.send(reply);
    Some(run_nanos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xml::limits::{ERR_CANCELLED as CANCELLED, ERR_DEADLINE as DEADLINE};

    fn small_service(workers: usize, queue: usize) -> QueryService {
        QueryService::new(ServiceConfig {
            workers,
            queue_capacity: queue,
            ..ServiceConfig::default()
        })
    }

    /// Blocks the single worker deterministically: the worker's document
    /// sync stalls in the loader until a permit is sent. Returns the
    /// permit sender.
    fn block_worker_on_doc(svc: &QueryService) -> Sender<()> {
        let (permit_tx, permit_rx) = mpsc::channel::<()>();
        let permit_rx = Mutex::new(permit_rx);
        svc.register_document("gate.xml");
        svc.set_loader(move |_| {
            let _ = permit_rx.lock().unwrap().recv();
            Ok("<gate/>".to_string())
        });
        permit_tx
    }

    fn spin_until(deadline: Duration, mut cond: impl FnMut() -> bool) {
        let t0 = Instant::now();
        while !cond() {
            assert!(t0.elapsed() < deadline, "condition never became true");
            std::thread::yield_now();
        }
    }

    #[test]
    fn roundtrip_with_shared_documents() {
        let svc = small_service(2, 8);
        svc.bind_document("cat.xml", "<items><item id='1'/><item id='2'/></items>");
        let out = svc
            .run(QueryRequest::new("count(doc('cat.xml')//item)"))
            .unwrap();
        assert_eq!(out.xml, "2");
        assert_eq!(out.rows, 1);
        // Rebinding bumps the version; workers re-parse on next dispatch.
        svc.bind_document("cat.xml", "<items><item/></items>");
        let out = svc
            .run(QueryRequest::new("count(doc('cat.xml')//item)"))
            .unwrap();
        assert_eq!(out.xml, "1");
    }

    #[test]
    fn many_submissions_one_worker_stay_fifo_correct() {
        let svc = small_service(1, 64);
        let tickets: Vec<_> = (0..20)
            .map(|i| svc.submit(QueryRequest::new(format!("{i} + 1"))).unwrap())
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().unwrap().xml, (i + 1).to_string());
        }
    }

    #[test]
    fn queue_overflow_is_shed_with_xqrg0007() {
        let svc = small_service(1, 1);
        let release = block_worker_on_doc(&svc);
        let t1 = svc.submit(QueryRequest::new("1")).unwrap();
        // Wait for the worker to take t1 off the queue, then fill the
        // single queue slot.
        spin_until(Duration::from_secs(10), || svc.queue_depth() == 0);
        let t2 = svc.submit(QueryRequest::new("2")).unwrap();
        let shed = svc.submit(QueryRequest::new("3")).unwrap_err();
        match shed {
            EngineError::LimitExceeded {
                code,
                phase,
                budget,
                ..
            } => {
                assert_eq!(code, ERR_OVERLOADED);
                assert_eq!(phase, Phase::Admit);
                assert_eq!(budget, BudgetKind::Overloaded);
            }
            other => panic!("expected overload shed, got {other}"),
        }
        release.send(()).unwrap();
        assert_eq!(t1.wait().unwrap().xml, "1");
        assert_eq!(t2.wait().unwrap().xml, "2");
    }

    #[test]
    fn oversized_reservation_is_shed_immediately() {
        let svc = QueryService::new(ServiceConfig {
            workers: 1,
            memory_budget: 1 << 20,
            ..ServiceConfig::default()
        });
        let req = QueryRequest::new("1").with_options(
            CompileOptions::default().limits(Limits::default().with_max_bytes(2 << 20)),
        );
        let err = svc.submit(req).unwrap_err();
        assert_eq!(err.code(), Some(ERR_OVERLOADED));
    }

    #[test]
    fn deadline_expired_in_queue_fails_at_admit() {
        let svc = small_service(1, 8);
        let release = block_worker_on_doc(&svc);
        let t1 = svc.submit(QueryRequest::new("1")).unwrap();
        spin_until(Duration::from_secs(10), || svc.queue_depth() == 0);
        let req = QueryRequest::new("2").with_options(
            CompileOptions::default()
                .limits(Limits::default().with_deadline(Duration::from_millis(5))),
        );
        let t2 = svc.submit(req).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        release.send(()).unwrap();
        assert_eq!(t1.wait().unwrap().xml, "1");
        let err = t2.wait().unwrap_err();
        assert_eq!(err.code(), Some(DEADLINE), "{err}");
        match err {
            EngineError::LimitExceeded { phase, .. } => assert_eq!(phase, Phase::Admit),
            other => panic!("expected limit error, got {other}"),
        }
    }

    #[test]
    fn cancelling_a_queued_query_fails_with_xqrg0002() {
        let svc = small_service(1, 8);
        let release = block_worker_on_doc(&svc);
        let t1 = svc.submit(QueryRequest::new("1")).unwrap();
        spin_until(Duration::from_secs(10), || svc.queue_depth() == 0);
        let t2 = svc.submit(QueryRequest::new("2")).unwrap();
        t2.cancel();
        release.send(()).unwrap();
        assert_eq!(t1.wait().unwrap().xml, "1");
        assert_eq!(t2.wait().unwrap_err().code(), Some(CANCELLED));
    }

    #[test]
    fn shutdown_fails_queued_queries_and_joins_workers() {
        let svc = small_service(1, 8);
        let release = block_worker_on_doc(&svc);
        let t1 = svc.submit(QueryRequest::new("1")).unwrap();
        spin_until(Duration::from_secs(10), || svc.queue_depth() == 0);
        let t2 = svc.submit(QueryRequest::new("2")).unwrap();
        // The worker is stalled on t1's document load, so t2 is still
        // queued when the drop below drains it. The helper releases the
        // worker only after t2's drain reply proves the drain happened,
        // then the join inside drop can complete.
        let helper = std::thread::spawn(move || {
            let err = t2.wait().unwrap_err();
            release.send(()).unwrap();
            err
        });
        drop(svc); // t1 in flight: completes; t2 queued: drained
        assert_eq!(t1.wait().unwrap().xml, "1");
        // Drop goes through the shutdown drain path: queued queries shed
        // with the overload code (reason `shutdown`), not a bare cancel.
        let err = helper.join().unwrap();
        assert_eq!(err.code(), Some(ERR_OVERLOADED));
        assert!(err.to_string().contains("shut down"), "{err}");
    }

    #[test]
    fn drain_sheds_queue_and_cancels_survivors() {
        let svc = small_service(1, 8);
        let release = block_worker_on_doc(&svc);
        let t1 = svc.submit(QueryRequest::new("1")).unwrap();
        spin_until(Duration::from_secs(10), || svc.queue_depth() == 0);
        let t2 = svc.submit(QueryRequest::new("2")).unwrap();
        assert!(!svc.inflight().is_empty(), "t1 should be in flight");
        // Short deadline: t1 is stalled in the loader (which ignores the
        // token), so drain cancels it and reports the survivor.
        let report = svc.drain(Duration::from_millis(50));
        assert_eq!(report.drained_queued, 1);
        assert_eq!(report.cancelled, 1);
        assert!(!report.completed_in_time);
        assert_eq!(t2.wait().unwrap_err().code(), Some(ERR_OVERLOADED));
        release.send(()).unwrap();
        // The cancelled survivor unwinds at its next governed check; a
        // trivial query racing past every checkpoint may still finish.
        match t1.wait() {
            Err(e) => assert_eq!(e.code(), Some(CANCELLED)),
            Ok(out) => assert_eq!(out.xml, "1"),
        }
        // New submissions shed with the shutdown reason.
        let err = svc.submit(QueryRequest::new("3")).unwrap_err();
        assert_eq!(err.code(), Some(ERR_OVERLOADED));
    }

    #[test]
    fn inflight_snapshot_tracks_progress_and_empties() {
        let svc = small_service(1, 8);
        let release = block_worker_on_doc(&svc);
        let t1 = svc.submit(QueryRequest::new("sum(1 to 50)")).unwrap();
        spin_until(Duration::from_secs(10), || !svc.inflight().is_empty());
        let snap = svc.inflight();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].id, t1.id());
        release.send(()).unwrap();
        assert_eq!(t1.wait().unwrap().xml, "1275");
        spin_until(Duration::from_secs(10), || svc.inflight().is_empty());
    }

    #[test]
    fn reservations_are_released_after_each_query() {
        let svc = small_service(2, 8);
        for _ in 0..4 {
            svc.run(QueryRequest::new("sum(1 to 100)")).unwrap();
        }
        // The reply is sent before the worker returns its reservation,
        // so give the bookkeeping a beat.
        spin_until(Duration::from_secs(10), || svc.reserved_bytes() == 0);
        assert_eq!(svc.queue_depth(), 0);
    }

    #[test]
    fn syntax_and_dynamic_errors_pass_through() {
        let svc = small_service(1, 8);
        assert!(matches!(
            svc.run(QueryRequest::new("for $x in")),
            Err(EngineError::Syntax(_))
        ));
        assert!(matches!(
            svc.run(QueryRequest::new("exactly-one(())")),
            Err(EngineError::Dynamic(_))
        ));
        // The worker survived both failures.
        assert_eq!(svc.run(QueryRequest::new("1 + 1")).unwrap().xml, "2");
    }

    #[test]
    fn plan_registry_counts_shapes_not_submissions() {
        let svc = small_service(2, 32);
        for _ in 0..4 {
            assert_eq!(
                svc.run(QueryRequest::new(
                    "for $x in (1,2,3) where $x > 1 return $x"
                ))
                .unwrap()
                .xml,
                "2 3"
            );
            assert_eq!(svc.run(QueryRequest::new("1 + 1")).unwrap().xml, "2");
        }
        // 8 submissions, 2 shapes: the registry is keyed by shape.
        assert_eq!(svc.known_plan_shapes(), 2);
    }

    #[test]
    fn disabled_plan_cache_still_serves_queries() {
        let svc = QueryService::new(ServiceConfig {
            workers: 1,
            plan_cache: PlanCacheConfig {
                enabled: false,
                ..PlanCacheConfig::default()
            },
            ..ServiceConfig::default()
        });
        for _ in 0..3 {
            assert_eq!(svc.run(QueryRequest::new("2 * 3")).unwrap().xml, "6");
        }
    }

    #[test]
    fn per_worker_engine_hook_runs() {
        let svc = QueryService::new(ServiceConfig {
            workers: 1,
            configure_engine: Some(Arc::new(|e: &mut Engine| {
                e.bind_variable("n", xqr_xml::Sequence::integers([21]));
            })),
            ..ServiceConfig::default()
        });
        let out = svc
            .run(QueryRequest::new("declare variable $n external; $n * 2"))
            .unwrap();
        assert_eq!(out.xml, "42");
    }
}
