//! # xqr-clio — the Clio schema-mapping substrate
//!
//! Clio (Popa et al., VLDB 2002) generates XQuery transformations between
//! schemas; the paper's Table 5 evaluates three generated mapping queries
//! over a ~250 KB DBLP-style document:
//!
//! * **N2** — doubly nested FLWOR, 1 join (the Figure 1 query shape);
//! * **N3** — triple-nested FLWOR, 3-way join;
//! * **N4** — quadruple-nested FLWOR, 6-way join.
//!
//! Clio itself is closed-source; [`mapping_query`] reproduces the *shape*
//! of its generated queries (nested blocks where level *k* joins back to
//! the source on equalities with every outer level — k·(k−1)/2 join
//! predicates in total), and [`generate_dblp`] provides the source data.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DBLP-style generator configuration.
#[derive(Clone, Debug)]
pub struct DblpOptions {
    pub publications: usize,
    pub authors: usize,
    pub seed: u64,
}

impl DblpOptions {
    /// Approximately `bytes`-sized documents (~210 bytes/publication).
    pub fn for_bytes(bytes: usize) -> DblpOptions {
        let publications = (bytes / 210).max(10);
        DblpOptions {
            publications,
            authors: (publications / 4).max(4),
            seed: 42,
        }
    }
}

const VENUES: &[&str] = &["ICDE", "VLDB", "SIGMOD", "PODS", "EDBT", "CIKM", "WWW"];

const TITLE_WORDS: &[&str] = &[
    "Efficient",
    "Algebraic",
    "Query",
    "Processing",
    "Streams",
    "Indexing",
    "XML",
    "Semantics",
    "Optimization",
    "Adaptive",
    "Parallel",
    "Views",
    "Schema",
    "Mappings",
    "Joins",
    "Storage",
];

/// Generates a DBLP-like document:
/// `dblp/inproceedings(author+, title, pages, year, booktitle, url, cdrom?)`.
pub fn generate_dblp(options: &DblpOptions) -> String {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut out = String::with_capacity(options.publications * 220 + 64);
    out.push_str("<dblp>");
    for i in 0..options.publications {
        let n_authors = rng.gen_range(1..=3);
        out.push_str("<inproceedings>");
        for _ in 0..n_authors {
            let a = rng.gen_range(0..options.authors);
            let _ = write!(out, "<author>Author {a}</author>");
        }
        let t1 = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
        let t2 = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
        let t3 = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
        let year = rng.gen_range(1998..=2005);
        let venue = VENUES[rng.gen_range(0..VENUES.len())];
        let p1 = rng.gen_range(1..500);
        let _ = write!(
            out,
            "<title>{t1} {t2} {t3} {i}</title><pages>{p1}-{}</pages>\
             <year>{year}</year><booktitle>{venue}</booktitle>\
             <url>db/conf/{venue}/{i}.html</url>",
            p1 + rng.gen_range(5..20)
        );
        if rng.gen_bool(0.3) {
            let _ = write!(out, "<cdrom>CD/{venue}/{i}</cdrom>");
        }
        out.push_str("</inproceedings>");
    }
    out.push_str("</dblp>");
    out
}

/// Builds the Clio-style mapping query with `levels` nested FLWOR blocks
/// (2 ⇒ N2, 3 ⇒ N3, 4 ⇒ N4). Level *k* (1-based, k ≥ 2) carries `k − 1`
/// equality predicates joining back to every outer level, so the query
/// contains `levels·(levels−1)/2` joins in total: 1, 3, and 6 — matching
/// the paper's description of N2/N3/N4.
pub fn mapping_query(levels: usize) -> String {
    assert!((2..=5).contains(&levels), "supported nesting: 2..=5");
    let mut q = String::from("let $doc0 := doc('dblp.xml') return <authorDB>{ ");
    q.push_str(&nest(1, levels));
    q.push_str(" }</authorDB>");
    q
}

/// Join keys available at each level; level k joins on key[j] with outer
/// level j for every j < k.
const KEYS: &[&str] = &[
    "author/text()",
    "year/text()",
    "booktitle/text()",
    "pages/text()",
];

fn nest(level: usize, max: usize) -> String {
    let x = format!("$x{level}");
    let mut s = format!("clio:deep-distinct(for {x} in $doc0/dblp/inproceedings ");
    if level > 1 {
        let preds: Vec<String> = (1..level)
            .map(|outer| format!("{x}/{key} = $x{outer}/{key}", key = KEYS[outer - 1]))
            .collect();
        let _ = write!(s, "where {} ", preds.join(" and "));
    }
    let _ = write!(
        s,
        "return <entry{level}><key>{{ {x}/{} }}</key><title{level}>{{ {x}/title/text() }}</title{level}>",
        KEYS[level - 1]
    );
    if level < max {
        let _ = write!(s, "<nested>{{ {} }}</nested>", nest(level + 1, max));
    }
    let _ = write!(s, "</entry{level}>)");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xml::parse::{parse_document, ParseOptions};

    #[test]
    fn dblp_parses_and_sizes() {
        let xml = generate_dblp(&DblpOptions::for_bytes(50_000));
        let ratio = xml.len() as f64 / 50_000.0;
        assert!((0.6..1.6).contains(&ratio), "got {}", xml.len());
        let doc = parse_document(&xml, &ParseOptions::default()).unwrap();
        let dblp = &doc.root().children()[0];
        assert_eq!(dblp.name().unwrap().local_part(), "dblp");
        assert!(dblp.children().len() >= 10);
        let pub0 = &dblp.children()[0];
        let names: Vec<_> = pub0
            .children()
            .iter()
            .map(|c| c.name().unwrap().local_part().to_string())
            .collect();
        assert!(names.contains(&"author".to_string()));
        assert!(names.contains(&"year".to_string()));
    }

    #[test]
    fn dblp_deterministic() {
        let o = DblpOptions {
            publications: 20,
            authors: 5,
            seed: 7,
        };
        assert_eq!(generate_dblp(&o), generate_dblp(&o));
    }

    #[test]
    fn mapping_queries_have_expected_join_counts() {
        // N2: 1 equality; N3: 3; N4: 6 (k·(k−1)/2).
        for (levels, joins) in [(2, 1), (3, 3), (4, 6)] {
            let q = mapping_query(levels);
            let eq_count = q.matches(" = $x").count();
            assert_eq!(eq_count, joins, "N{levels}: {q}");
            assert_eq!(q.matches("for $x").count(), levels);
            assert!(q.contains("clio:deep-distinct"));
        }
    }

    #[test]
    #[should_panic]
    fn unsupported_nesting_panics() {
        mapping_query(1);
    }
}
