//! Surface abstract syntax for XQuery 1.0.

use xqr_types::SequenceType;
use xqr_xml::axes::{Axis, NodeTest};
use xqr_xml::{AtomicValue, QName};

/// A query module: prolog declarations plus the query body.
#[derive(Clone, Debug)]
pub struct Module {
    pub functions: Vec<FunctionDecl>,
    pub variables: Vec<VariableDecl>,
    pub body: Expr,
}

/// `declare function local:f($x as T, …) as T { body }`.
#[derive(Clone, Debug)]
pub struct FunctionDecl {
    pub name: QName,
    pub params: Vec<(QName, Option<SequenceType>)>,
    pub return_type: Option<SequenceType>,
    pub body: Expr,
}

/// `declare variable $x := expr;`, `declare variable $x external;`, or
/// `declare variable $x external := default;`.
#[derive(Clone, Debug)]
pub struct VariableDecl {
    pub name: QName,
    pub as_type: Option<SequenceType>,
    /// `true` for `external` declarations: the value is supplied (or the
    /// default below is used) at execution time, not at compile time.
    pub external: bool,
    /// The initializer for ordinary declarations; the optional default
    /// value for external ones (`external := expr`, XQuery 3.0 style).
    pub value: Option<Expr>,
}

/// Binary operators (surface level; normalization lowers them to calls,
/// conditionals and quantifiers).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Or,
    And,
    // General comparisons.
    GenEq,
    GenNe,
    GenLt,
    GenLe,
    GenGt,
    GenGe,
    // Value comparisons.
    ValEq,
    ValNe,
    ValLt,
    ValLe,
    ValGt,
    ValGe,
    // Node comparisons.
    Is,
    Before,
    After,
    // Arithmetic.
    Add,
    Sub,
    Mul,
    Div,
    IDiv,
    Mod,
    // Sequence operators.
    Range,
    Union,
    Intersect,
    Except,
}

impl BinOp {
    /// Does this operator produce a boolean (used to skip EBV wrapping)?
    pub fn is_boolean(self) -> bool {
        use BinOp::*;
        matches!(
            self,
            Or | And
                | GenEq
                | GenNe
                | GenLt
                | GenLe
                | GenGt
                | GenGe
                | ValEq
                | ValNe
                | ValLt
                | ValLe
                | ValGt
                | ValGe
                | Is
                | Before
                | After
        )
    }
}

/// FLWOR clauses (surface).
#[derive(Clone, Debug)]
pub enum FlworClause {
    For {
        var: QName,
        as_type: Option<SequenceType>,
        at: Option<QName>,
        expr: Expr,
    },
    Let {
        var: QName,
        as_type: Option<SequenceType>,
        expr: Expr,
    },
    Where(Expr),
    OrderBy {
        stable: bool,
        specs: Vec<OrderSpec>,
    },
}

/// One `order by` key.
#[derive(Clone, Debug)]
pub struct OrderSpec {
    pub key: Expr,
    pub descending: bool,
    pub empty_least: bool,
}

/// One `case $v as T return E` clause of a typeswitch.
#[derive(Clone, Debug)]
pub struct CaseClause {
    pub var: Option<QName>,
    pub seq_type: SequenceType,
    pub body: Expr,
}

/// Content of a direct element constructor.
#[derive(Clone, Debug)]
pub enum DirectContent {
    Text(String),
    Enclosed(Expr),
    Child(Expr),
}

/// Attribute value template parts.
#[derive(Clone, Debug)]
pub enum AttrValuePart {
    Text(String),
    Enclosed(Expr),
}

/// Validation mode keyword.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValidationModeAst {
    Lax,
    Strict,
}

/// Surface expressions.
#[derive(Clone, Debug)]
pub enum Expr {
    Literal(AtomicValue),
    VarRef(QName),
    ContextItem,
    /// `(e1, e2, …)` / `()`.
    Sequence(Vec<Expr>),
    Flwor {
        clauses: Vec<FlworClause>,
        return_expr: Box<Expr>,
    },
    Quantified {
        every: bool,
        bindings: Vec<(QName, Option<SequenceType>, Expr)>,
        satisfies: Box<Expr>,
    },
    Typeswitch {
        input: Box<Expr>,
        cases: Vec<CaseClause>,
        default_var: Option<QName>,
        default: Box<Expr>,
    },
    If {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    UnaryMinus(Box<Expr>),
    /// `fn:root(self::node()) treated as document-node()` — a leading `/`.
    Root,
    /// `E1/E2` (each `//` is desugared by the parser).
    PathSlash(Box<Expr>, Box<Expr>),
    /// An axis step with predicates, relative to the context item.
    AxisStep {
        axis: Axis,
        test: NodeTest,
        predicates: Vec<Expr>,
    },
    /// A primary expression filtered by predicates: `E[p1][p2]`.
    Filter {
        primary: Box<Expr>,
        predicates: Vec<Expr>,
    },
    FunctionCall {
        name: QName,
        args: Vec<Expr>,
    },
    DirectElement {
        name: QName,
        attributes: Vec<(QName, Vec<AttrValuePart>)>,
        content: Vec<DirectContent>,
    },
    CompElement {
        name: Result<QName, Box<Expr>>,
        content: Option<Box<Expr>>,
    },
    CompAttribute {
        name: Result<QName, Box<Expr>>,
        content: Option<Box<Expr>>,
    },
    CompText(Box<Expr>),
    CompComment(Box<Expr>),
    CompPi {
        target: String,
        content: Option<Box<Expr>>,
    },
    CompDocument(Box<Expr>),
    InstanceOf(Box<Expr>, SequenceType),
    TreatAs(Box<Expr>, SequenceType),
    CastableAs(Box<Expr>, xqr_xml::AtomicType, bool),
    CastAs(Box<Expr>, xqr_xml::AtomicType, bool),
    Validate(ValidationModeAst, Box<Expr>),
}

impl Expr {
    /// Convenience: an empty sequence literal `()`.
    pub fn empty() -> Expr {
        Expr::Sequence(Vec::new())
    }
}
