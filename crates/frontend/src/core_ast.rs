//! The XQuery Core, as modified by the paper (Section 4).
//!
//! Differences from the W3C Formal Semantics Core, following the paper:
//!
//! * **FLWOR blocks are preserved** instead of being broken into single
//!   `for`/`let` expressions — this keeps tuple streams visible so that the
//!   compilation rules of Fig. 2 can introduce tuple operators, and gives
//!   `order by` a meaningful semantics.
//! * **Path steps normalize into complete FLWOR blocks** with an `at`
//!   clause and a `where` clause for positional predicates (instead of
//!   for + if-then-else chains).
//! * **Typeswitch uses one common variable** bound once to the operand.
//!
//! General comparisons, arithmetic, and set operators are lowered to
//! `fs:`/`op:` function calls whose implementations (in `xqr-runtime`)
//! carry the full atomization/convert-operand semantics.

use xqr_types::{SequenceType, ValidationMode};
use xqr_xml::axes::{Axis, NodeTest};
use xqr_xml::{AtomicType, AtomicValue, QName};

/// A normalized module.
#[derive(Clone, Debug)]
pub struct CoreModule {
    pub functions: Vec<CoreFunction>,
    /// Global variables in declaration order.
    pub variables: Vec<CoreGlobal>,
    pub body: CoreExpr,
}

/// A normalized global variable declaration.
///
/// External globals are the module's *parameters*: their value is bound
/// by the caller at execution time (falling back to `value` as a default
/// when present), checked against `as_type` when one was declared. For
/// ordinary globals `value` is the initializer (always `Some`).
#[derive(Clone, Debug)]
pub struct CoreGlobal {
    pub name: QName,
    pub as_type: Option<SequenceType>,
    pub external: bool,
    pub value: Option<CoreExpr>,
}

/// A normalized user function.
#[derive(Clone, Debug)]
pub struct CoreFunction {
    pub name: QName,
    pub params: Vec<(QName, Option<SequenceType>)>,
    pub return_type: Option<SequenceType>,
    pub body: CoreExpr,
}

/// FLWOR clauses in the Core.
#[derive(Clone, Debug)]
pub enum CoreClause {
    For {
        var: QName,
        at: Option<QName>,
        as_type: Option<SequenceType>,
        expr: CoreExpr,
    },
    Let {
        var: QName,
        as_type: Option<SequenceType>,
        expr: CoreExpr,
    },
    Where(CoreExpr),
    OrderBy(Vec<CoreOrderSpec>),
}

/// One order-by key in the Core.
#[derive(Clone, Debug)]
pub struct CoreOrderSpec {
    pub key: CoreExpr,
    pub descending: bool,
    pub empty_least: bool,
}

/// Core expressions.
#[derive(Clone, Debug)]
pub enum CoreExpr {
    Literal(AtomicValue),
    Var(QName),
    /// `(e1, e2)` — n-ary for convenience; `Empty` is the 0-ary case.
    Seq(Vec<CoreExpr>),
    Empty,
    Flwor {
        clauses: Vec<CoreClause>,
        ret: Box<CoreExpr>,
    },
    Quantified {
        every: bool,
        clauses: Vec<CoreClause>,
        satisfies: Box<CoreExpr>,
    },
    Typeswitch {
        /// The paper's common variable: `typeswitch x := (Expr) CaseClauses`.
        var: QName,
        input: Box<CoreExpr>,
        cases: Vec<(SequenceType, CoreExpr)>,
        default: Box<CoreExpr>,
    },
    If {
        cond: Box<CoreExpr>,
        then: Box<CoreExpr>,
        els: Box<CoreExpr>,
    },
    /// A single axis step applied set-at-a-time: compiles to `TreeJoin`.
    Step {
        input: Box<CoreExpr>,
        axis: Axis,
        test: NodeTest,
    },
    /// Built-in (`fn:`/`op:`/`fs:`) or user function call.
    Call {
        name: QName,
        args: Vec<CoreExpr>,
    },
    ElementCtor {
        name: Result<QName, Box<CoreExpr>>,
        content: Box<CoreExpr>,
    },
    AttributeCtor {
        name: Result<QName, Box<CoreExpr>>,
        content: Box<CoreExpr>,
    },
    TextCtor(Box<CoreExpr>),
    CommentCtor(Box<CoreExpr>),
    PiCtor {
        target: String,
        content: Box<CoreExpr>,
    },
    DocumentCtor(Box<CoreExpr>),
    Cast {
        expr: Box<CoreExpr>,
        ty: AtomicType,
        optional: bool,
    },
    Castable {
        expr: Box<CoreExpr>,
        ty: AtomicType,
        optional: bool,
    },
    /// `treat as` / the `as` clauses of FLWOR — the algebra's `TypeAssert`.
    TypeAssert {
        expr: Box<CoreExpr>,
        st: SequenceType,
    },
    /// `instance of` — the algebra's `TypeMatches`.
    InstanceOf {
        expr: Box<CoreExpr>,
        st: SequenceType,
    },
    Validate {
        mode: ValidationMode,
        expr: Box<CoreExpr>,
    },
}

impl CoreExpr {
    pub fn call(name: &str, args: Vec<CoreExpr>) -> CoreExpr {
        CoreExpr::Call {
            name: QName::local(name),
            args,
        }
    }

    pub fn var(name: &str) -> CoreExpr {
        CoreExpr::Var(QName::local(name))
    }

    pub fn boolean(b: bool) -> CoreExpr {
        CoreExpr::Literal(AtomicValue::Boolean(b))
    }

    pub fn integer(i: i64) -> CoreExpr {
        CoreExpr::Literal(AtomicValue::Integer(i))
    }

    /// Is this expression statically boolean-valued (so EBV wrapping can be
    /// skipped)? Conservative.
    pub fn is_statically_boolean(&self) -> bool {
        match self {
            CoreExpr::Literal(AtomicValue::Boolean(_)) => true,
            CoreExpr::Quantified { .. } => true,
            CoreExpr::InstanceOf { .. } | CoreExpr::Castable { .. } => true,
            CoreExpr::If { then, els, .. } => {
                then.is_statically_boolean() && els.is_statically_boolean()
            }
            CoreExpr::Call { name, .. } => {
                matches!(
                    name.local_part(),
                    "boolean"
                        | "true"
                        | "false"
                        | "not"
                        | "exists"
                        | "empty"
                        | "contains"
                        | "starts-with"
                        | "ends-with"
                        | "deep-equal"
                        | "lang"
                ) || name.local_part().starts_with("fs:general-")
                    || name.local_part().starts_with("fs:value-")
                    || name.local_part().starts_with("fs:predicate-test")
                    || matches!(
                        name.local_part(),
                        "op:is-same-node" | "op:node-before" | "op:node-after"
                    )
            }
            _ => false,
        }
    }

    /// Is this expression statically numeric-valued (used to turn numeric
    /// predicates into position tests)? Conservative.
    pub fn is_statically_numeric(&self) -> bool {
        match self {
            CoreExpr::Literal(v) => v.type_of().is_numeric(),
            CoreExpr::Call { name, .. } => {
                name.local_part().starts_with("fs:numeric-")
                    || matches!(
                        name.local_part(),
                        "count"
                            | "sum"
                            | "avg"
                            | "round"
                            | "floor"
                            | "ceiling"
                            | "abs"
                            | "string-length"
                    )
            }
            CoreExpr::Var(q) => matches!(q.local_part(), "fs:position" | "fs:last"),
            _ => false,
        }
    }
}

/// Walks every sub-expression of `e` (including `e`), immutably.
pub fn visit_exprs(e: &CoreExpr, f: &mut dyn FnMut(&CoreExpr)) {
    f(e);
    match e {
        CoreExpr::Literal(_) | CoreExpr::Var(_) | CoreExpr::Empty => {}
        CoreExpr::Seq(items) => {
            for i in items {
                visit_exprs(i, f);
            }
        }
        CoreExpr::Flwor { clauses, ret } => {
            for c in clauses {
                visit_clause(c, f);
            }
            visit_exprs(ret, f);
        }
        CoreExpr::Quantified {
            clauses, satisfies, ..
        } => {
            for c in clauses {
                visit_clause(c, f);
            }
            visit_exprs(satisfies, f);
        }
        CoreExpr::Typeswitch {
            input,
            cases,
            default,
            ..
        } => {
            visit_exprs(input, f);
            for (_, b) in cases {
                visit_exprs(b, f);
            }
            visit_exprs(default, f);
        }
        CoreExpr::If { cond, then, els } => {
            visit_exprs(cond, f);
            visit_exprs(then, f);
            visit_exprs(els, f);
        }
        CoreExpr::Step { input, .. } => visit_exprs(input, f),
        CoreExpr::Call { args, .. } => {
            for a in args {
                visit_exprs(a, f);
            }
        }
        CoreExpr::ElementCtor { name, content } | CoreExpr::AttributeCtor { name, content } => {
            if let Err(ne) = name {
                visit_exprs(ne, f);
            }
            visit_exprs(content, f);
        }
        CoreExpr::TextCtor(c)
        | CoreExpr::CommentCtor(c)
        | CoreExpr::DocumentCtor(c)
        | CoreExpr::PiCtor { content: c, .. } => visit_exprs(c, f),
        CoreExpr::Cast { expr, .. }
        | CoreExpr::Castable { expr, .. }
        | CoreExpr::TypeAssert { expr, .. }
        | CoreExpr::InstanceOf { expr, .. }
        | CoreExpr::Validate { expr, .. } => visit_exprs(expr, f),
    }
}

fn visit_clause(c: &CoreClause, f: &mut dyn FnMut(&CoreExpr)) {
    match c {
        CoreClause::For { expr, .. } | CoreClause::Let { expr, .. } => visit_exprs(expr, f),
        CoreClause::Where(e) => visit_exprs(e, f),
        CoreClause::OrderBy(specs) => {
            for s in specs {
                visit_exprs(&s.key, f);
            }
        }
    }
}

/// Walks every sub-expression of `e` (including `e`), mutably.
pub fn visit_exprs_mut(e: &mut CoreExpr, f: &mut dyn FnMut(&mut CoreExpr)) {
    f(e);
    match e {
        CoreExpr::Literal(_) | CoreExpr::Var(_) | CoreExpr::Empty => {}
        CoreExpr::Seq(items) => {
            for i in items {
                visit_exprs_mut(i, f);
            }
        }
        CoreExpr::Flwor { clauses, ret } => {
            for c in clauses {
                visit_clause_mut(c, f);
            }
            visit_exprs_mut(ret, f);
        }
        CoreExpr::Quantified {
            clauses, satisfies, ..
        } => {
            for c in clauses {
                visit_clause_mut(c, f);
            }
            visit_exprs_mut(satisfies, f);
        }
        CoreExpr::Typeswitch {
            input,
            cases,
            default,
            ..
        } => {
            visit_exprs_mut(input, f);
            for (_, b) in cases {
                visit_exprs_mut(b, f);
            }
            visit_exprs_mut(default, f);
        }
        CoreExpr::If { cond, then, els } => {
            visit_exprs_mut(cond, f);
            visit_exprs_mut(then, f);
            visit_exprs_mut(els, f);
        }
        CoreExpr::Step { input, .. } => visit_exprs_mut(input, f),
        CoreExpr::Call { args, .. } => {
            for a in args {
                visit_exprs_mut(a, f);
            }
        }
        CoreExpr::ElementCtor { name, content } | CoreExpr::AttributeCtor { name, content } => {
            if let Err(ne) = name {
                visit_exprs_mut(ne, f);
            }
            visit_exprs_mut(content, f);
        }
        CoreExpr::TextCtor(c)
        | CoreExpr::CommentCtor(c)
        | CoreExpr::DocumentCtor(c)
        | CoreExpr::PiCtor { content: c, .. } => visit_exprs_mut(c, f),
        CoreExpr::Cast { expr, .. }
        | CoreExpr::Castable { expr, .. }
        | CoreExpr::TypeAssert { expr, .. }
        | CoreExpr::InstanceOf { expr, .. }
        | CoreExpr::Validate { expr, .. } => visit_exprs_mut(expr, f),
    }
}

fn visit_clause_mut(c: &mut CoreClause, f: &mut dyn FnMut(&mut CoreExpr)) {
    match c {
        CoreClause::For { expr, .. } | CoreClause::Let { expr, .. } => visit_exprs_mut(expr, f),
        CoreClause::Where(e) => visit_exprs_mut(e, f),
        CoreClause::OrderBy(specs) => {
            for s in specs {
                visit_exprs_mut(&mut s.key, f);
            }
        }
    }
}
