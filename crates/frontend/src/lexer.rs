//! Tokenizer for XQuery.
//!
//! XQuery has no reserved words, so the lexer emits generic [`Token::Name`]
//! tokens and lets the parser interpret them contextually. Direct element
//! constructors are character-level constructs; the parser drives those by
//! borrowing the lexer's raw cursor (see [`Lexer::raw_pos`] /
//! [`Lexer::set_pos`]).

use std::fmt;

use xqr_xml::{AtomicValue, Decimal};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// A (possibly prefixed) name: `count`, `fn:count`, `for`, …
    Name(Option<String>, String),
    IntegerLit(i64),
    DecimalLit(Decimal),
    DoubleLit(f64),
    StringLit(String),
    /// `$`
    Dollar,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semicolon,
    Dot,
    DotDot,
    Slash,
    SlashSlash,
    At,
    Star,
    Plus,
    Minus,
    Pipe,
    Question,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    LtLt,
    GtGt,
    ColonEq,
    DoubleColon,
    /// `=>`-style arrow does not exist in 1.0; kept out.
    Eof,
}

impl Token {
    pub fn is_name(&self, s: &str) -> bool {
        matches!(self, Token::Name(None, n) if n == s)
    }

    pub fn name_str(&self) -> Option<&str> {
        match self {
            Token::Name(None, n) => Some(n),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Name(Some(p), n) => write!(f, "{p}:{n}"),
            Token::Name(None, n) => write!(f, "{n}"),
            Token::IntegerLit(i) => write!(f, "{i}"),
            Token::DecimalLit(d) => write!(f, "{d}"),
            Token::DoubleLit(d) => write!(f, "{d}"),
            Token::StringLit(s) => write!(f, "{s:?}"),
            other => write!(f, "{}", symbol_of(other)),
        }
    }
}

fn symbol_of(t: &Token) -> &'static str {
    match t {
        Token::Dollar => "$",
        Token::LParen => "(",
        Token::RParen => ")",
        Token::LBracket => "[",
        Token::RBracket => "]",
        Token::LBrace => "{",
        Token::RBrace => "}",
        Token::Comma => ",",
        Token::Semicolon => ";",
        Token::Dot => ".",
        Token::DotDot => "..",
        Token::Slash => "/",
        Token::SlashSlash => "//",
        Token::At => "@",
        Token::Star => "*",
        Token::Plus => "+",
        Token::Minus => "-",
        Token::Pipe => "|",
        Token::Question => "?",
        Token::Eq => "=",
        Token::NotEq => "!=",
        Token::Lt => "<",
        Token::Le => "<=",
        Token::Gt => ">",
        Token::Ge => ">=",
        Token::LtLt => "<<",
        Token::GtGt => ">>",
        Token::ColonEq => ":=",
        Token::DoubleColon => "::",
        Token::Eof => "<eof>",
        _ => "<tok>",
    }
}

/// Lexer error with byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub message: String,
    pub offset: usize,
}

pub struct Lexer<'a> {
    pub input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    /// Current raw byte offset (used by the parser for direct constructors).
    pub fn raw_pos(&self) -> usize {
        self.pos
    }

    /// Moves the cursor (after the parser consumed raw characters).
    pub fn set_pos(&mut self, pos: usize) {
        self.pos = pos;
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes().get(self.pos + 1).copied()
    }

    /// Skips whitespace and (nested) `(: … :)` comments.
    pub fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.pos += 1,
                Some(b'(') if self.peek2() == Some(b':') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut depth = 1;
                    while depth > 0 {
                        match (self.peek(), self.peek2()) {
                            (Some(b'('), Some(b':')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(b':'), Some(b')')) => {
                                depth -= 1;
                                self.pos += 2;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(LexError {
                                    message: "unterminated comment".into(),
                                    offset: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Scans the next token.
    pub fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let Some(c) = self.peek() else {
            return Ok(Token::Eof);
        };
        let tok = match c {
            b'$' => self.one(Token::Dollar),
            b'(' => self.one(Token::LParen),
            b')' => self.one(Token::RParen),
            b'[' => self.one(Token::LBracket),
            b']' => self.one(Token::RBracket),
            b'{' => self.one(Token::LBrace),
            b'}' => self.one(Token::RBrace),
            b',' => self.one(Token::Comma),
            b';' => self.one(Token::Semicolon),
            b'@' => self.one(Token::At),
            b'*' => self.one(Token::Star),
            b'+' => self.one(Token::Plus),
            b'-' => self.one(Token::Minus),
            b'|' => self.one(Token::Pipe),
            b'?' => self.one(Token::Question),
            b'=' => self.one(Token::Eq),
            b'.' => {
                if self.peek2() == Some(b'.') {
                    self.two(Token::DotDot)
                } else if self.peek2().is_some_and(|b| b.is_ascii_digit()) {
                    return self.number();
                } else {
                    self.one(Token::Dot)
                }
            }
            b'/' => {
                if self.peek2() == Some(b'/') {
                    self.two(Token::SlashSlash)
                } else {
                    self.one(Token::Slash)
                }
            }
            b'!' => {
                if self.peek2() == Some(b'=') {
                    self.two(Token::NotEq)
                } else {
                    return Err(self.err("unexpected '!'"));
                }
            }
            b'<' => match self.peek2() {
                Some(b'=') => self.two(Token::Le),
                Some(b'<') => self.two(Token::LtLt),
                _ => self.one(Token::Lt),
            },
            b'>' => match self.peek2() {
                Some(b'=') => self.two(Token::Ge),
                Some(b'>') => self.two(Token::GtGt),
                _ => self.one(Token::Gt),
            },
            b':' => match self.peek2() {
                Some(b'=') => self.two(Token::ColonEq),
                Some(b':') => self.two(Token::DoubleColon),
                _ => return Err(self.err("unexpected ':'")),
            },
            b'"' | b'\'' => return self.string_literal(c),
            b'0'..=b'9' => return self.number(),
            _ if is_name_start(c) => return self.name(),
            _ => return Err(self.err(format!("unexpected character {:?}", c as char))),
        };
        Ok(tok)
    }

    fn one(&mut self, t: Token) -> Token {
        self.pos += 1;
        t
    }

    fn two(&mut self, t: Token) -> Token {
        self.pos += 2;
        t
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn name(&mut self) -> Result<Token, LexError> {
        let first = self.read_ncname();
        // A following ':' + name char (but not '::' or ':=') is a QName.
        if self.peek() == Some(b':') && self.peek2().is_some_and(is_name_start) {
            self.pos += 1;
            let second = self.read_ncname();
            return Ok(Token::Name(Some(first), second));
        }
        Ok(Token::Name(None, first))
    }

    fn read_ncname(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if (self.pos == start && is_name_start(b)) || (self.pos > start && is_name_char(b)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.input[start..self.pos].to_string()
    }

    fn number(&mut self) -> Result<Token, LexError> {
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_dot && !saw_exp => {
                    // `1..2` must not swallow the dots; `.` then non-digit
                    // ends the number (e.g. `1.`, valid decimal).
                    if self.peek2() == Some(b'.') {
                        break;
                    }
                    saw_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if saw_exp {
            text.parse::<f64>()
                .map(Token::DoubleLit)
                .map_err(|_| self.err(format!("invalid double literal {text:?}")))
        } else if saw_dot {
            Decimal::parse(text)
                .map(Token::DecimalLit)
                .map_err(|e| self.err(e.message))
        } else {
            text.parse::<i64>()
                .map(Token::IntegerLit)
                .map_err(|_| self.err(format!("integer literal out of range: {text}")))
        }
    }

    fn string_literal(&mut self, quote: u8) -> Result<Token, LexError> {
        let start = self.pos;
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        offset: start,
                    })
                }
                Some(q) if q == quote => {
                    // Doubled quote is an escaped quote.
                    if self.peek2() == Some(quote) {
                        out.push(quote as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(Token::StringLit(out));
                    }
                }
                Some(b'&') => {
                    let rest = &self.input[self.pos..];
                    let semi = rest
                        .find(';')
                        .ok_or_else(|| self.err("bad entity reference"))?;
                    let ent = &rest[1..semi];
                    let repl = match ent {
                        "lt" => "<".to_string(),
                        "gt" => ">".to_string(),
                        "amp" => "&".to_string(),
                        "quot" => "\"".to_string(),
                        "apos" => "'".to_string(),
                        _ if ent.starts_with("#x") => char::from_u32(
                            u32::from_str_radix(&ent[2..], 16)
                                .map_err(|_| self.err("bad char ref"))?,
                        )
                        .ok_or_else(|| self.err("bad char ref"))?
                        .to_string(),
                        _ if ent.starts_with('#') => {
                            char::from_u32(ent[1..].parse().map_err(|_| self.err("bad char ref"))?)
                                .ok_or_else(|| self.err("bad char ref"))?
                                .to_string()
                        }
                        _ => return Err(self.err(format!("unknown entity &{ent};"))),
                    };
                    out.push_str(&repl);
                    self.pos += semi + 1;
                }
                Some(_) => {
                    let c = self.input[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Turns an atomic literal token into its value (used by the parser).
    pub fn literal_value(tok: &Token) -> Option<AtomicValue> {
        match tok {
            Token::IntegerLit(i) => Some(AtomicValue::Integer(*i)),
            Token::DecimalLit(d) => Some(AtomicValue::Decimal(*d)),
            Token::DoubleLit(d) => Some(AtomicValue::Double(*d)),
            Token::StringLit(s) => Some(AtomicValue::string(s.as_str())),
            _ => None,
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.') || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tokens(s: &str) -> Vec<Token> {
        let mut lx = Lexer::new(s);
        let mut out = Vec::new();
        loop {
            let t = lx.next_token().unwrap();
            if t == Token::Eof {
                return out;
            }
            out.push(t);
        }
    }

    #[test]
    fn names_and_qnames() {
        assert_eq!(
            all_tokens("for fn:count a-b"),
            vec![
                Token::Name(None, "for".into()),
                Token::Name(Some("fn".into()), "count".into()),
                Token::Name(None, "a-b".into()),
            ]
        );
    }

    #[test]
    fn axis_double_colon_not_confused_with_qname() {
        assert_eq!(
            all_tokens("child::a"),
            vec![
                Token::Name(None, "child".into()),
                Token::DoubleColon,
                Token::Name(None, "a".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            all_tokens("1 2.5 1e3 .5"),
            vec![
                Token::IntegerLit(1),
                Token::DecimalLit(Decimal::parse("2.5").unwrap()),
                Token::DoubleLit(1000.0),
                Token::DecimalLit(Decimal::parse("0.5").unwrap()),
            ]
        );
    }

    #[test]
    fn range_dots_not_swallowed() {
        assert_eq!(
            all_tokens("1 to 2"),
            vec![
                Token::IntegerLit(1),
                Token::Name(None, "to".into()),
                Token::IntegerLit(2)
            ]
        );
        // `(1,2.5)` style
        assert_eq!(
            all_tokens("(1,2)"),
            vec![
                Token::LParen,
                Token::IntegerLit(1),
                Token::Comma,
                Token::IntegerLit(2),
                Token::RParen
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            all_tokens(r#""he said ""hi"" &amp; &lt;that&gt;""#),
            vec![Token::StringLit("he said \"hi\" & <that>".into())]
        );
        assert_eq!(all_tokens("'it''s'"), vec![Token::StringLit("it's".into())]);
    }

    #[test]
    fn comments_nest() {
        assert_eq!(
            all_tokens("1 (: outer (: inner :) still :) 2"),
            vec![Token::IntegerLit(1), Token::IntegerLit(2)]
        );
    }

    #[test]
    fn compound_symbols() {
        assert_eq!(
            all_tokens(":= :: // << >> <= >= !="),
            vec![
                Token::ColonEq,
                Token::DoubleColon,
                Token::SlashSlash,
                Token::LtLt,
                Token::GtGt,
                Token::Le,
                Token::Ge,
                Token::NotEq,
            ]
        );
    }

    #[test]
    fn errors() {
        let mut lx = Lexer::new("(: never closed");
        assert!(lx.next_token().is_err());
        let mut lx = Lexer::new("\"unterminated");
        assert!(lx.next_token().is_err());
    }
}
