//! Recursive-descent parser for XQuery 1.0.
//!
//! Covers the full expression language: FLWOR (for/at/let/where/order
//! by/return), quantified expressions, typeswitch, conditionals, the
//! operator grammar, path expressions with all axes and predicates, direct
//! and computed constructors, `instance of`/`treat`/`castable`/`cast`,
//! `validate`, plus a prolog with namespace, variable, and function
//! declarations. Keywords are recognized contextually (XQuery has no
//! reserved words).

use xqr_types::{ItemType, Occurrence, SequenceType};
use xqr_xml::axes::{Axis, KindTest, NameTest, NodeTest};
use xqr_xml::{AtomicType, AtomicValue, QName};

use crate::ast::*;
use crate::lexer::{LexError, Lexer, Token};

/// A syntax error with byte offset into the query text.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntaxError {
    pub message: String,
    pub offset: usize,
}

impl std::fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "syntax error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SyntaxError {}

impl From<LexError> for SyntaxError {
    fn from(e: LexError) -> Self {
        SyntaxError {
            message: e.message,
            offset: e.offset,
        }
    }
}

type PResult<T> = Result<T, SyntaxError>;

/// Parses a complete query (prolog + body).
pub fn parse_query(input: &str) -> PResult<Module> {
    parse_query_with(input, MAX_PARSE_DEPTH)
}

/// Parses a complete query with a configurable nesting-depth ceiling
/// (`Limits::max_parse_depth` at the engine boundary).
pub fn parse_query_with(input: &str, max_depth: usize) -> PResult<Module> {
    let mut p = Parser::new(input, max_depth)?;
    let module = p.parse_module()?;
    p.expect_eof()?;
    Ok(module)
}

/// Parses a single expression (no prolog) — convenient for tests.
pub fn parse_expr_str(input: &str) -> PResult<Expr> {
    let mut p = Parser::new(input, MAX_PARSE_DEPTH)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Token,
    /// Byte offset where `tok` starts.
    tok_pos: usize,
    /// Expression nesting depth (guards against stack exhaustion on
    /// pathological inputs).
    depth: usize,
    /// Ceiling for `depth`; a structured syntax error past this.
    max_depth: usize,
}

pub(crate) const MAX_PARSE_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn new(input: &'a str, max_depth: usize) -> PResult<Self> {
        let mut lexer = Lexer::new(input);
        lexer.skip_trivia()?;
        let tok_pos = lexer.raw_pos();
        let tok = lexer.next_token()?;
        Ok(Parser {
            lexer,
            tok,
            tok_pos,
            depth: 0,
            max_depth,
        })
    }

    fn advance(&mut self) -> PResult<Token> {
        self.lexer.skip_trivia()?;
        self.tok_pos = self.lexer.raw_pos();
        let next = self.lexer.next_token()?;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn err(&self, message: impl Into<String>) -> SyntaxError {
        SyntaxError {
            message: message.into(),
            offset: self.tok_pos,
        }
    }

    fn expect(&mut self, t: &Token) -> PResult<()> {
        if &self.tok == t {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.tok)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> PResult<()> {
        if self.tok.is_name(kw) {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}', found {}", self.tok)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> PResult<bool> {
        if self.tok.is_name(kw) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_eof(&mut self) -> PResult<()> {
        if self.tok == Token::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {}", self.tok)))
        }
    }

    /// Peeks at the token after the current one without consuming anything.
    fn peek_next(&mut self) -> PResult<Token> {
        let save = self.lexer.raw_pos();
        self.lexer.skip_trivia()?;
        let t = self.lexer.next_token()?;
        self.lexer.set_pos(save);
        Ok(t)
    }

    fn qname_from_token(&mut self) -> PResult<QName> {
        match self.advance()? {
            Token::Name(Some(p), l) => Ok(QName::full(Some(&p), None, &l)),
            Token::Name(None, l) => Ok(QName::local(&l)),
            other => Err(self.err(format!("expected a name, found {other}"))),
        }
    }

    fn parse_var_name(&mut self) -> PResult<QName> {
        self.expect(&Token::Dollar)?;
        self.qname_from_token()
    }

    // ----- Prolog -------------------------------------------------------

    fn parse_module(&mut self) -> PResult<Module> {
        let mut functions = Vec::new();
        let mut variables = Vec::new();
        // Optional version declaration.
        if self.tok.is_name("xquery") && self.peek_next()?.is_name("version") {
            self.advance()?; // xquery
            self.advance()?; // version
            match self.advance()? {
                Token::StringLit(_) => {}
                other => return Err(self.err(format!("expected version string, got {other}"))),
            }
            self.expect(&Token::Semicolon)?;
        }
        while self.tok.is_name("declare") {
            let next = self.peek_next()?;
            if next.is_name("function") {
                self.advance()?;
                self.advance()?;
                functions.push(self.parse_function_decl()?);
            } else if next.is_name("variable") {
                self.advance()?;
                self.advance()?;
                variables.push(self.parse_variable_decl()?);
            } else if next.is_name("namespace")
                || next.is_name("default")
                || next.is_name("boundary-space")
                || next.is_name("base-uri")
            {
                // Accepted and ignored: namespace bindings resolve lexically.
                while self.tok != Token::Semicolon && self.tok != Token::Eof {
                    self.advance()?;
                }
                self.expect(&Token::Semicolon)?;
            } else {
                break;
            }
        }
        let body = self.parse_expr()?;
        Ok(Module {
            functions,
            variables,
            body,
        })
    }

    fn parse_function_decl(&mut self) -> PResult<FunctionDecl> {
        let name = self.qname_from_token()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if self.tok != Token::RParen {
            loop {
                let pname = self.parse_var_name()?;
                let ty = if self.eat_keyword("as")? {
                    Some(self.parse_sequence_type()?)
                } else {
                    None
                };
                params.push((pname, ty));
                if self.tok == Token::Comma {
                    self.advance()?;
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        let return_type = if self.eat_keyword("as")? {
            Some(self.parse_sequence_type()?)
        } else {
            None
        };
        self.expect(&Token::LBrace)?;
        let body = self.parse_expr()?;
        self.expect(&Token::RBrace)?;
        self.expect(&Token::Semicolon)?;
        Ok(FunctionDecl {
            name,
            params,
            return_type,
            body,
        })
    }

    fn parse_variable_decl(&mut self) -> PResult<VariableDecl> {
        let name = self.parse_var_name()?;
        let as_type = if self.eat_keyword("as")? {
            Some(self.parse_sequence_type()?)
        } else {
            None
        };
        let (external, value) = if self.tok == Token::ColonEq {
            self.advance()?;
            (false, Some(self.parse_expr_single()?))
        } else {
            self.expect_keyword("external")?;
            // XQuery 3.0-style default: `external := expr`.
            if self.tok == Token::ColonEq {
                self.advance()?;
                (true, Some(self.parse_expr_single()?))
            } else {
                (true, None)
            }
        };
        self.expect(&Token::Semicolon)?;
        Ok(VariableDecl {
            name,
            as_type,
            external,
            value,
        })
    }

    // ----- Expressions ---------------------------------------------------

    fn parse_expr(&mut self) -> PResult<Expr> {
        let first = self.parse_expr_single()?;
        if self.tok != Token::Comma {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.tok == Token::Comma {
            self.advance()?;
            items.push(self.parse_expr_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    fn parse_expr_single(&mut self) -> PResult<Expr> {
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(self.err("expression nesting too deep"));
        }
        let result = self.parse_expr_single_inner();
        self.depth -= 1;
        result
    }

    fn parse_expr_single_inner(&mut self) -> PResult<Expr> {
        if (self.tok.is_name("for") || self.tok.is_name("let"))
            && self.peek_next()? == Token::Dollar
        {
            return self.parse_flwor();
        }
        if (self.tok.is_name("some") || self.tok.is_name("every"))
            && self.peek_next()? == Token::Dollar
        {
            return self.parse_quantified();
        }
        if self.tok.is_name("typeswitch") && self.peek_next()? == Token::LParen {
            return self.parse_typeswitch();
        }
        if self.tok.is_name("if") && self.peek_next()? == Token::LParen {
            return self.parse_if();
        }
        self.parse_or()
    }

    fn parse_flwor(&mut self) -> PResult<Expr> {
        let mut clauses = Vec::new();
        loop {
            if self.tok.is_name("for") && self.peek_next()? == Token::Dollar {
                self.advance()?;
                loop {
                    let var = self.parse_var_name()?;
                    let as_type = if self.eat_keyword("as")? {
                        Some(self.parse_sequence_type()?)
                    } else {
                        None
                    };
                    let at = if self.eat_keyword("at")? {
                        Some(self.parse_var_name()?)
                    } else {
                        None
                    };
                    self.expect_keyword("in")?;
                    let expr = self.parse_expr_single()?;
                    clauses.push(FlworClause::For {
                        var,
                        as_type,
                        at,
                        expr,
                    });
                    if self.tok == Token::Comma {
                        self.advance()?;
                    } else {
                        break;
                    }
                }
            } else if self.tok.is_name("let") && self.peek_next()? == Token::Dollar {
                self.advance()?;
                loop {
                    let var = self.parse_var_name()?;
                    let as_type = if self.eat_keyword("as")? {
                        Some(self.parse_sequence_type()?)
                    } else {
                        None
                    };
                    self.expect(&Token::ColonEq)?;
                    let expr = self.parse_expr_single()?;
                    clauses.push(FlworClause::Let { var, as_type, expr });
                    if self.tok == Token::Comma {
                        self.advance()?;
                    } else {
                        break;
                    }
                }
            } else if self.tok.is_name("where") {
                self.advance()?;
                clauses.push(FlworClause::Where(self.parse_expr_single()?));
            } else if self.tok.is_name("stable") || self.tok.is_name("order") {
                let stable = self.eat_keyword("stable")?;
                self.expect_keyword("order")?;
                self.expect_keyword("by")?;
                let mut specs = Vec::new();
                loop {
                    let key = self.parse_expr_single()?;
                    let descending = if self.eat_keyword("descending")? {
                        true
                    } else {
                        self.eat_keyword("ascending")?;
                        false
                    };
                    let mut empty_least = true;
                    if self.eat_keyword("empty")? {
                        if self.eat_keyword("greatest")? {
                            empty_least = false;
                        } else {
                            self.expect_keyword("least")?;
                        }
                    }
                    specs.push(OrderSpec {
                        key,
                        descending,
                        empty_least,
                    });
                    if self.tok == Token::Comma {
                        self.advance()?;
                    } else {
                        break;
                    }
                }
                clauses.push(FlworClause::OrderBy { stable, specs });
            } else {
                break;
            }
        }
        self.expect_keyword("return")?;
        let return_expr = Box::new(self.parse_expr_single()?);
        if clauses.is_empty() {
            return Err(self.err("FLWOR expression requires at least one for/let clause"));
        }
        Ok(Expr::Flwor {
            clauses,
            return_expr,
        })
    }

    fn parse_quantified(&mut self) -> PResult<Expr> {
        let every = self.tok.is_name("every");
        self.advance()?;
        let mut bindings = Vec::new();
        loop {
            let var = self.parse_var_name()?;
            let ty = if self.eat_keyword("as")? {
                Some(self.parse_sequence_type()?)
            } else {
                None
            };
            self.expect_keyword("in")?;
            let expr = self.parse_expr_single()?;
            bindings.push((var, ty, expr));
            if self.tok == Token::Comma {
                self.advance()?;
            } else {
                break;
            }
        }
        self.expect_keyword("satisfies")?;
        let satisfies = Box::new(self.parse_expr_single()?);
        Ok(Expr::Quantified {
            every,
            bindings,
            satisfies,
        })
    }

    fn parse_typeswitch(&mut self) -> PResult<Expr> {
        self.advance()?; // typeswitch
        self.expect(&Token::LParen)?;
        let input = Box::new(self.parse_expr()?);
        self.expect(&Token::RParen)?;
        let mut cases = Vec::new();
        while self.tok.is_name("case") {
            self.advance()?;
            let var = if self.tok == Token::Dollar {
                let v = self.parse_var_name()?;
                self.expect_keyword("as")?;
                Some(v)
            } else {
                None
            };
            let seq_type = self.parse_sequence_type()?;
            self.expect_keyword("return")?;
            let body = self.parse_expr_single()?;
            cases.push(CaseClause {
                var,
                seq_type,
                body,
            });
        }
        self.expect_keyword("default")?;
        let default_var = if self.tok == Token::Dollar {
            Some(self.parse_var_name()?)
        } else {
            None
        };
        self.expect_keyword("return")?;
        let default = Box::new(self.parse_expr_single()?);
        if cases.is_empty() {
            return Err(self.err("typeswitch requires at least one case"));
        }
        Ok(Expr::Typeswitch {
            input,
            cases,
            default_var,
            default,
        })
    }

    fn parse_if(&mut self) -> PResult<Expr> {
        self.advance()?; // if
        self.expect(&Token::LParen)?;
        let cond = Box::new(self.parse_expr()?);
        self.expect(&Token::RParen)?;
        self.expect_keyword("then")?;
        let then = Box::new(self.parse_expr_single()?);
        self.expect_keyword("else")?;
        let els = Box::new(self.parse_expr_single()?);
        Ok(Expr::If { cond, then, els })
    }

    fn parse_or(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_and()?;
        while self.tok.is_name("or") {
            self.advance()?;
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_comparison()?;
        while self.tok.is_name("and") {
            self.advance()?;
            let rhs = self.parse_comparison()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn comparison_op(&mut self) -> PResult<Option<BinOp>> {
        let op = match &self.tok {
            Token::Eq => Some(BinOp::GenEq),
            Token::NotEq => Some(BinOp::GenNe),
            Token::Lt => Some(BinOp::GenLt),
            Token::Le => Some(BinOp::GenLe),
            Token::Gt => Some(BinOp::GenGt),
            Token::Ge => Some(BinOp::GenGe),
            Token::LtLt => Some(BinOp::Before),
            Token::GtGt => Some(BinOp::After),
            Token::Name(None, n) => match n.as_str() {
                "eq" => Some(BinOp::ValEq),
                "ne" => Some(BinOp::ValNe),
                "lt" => Some(BinOp::ValLt),
                "le" => Some(BinOp::ValLe),
                "gt" => Some(BinOp::ValGt),
                "ge" => Some(BinOp::ValGe),
                "is" => Some(BinOp::Is),
                _ => None,
            },
            _ => None,
        };
        if op.is_some() {
            self.advance()?;
        }
        Ok(op)
    }

    fn parse_comparison(&mut self) -> PResult<Expr> {
        let lhs = self.parse_range()?;
        if let Some(op) = self.comparison_op()? {
            let rhs = self.parse_range()?;
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_range(&mut self) -> PResult<Expr> {
        let lhs = self.parse_additive()?;
        if self.tok.is_name("to") {
            self.advance()?;
            let rhs = self.parse_additive()?;
            return Ok(Expr::Binary {
                op: BinOp::Range,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.tok {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance()?;
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_union()?;
        loop {
            let op = match &self.tok {
                Token::Star => BinOp::Mul,
                Token::Name(None, n) if n == "div" => BinOp::Div,
                Token::Name(None, n) if n == "idiv" => BinOp::IDiv,
                Token::Name(None, n) if n == "mod" => BinOp::Mod,
                _ => break,
            };
            self.advance()?;
            let rhs = self.parse_union()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_union(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_intersect_except()?;
        loop {
            let is_union = self.tok == Token::Pipe || self.tok.is_name("union");
            if !is_union {
                break;
            }
            self.advance()?;
            let rhs = self.parse_intersect_except()?;
            lhs = Expr::Binary {
                op: BinOp::Union,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_intersect_except(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_postfix_type_exprs()?;
        loop {
            let op = if self.tok.is_name("intersect") {
                BinOp::Intersect
            } else if self.tok.is_name("except") {
                BinOp::Except
            } else {
                break;
            };
            self.advance()?;
            let rhs = self.parse_postfix_type_exprs()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    /// instance of / treat as / castable as / cast as (in precedence order).
    fn parse_postfix_type_exprs(&mut self) -> PResult<Expr> {
        let mut e = self.parse_unary()?;
        loop {
            if self.tok.is_name("instance") && self.peek_next()?.is_name("of") {
                self.advance()?;
                self.advance()?;
                let st = self.parse_sequence_type()?;
                e = Expr::InstanceOf(Box::new(e), st);
            } else if self.tok.is_name("treat") && self.peek_next()?.is_name("as") {
                self.advance()?;
                self.advance()?;
                let st = self.parse_sequence_type()?;
                e = Expr::TreatAs(Box::new(e), st);
            } else if self.tok.is_name("castable") && self.peek_next()?.is_name("as") {
                self.advance()?;
                self.advance()?;
                let (ty, opt) = self.parse_single_type()?;
                e = Expr::CastableAs(Box::new(e), ty, opt);
            } else if self.tok.is_name("cast") && self.peek_next()?.is_name("as") {
                self.advance()?;
                self.advance()?;
                let (ty, opt) = self.parse_single_type()?;
                e = Expr::CastAs(Box::new(e), ty, opt);
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        let mut negate = false;
        loop {
            match self.tok {
                Token::Minus => {
                    negate = !negate;
                    self.advance()?;
                }
                Token::Plus => {
                    self.advance()?;
                }
                _ => break,
            }
        }
        let e = self.parse_path()?;
        Ok(if negate {
            Expr::UnaryMinus(Box::new(e))
        } else {
            e
        })
    }

    // ----- Paths ----------------------------------------------------------

    fn parse_path(&mut self) -> PResult<Expr> {
        match self.tok {
            Token::Slash => {
                self.advance()?;
                if self.starts_step()? {
                    let rel = self.parse_relative_path(Expr::Root)?;
                    Ok(rel)
                } else {
                    Ok(Expr::Root)
                }
            }
            Token::SlashSlash => {
                self.advance()?;
                let dos = Expr::PathSlash(
                    Box::new(Expr::Root),
                    Box::new(Expr::AxisStep {
                        axis: Axis::DescendantOrSelf,
                        test: NodeTest::Kind(KindTest::AnyKind),
                        predicates: Vec::new(),
                    }),
                );
                self.parse_relative_path(dos)
            }
            _ => {
                let first = self.parse_step()?;
                self.parse_relative_path_cont(first)
            }
        }
    }

    fn parse_relative_path(&mut self, root: Expr) -> PResult<Expr> {
        let step = self.parse_step()?;
        let combined = Expr::PathSlash(Box::new(root), Box::new(step));
        self.parse_relative_path_cont(combined)
    }

    fn parse_relative_path_cont(&mut self, mut lhs: Expr) -> PResult<Expr> {
        loop {
            match self.tok {
                Token::Slash => {
                    self.advance()?;
                    let step = self.parse_step()?;
                    lhs = Expr::PathSlash(Box::new(lhs), Box::new(step));
                }
                Token::SlashSlash => {
                    self.advance()?;
                    lhs = Expr::PathSlash(
                        Box::new(lhs),
                        Box::new(Expr::AxisStep {
                            axis: Axis::DescendantOrSelf,
                            test: NodeTest::Kind(KindTest::AnyKind),
                            predicates: Vec::new(),
                        }),
                    );
                    let step = self.parse_step()?;
                    lhs = Expr::PathSlash(Box::new(lhs), Box::new(step));
                }
                _ => return Ok(lhs),
            }
        }
    }

    /// Could the current token start a path step?
    fn starts_step(&mut self) -> PResult<bool> {
        #[allow(clippy::match_like_matches_macro)]
        Ok(match &self.tok {
            Token::Name(..) | Token::Star | Token::At | Token::DotDot | Token::Dot => true,
            Token::Dollar | Token::LParen | Token::StringLit(_) => true,
            Token::IntegerLit(_) | Token::DecimalLit(_) | Token::DoubleLit(_) => true,
            Token::Lt => true,
            _ => false,
        })
    }

    fn parse_step(&mut self) -> PResult<Expr> {
        // Abbreviations first.
        match &self.tok {
            Token::At => {
                self.advance()?;
                let test = self.parse_node_test(Axis::Attribute)?;
                let predicates = self.parse_predicates()?;
                return Ok(Expr::AxisStep {
                    axis: Axis::Attribute,
                    test,
                    predicates,
                });
            }
            Token::DotDot => {
                self.advance()?;
                let predicates = self.parse_predicates()?;
                return Ok(Expr::AxisStep {
                    axis: Axis::Parent,
                    test: NodeTest::Kind(KindTest::AnyKind),
                    predicates,
                });
            }
            Token::Name(None, n) => {
                // axis::... ?
                if let Some(axis) = Axis::by_name(n) {
                    if self.peek_next()? == Token::DoubleColon {
                        self.advance()?;
                        self.advance()?;
                        let test = self.parse_node_test(axis)?;
                        let predicates = self.parse_predicates()?;
                        return Ok(Expr::AxisStep {
                            axis,
                            test,
                            predicates,
                        });
                    }
                }
            }
            _ => {}
        }
        // A kind test or plain name test is a child-axis step — unless the
        // name is followed by '(' and is not a kind-test keyword (function
        // call → primary / filter expression).
        let is_step_name = match self.tok.clone() {
            Token::Star => true,
            Token::Name(_, ref local) => {
                let next = self.peek_next()?;
                if next == Token::LParen {
                    is_kind_test_name(local)
                } else {
                    // Not a function call; also exclude computed
                    // constructors (`element foo {`), `validate`/`ordered`/
                    // `unordered` blocks — those are primaries.
                    !(self.is_computed_ctor_start()?) && !self.is_block_primary_start(local, &next)
                }
            }
            _ => false,
        };
        if is_step_name {
            let test = self.parse_node_test(Axis::Child)?;
            let axis = Axis::Child;
            let predicates = self.parse_predicates()?;
            return Ok(Expr::AxisStep {
                axis,
                test,
                predicates,
            });
        }
        // Otherwise: a primary expression with optional predicates.
        let primary = self.parse_primary()?;
        let predicates = self.parse_predicates()?;
        if predicates.is_empty() {
            Ok(primary)
        } else {
            Ok(Expr::Filter {
                primary: Box::new(primary),
                predicates,
            })
        }
    }

    fn parse_predicates(&mut self) -> PResult<Vec<Expr>> {
        let mut preds = Vec::new();
        while self.tok == Token::LBracket {
            self.advance()?;
            preds.push(self.parse_expr()?);
            self.expect(&Token::RBracket)?;
        }
        Ok(preds)
    }

    fn parse_node_test(&mut self, axis: Axis) -> PResult<NodeTest> {
        match self.tok.clone() {
            Token::Star => {
                self.advance()?;
                // `*:local`?
                if self.tok == Token::DoubleColon {
                    return Err(self.err("unexpected '::' after '*'"));
                }
                Ok(NodeTest::Name(NameTest::any()))
            }
            Token::Name(prefix, local) => {
                if self.peek_next()? == Token::LParen && is_kind_test_name(&local) {
                    let kt = self.parse_kind_test()?;
                    return Ok(NodeTest::Kind(kt));
                }
                self.advance()?;
                let _ = axis;
                match prefix {
                    Some(p) if p == "*" => Ok(NodeTest::Name(NameTest {
                        uri: None,
                        local: Some(local),
                        any_uri: true,
                    })),
                    Some(p) => Ok(NodeTest::Name(NameTest {
                        // Prefixes resolve to themselves as URIs in this
                        // engine (no in-scope namespace env at parse level).
                        uri: Some(p),
                        local: Some(local),
                        any_uri: false,
                    })),
                    None => Ok(NodeTest::Name(NameTest::local(&local))),
                }
            }
            other => Err(self.err(format!("expected a node test, found {other}"))),
        }
    }

    fn parse_kind_test(&mut self) -> PResult<KindTest> {
        let name = match self.advance()? {
            Token::Name(None, n) => n,
            other => return Err(self.err(format!("expected kind test, found {other}"))),
        };
        self.expect(&Token::LParen)?;
        let kt = match name.as_str() {
            "node" => KindTest::AnyKind,
            "text" => KindTest::Text,
            "comment" => KindTest::Comment,
            "document-node" => KindTest::Document,
            "processing-instruction" => {
                let target = match &self.tok {
                    Token::Name(None, t) => {
                        let t = t.clone();
                        self.advance()?;
                        Some(t)
                    }
                    Token::StringLit(s) => {
                        let s = s.clone();
                        self.advance()?;
                        Some(s)
                    }
                    _ => None,
                };
                KindTest::Pi(target)
            }
            "element" | "attribute" => {
                let mut name_test = None;
                let mut type_name = None;
                if self.tok != Token::RParen {
                    name_test = Some(match self.tok.clone() {
                        Token::Star => {
                            self.advance()?;
                            NameTest::any()
                        }
                        Token::Name(None, n) => {
                            self.advance()?;
                            NameTest::local(&n)
                        }
                        other => return Err(self.err(format!("expected name or *, found {other}"))),
                    });
                    if self.tok == Token::Comma {
                        self.advance()?;
                        type_name = Some(self.qname_from_token()?);
                    }
                }
                // element(*) means any name — represent as None for clarity.
                let nt = match &name_test {
                    Some(nt) if nt.local.is_none() => None,
                    other => other.clone(),
                };
                if name == "element" {
                    KindTest::Element(nt, type_name)
                } else {
                    KindTest::Attribute(nt, type_name)
                }
            }
            other => return Err(self.err(format!("unknown kind test {other}()"))),
        };
        self.expect(&Token::RParen)?;
        Ok(kt)
    }

    // ----- Primaries ------------------------------------------------------

    /// `validate { … }`, `validate lax/strict { … }`, `ordered { … }`,
    /// `unordered { … }` are primaries, not path steps.
    fn is_block_primary_start(&self, name: &str, next: &Token) -> bool {
        match name {
            "validate" => *next == Token::LBrace || next.is_name("lax") || next.is_name("strict"),
            "ordered" | "unordered" => *next == Token::LBrace,
            _ => false,
        }
    }

    fn is_computed_ctor_start(&mut self) -> PResult<bool> {
        let Token::Name(None, n) = &self.tok else {
            return Ok(false);
        };
        let n = n.clone();
        if !matches!(
            n.as_str(),
            "element" | "attribute" | "text" | "comment" | "processing-instruction" | "document"
        ) {
            return Ok(false);
        }
        let next = self.peek_next()?;
        Ok(next == Token::LBrace || matches!(next, Token::Name(..)) && n != "text")
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        match self.tok.clone() {
            Token::IntegerLit(_)
            | Token::DecimalLit(_)
            | Token::DoubleLit(_)
            | Token::StringLit(_) => {
                let v = Lexer::literal_value(&self.tok).expect("literal");
                self.advance()?;
                Ok(Expr::Literal(v))
            }
            Token::Dollar => Ok(Expr::VarRef(self.parse_var_name()?)),
            Token::Dot => {
                self.advance()?;
                Ok(Expr::ContextItem)
            }
            Token::LParen => {
                self.advance()?;
                if self.tok == Token::RParen {
                    self.advance()?;
                    return Ok(Expr::empty());
                }
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Lt => self.parse_direct_constructor(),
            Token::Name(None, ref n) => {
                let n = n.clone();
                // Computed constructors and validate / ordered / unordered.
                match n.as_str() {
                    "validate" => {
                        let next = self.peek_next()?;
                        if next == Token::LBrace || next.is_name("lax") || next.is_name("strict") {
                            self.advance()?;
                            let mode = if self.eat_keyword("strict")? {
                                ValidationModeAst::Strict
                            } else {
                                self.eat_keyword("lax")?;
                                ValidationModeAst::Lax
                            };
                            self.expect(&Token::LBrace)?;
                            let e = self.parse_expr()?;
                            self.expect(&Token::RBrace)?;
                            return Ok(Expr::Validate(mode, Box::new(e)));
                        }
                    }
                    "ordered" | "unordered" if self.peek_next()? == Token::LBrace => {
                        self.advance()?;
                        self.advance()?;
                        let e = self.parse_expr()?;
                        self.expect(&Token::RBrace)?;
                        return Ok(e);
                    }
                    "element" | "attribute" if self.is_computed_ctor_start()? => {
                        self.advance()?;
                        let name = if self.tok == Token::LBrace {
                            self.advance()?;
                            let e = self.parse_expr()?;
                            self.expect(&Token::RBrace)?;
                            Err(Box::new(e))
                        } else {
                            Ok(self.qname_from_token()?)
                        };
                        self.expect(&Token::LBrace)?;
                        let content = if self.tok == Token::RBrace {
                            None
                        } else {
                            Some(Box::new(self.parse_expr()?))
                        };
                        self.expect(&Token::RBrace)?;
                        return Ok(if n == "element" {
                            Expr::CompElement { name, content }
                        } else {
                            Expr::CompAttribute { name, content }
                        });
                    }
                    "text" | "comment" | "document" if self.peek_next()? == Token::LBrace => {
                        self.advance()?;
                        self.advance()?;
                        let e = self.parse_expr()?;
                        self.expect(&Token::RBrace)?;
                        return Ok(match n.as_str() {
                            "text" => Expr::CompText(Box::new(e)),
                            "comment" => Expr::CompComment(Box::new(e)),
                            _ => Expr::CompDocument(Box::new(e)),
                        });
                    }
                    "processing-instruction" if self.is_computed_ctor_start()? => {
                        self.advance()?;
                        let target = match self.advance()? {
                            Token::Name(None, t) => t,
                            other => {
                                return Err(self.err(format!("expected PI target, got {other}")))
                            }
                        };
                        self.expect(&Token::LBrace)?;
                        let content = if self.tok == Token::RBrace {
                            None
                        } else {
                            Some(Box::new(self.parse_expr()?))
                        };
                        self.expect(&Token::RBrace)?;
                        return Ok(Expr::CompPi { target, content });
                    }
                    _ => {}
                }
                // Function call?
                if self.peek_next()? == Token::LParen {
                    return self.parse_function_call();
                }
                Err(self.err(format!("unexpected name '{n}' in expression position")))
            }
            Token::Name(Some(_), _) => {
                if self.peek_next()? == Token::LParen {
                    return self.parse_function_call();
                }
                Err(self.err("unexpected qualified name"))
            }
            other => Err(self.err(format!("unexpected token {other}"))),
        }
    }

    fn parse_function_call(&mut self) -> PResult<Expr> {
        let name = self.qname_from_token()?;
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.tok != Token::RParen {
            loop {
                args.push(self.parse_expr_single()?);
                if self.tok == Token::Comma {
                    self.advance()?;
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Expr::FunctionCall { name, args })
    }

    // ----- Direct constructors (character level) --------------------------

    fn parse_direct_constructor(&mut self) -> PResult<Expr> {
        // We sit on the `<` token; the element name must follow immediately
        // in the raw input.
        let mut pos = self.lexer.raw_pos();
        let input = self.lexer.input;
        let e = self.parse_direct_element(input, &mut pos)?;
        // Resynchronize the token stream.
        self.lexer.set_pos(pos);
        self.advance()?;
        Ok(e)
    }

    fn raw_err(&self, pos: usize, msg: impl Into<String>) -> SyntaxError {
        SyntaxError {
            message: msg.into(),
            offset: pos,
        }
    }

    fn read_raw_name(&self, input: &str, pos: &mut usize) -> PResult<String> {
        let bytes = input.as_bytes();
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            let ok = if *pos == start {
                b.is_ascii_alphabetic() || b == b'_'
            } else {
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')
            };
            if !ok {
                break;
            }
            *pos += 1;
        }
        if *pos == start {
            return Err(self.raw_err(start, "expected a name in constructor"));
        }
        Ok(input[start..*pos].to_string())
    }

    fn skip_raw_ws(&self, input: &str, pos: &mut usize) {
        while matches!(
            input.as_bytes().get(*pos),
            Some(b' ' | b'\t' | b'\r' | b'\n')
        ) {
            *pos += 1;
        }
    }

    fn parse_direct_element(&mut self, input: &str, pos: &mut usize) -> PResult<Expr> {
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(self.raw_err(*pos, "constructor nesting too deep"));
        }
        let result = self.parse_direct_element_inner(input, pos);
        self.depth -= 1;
        result
    }

    fn parse_direct_element_inner(&mut self, input: &str, pos: &mut usize) -> PResult<Expr> {
        let raw_name = self.read_raw_name(input, pos)?;
        let name = qname_of(&raw_name);
        let mut attributes = Vec::new();
        loop {
            self.skip_raw_ws(input, pos);
            match input.as_bytes().get(*pos) {
                Some(b'/') => {
                    if input.as_bytes().get(*pos + 1) == Some(&b'>') {
                        *pos += 2;
                        return Ok(Expr::DirectElement {
                            name,
                            attributes,
                            content: Vec::new(),
                        });
                    }
                    return Err(self.raw_err(*pos, "expected '/>'"));
                }
                Some(b'>') => {
                    *pos += 1;
                    break;
                }
                Some(_) => {
                    let aname = self.read_raw_name(input, pos)?;
                    self.skip_raw_ws(input, pos);
                    if input.as_bytes().get(*pos) != Some(&b'=') {
                        return Err(self.raw_err(*pos, "expected '=' in attribute"));
                    }
                    *pos += 1;
                    self.skip_raw_ws(input, pos);
                    let parts = self.parse_attr_value_template(input, pos)?;
                    attributes.push((qname_of(&aname), parts));
                }
                None => return Err(self.raw_err(*pos, "unterminated start tag")),
            }
        }
        // Element content.
        let mut content = Vec::new();
        let mut text = String::new();
        loop {
            match input.as_bytes().get(*pos) {
                None => return Err(self.raw_err(*pos, "unterminated element constructor")),
                Some(b'<') => {
                    if input[*pos..].starts_with("</") {
                        flush_text(&mut content, &mut text);
                        *pos += 2;
                        let close = self.read_raw_name(input, pos)?;
                        if close != raw_name {
                            return Err(self.raw_err(
                                *pos,
                                format!("mismatched constructor tags <{raw_name}> … </{close}>"),
                            ));
                        }
                        self.skip_raw_ws(input, pos);
                        if input.as_bytes().get(*pos) != Some(&b'>') {
                            return Err(self.raw_err(*pos, "expected '>'"));
                        }
                        *pos += 1;
                        return Ok(Expr::DirectElement {
                            name,
                            attributes,
                            content,
                        });
                    } else if input[*pos..].starts_with("<!--") {
                        flush_text(&mut content, &mut text);
                        let end = input[*pos + 4..]
                            .find("-->")
                            .ok_or_else(|| self.raw_err(*pos, "unterminated comment"))?;
                        let c = input[*pos + 4..*pos + 4 + end].to_string();
                        *pos += 4 + end + 3;
                        content.push(DirectContent::Child(Expr::CompComment(Box::new(
                            Expr::Literal(AtomicValue::string(c)),
                        ))));
                    } else if input[*pos..].starts_with("<![CDATA[") {
                        let end = input[*pos + 9..]
                            .find("]]>")
                            .ok_or_else(|| self.raw_err(*pos, "unterminated CDATA"))?;
                        text.push_str(&input[*pos + 9..*pos + 9 + end]);
                        *pos += 9 + end + 3;
                    } else {
                        flush_text(&mut content, &mut text);
                        *pos += 1;
                        let child = self.parse_direct_element(input, pos)?;
                        content.push(DirectContent::Child(child));
                    }
                }
                Some(b'{') => {
                    if input.as_bytes().get(*pos + 1) == Some(&b'{') {
                        text.push('{');
                        *pos += 2;
                    } else {
                        flush_text(&mut content, &mut text);
                        *pos += 1;
                        // Re-enter the token-level parser for the enclosed
                        // expression.
                        self.lexer.set_pos(*pos);
                        self.advance()?;
                        let e = self.parse_expr()?;
                        if self.tok != Token::RBrace {
                            return Err(self.err("expected '}' closing enclosed expression"));
                        }
                        // The raw cursor resumes right after the '}' token.
                        *pos = self.lexer.raw_pos();
                        content.push(DirectContent::Enclosed(e));
                    }
                }
                Some(b'}') => {
                    if input.as_bytes().get(*pos + 1) == Some(&b'}') {
                        text.push('}');
                        *pos += 2;
                    } else {
                        return Err(self.raw_err(*pos, "'}' must be doubled in element content"));
                    }
                }
                Some(b'&') => {
                    let (s, used) = parse_raw_entity(input, *pos)
                        .ok_or_else(|| self.raw_err(*pos, "bad entity reference"))?;
                    text.push_str(&s);
                    *pos += used;
                }
                Some(_) => {
                    let c = input[*pos..].chars().next().unwrap();
                    text.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_attr_value_template(
        &mut self,
        input: &str,
        pos: &mut usize,
    ) -> PResult<Vec<AttrValuePart>> {
        let quote = match input.as_bytes().get(*pos) {
            Some(&q @ (b'"' | b'\'')) => q,
            _ => return Err(self.raw_err(*pos, "expected quoted attribute value")),
        };
        *pos += 1;
        let mut parts = Vec::new();
        let mut text = String::new();
        loop {
            match input.as_bytes().get(*pos) {
                None => return Err(self.raw_err(*pos, "unterminated attribute value")),
                Some(&q) if q == quote => {
                    if input.as_bytes().get(*pos + 1) == Some(&q) {
                        text.push(q as char);
                        *pos += 2;
                    } else {
                        *pos += 1;
                        if !text.is_empty() {
                            parts.push(AttrValuePart::Text(std::mem::take(&mut text)));
                        }
                        return Ok(parts);
                    }
                }
                Some(b'{') => {
                    if input.as_bytes().get(*pos + 1) == Some(&b'{') {
                        text.push('{');
                        *pos += 2;
                    } else {
                        if !text.is_empty() {
                            parts.push(AttrValuePart::Text(std::mem::take(&mut text)));
                        }
                        *pos += 1;
                        self.lexer.set_pos(*pos);
                        self.advance()?;
                        let e = self.parse_expr()?;
                        if self.tok != Token::RBrace {
                            return Err(self.err("expected '}' in attribute template"));
                        }
                        *pos = self.lexer.raw_pos();
                        parts.push(AttrValuePart::Enclosed(e));
                    }
                }
                Some(b'}') => {
                    if input.as_bytes().get(*pos + 1) == Some(&b'}') {
                        text.push('}');
                        *pos += 2;
                    } else {
                        return Err(self.raw_err(*pos, "'}' must be doubled in attribute value"));
                    }
                }
                Some(b'&') => {
                    let (s, used) = parse_raw_entity(input, *pos)
                        .ok_or_else(|| self.raw_err(*pos, "bad entity reference"))?;
                    text.push_str(&s);
                    *pos += used;
                }
                Some(_) => {
                    let c = input[*pos..].chars().next().unwrap();
                    text.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    // ----- Types ----------------------------------------------------------

    fn parse_sequence_type(&mut self) -> PResult<SequenceType> {
        if self.tok.is_name("empty-sequence") && self.peek_next()? == Token::LParen {
            self.advance()?;
            self.expect(&Token::LParen)?;
            self.expect(&Token::RParen)?;
            return Ok(SequenceType::empty_sequence());
        }
        let item = self.parse_item_type()?;
        let occ = match self.tok {
            Token::Question => {
                self.advance()?;
                Occurrence::Optional
            }
            Token::Star => {
                self.advance()?;
                Occurrence::Star
            }
            Token::Plus => {
                self.advance()?;
                Occurrence::Plus
            }
            _ => Occurrence::One,
        };
        Ok(SequenceType::new(item, occ))
    }

    fn parse_item_type(&mut self) -> PResult<ItemType> {
        match self.tok.clone() {
            Token::Name(None, n) if n == "item" && self.peek_next()? == Token::LParen => {
                self.advance()?;
                self.expect(&Token::LParen)?;
                self.expect(&Token::RParen)?;
                Ok(ItemType::AnyItem)
            }
            Token::Name(None, ref n)
                if is_kind_test_name(n) && self.peek_next()? == Token::LParen =>
            {
                Ok(ItemType::Kind(self.parse_kind_test()?))
            }
            Token::Name(..) => {
                let q = self.qname_from_token()?;
                match atomic_type_of(&q) {
                    Some(t) => Ok(ItemType::Atomic(t)),
                    None => Err(self.err(format!("unknown atomic type {q}"))),
                }
            }
            other => Err(self.err(format!("expected an item type, found {other}"))),
        }
    }

    fn parse_single_type(&mut self) -> PResult<(AtomicType, bool)> {
        let q = self.qname_from_token()?;
        let t = atomic_type_of(&q).ok_or_else(|| self.err(format!("unknown atomic type {q}")))?;
        let optional = if self.tok == Token::Question {
            self.advance()?;
            true
        } else {
            false
        };
        Ok((t, optional))
    }
}

fn flush_text(content: &mut Vec<DirectContent>, text: &mut String) {
    if !text.is_empty() {
        // Boundary whitespace is stripped (boundary-space strip policy).
        if !text.chars().all(char::is_whitespace) {
            content.push(DirectContent::Text(std::mem::take(text)));
        } else {
            text.clear();
        }
    }
}

fn parse_raw_entity(input: &str, pos: usize) -> Option<(String, usize)> {
    let rest = &input[pos..];
    let semi = rest[..rest.len().min(16)].find(';')?;
    let ent = &rest[1..semi];
    let s = match ent {
        "lt" => "<".to_string(),
        "gt" => ">".to_string(),
        "amp" => "&".to_string(),
        "quot" => "\"".to_string(),
        "apos" => "'".to_string(),
        _ if ent.starts_with("#x") => {
            char::from_u32(u32::from_str_radix(&ent[2..], 16).ok()?)?.to_string()
        }
        _ if ent.starts_with('#') => char::from_u32(ent[1..].parse().ok()?)?.to_string(),
        _ => return None,
    };
    Some((s, semi + 1))
}

fn qname_of(raw: &str) -> QName {
    match raw.split_once(':') {
        Some((p, l)) => QName::full(Some(p), None, l),
        None => QName::local(raw),
    }
}

fn is_kind_test_name(n: &str) -> bool {
    matches!(
        n,
        "node"
            | "text"
            | "comment"
            | "processing-instruction"
            | "element"
            | "attribute"
            | "document-node"
    )
}

/// Maps a lexical type name (`xs:integer`, `integer`, `xdt:untypedAtomic`)
/// to an [`AtomicType`].
pub fn atomic_type_of(q: &QName) -> Option<AtomicType> {
    let local = q.local_part().rsplit(':').next().unwrap_or(q.local_part());
    AtomicType::by_local_name(local)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Expr {
        parse_expr_str(s).unwrap_or_else(|e| panic!("parse failed for {s:?}: {e}"))
    }

    #[test]
    fn literals_and_sequences() {
        assert!(matches!(
            parse("42"),
            Expr::Literal(AtomicValue::Integer(42))
        ));
        assert!(matches!(
            parse("'x'"),
            Expr::Literal(AtomicValue::String(_))
        ));
        assert!(matches!(parse("()"), Expr::Sequence(v) if v.is_empty()));
        assert!(matches!(parse("(1, 2, 3)"), Expr::Sequence(v) if v.len() == 3));
    }

    #[test]
    fn operators_and_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = parse("1 + 2 * 3")
        else {
            panic!("expected +");
        };
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
        // comparisons beneath 'and'
        let Expr::Binary {
            op: BinOp::And,
            lhs,
            ..
        } = parse("1 = 2 and 3 < 4")
        else {
            panic!("expected and");
        };
        assert!(matches!(
            *lhs,
            Expr::Binary {
                op: BinOp::GenEq,
                ..
            }
        ));
        assert!(matches!(
            parse("1 to 5"),
            Expr::Binary {
                op: BinOp::Range,
                ..
            }
        ));
        assert!(matches!(
            parse("$a is $b"),
            Expr::Binary { op: BinOp::Is, .. }
        ));
        assert!(matches!(
            parse("1 eq 1"),
            Expr::Binary {
                op: BinOp::ValEq,
                ..
            }
        ));
    }

    #[test]
    fn flwor_full() {
        let e = parse(
            "for $x at $i in (1,2), $y in (3,4) let $z := $x + $y \
             where $z > 3 order by $z descending empty greatest return ($x, $z)",
        );
        let Expr::Flwor { clauses, .. } = e else {
            panic!("expected flwor")
        };
        assert_eq!(clauses.len(), 5);
        assert!(matches!(&clauses[0], FlworClause::For { at: Some(_), .. }));
        assert!(matches!(&clauses[2], FlworClause::Let { .. }));
        assert!(matches!(&clauses[3], FlworClause::Where(_)));
        assert!(matches!(&clauses[4], FlworClause::OrderBy { specs, .. }
                if specs.len() == 1 && specs[0].descending && !specs[0].empty_least));
    }

    #[test]
    fn for_with_type_declaration() {
        let e = parse("for $a as element(*,Auction)* in $x return $a");
        let Expr::Flwor { clauses, .. } = e else {
            panic!()
        };
        assert!(matches!(
            &clauses[0],
            FlworClause::For {
                as_type: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn quantified() {
        let e = parse("some $x in (1,2) satisfies $x = 2");
        assert!(matches!(e, Expr::Quantified { every: false, .. }));
        let e = parse("every $x in (1,2), $y in (3,4) satisfies $x < $y");
        let Expr::Quantified {
            every: true,
            bindings,
            ..
        } = e
        else {
            panic!()
        };
        assert_eq!(bindings.len(), 2);
    }

    #[test]
    fn typeswitch() {
        let e = parse(
            "typeswitch ($a) case $u as element(*,USAuction) return $u \
             case element(*,EUAuction) return 1 default $o return $o",
        );
        let Expr::Typeswitch {
            cases, default_var, ..
        } = e
        else {
            panic!()
        };
        assert_eq!(cases.len(), 2);
        assert!(cases[0].var.is_some());
        assert!(cases[1].var.is_none());
        assert!(default_var.is_some());
    }

    #[test]
    fn conditionals() {
        assert!(matches!(parse("if (1) then 2 else 3"), Expr::If { .. }));
    }

    #[test]
    fn paths() {
        // $d/descendant::person[position() = 1]
        let e = parse("$d/descendant::person[position() = 1]");
        let Expr::PathSlash(lhs, rhs) = e else {
            panic!("expected path")
        };
        assert!(matches!(*lhs, Expr::VarRef(_)));
        let Expr::AxisStep {
            axis: Axis::Descendant,
            predicates,
            ..
        } = *rhs
        else {
            panic!("expected step")
        };
        assert_eq!(predicates.len(), 1);
    }

    #[test]
    fn abbreviated_paths() {
        // $a//b/@id and ..
        let e = parse("$a//closed_auction/@person");
        let Expr::PathSlash(inner, last) = e else {
            panic!()
        };
        assert!(matches!(
            *last,
            Expr::AxisStep {
                axis: Axis::Attribute,
                ..
            }
        ));
        let Expr::PathSlash(inner2, step) = *inner else {
            panic!()
        };
        assert!(matches!(
            *step,
            Expr::AxisStep {
                axis: Axis::Child,
                ..
            }
        ));
        let Expr::PathSlash(_, dos) = *inner2 else {
            panic!()
        };
        assert!(matches!(
            *dos,
            Expr::AxisStep {
                axis: Axis::DescendantOrSelf,
                ..
            }
        ));
        assert!(matches!(
            parse(".."),
            Expr::AxisStep {
                axis: Axis::Parent,
                ..
            }
        ));
    }

    #[test]
    fn absolute_paths() {
        assert!(matches!(parse("/"), Expr::Root));
        let e = parse("/site/people");
        let Expr::PathSlash(lhs, _) = e else { panic!() };
        assert!(matches!(*lhs, Expr::PathSlash(r, _) if matches!(*r, Expr::Root)));
    }

    #[test]
    fn kind_test_steps() {
        let e = parse("$x/text()");
        let Expr::PathSlash(_, step) = e else {
            panic!()
        };
        assert!(matches!(
            *step,
            Expr::AxisStep {
                test: NodeTest::Kind(KindTest::Text),
                ..
            }
        ));
        let e = parse("$a/element(*, USSeller)");
        let Expr::PathSlash(_, step) = e else {
            panic!()
        };
        assert!(matches!(
            *step,
            Expr::AxisStep {
                test: NodeTest::Kind(KindTest::Element(None, Some(_))),
                ..
            }
        ));
    }

    #[test]
    fn function_calls_vs_steps() {
        let e = parse("count($x)");
        assert!(
            matches!(e, Expr::FunctionCall { ref name, ref args } if name.local_part() == "count" && args.len() == 1)
        );
        let e = parse("$d/fn:data(.)");
        let Expr::PathSlash(_, rhs) = e else { panic!() };
        assert!(matches!(*rhs, Expr::FunctionCall { .. }));
    }

    #[test]
    fn predicates_on_primary() {
        let e = parse("$items[3]");
        assert!(matches!(e, Expr::Filter { ref predicates, .. } if predicates.len() == 1));
    }

    #[test]
    fn direct_constructor_simple() {
        let e = parse("<item/>");
        let Expr::DirectElement {
            name,
            attributes,
            content,
        } = e
        else {
            panic!()
        };
        assert_eq!(name.local_part(), "item");
        assert!(attributes.is_empty());
        assert!(content.is_empty());
    }

    #[test]
    fn direct_constructor_nested_with_enclosed() {
        let e = parse(r#"<item person="{$p/name}"><name>{ $n }</name>static</item>"#);
        let Expr::DirectElement {
            attributes,
            content,
            ..
        } = e
        else {
            panic!()
        };
        assert_eq!(attributes.len(), 1);
        assert!(matches!(&attributes[0].1[0], AttrValuePart::Enclosed(_)));
        assert_eq!(content.len(), 2);
        let DirectContent::Child(Expr::DirectElement { content: inner, .. }) = &content[0] else {
            panic!("expected nested element")
        };
        assert!(matches!(&inner[0], DirectContent::Enclosed(_)));
        assert!(matches!(&content[1], DirectContent::Text(t) if t == "static"));
    }

    #[test]
    fn direct_constructor_escapes() {
        let e = parse("<a>x {{ y }} &amp; z</a>");
        let Expr::DirectElement { content, .. } = e else {
            panic!()
        };
        assert!(matches!(&content[0], DirectContent::Text(t) if t == "x { y } & z"));
    }

    #[test]
    fn computed_constructors() {
        assert!(matches!(
            parse("element item { 1 }"),
            Expr::CompElement {
                name: Ok(_),
                content: Some(_)
            }
        ));
        assert!(matches!(
            parse("element { $n } { 1 }"),
            Expr::CompElement { name: Err(_), .. }
        ));
        assert!(matches!(
            parse("attribute id { 'x' }"),
            Expr::CompAttribute { .. }
        ));
        assert!(matches!(parse("text { 'x' }"), Expr::CompText(_)));
        assert!(matches!(parse("comment { 'x' }"), Expr::CompComment(_)));
        assert!(matches!(parse("document { <a/> }"), Expr::CompDocument(_)));
    }

    #[test]
    fn type_expressions() {
        assert!(matches!(
            parse("$x instance of xs:integer+"),
            Expr::InstanceOf(..)
        ));
        assert!(matches!(
            parse("$x cast as xs:double?"),
            Expr::CastAs(_, AtomicType::Double, true)
        ));
        assert!(matches!(
            parse("$x castable as xs:date"),
            Expr::CastableAs(..)
        ));
        assert!(matches!(
            parse("$x treat as element(*,Auction)*"),
            Expr::TreatAs(..)
        ));
        assert!(matches!(
            parse("validate strict { $d }"),
            Expr::Validate(ValidationModeAst::Strict, _)
        ));
        assert!(matches!(
            parse("validate { $d }"),
            Expr::Validate(ValidationModeAst::Lax, _)
        ));
    }

    #[test]
    fn union_and_set_ops() {
        assert!(matches!(
            parse("$a | $b"),
            Expr::Binary {
                op: BinOp::Union,
                ..
            }
        ));
        assert!(matches!(
            parse("$a intersect $b"),
            Expr::Binary {
                op: BinOp::Intersect,
                ..
            }
        ));
        assert!(matches!(
            parse("$a except $b"),
            Expr::Binary {
                op: BinOp::Except,
                ..
            }
        ));
    }

    #[test]
    fn module_with_prolog() {
        let m = parse_query(
            "xquery version '1.0'; \
             declare namespace foo = 'http://foo'; \
             declare variable $size := 10; \
             declare variable $ext external; \
             declare function local:double($x as xs:integer) as xs:integer { $x * 2 }; \
             local:double($size)",
        )
        .unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.variables.len(), 2);
        assert!(!m.variables[0].external);
        assert!(m.variables[1].external);
        assert!(m.variables[1].value.is_none());
        assert_eq!(m.functions[0].params.len(), 1);
    }

    #[test]
    fn external_variable_with_type_and_default() {
        let m = parse_query("declare variable $n as xs:integer external := 42; $n").unwrap();
        assert_eq!(m.variables.len(), 1);
        assert!(m.variables[0].external);
        assert!(m.variables[0].as_type.is_some());
        assert!(m.variables[0].value.is_some());
    }

    #[test]
    fn keywords_usable_as_names() {
        // 'for' as an element name in a path.
        let e = parse("$x/for");
        let Expr::PathSlash(_, step) = e else {
            panic!()
        };
        assert!(matches!(*step, Expr::AxisStep { .. }));
        // 'if' as element name.
        assert!(matches!(parse("$x/if"), Expr::PathSlash(..)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_expr_str("for $x in").is_err());
        assert!(parse_expr_str("(1,").is_err());
        assert!(parse_expr_str("<a><b></a></b>").is_err());
        assert!(parse_expr_str("if (1) then 2").is_err());
        assert!(parse_expr_str("1 =").is_err());
    }

    #[test]
    fn xmark_q8_variant_parses() {
        // The paper's Section 2 running example.
        let q = r#"
            for $p in $auction//person
            let $a as element(*,Auction)* :=
                for $t in $auction//closed_auction
                where $t/buyer/@person = $p/@id
                return validate { $t }
            return <item person="{$p/name/text()}">{ count($a/element(*,USSeller)) }</item>
        "#;
        let e = parse(q);
        assert!(matches!(e, Expr::Flwor { .. }));
    }
}
