//! # xqr-frontend — the XQuery 1.0 language frontend
//!
//! * [`lexer`] — a hand-written tokenizer (XQuery has no reserved words;
//!   keywords are recognized contextually by the parser);
//! * [`ast`] — the surface abstract syntax;
//! * [`parser`] — a recursive-descent parser for the XQuery expression
//!   language, FLWOR, quantified expressions, typeswitch, path expressions,
//!   direct and computed constructors, and a prolog with function and
//!   variable declarations;
//! * [`core_ast`] — the XQuery Core as modified by the paper (Section 4):
//!   FLWOR blocks preserved, path steps normalized into single FLWOR blocks
//!   with `at`/`where` clauses, typeswitch with one common variable;
//! * [`normalize`] — surface → Core normalization, plus the nested-FLWOR
//!   hoisting pass that makes the unnesting rewritings of Section 5 robust
//!   against constructors wrapped around nested blocks.

pub mod ast;
pub mod core_ast;
pub mod lexer;
pub mod normalize;
pub mod parser;

pub use ast::{Expr, Module};
pub use core_ast::{CoreClause, CoreExpr, CoreFunction, CoreGlobal, CoreModule};
pub use normalize::normalize_module;
pub use parser::{parse_query, parse_query_with, SyntaxError};

/// Parses and normalizes a query in one step.
pub fn frontend(query: &str) -> Result<CoreModule, SyntaxError> {
    let module = parse_query(query)?;
    Ok(normalize_module(&module))
}

/// [`frontend`] with a configurable parser nesting-depth ceiling
/// (`Limits::max_parse_depth` at the engine boundary).
pub fn frontend_with(query: &str, max_parse_depth: usize) -> Result<CoreModule, SyntaxError> {
    let module = parse_query_with(query, max_parse_depth)?;
    Ok(normalize_module(&module))
}
