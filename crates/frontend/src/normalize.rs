//! Normalization: surface syntax → the (paper-modified) XQuery Core.
//!
//! Follows the W3C Formal Semantics normalization rules with the paper's
//! Section 4 changes:
//!
//! * FLWOR expressions keep their clause structure;
//! * each path step with predicates becomes **one complete FLWOR block**
//!   (`for $fs:dot at $fs:position in … where … return $fs:dot`) instead of
//!   a for + conditional chain — positional predicates become `where`
//!   clauses over the `at` variable;
//! * typeswitch is normalized to bind one common variable;
//! * general/value comparisons, arithmetic and set operators are lowered to
//!   `fs:`/`op:` calls that carry the full XQuery predicate semantics
//!   (atomization, existential quantification, `fs:convert-operand`);
//! * logical `and`/`or` become conditionals (preserving 2-valued EBV).
//!
//! A final **nested-FLWOR hoisting** pass lifts FLWOR blocks buried inside
//! constructor content or call arguments of a `return` clause into fresh
//! `let` clauses. This is what makes the (insert group-by) rewriting of
//! Section 5 fire for Clio-style queries, where nested blocks appear inside
//! element constructors rather than in `let` clauses.

use xqr_xml::axes::{Axis, NodeTest};
use xqr_xml::{AtomicValue, QName};

use crate::ast::*;
use crate::core_ast::*;

/// The context-item variable (`$fs:dot` in the paper's examples).
pub const FS_DOT: &str = "fs:dot";
/// The positional variable bound by `at` clauses in step FLWORs.
pub const FS_POSITION: &str = "fs:position";
/// The context-size variable (bound only when `last()` occurs).
pub const FS_LAST: &str = "fs:last";
/// The sequence variable materializing a step result for predicates.
pub const FS_SEQ: &str = "fs:seq";

/// Normalizes a parsed module.
pub fn normalize_module(m: &Module) -> CoreModule {
    let mut n = Normalizer::default();
    let functions = m
        .functions
        .iter()
        .map(|f| CoreFunction {
            // Canonicalize "prefix:local" into a single local name, matching
            // how call sites are normalized.
            name: canonical_function_name(&f.name),
            params: f.params.clone(),
            return_type: f.return_type.clone(),
            body: {
                let mut b = n.expr(&f.body);
                hoist_nested_flwors(&mut b, &mut n.counter);
                b
            },
        })
        .collect();
    let variables = m
        .variables
        .iter()
        .map(|v| CoreGlobal {
            name: v.name.clone(),
            as_type: v.as_type.clone(),
            external: v.external,
            value: v.value.as_ref().map(|e| n.expr(e)),
        })
        .collect();
    let mut body = n.expr(&m.body);
    hoist_nested_flwors(&mut body, &mut n.counter);
    CoreModule {
        functions,
        variables,
        body,
    }
}

/// Canonical function naming: `fn:`-prefixed builtins fold to their local
/// name; other prefixes keep `prefix:local` as one local name.
pub fn canonical_function_name(q: &QName) -> QName {
    match q.prefix() {
        None | Some("fn") => QName::local(q.local_part()),
        Some(p) => QName::local(&format!("{p}:{}", q.local_part())),
    }
}

/// Normalizes a standalone expression (for tests).
pub fn normalize_expr(e: &Expr) -> CoreExpr {
    let mut n = Normalizer::default();
    let mut c = n.expr(e);
    hoist_nested_flwors(&mut c, &mut n.counter);
    c
}

#[derive(Default)]
struct Normalizer {
    counter: usize,
}

impl Normalizer {
    fn expr(&mut self, e: &Expr) -> CoreExpr {
        match e {
            Expr::Literal(v) => CoreExpr::Literal(v.clone()),
            Expr::VarRef(q) => CoreExpr::Var(q.clone()),
            Expr::ContextItem => CoreExpr::var(FS_DOT),
            Expr::Sequence(items) => {
                if items.is_empty() {
                    CoreExpr::Empty
                } else if items.len() == 1 {
                    self.expr(&items[0])
                } else {
                    CoreExpr::Seq(items.iter().map(|i| self.expr(i)).collect())
                }
            }
            Expr::Flwor {
                clauses,
                return_expr,
            } => {
                let core_clauses = clauses.iter().map(|c| self.clause(c)).collect();
                CoreExpr::Flwor {
                    clauses: core_clauses,
                    ret: Box::new(self.expr(return_expr)),
                }
            }
            Expr::Quantified {
                every,
                bindings,
                satisfies,
            } => {
                let clauses = bindings
                    .iter()
                    .map(|(v, t, e)| CoreClause::For {
                        var: v.clone(),
                        at: None,
                        as_type: t.clone(),
                        expr: self.expr(e),
                    })
                    .collect();
                CoreExpr::Quantified {
                    every: *every,
                    clauses,
                    satisfies: Box::new(self.ebv(satisfies)),
                }
            }
            Expr::Typeswitch {
                input,
                cases,
                default_var,
                default,
            } => {
                // The paper's common-variable form.
                let var = self.fresh("fs:tsw");
                let cases = cases
                    .iter()
                    .map(|c| {
                        let body = self.bind_alias(&c.var, &var, &c.body);
                        (c.seq_type.clone(), body)
                    })
                    .collect();
                let default = self.bind_alias(default_var, &var, default);
                CoreExpr::Typeswitch {
                    var,
                    input: Box::new(self.expr(input)),
                    cases,
                    default: Box::new(default),
                }
            }
            Expr::If { cond, then, els } => CoreExpr::If {
                cond: Box::new(self.ebv(cond)),
                then: Box::new(self.expr(then)),
                els: Box::new(self.expr(els)),
            },
            Expr::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs),
            Expr::UnaryMinus(inner) => {
                CoreExpr::call("fs:numeric-unary-minus", vec![self.expr(inner)])
            }
            Expr::Root => CoreExpr::call("root", vec![CoreExpr::var(FS_DOT)]),
            Expr::PathSlash(lhs, rhs) => self.path_slash(lhs, rhs),
            Expr::AxisStep {
                axis,
                test,
                predicates,
            } => {
                // A leading step applies to the context item.
                self.step_with_predicates(CoreExpr::var(FS_DOT), *axis, test, predicates)
            }
            Expr::Filter {
                primary,
                predicates,
            } => {
                let input = self.expr(primary);
                self.apply_predicates(input, predicates)
            }
            Expr::FunctionCall { name, args } => self.function_call(name, args),
            Expr::DirectElement {
                name,
                attributes,
                content,
            } => {
                let mut parts: Vec<CoreExpr> = Vec::new();
                for (aname, avparts) in attributes {
                    parts.push(CoreExpr::AttributeCtor {
                        name: Ok(aname.clone()),
                        content: Box::new(self.attr_value(avparts)),
                    });
                }
                for c in content {
                    parts.push(match c {
                        DirectContent::Text(t) => CoreExpr::TextCtor(Box::new(CoreExpr::Literal(
                            AtomicValue::string(t.as_str()),
                        ))),
                        DirectContent::Enclosed(e) | DirectContent::Child(e) => self.expr(e),
                    });
                }
                let content = match parts.len() {
                    0 => CoreExpr::Empty,
                    1 => parts.pop().expect("one part"),
                    _ => CoreExpr::Seq(parts),
                };
                CoreExpr::ElementCtor {
                    name: Ok(name.clone()),
                    content: Box::new(content),
                }
            }
            Expr::CompElement { name, content } => CoreExpr::ElementCtor {
                name: self.comp_name(name),
                content: Box::new(self.opt_content(content)),
            },
            Expr::CompAttribute { name, content } => CoreExpr::AttributeCtor {
                name: self.comp_name(name),
                content: Box::new(self.opt_content(content)),
            },
            Expr::CompText(c) => CoreExpr::TextCtor(Box::new(self.expr(c))),
            Expr::CompComment(c) => CoreExpr::CommentCtor(Box::new(self.expr(c))),
            Expr::CompPi { target, content } => CoreExpr::PiCtor {
                target: target.clone(),
                content: Box::new(self.opt_content(content)),
            },
            Expr::CompDocument(c) => CoreExpr::DocumentCtor(Box::new(self.expr(c))),
            Expr::InstanceOf(inner, st) => CoreExpr::InstanceOf {
                expr: Box::new(self.expr(inner)),
                st: st.clone(),
            },
            Expr::TreatAs(inner, st) => CoreExpr::TypeAssert {
                expr: Box::new(self.expr(inner)),
                st: st.clone(),
            },
            Expr::CastAs(inner, ty, opt) => CoreExpr::Cast {
                expr: Box::new(self.expr(inner)),
                ty: *ty,
                optional: *opt,
            },
            Expr::CastableAs(inner, ty, opt) => CoreExpr::Castable {
                expr: Box::new(self.expr(inner)),
                ty: *ty,
                optional: *opt,
            },
            Expr::Validate(mode, inner) => CoreExpr::Validate {
                mode: match mode {
                    ValidationModeAst::Lax => xqr_types::ValidationMode::Lax,
                    ValidationModeAst::Strict => xqr_types::ValidationMode::Strict,
                },
                expr: Box::new(self.expr(inner)),
            },
        }
    }

    fn fresh(&mut self, base: &str) -> QName {
        self.counter += 1;
        QName::local(&format!("{base}#{}", self.counter))
    }

    /// Wraps `case $u as T return E` bodies so the case variable aliases the
    /// common typeswitch variable.
    fn bind_alias(&mut self, alias: &Option<QName>, common: &QName, body: &Expr) -> CoreExpr {
        let b = self.expr(body);
        match alias {
            None => b,
            Some(v) => CoreExpr::Flwor {
                clauses: vec![CoreClause::Let {
                    var: v.clone(),
                    as_type: None,
                    expr: CoreExpr::Var(common.clone()),
                }],
                ret: Box::new(b),
            },
        }
    }

    fn clause(&mut self, c: &FlworClause) -> CoreClause {
        match c {
            FlworClause::For {
                var,
                as_type,
                at,
                expr,
            } => CoreClause::For {
                var: var.clone(),
                at: at.clone(),
                as_type: as_type.clone(),
                expr: self.expr(expr),
            },
            FlworClause::Let { var, as_type, expr } => CoreClause::Let {
                var: var.clone(),
                as_type: as_type.clone(),
                expr: self.expr(expr),
            },
            FlworClause::Where(e) => CoreClause::Where(self.ebv(e)),
            FlworClause::OrderBy { specs, .. } => CoreClause::OrderBy(
                specs
                    .iter()
                    .map(|s| CoreOrderSpec {
                        key: self.expr(&s.key),
                        descending: s.descending,
                        empty_least: s.empty_least,
                    })
                    .collect(),
            ),
        }
    }

    /// Effective boolean value wrapping, skipped for statically boolean
    /// expressions (keeps join predicates recognizable).
    fn ebv(&mut self, e: &Expr) -> CoreExpr {
        let c = self.expr(e);
        if c.is_statically_boolean() {
            c
        } else {
            CoreExpr::call("boolean", vec![c])
        }
    }

    fn binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> CoreExpr {
        use BinOp::*;
        let name = match op {
            Or => {
                return CoreExpr::If {
                    cond: Box::new(self.ebv(lhs)),
                    then: Box::new(CoreExpr::boolean(true)),
                    els: Box::new(self.ebv(rhs)),
                }
            }
            And => {
                return CoreExpr::If {
                    cond: Box::new(self.ebv(lhs)),
                    then: Box::new(self.ebv(rhs)),
                    els: Box::new(CoreExpr::boolean(false)),
                }
            }
            GenEq => "fs:general-eq",
            GenNe => "fs:general-ne",
            GenLt => "fs:general-lt",
            GenLe => "fs:general-le",
            GenGt => "fs:general-gt",
            GenGe => "fs:general-ge",
            ValEq => "fs:value-eq",
            ValNe => "fs:value-ne",
            ValLt => "fs:value-lt",
            ValLe => "fs:value-le",
            ValGt => "fs:value-gt",
            ValGe => "fs:value-ge",
            Is => "op:is-same-node",
            Before => "op:node-before",
            After => "op:node-after",
            Add => "fs:numeric-add",
            Sub => "fs:numeric-subtract",
            Mul => "fs:numeric-multiply",
            Div => "fs:numeric-divide",
            IDiv => "fs:numeric-integer-divide",
            Mod => "fs:numeric-mod",
            Range => "op:to",
            Union => "op:union",
            Intersect => "op:intersect",
            Except => "op:except",
        };
        CoreExpr::call(name, vec![self.expr(lhs), self.expr(rhs)])
    }

    fn function_call(&mut self, name: &QName, args: &[Expr]) -> CoreExpr {
        let local = name.local_part();
        // fn:-prefixed builtins are canonicalized to their local name; other
        // prefixes (user functions, clio:, …) keep "prefix:local".
        let canonical = match name.prefix() {
            None | Some("fn") => local.to_string(),
            Some(p) => format!("{p}:{local}"),
        };
        match canonical.as_str() {
            "position" if args.is_empty() => return CoreExpr::var(FS_POSITION),
            "last" if args.is_empty() => return CoreExpr::var(FS_LAST),
            "true" if args.is_empty() => return CoreExpr::boolean(true),
            "false" if args.is_empty() => return CoreExpr::boolean(false),
            _ => {}
        }
        // Constructor functions: `xs:decimal(E)` ≡ `E cast as xs:decimal?`.
        if matches!(name.prefix(), Some("xs") | Some("xdt")) && args.len() == 1 {
            if let Some(ty) = crate::parser::atomic_type_of(name) {
                return CoreExpr::Cast {
                    expr: Box::new(self.expr(&args[0])),
                    ty,
                    optional: true,
                };
            }
        }
        let args = args.iter().map(|a| self.expr(a)).collect();
        CoreExpr::Call {
            name: QName::local(&canonical),
            args,
        }
    }

    fn comp_name(&mut self, name: &Result<QName, Box<Expr>>) -> Result<QName, Box<CoreExpr>> {
        match name {
            Ok(q) => Ok(q.clone()),
            Err(e) => Err(Box::new(self.expr(e))),
        }
    }

    fn opt_content(&mut self, content: &Option<Box<Expr>>) -> CoreExpr {
        match content {
            Some(c) => self.expr(c),
            None => CoreExpr::Empty,
        }
    }

    fn attr_value(&mut self, parts: &[AttrValuePart]) -> CoreExpr {
        if parts.is_empty() {
            return CoreExpr::Literal(AtomicValue::string(""));
        }
        let core_parts: Vec<CoreExpr> = parts
            .iter()
            .map(|p| match p {
                AttrValuePart::Text(t) => CoreExpr::Literal(AtomicValue::string(t.as_str())),
                AttrValuePart::Enclosed(e) => CoreExpr::call("fs:avt", vec![self.expr(e)]),
            })
            .collect();
        if core_parts.len() == 1 {
            core_parts.into_iter().next().expect("one part")
        } else {
            CoreExpr::call("concat", core_parts)
        }
    }

    // ----- Paths -----------------------------------------------------------

    fn path_slash(&mut self, lhs: &Expr, rhs: &Expr) -> CoreExpr {
        let input = self.expr(lhs);
        match rhs {
            Expr::AxisStep {
                axis,
                test,
                predicates,
            } => self.step_with_predicates(input, *axis, test, predicates),
            other => {
                // General `E1/E2`: map E2 over each node of E1 (binding the
                // context item), then sort/dedup into document order.
                let body = self.expr(other);
                CoreExpr::call(
                    "fs:distinct-docorder",
                    vec![CoreExpr::Flwor {
                        clauses: vec![CoreClause::For {
                            var: QName::local(FS_DOT),
                            at: None,
                            as_type: None,
                            expr: input,
                        }],
                        ret: Box::new(body),
                    }],
                )
            }
        }
    }

    fn step_with_predicates(
        &mut self,
        input: CoreExpr,
        axis: Axis,
        test: &NodeTest,
        predicates: &[Expr],
    ) -> CoreExpr {
        if predicates.is_empty() {
            return CoreExpr::Step {
                input: Box::new(input),
                axis,
                test: test.clone(),
            };
        }
        // If every predicate is statically boolean, the step can stay
        // set-at-a-time: positions are never consulted, and filtering the
        // document-ordered step output is equivalent to per-node filtering.
        let normalized: Vec<CoreExpr> = predicates.iter().map(|p| self.expr(p)).collect();
        let all_boolean = normalized.iter().all(|p| {
            p.is_statically_boolean()
                && !expr_uses_var(p, FS_POSITION)
                && !expr_uses_var(p, FS_LAST)
        });
        if all_boolean {
            let step = CoreExpr::Step {
                input: Box::new(input),
                axis,
                test: test.clone(),
            };
            return self.fold_boolean_predicates(step, normalized);
        }
        // Otherwise positions matter: one FLWOR block per context node, per
        // the paper's $d/descendant::person[position()=1] example.
        let step = CoreExpr::Step {
            input: Box::new(CoreExpr::var(FS_DOT)),
            axis,
            test: test.clone(),
        };
        let filtered = self.fold_positional_predicates(step, normalized);
        CoreExpr::call(
            "fs:distinct-docorder",
            vec![CoreExpr::Flwor {
                clauses: vec![CoreClause::For {
                    var: QName::local(FS_DOT),
                    at: None,
                    as_type: None,
                    expr: input,
                }],
                ret: Box::new(filtered),
            }],
        )
    }

    /// Filters over an arbitrary sequence (`E[p]…`), preserving input order.
    fn apply_predicates(&mut self, input: CoreExpr, predicates: &[Expr]) -> CoreExpr {
        let normalized: Vec<CoreExpr> = predicates.iter().map(|p| self.expr(p)).collect();
        self.fold_positional_predicates(input, normalized)
    }

    fn fold_boolean_predicates(&mut self, mut input: CoreExpr, preds: Vec<CoreExpr>) -> CoreExpr {
        for pred in preds {
            input = CoreExpr::Flwor {
                clauses: vec![
                    CoreClause::For {
                        var: QName::local(FS_DOT),
                        at: None,
                        as_type: None,
                        expr: input,
                    },
                    CoreClause::Where(pred),
                ],
                ret: Box::new(CoreExpr::var(FS_DOT)),
            };
        }
        input
    }

    fn fold_positional_predicates(
        &mut self,
        mut input: CoreExpr,
        preds: Vec<CoreExpr>,
    ) -> CoreExpr {
        for pred in preds {
            let uses_last = expr_uses_var(&pred, FS_LAST);
            let uses_position = expr_uses_var(&pred, FS_POSITION);
            let cond = if pred.is_statically_boolean() {
                pred
            } else if pred.is_statically_numeric() {
                CoreExpr::call("fs:value-eq", vec![CoreExpr::var(FS_POSITION), pred])
            } else {
                // Dynamic: numeric values test the position, others take EBV.
                CoreExpr::call("fs:predicate-test", vec![pred, CoreExpr::var(FS_POSITION)])
            };
            let needs_seq_var = uses_last;
            let mut clauses: Vec<CoreClause> = Vec::new();
            let source = if needs_seq_var {
                clauses.push(CoreClause::Let {
                    var: QName::local(FS_SEQ),
                    as_type: None,
                    expr: input,
                });
                clauses.push(CoreClause::Let {
                    var: QName::local(FS_LAST),
                    as_type: None,
                    expr: CoreExpr::call("count", vec![CoreExpr::var(FS_SEQ)]),
                });
                CoreExpr::var(FS_SEQ)
            } else {
                input
            };
            let _ = uses_position;
            clauses.push(CoreClause::For {
                var: QName::local(FS_DOT),
                at: Some(QName::local(FS_POSITION)),
                as_type: None,
                expr: source,
            });
            clauses.push(CoreClause::Where(cond));
            input = CoreExpr::Flwor {
                clauses,
                ret: Box::new(CoreExpr::var(FS_DOT)),
            };
        }
        input
    }
}

/// Does `e` reference the given (local-name) variable freely? Conservative:
/// ignores shadowing, which only widens the answer.
fn expr_uses_var(e: &CoreExpr, name: &str) -> bool {
    let mut found = false;
    visit_exprs(e, &mut |x| {
        if let CoreExpr::Var(q) = x {
            if q.local_part() == name {
                found = true;
            }
        }
    });
    found
}

/// The hoisting pass: inside every FLWOR's return expression, lift nested
/// FLWOR blocks (reachable without crossing binding or conditional
/// constructs) into fresh trailing `let` clauses.
pub fn hoist_nested_flwors(e: &mut CoreExpr, counter: &mut usize) {
    // Bottom-up: process children first so nested blocks are themselves
    // already in hoisted form when they get lifted.
    match e {
        CoreExpr::Literal(_) | CoreExpr::Var(_) | CoreExpr::Empty => {}
        CoreExpr::Seq(items) => {
            for i in items {
                hoist_nested_flwors(i, counter);
            }
        }
        CoreExpr::Flwor { clauses, ret } => {
            for c in clauses.iter_mut() {
                match c {
                    CoreClause::For { expr, .. } | CoreClause::Let { expr, .. } => {
                        hoist_nested_flwors(expr, counter)
                    }
                    CoreClause::Where(w) => hoist_nested_flwors(w, counter),
                    CoreClause::OrderBy(specs) => {
                        for s in specs {
                            hoist_nested_flwors(&mut s.key, counter);
                        }
                    }
                }
            }
            hoist_nested_flwors(ret, counter);
            let mut lets = Vec::new();
            extract_nested(ret, &mut lets, counter, true);
            clauses.extend(lets);
        }
        CoreExpr::Quantified {
            clauses, satisfies, ..
        } => {
            for c in clauses.iter_mut() {
                if let CoreClause::For { expr, .. } = c {
                    hoist_nested_flwors(expr, counter);
                }
            }
            hoist_nested_flwors(satisfies, counter);
        }
        CoreExpr::Typeswitch {
            input,
            cases,
            default,
            ..
        } => {
            hoist_nested_flwors(input, counter);
            for (_, b) in cases {
                hoist_nested_flwors(b, counter);
            }
            hoist_nested_flwors(default, counter);
        }
        CoreExpr::If { cond, then, els } => {
            hoist_nested_flwors(cond, counter);
            hoist_nested_flwors(then, counter);
            hoist_nested_flwors(els, counter);
        }
        CoreExpr::Step { input, .. } => hoist_nested_flwors(input, counter),
        CoreExpr::Call { args, .. } => {
            for a in args {
                hoist_nested_flwors(a, counter);
            }
        }
        CoreExpr::ElementCtor { name, content } | CoreExpr::AttributeCtor { name, content } => {
            if let Err(ne) = name {
                hoist_nested_flwors(ne, counter);
            }
            hoist_nested_flwors(content, counter);
        }
        CoreExpr::TextCtor(c)
        | CoreExpr::CommentCtor(c)
        | CoreExpr::DocumentCtor(c)
        | CoreExpr::PiCtor { content: c, .. } => hoist_nested_flwors(c, counter),
        CoreExpr::Cast { expr, .. }
        | CoreExpr::Castable { expr, .. }
        | CoreExpr::TypeAssert { expr, .. }
        | CoreExpr::InstanceOf { expr, .. }
        | CoreExpr::Validate { expr, .. } => hoist_nested_flwors(expr, counter),
    }
}

/// Replaces hoistable nested FLWORs within `e` by fresh variables, pushing
/// `let` clauses into `out`. `top` is true only for the return expression
/// itself (which is never hoisted).
fn extract_nested(e: &mut CoreExpr, out: &mut Vec<CoreClause>, counter: &mut usize, top: bool) {
    if !top {
        if matches!(e, CoreExpr::Flwor { .. }) {
            *counter += 1;
            let var = QName::local(&format!("fs:hoist#{counter}"));
            let flwor = std::mem::replace(e, CoreExpr::Var(var.clone()));
            out.push(CoreClause::Let {
                var,
                as_type: None,
                expr: flwor,
            });
            return;
        }
        // Do not cross binding or conditional constructs.
        if matches!(
            e,
            CoreExpr::Quantified { .. } | CoreExpr::Typeswitch { .. } | CoreExpr::If { .. }
        ) {
            return;
        }
    }
    match e {
        CoreExpr::Seq(items) => {
            for i in items {
                extract_nested(i, out, counter, false);
            }
        }
        CoreExpr::Flwor { .. } if top => {
            // The return expression is itself a FLWOR: leave it be (its own
            // return was already processed by the bottom-up pass).
        }
        CoreExpr::Call { args, .. } => {
            for a in args {
                extract_nested(a, out, counter, false);
            }
        }
        CoreExpr::ElementCtor { name, content } | CoreExpr::AttributeCtor { name, content } => {
            if let Err(ne) = name {
                extract_nested(ne, out, counter, false);
            }
            extract_nested(content, out, counter, false);
        }
        CoreExpr::TextCtor(c)
        | CoreExpr::CommentCtor(c)
        | CoreExpr::DocumentCtor(c)
        | CoreExpr::PiCtor { content: c, .. } => extract_nested(c, out, counter, false),
        CoreExpr::Step { input, .. } => extract_nested(input, out, counter, false),
        CoreExpr::Cast { expr, .. }
        | CoreExpr::Castable { expr, .. }
        | CoreExpr::TypeAssert { expr, .. }
        | CoreExpr::InstanceOf { expr, .. }
        | CoreExpr::Validate { expr, .. } => extract_nested(expr, out, counter, false),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr_str;

    fn norm(s: &str) -> CoreExpr {
        normalize_expr(&parse_expr_str(s).unwrap())
    }

    #[test]
    fn literals_and_vars() {
        assert!(matches!(
            norm("1"),
            CoreExpr::Literal(AtomicValue::Integer(1))
        ));
        assert!(matches!(norm("$x"), CoreExpr::Var(_)));
        assert!(matches!(norm("()"), CoreExpr::Empty));
    }

    #[test]
    fn comparisons_become_fs_calls() {
        let c = norm("$a = $b");
        let CoreExpr::Call { name, args } = c else {
            panic!()
        };
        assert_eq!(name.local_part(), "fs:general-eq");
        assert_eq!(args.len(), 2);
        let c = norm("$a eq $b");
        assert!(matches!(c, CoreExpr::Call { ref name, .. } if name.local_part() == "fs:value-eq"));
    }

    #[test]
    fn and_or_become_conditionals() {
        let c = norm("$a = 1 and $b = 2");
        let CoreExpr::If { els, .. } = c else {
            panic!("expected If")
        };
        assert!(matches!(
            *els,
            CoreExpr::Literal(AtomicValue::Boolean(false))
        ));
        let c = norm("$a = 1 or $b = 2");
        let CoreExpr::If { then, .. } = c else {
            panic!("expected If")
        };
        assert!(matches!(
            *then,
            CoreExpr::Literal(AtomicValue::Boolean(true))
        ));
    }

    #[test]
    fn simple_paths_become_steps() {
        // Simple step chains stay set-at-a-time TreeJoins.
        let c = norm("$d/a/b");
        let CoreExpr::Step {
            input,
            axis: Axis::Child,
            ..
        } = c
        else {
            panic!()
        };
        assert!(matches!(*input, CoreExpr::Step { .. }));
    }

    #[test]
    fn positional_predicate_matches_paper_form() {
        // $d/descendant::person[position() = 1] — paper Section 4.
        let c = norm("$d/descendant::person[position() = 1]");
        // fs:distinct-docorder( for $fs:dot in $d return
        //   for $fs:dot at $fs:position in step where … return $fs:dot )
        let CoreExpr::Call { name, args } = c else {
            panic!("expected ddo call")
        };
        assert_eq!(name.local_part(), "fs:distinct-docorder");
        let CoreExpr::Flwor { clauses, ret } = &args[0] else {
            panic!("outer flwor")
        };
        assert_eq!(clauses.len(), 1);
        let CoreExpr::Flwor { clauses: inner, .. } = &**ret else {
            panic!("inner flwor")
        };
        assert!(matches!(&inner[0], CoreClause::For { at: Some(_), .. }));
        assert!(matches!(&inner[1], CoreClause::Where(_)));
    }

    #[test]
    fn boolean_predicate_stays_set_at_a_time() {
        let c = norm("$auction//closed_auction[.//person = $p]");
        // No ddo wrapper needed: Flwor{for fs:dot in Step, where …}.
        let CoreExpr::Flwor { clauses, .. } = c else {
            panic!("expected flwor, got {c:?}")
        };
        assert!(matches!(
            &clauses[0],
            CoreClause::For {
                at: None,
                expr: CoreExpr::Step { .. },
                ..
            }
        ));
        assert!(matches!(&clauses[1], CoreClause::Where(_)));
    }

    #[test]
    fn numeric_literal_predicate_is_position_test() {
        let c = norm("$items[3]");
        let CoreExpr::Flwor { clauses, .. } = c else {
            panic!()
        };
        let CoreClause::Where(w) = &clauses[1] else {
            panic!()
        };
        let CoreExpr::Call { name, .. } = w else {
            panic!()
        };
        assert_eq!(name.local_part(), "fs:value-eq");
    }

    #[test]
    fn last_binds_context_size() {
        let c = norm("$items[last()]");
        let CoreExpr::Flwor { clauses, .. } = c else {
            panic!()
        };
        assert!(matches!(&clauses[0], CoreClause::Let { var, .. } if var.local_part() == FS_SEQ));
        assert!(matches!(&clauses[1], CoreClause::Let { var, .. } if var.local_part() == FS_LAST));
    }

    #[test]
    fn context_item_becomes_fs_dot() {
        let c = norm("$x/a[. = 1]");
        let CoreExpr::Flwor { clauses, .. } = c else {
            panic!()
        };
        let CoreClause::Where(CoreExpr::Call { args, .. }) = &clauses[1] else {
            panic!()
        };
        assert!(matches!(&args[0], CoreExpr::Var(v) if v.local_part() == FS_DOT));
    }

    #[test]
    fn typeswitch_gets_common_variable() {
        let c = norm("typeswitch ($a) case $u as xs:integer return $u default $o return $o");
        let CoreExpr::Typeswitch {
            var,
            cases,
            default,
            ..
        } = c
        else {
            panic!()
        };
        assert!(var.local_part().starts_with("fs:tsw"));
        // The case body aliases the common variable via a let.
        let CoreExpr::Flwor { clauses, .. } = &cases[0].1 else {
            panic!()
        };
        assert!(matches!(&clauses[0], CoreClause::Let { expr: CoreExpr::Var(v), .. } if v == &var));
        assert!(matches!(&*default, CoreExpr::Flwor { .. }));
    }

    #[test]
    fn where_gets_ebv_only_when_needed() {
        let c = norm("for $x in $s where $x/a return $x");
        let CoreExpr::Flwor { clauses, .. } = c else {
            panic!()
        };
        let CoreClause::Where(w) = &clauses[1] else {
            panic!()
        };
        assert!(matches!(w, CoreExpr::Call { name, .. } if name.local_part() == "boolean"));
        let c = norm("for $x in $s where $x = 1 return $x");
        let CoreExpr::Flwor { clauses, .. } = c else {
            panic!()
        };
        let CoreClause::Where(w) = &clauses[1] else {
            panic!()
        };
        assert!(matches!(w, CoreExpr::Call { name, .. } if name.local_part() == "fs:general-eq"));
    }

    #[test]
    fn nested_flwor_in_constructor_is_hoisted() {
        // The Clio pattern: a nested FLWOR inside element content.
        let c = norm("for $x in $s return <a>{ for $y in $t where $y = $x return $y }</a>");
        let CoreExpr::Flwor { clauses, ret } = c else {
            panic!()
        };
        assert_eq!(clauses.len(), 2, "for + hoisted let");
        let CoreClause::Let { var, expr, .. } = &clauses[1] else {
            panic!("hoisted let")
        };
        assert!(var.local_part().starts_with("fs:hoist"));
        assert!(matches!(expr, CoreExpr::Flwor { .. }));
        // The constructor now references the hoisted variable.
        let CoreExpr::ElementCtor { content, .. } = &*ret else {
            panic!()
        };
        assert!(
            matches!(&**content, CoreExpr::Var(v) if v == var),
            "constructor references hoisted var"
        );
    }

    #[test]
    fn hoisting_does_not_cross_conditionals() {
        let c = norm(
            "for $x in $s return <a>{ if ($x = 1) then (for $y in $t return $y) else () }</a>",
        );
        let CoreExpr::Flwor { clauses, .. } = c else {
            panic!()
        };
        assert_eq!(clauses.len(), 1, "nothing hoisted out of the conditional");
    }

    #[test]
    fn direct_constructor_content() {
        let c = norm(r#"<item person="{$p}">x{ $n }</item>"#);
        let CoreExpr::ElementCtor { name, content } = c else {
            panic!()
        };
        assert_eq!(name.unwrap().local_part(), "item");
        let CoreExpr::Seq(parts) = &*content else {
            panic!()
        };
        assert_eq!(parts.len(), 3); // attribute, text, enclosed
        assert!(matches!(&parts[0], CoreExpr::AttributeCtor { .. }));
        assert!(matches!(&parts[1], CoreExpr::TextCtor(_)));
    }

    #[test]
    fn position_and_last_rewritten() {
        let c = norm("position()");
        assert!(matches!(c, CoreExpr::Var(v) if v.local_part() == FS_POSITION));
        let c = norm("last()");
        assert!(matches!(c, CoreExpr::Var(v) if v.local_part() == FS_LAST));
    }

    #[test]
    fn arithmetic_calls() {
        let c = norm("1 + 2 * 3");
        let CoreExpr::Call { name, args } = c else {
            panic!()
        };
        assert_eq!(name.local_part(), "fs:numeric-add");
        assert!(
            matches!(&args[1], CoreExpr::Call { name, .. } if name.local_part() == "fs:numeric-multiply")
        );
    }

    #[test]
    fn quantified_normalization() {
        let c = norm("some $x in (1,2) satisfies $x = 2");
        let CoreExpr::Quantified {
            every: false,
            clauses,
            satisfies,
        } = c
        else {
            panic!()
        };
        assert_eq!(clauses.len(), 1);
        assert!(satisfies.is_statically_boolean());
    }
}
