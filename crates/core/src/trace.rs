//! Phase tracing: structured span events for the compile/execute pipeline.
//!
//! The engine emits one [`TraceEvent`] per pipeline phase (parse →
//! normalize → compile → rewrite → execute) and one per rewrite rule that
//! fired (with before/after operator counts of the subtree it fired on),
//! behind the [`Tracer`] trait. The default is [`NoopTracer`]; when no
//! tracer is installed the engine skips event construction entirely, so
//! the untraced path does no extra work beyond an `Option` check per
//! phase. [`CollectingTracer`] buffers events for programmatic inspection
//! (tests, tooling); [`StderrTracer`] prints them as they happen, which
//! turns "which rule produced this GroupBy?" into a flag instead of a
//! print-statement session.

use std::cell::RefCell;

/// One structured trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A pipeline phase completed. `detail` carries phase-specific context
    /// (operator counts, strategy, rule totals).
    Span {
        phase: &'static str,
        nanos: u64,
        detail: String,
    },
    /// A rewrite rule fired on some subtree; the operator counts are of
    /// that subtree immediately before and after the rule.
    Rule {
        rule: &'static str,
        before_ops: usize,
        after_ops: usize,
        nanos: u64,
    },
}

impl TraceEvent {
    /// One-line human-readable rendering.
    pub fn render(&self) -> String {
        match self {
            TraceEvent::Span {
                phase,
                nanos,
                detail,
            } => {
                if detail.is_empty() {
                    format!("span {phase} {:.3}ms", *nanos as f64 / 1e6)
                } else {
                    format!("span {phase} {:.3}ms ({detail})", *nanos as f64 / 1e6)
                }
            }
            TraceEvent::Rule {
                rule,
                before_ops,
                after_ops,
                nanos,
            } => format!(
                "rule {rule}: {before_ops} -> {after_ops} ops, {:.1}us",
                *nanos as f64 / 1e3
            ),
        }
    }
}

/// Receiver of trace events. Implementations must tolerate events from
/// any phase in any order (a failing phase may emit no closing span).
pub trait Tracer {
    fn event(&self, ev: &TraceEvent);
}

/// Discards everything (the default when tracing is off).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn event(&self, _ev: &TraceEvent) {}
}

/// Buffers events in memory for later inspection.
#[derive(Debug, Default)]
pub struct CollectingTracer {
    events: RefCell<Vec<TraceEvent>>,
}

impl CollectingTracer {
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of all events received so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().clone()
    }

    /// Drains and returns the buffered events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Phases of the `Span` events received, in order.
    pub fn phases(&self) -> Vec<&'static str> {
        self.events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span { phase, .. } => Some(*phase),
                _ => None,
            })
            .collect()
    }
}

impl Tracer for CollectingTracer {
    fn event(&self, ev: &TraceEvent) {
        self.events.borrow_mut().push(ev.clone());
    }
}

/// Prints each event to stderr as it happens, prefixed `[xqr-trace]`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrTracer;

impl Tracer for StderrTracer {
    fn event(&self, ev: &TraceEvent) {
        eprintln!("[xqr-trace] {}", ev.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_tracer_buffers_in_order() {
        let t = CollectingTracer::new();
        t.event(&TraceEvent::Span {
            phase: "parse",
            nanos: 1_000,
            detail: String::new(),
        });
        t.event(&TraceEvent::Rule {
            rule: "remove map",
            before_ops: 5,
            after_ops: 3,
            nanos: 200,
        });
        t.event(&TraceEvent::Span {
            phase: "execute",
            nanos: 2_000,
            detail: "rows=1".into(),
        });
        assert_eq!(t.phases(), vec!["parse", "execute"]);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.take().len(), 3);
        assert!(t.events().is_empty());
    }

    #[test]
    fn render_is_human_readable() {
        let ev = TraceEvent::Rule {
            rule: "insert join",
            before_ops: 10,
            after_ops: 8,
            nanos: 1_500,
        };
        assert_eq!(ev.render(), "rule insert join: 10 -> 8 ops, 1.5us");
    }
}
