//! Plan pretty-printer in the paper's `Op[params]{deps}(inputs)` notation.
//!
//! `IN#q` field accesses, tuple constructors `[q : e]`, and the boundary
//! maps print exactly as in the paper's plans (P1/P2), which makes the
//! rewrite tests readable against the paper text.

use std::fmt::Write as _;

use crate::algebra::{NamePlan, Op, Plan};

/// Renders a plan on one line (paper style, no indentation).
pub fn compact(p: &Plan) -> String {
    let mut s = String::new();
    write_plan(&mut s, p);
    s
}

/// Renders a plan indented, one operator per line.
pub fn indented(p: &Plan) -> String {
    let mut s = String::new();
    write_indented(&mut s, p, 0);
    s
}

/// `Op` name plus its bracketed parameters — the per-operator label used
/// by both the indented renderers and profile nodes.
pub fn op_label(op: &Op) -> String {
    format!("{}{}", op.name(), params_of(op))
}

/// Renders a plan indented with per-operator annotations.
///
/// `ann` is indexed by *preorder position* over the `Op::children()`
/// traversal order (the same order `plan_size` counts), so callers build
/// annotations by walking the plan once with a counter; indices beyond
/// `ann.len()` are treated as unannotated. This is the single annotation
/// mechanism shared by `explain()` (static execution notes) and
/// `explain_analyze()` (measured cardinalities and timings), so the two
/// renderings cannot drift apart structurally.
///
/// A subtree collapses to its one-line compact form only when *no strict
/// descendant* carries an annotation; the node's own annotation rides on
/// the compact line as a `  -- note` suffix.
pub fn indented_annotated(p: &Plan, ann: &[Option<String>]) -> String {
    let mut s = String::new();
    let mut idx = 0usize;
    write_annotated(&mut s, p, 0, ann, &mut idx);
    s
}

fn ann_at(ann: &[Option<String>], i: usize) -> Option<&str> {
    ann.get(i).and_then(|a| a.as_deref())
}

fn subtree_has_annotation(ann: &[Option<String>], start: usize, end: usize) -> bool {
    ann.iter()
        .take(end.min(ann.len()))
        .skip(start.min(ann.len()))
        .any(|a| a.is_some())
}

fn write_annotated(
    out: &mut String,
    p: &Plan,
    depth: usize,
    ann: &[Option<String>],
    idx: &mut usize,
) {
    let i = *idx;
    let size = crate::algebra::plan_size(p);
    let line = compact(p);
    // Collapse exactly when the unannotated renderer would, provided no
    // strict descendant needs its own annotation line.
    if line.len() <= 60 && !subtree_has_annotation(ann, i + 1, i + size) {
        match ann_at(ann, i) {
            Some(a) => {
                let _ = writeln!(out, "{}{}  -- {}", "  ".repeat(depth), line, a);
            }
            None => {
                let _ = writeln!(out, "{}{}", "  ".repeat(depth), line);
            }
        }
        *idx = i + size;
        return;
    }
    let label = op_label(&p.op);
    match ann_at(ann, i) {
        Some(a) => {
            let _ = writeln!(out, "{}{}  -- {}", "  ".repeat(depth), label, a);
        }
        None => {
            let _ = writeln!(out, "{}{}", "  ".repeat(depth), label);
        }
    }
    *idx = i + 1;
    for (c, kind) in p.op.children() {
        let marker = match kind {
            crate::algebra::ChildKind::Rebinds => "{} ",
            crate::algebra::ChildKind::Inherit => "() ",
        };
        let _ = write!(out, "{}{}", "  ".repeat(depth + 1), marker);
        let mut inner = String::new();
        write_annotated(&mut inner, c, 0, ann, idx);
        let shifted = inner
            .lines()
            .enumerate()
            .map(|(j, l)| {
                if j == 0 {
                    l.to_string()
                } else {
                    format!("{}{}", "  ".repeat(depth + 2), l)
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let _ = writeln!(out, "{shifted}");
    }
}

fn write_indented(out: &mut String, p: &Plan, depth: usize) {
    // Small sub-plans print compactly; larger ones recurse.
    let line = compact(p);
    if line.len() <= 60 {
        let _ = writeln!(out, "{}{}", "  ".repeat(depth), line);
        return;
    }
    let _ = writeln!(
        out,
        "{}{}{}",
        "  ".repeat(depth),
        p.op.name(),
        params_of(&p.op)
    );
    for (c, kind) in p.op.children() {
        let marker = match kind {
            crate::algebra::ChildKind::Rebinds => "{} ",
            crate::algebra::ChildKind::Inherit => "() ",
        };
        let _ = write!(out, "{}{}", "  ".repeat(depth + 1), marker);
        let mut inner = String::new();
        write_indented(&mut inner, c, 0);
        // Re-indent the nested rendering.
        let shifted = inner
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 0 {
                    l.to_string()
                } else {
                    format!("{}{}", "  ".repeat(depth + 2), l)
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let _ = writeln!(out, "{shifted}");
    }
}

fn params_of(op: &Op) -> String {
    match op {
        Op::Scalar(v) => format!("[{}]", v.string_value()),
        Op::Element { name, .. } | Op::Attribute { name, .. } => match name {
            NamePlan::Static(q) => format!("[{q}]"),
            NamePlan::Dynamic(_) => "[<dyn>]".to_string(),
        },
        Op::Pi { target, .. } => format!("[{target}]"),
        Op::TreeJoin { axis, test, .. } => {
            format!("[{}::{}]", axis.name(), node_test_display(test))
        }
        Op::Castable { ty, .. } | Op::Cast { ty, .. } => format!("[{ty}]"),
        Op::TypeMatches { st, .. } | Op::TypeAssert { st, .. } => format!("[{st}]"),
        Op::Var(q) => format!("[{q}]"),
        Op::Call { name, .. } => format!("[{name}]"),
        Op::FieldAccess { field, .. } => format!("#{field}"),
        Op::LOuterJoin { null_field, .. } => format!("[{null_field}]"),
        Op::OMap { null_field, .. } | Op::OMapConcat { null_field, .. } => {
            format!("[{null_field}]")
        }
        Op::MapIndex { field, .. } | Op::MapIndexStep { field, .. } => format!("[{field}]"),
        Op::GroupBy {
            agg,
            index_fields,
            null_fields,
            ..
        } => {
            format!(
                "[{},[{}],[{}]]",
                agg,
                index_fields.join(","),
                null_fields.join(",")
            )
        }
        _ => String::new(),
    }
}

/// Renders a node test in path notation.
pub fn node_test_display(test: &xqr_xml::axes::NodeTest) -> String {
    match test {
        xqr_xml::axes::NodeTest::Name(nt) => match (&nt.uri, &nt.local) {
            (_, None) => "*".to_string(),
            (None, Some(l)) if nt.any_uri => format!("*:{l}"),
            (None, Some(l)) => l.clone(),
            (Some(u), Some(l)) => format!("{u}:{l}"),
        },
        xqr_xml::axes::NodeTest::Kind(kt) => xqr_types::sequence_type::kind_test_display(kt),
    }
}

trait JoinExt {
    fn join(&self, sep: &str) -> String;
}

impl JoinExt for Vec<crate::algebra::Field> {
    fn join(&self, sep: &str) -> String {
        self.iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(sep)
    }
}

fn write_plan(out: &mut String, p: &Plan) {
    match &p.op {
        Op::Input => out.push_str("IN"),
        Op::TupleTable => out.push_str("([])"),
        Op::Empty => out.push_str("Empty"),
        Op::Scalar(v) => {
            let _ = write!(out, "{:?}", v.string_value());
        }
        Op::Var(q) => {
            let _ = write!(out, "${q}");
        }
        Op::FieldAccess { field, input } => {
            if matches!(input.op, Op::Input) {
                let _ = write!(out, "IN#{field}");
            } else {
                write_plan(out, input);
                let _ = write!(out, "#{field}");
            }
        }
        Op::Tuple(fields) => {
            out.push('[');
            for (i, (f, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                let _ = write!(out, "{f}:");
                write_plan(out, v);
            }
            out.push(']');
        }
        Op::TupleConcat(a, b) => {
            write_plan(out, a);
            out.push_str(" ++ ");
            write_plan(out, b);
        }
        _ => {
            out.push_str(p.op.name());
            out.push_str(&params_of(&p.op));
            let (deps, inputs): (Vec<_>, Vec<_>) =
                p.op.children()
                    .into_iter()
                    .partition(|(_, k)| *k == crate::algebra::ChildKind::Rebinds);
            if let Op::OrderBy { specs, .. } = &p.op {
                let _ = specs;
            }
            for (d, _) in deps {
                out.push('{');
                write_plan(out, d);
                out.push('}');
            }
            if !inputs.is_empty() {
                out.push('(');
                for (i, (c, _)) in inputs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_plan(out, c);
                }
                out.push(')');
            } else if matches!(p.op, Op::Call { .. } | Op::Sequence(_)) {
                out.push_str("()");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Op;
    use xqr_xml::QName;

    #[test]
    fn paper_notation() {
        // MapConcat{MapFromItem{[p:IN]}($auction)}(([]))
        let p = Plan::new(Op::MapConcat {
            dep: Plan::boxed(Op::MapFromItem {
                dep: Plan::boxed(Op::Tuple(vec![("p".into(), Plan::input())])),
                input: Plan::boxed(Op::Var(QName::local("auction"))),
            }),
            input: Plan::boxed(Op::TupleTable),
        });
        assert_eq!(
            compact(&p),
            "MapConcat{MapFromItem{[p:IN]}($auction)}(([]))"
        );
    }

    #[test]
    fn field_access_notation() {
        assert_eq!(compact(&Plan::in_field("p")), "IN#p");
    }

    #[test]
    fn indented_renders_without_panic() {
        let p = Plan::new(Op::Select {
            pred: Plan::boxed(Op::Call {
                name: QName::local("fs:general-eq"),
                args: vec![Plan::in_field("a"), Plan::in_field("b")],
            }),
            input: Plan::boxed(Op::TupleTable),
        });
        assert!(indented(&p).contains("Select") || compact(&p).contains("Select"));
    }
}
