//! Document-projection inference — introducing the `TreeProject` operator.
//!
//! Table 1 lists `TreeProject[paths]` "in the style of" Marian & Siméon's
//! *Projecting XML Documents* (the paper integrates that work into Galax).
//! This pass infers, for every document-valued constant (a lifted global
//! whose plan is `Parse`), the set of navigation chains the query applies
//! to it, and wraps the `Parse` in a `TreeProject` so that everything
//! outside those chains is pruned once, up front.
//!
//! Safety analysis (conservative):
//!
//! * every use of the document variable must be as the innermost input of
//!   a `TreeJoin` chain — a bare use (e.g. `count($doc)`, serialization)
//!   disables projection for that document;
//! * only forward child/descendant steps may appear **anywhere** in the
//!   module: parent/ancestor/sibling/following/preceding steps or
//!   `fn:root` could navigate from a kept node into pruned territory, so
//!   their presence disables the pass entirely;
//! * a chain's end keeps its entire subtree, so navigation that continues
//!   from bound variables (`$p/name` after `for $p in $doc//person`) stays
//!   correct.

use std::collections::HashMap;

use xqr_xml::axes::{Axis, NodeTest};
use xqr_xml::QName;

use crate::algebra::{Op, Plan};
use crate::compile::CompiledModule;

/// One projection chain.
pub type ProjectionPath = Vec<(Axis, NodeTest)>;

/// Infers and installs `TreeProject` operators over the module's `Parse`
/// globals. Returns the number of documents projected.
pub fn apply_document_projection(m: &mut CompiledModule) -> usize {
    // Which globals are document constants?
    let doc_globals: Vec<QName> = m
        .globals
        .iter()
        .filter(|g| matches!(&g.plan, Some(plan) if matches!(plan.op, Op::Parse { .. })))
        .map(|g| g.name.clone())
        .collect();
    if doc_globals.is_empty() {
        return 0;
    }
    // Global safety: no reverse/sideways axes or root() calls anywhere.
    let mut all_plans: Vec<&Plan> = Vec::new();
    all_plans.push(&m.body);
    for f in m.functions.values() {
        all_plans.push(&f.body);
    }
    for g in &m.globals {
        if let Some(p) = &g.plan {
            all_plans.push(p);
        }
    }
    if all_plans.iter().any(|p| has_unsafe_navigation(p)) {
        return 0;
    }
    // Per-document usage analysis.
    let mut usages: HashMap<QName, Option<Vec<ProjectionPath>>> = doc_globals
        .iter()
        .map(|q| (q.clone(), Some(Vec::new())))
        .collect();
    for plan in &all_plans {
        collect_usages(plan, &mut usages);
    }
    // Install the projections.
    let mut installed = 0;
    for global in m.globals.iter_mut() {
        let Some(Some(paths)) = usages.get(&global.name) else {
            continue;
        };
        if paths.is_empty() {
            continue; // document never navigated (or unused): leave it.
        }
        if let Some(plan) = &mut global.plan {
            if matches!(plan.op, Op::Parse { .. }) {
                let parse = std::mem::replace(plan, Plan::new(Op::Empty));
                *plan = Plan::new(Op::TreeProject {
                    paths: paths.clone(),
                    input: Box::new(parse),
                });
                installed += 1;
            }
        }
    }
    installed
}

/// Steps the projection can push through. Reverse and sideways axes make
/// pruning unsafe anywhere in the module.
fn axis_is_safe(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::Attribute | Axis::SelfAxis
    )
}

fn has_unsafe_navigation(p: &Plan) -> bool {
    let mut unsafe_found = false;
    visit(p, &mut |node| match &node.op {
        Op::TreeJoin { axis, .. } if !axis_is_safe(*axis) => unsafe_found = true,
        Op::Call { name, .. }
            if matches!(
                name.local_part(),
                "root" | "fs:root" | "fs:distinct-docorder"
            ) =>
        {
            // root() escapes subtrees; ddo over arbitrary unions is fine
            // but may carry nodes reached through predicates on other
            // documents — stay conservative only for root().
            if matches!(name.local_part(), "root" | "fs:root") {
                unsafe_found = true;
            }
        }
        _ => {}
    });
    unsafe_found
}

fn visit(p: &Plan, f: &mut dyn FnMut(&Plan)) {
    f(p);
    for (c, _) in p.op.children() {
        visit(c, f);
    }
}

/// Walks a plan, recording each `TreeJoin` chain rooted at a tracked
/// document variable; a tracked variable consumed any other way poisons
/// that document's entry.
fn collect_usages(p: &Plan, usages: &mut HashMap<QName, Option<Vec<ProjectionPath>>>) {
    match &p.op {
        Op::TreeJoin { .. } => {
            // Collect the maximal chain.
            let mut steps: ProjectionPath = Vec::new();
            let mut cur = p;
            while let Op::TreeJoin { axis, test, input } = &cur.op {
                steps.push((*axis, test.clone()));
                cur = input;
            }
            steps.reverse();
            // Self steps are no-ops for projection; an attribute step ends
            // structural navigation — truncate there so the owning element's
            // subtree is kept whole (attributes are always retained).
            let mut chain: ProjectionPath = Vec::new();
            for (a, t) in steps {
                match a {
                    Axis::SelfAxis => {}
                    Axis::Attribute => break,
                    _ => chain.push((a, t)),
                }
            }
            match &cur.op {
                Op::Var(q) if usages.contains_key(q) => {
                    if let Some(Some(paths)) = usages.get_mut(q) {
                        paths.push(chain);
                    }
                    return; // fully consumed
                }
                _ => {
                    // Chain rooted elsewhere: analyze the root normally.
                    collect_usages(cur, usages);
                    return;
                }
            }
        }
        Op::Var(q) => {
            // A bare use of a tracked document: unsafe for that document.
            if let Some(entry) = usages.get_mut(q) {
                *entry = None;
            }
        }
        _ => {}
    }
    for (c, _) in p.op.children() {
        collect_usages(c, usages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_module;
    use crate::rewrite::rewrite_module;
    use xqr_frontend::frontend;

    fn project(q: &str) -> (CompiledModule, usize) {
        let core = frontend(q).unwrap();
        let mut m = compile_module(&core);
        rewrite_module(&mut m);
        let n = apply_document_projection(&mut m);
        (m, n)
    }

    fn projected_global(m: &CompiledModule) -> Option<&Plan> {
        m.globals.iter().find_map(|g| match &g.plan {
            Some(p) if matches!(p.op, Op::TreeProject { .. }) => Some(p),
            _ => None,
        })
    }

    #[test]
    fn simple_navigation_is_projected() {
        let (m, n) = project(
            "let $d := doc('x.xml') return \
             for $p in $d/site/people/person return $p/name",
        );
        assert_eq!(n, 1);
        let p = projected_global(&m).expect("TreeProject installed");
        let Op::TreeProject { paths, .. } = &p.op else {
            unreachable!()
        };
        assert_eq!(paths.len(), 1, "one chain: /site/people/person");
        assert_eq!(paths[0].len(), 3);
    }

    #[test]
    fn multiple_chains_collected() {
        let (m, n) = project(
            "let $d := doc('x.xml') return \
             (count($d//closed_auction), for $p in $d/site/people/person return $p)",
        );
        assert_eq!(n, 1);
        let p = projected_global(&m).expect("TreeProject installed");
        let Op::TreeProject { paths, .. } = &p.op else {
            unreachable!()
        };
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn bare_document_use_disables_projection() {
        let (_, n) = project("let $d := doc('x.xml') return count($d)");
        assert_eq!(n, 0);
    }

    #[test]
    fn reverse_axis_disables_projection() {
        let (_, n) = project(
            "let $d := doc('x.xml') return \
             for $p in $d//person return $p/../name",
        );
        assert_eq!(n, 0, "parent axis anywhere disables the pass");
    }

    #[test]
    fn non_document_globals_untouched() {
        let (m, n) = project("let $d := (1,2,3) return $d");
        assert_eq!(n, 0);
        assert!(projected_global(&m).is_none());
    }
}
