//! Canonical plan normalization: a deterministic form for compiled plans
//! so that trivially equivalent plans render — and therefore hash —
//! identically.
//!
//! Three normalizations run over the rewritten algebra, in order:
//!
//! 1. **Commutative-operand ordering.** Binary calls whose semantics are
//!    symmetric (`fs:general-eq`/`ne`, `fs:value-eq`/`ne`,
//!    `fs:numeric-add`/`multiply`, `op:union`/`intersect`) order their
//!    operands by a structural key; asymmetric comparisons flip their
//!    operator when swapped (`fs:general-lt(a,b)` ⇒ `fs:general-gt(b,a)`),
//!    which XQuery permits because operand evaluation order is
//!    implementation-defined. The ordering key deliberately erases tuple
//!    field names and lifted-constant names so the decision is identical
//!    for plans that differ only by variable naming.
//! 2. **Lifted-constant renaming.** Compiler-lifted globals
//!    (`fs:const-<name>#<n>`, from constant lifting in `compile.rs`) carry
//!    the source variable's name; they are renamed positionally to
//!    `fs:const#<i>` along with every reference. User-declared globals
//!    keep their names: external globals are bound *by name* at execution
//!    time, and non-external ones can be shadowed by function parameters.
//! 3. **Tuple-field renaming.** Field names are globally unique per
//!    compile (`fresh_field`), so a single first-occurrence walk over the
//!    module (globals in declaration order, functions sorted by name, then
//!    the body) renames every field to `f<k>` without capture.
//!
//! [`module_hash`] then hashes a rendering that, unlike the pretty
//! printer, includes every operator payload with *typed* literals
//! (`Scalar` prints `xs:integer:1`, not the bare string value, so
//! `1` and `'1'` cannot collide) in canonical lexical form — the literal
//! canonicalization half of the normalization.

use std::collections::HashMap;
use std::fmt::Write as _;

use xqr_xml::QName;

use crate::algebra::{Field, NamePlan, Op, Plan};
use crate::compile::CompiledModule;
use crate::pretty::node_test_display;

/// Canonicalizes a compiled module in place. Idempotent; run after the
/// rewriter (and document projection) so the final plan is what is
/// normalized.
pub fn canonicalize_module(m: &mut CompiledModule) {
    for_each_plan_mut(m, &mut reorder_commutative);
    rename_lifted_constants(m);
    rename_fields(m);
}

/// FNV-1a hash of [`module_rendering`] — the canonical plan hash used to
/// key the plan cache and the circuit breakers.
pub fn module_hash(m: &CompiledModule) -> u64 {
    fnv1a(module_rendering(m).as_bytes())
}

/// The canonical rendering the hash is computed over: globals in
/// declaration order, functions sorted by name, then the body, every
/// operator payload included.
pub fn module_rendering(m: &CompiledModule) -> String {
    let mut out = String::new();
    for g in &m.globals {
        let _ = write!(out, "global {}", g.name);
        if g.external {
            out.push_str(" external");
        }
        if let Some(st) = &g.as_type {
            let _ = write!(out, " as {st}");
        }
        if let Some(p) = &g.plan {
            out.push_str(" = ");
            write_canonical(&mut out, p, false);
        }
        out.push('\n');
    }
    let mut names: Vec<&QName> = m.functions.keys().collect();
    names.sort();
    for name in names {
        let f = &m.functions[name];
        let _ = write!(out, "function {name}(");
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "${p}");
        }
        out.push_str(") = ");
        write_canonical(&mut out, &f.body, false);
        out.push('\n');
    }
    out.push_str("body = ");
    write_canonical(&mut out, &m.body, false);
    out
}

/// FNV-1a over bytes (the same construction the service uses for its
/// query-text fallback hash).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ----- Commutative-operand ordering -------------------------------------

/// Symmetric binary calls: operands may swap freely.
const SYMMETRIC: &[&str] = &[
    "fs:general-eq",
    "fs:general-ne",
    "fs:value-eq",
    "fs:value-ne",
    "fs:numeric-add",
    "fs:numeric-multiply",
    "op:union",
    "op:intersect",
];

/// Asymmetric comparisons and the operator the swapped form takes.
const FLIPPED: &[(&str, &str)] = &[
    ("fs:general-lt", "fs:general-gt"),
    ("fs:general-gt", "fs:general-lt"),
    ("fs:general-le", "fs:general-ge"),
    ("fs:general-ge", "fs:general-le"),
    ("fs:value-lt", "fs:value-gt"),
    ("fs:value-gt", "fs:value-lt"),
    ("fs:value-le", "fs:value-ge"),
    ("fs:value-ge", "fs:value-le"),
];

fn reorder_commutative(p: &mut Plan) {
    for (c, _) in p.op.children_mut() {
        reorder_commutative(c);
    }
    let Op::Call { name, args } = &mut p.op else {
        return;
    };
    if args.len() != 2 {
        return;
    }
    let n = name.to_string();
    let flip = FLIPPED
        .iter()
        .find(|(from, _)| *from == n)
        .map(|(_, to)| *to);
    if !SYMMETRIC.contains(&n.as_str()) && flip.is_none() {
        return;
    }
    let (ka, kb) = (shape_key(&args[0]), shape_key(&args[1]));
    // Swap only on a strict ordering violation; ties keep source order,
    // which is itself deterministic for plans equivalent up to renaming.
    if kb < ka {
        args.swap(0, 1);
        if let Some(to) = flip {
            *name = QName::local(to);
        }
    }
}

/// The ordering key: the canonical rendering with field names and
/// lifted-constant names erased, so renaming cannot perturb the order.
fn shape_key(p: &Plan) -> String {
    let mut s = String::new();
    write_canonical(&mut s, p, true);
    s
}

// ----- Lifted-constant renaming -----------------------------------------

fn is_lifted(q: &QName) -> bool {
    q.prefix().is_none() && q.local_part().starts_with("fs:const-")
}

fn rename_lifted_constants(m: &mut CompiledModule) {
    let mut map: HashMap<QName, QName> = HashMap::new();
    for g in m.globals.iter_mut() {
        if is_lifted(&g.name) {
            let canonical = QName::local(&format!("fs:const#{}", map.len()));
            map.insert(g.name.clone(), canonical.clone());
            g.name = canonical;
        }
    }
    if map.is_empty() {
        return;
    }
    for_each_plan_mut(m, &mut |p| rename_vars(p, &map));
}

fn rename_vars(p: &mut Plan, map: &HashMap<QName, QName>) {
    if let Op::Var(q) = &mut p.op {
        if let Some(new) = map.get(q) {
            *q = new.clone();
        }
    }
    for (c, _) in p.op.children_mut() {
        rename_vars(c, map);
    }
}

// ----- Tuple-field renaming ---------------------------------------------

fn rename_fields(m: &mut CompiledModule) {
    let mut map: HashMap<Field, Field> = HashMap::new();
    for_each_plan_mut(m, &mut |p| {
        rename_fields_in(p, &mut map);
    });
}

fn rename_fields_in(p: &mut Plan, map: &mut HashMap<Field, Field>) {
    let mut rename = |f: &mut Field| {
        let n = map.len();
        let canonical = map
            .entry(f.clone())
            .or_insert_with(|| format!("f{n}").into());
        *f = canonical.clone();
    };
    match &mut p.op {
        Op::Tuple(fields) => {
            for (f, _) in fields.iter_mut() {
                rename(f);
            }
        }
        Op::FieldAccess { field, .. }
        | Op::MapIndex { field, .. }
        | Op::MapIndexStep { field, .. } => rename(field),
        Op::LOuterJoin { null_field, .. }
        | Op::OMap { null_field, .. }
        | Op::OMapConcat { null_field, .. } => rename(null_field),
        Op::GroupBy {
            agg,
            index_fields,
            null_fields,
            ..
        } => {
            rename(agg);
            for f in index_fields.iter_mut() {
                rename(f);
            }
            for f in null_fields.iter_mut() {
                rename(f);
            }
        }
        _ => {}
    }
    for (c, _) in p.op.children_mut() {
        rename_fields_in(c, map);
    }
}

// ----- Module traversal --------------------------------------------------

/// Visits every plan in the module in the canonical deterministic order:
/// globals in declaration order, functions sorted by name, then the body.
fn for_each_plan_mut(m: &mut CompiledModule, f: &mut dyn FnMut(&mut Plan)) {
    for g in m.globals.iter_mut() {
        if let Some(p) = &mut g.plan {
            f(p);
        }
    }
    let mut names: Vec<QName> = m.functions.keys().cloned().collect();
    names.sort();
    for name in &names {
        f(&mut m.functions.get_mut(name).expect("function exists").body);
    }
    f(&mut m.body);
}

// ----- Canonical rendering -----------------------------------------------

/// Writes the canonical form of a plan. With `erase_names` the rendering
/// becomes the *ordering key*: field names and lifted-constant names are
/// replaced by placeholders so renaming cannot change comparison results.
fn write_canonical(out: &mut String, p: &Plan, erase_names: bool) {
    out.push_str(p.op.name());
    write_payload(out, &p.op, erase_names);
    let children = p.op.children();
    if !children.is_empty() {
        out.push('(');
        for (i, (c, _)) in children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_canonical(out, c, erase_names);
        }
        out.push(')');
    }
}

fn write_field(out: &mut String, f: &Field, erase: bool) {
    if erase {
        out.push('#');
    } else {
        let _ = write!(out, "#{f}");
    }
}

/// Every non-child payload of an operator, typed literals included. The
/// pretty printer omits some payloads (it optimizes for readability
/// against the paper's notation); the hash rendering must not.
fn write_payload(out: &mut String, op: &Op, erase: bool) {
    match op {
        Op::Scalar(v) => {
            // Typed, canonical lexical form: the `{:?}` escapes the string
            // so `1` (integer) and `"1"` (string) stay distinct even
            // before the type tag, and embedded separators cannot forge
            // another rendering.
            let _ = write!(out, "[{}:{:?}]", v.type_of(), v.string_value());
        }
        Op::Element { name, .. } | Op::Attribute { name, .. } => match name {
            NamePlan::Static(q) => {
                let _ = write!(out, "[{q}]");
            }
            NamePlan::Dynamic(_) => out.push_str("[dyn]"),
        },
        Op::Pi { target, .. } => {
            let _ = write!(out, "[{target:?}]");
        }
        Op::TreeJoin { axis, test, .. } => {
            let _ = write!(out, "[{}::{}]", axis.name(), node_test_display(test));
        }
        Op::TreeProject { paths, .. } => {
            out.push('[');
            for (i, path) in paths.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                for (j, (axis, test)) in path.iter().enumerate() {
                    if j > 0 {
                        out.push('/');
                    }
                    let _ = write!(out, "{}::{}", axis.name(), node_test_display(test));
                }
            }
            out.push(']');
        }
        Op::Castable { ty, optional, .. } | Op::Cast { ty, optional, .. } => {
            let _ = write!(out, "[{ty}{}]", if *optional { "?" } else { "" });
        }
        Op::Validate { mode, .. } => {
            let _ = write!(out, "[{mode:?}]");
        }
        Op::TypeMatches { st, .. } | Op::TypeAssert { st, .. } => {
            let _ = write!(out, "[{st}]");
        }
        Op::Var(q) => {
            if erase && is_lifted(q) {
                out.push_str("[$const]");
            } else {
                let _ = write!(out, "[${q}]");
            }
        }
        Op::Call { name, .. } => {
            let _ = write!(out, "[{name}]");
        }
        Op::Tuple(fields) => {
            out.push('[');
            for (i, (f, _)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                write_field(out, f, erase);
            }
            out.push(']');
        }
        Op::FieldAccess { field, .. }
        | Op::MapIndex { field, .. }
        | Op::MapIndexStep { field, .. } => write_field(out, field, erase),
        Op::LOuterJoin { null_field, .. }
        | Op::OMap { null_field, .. }
        | Op::OMapConcat { null_field, .. } => write_field(out, null_field, erase),
        Op::OrderBy { specs, .. } => {
            out.push('[');
            for (i, s) in specs.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                let _ = write!(
                    out,
                    "{}{}",
                    if s.descending { "desc" } else { "asc" },
                    if s.empty_least { "+el" } else { "+eg" }
                );
            }
            out.push(']');
        }
        Op::GroupBy {
            agg,
            index_fields,
            null_fields,
            ..
        } => {
            out.push('[');
            write_field(out, agg, erase);
            out.push(',');
            out.push('[');
            for (i, f) in index_fields.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                write_field(out, f, erase);
            }
            out.push_str("],[");
            for (i, f) in null_fields.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                write_field(out, f, erase);
            }
            out.push_str("]]");
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_module;
    use crate::rewrite::rewrite_module;
    use xqr_frontend::frontend;

    fn canonical(q: &str) -> (CompiledModule, u64) {
        let core = frontend(q).expect("parse");
        let mut m = compile_module(&core);
        rewrite_module(&mut m);
        canonicalize_module(&mut m);
        let h = module_hash(&m);
        (m, h)
    }

    #[test]
    fn hash_is_deterministic_and_idempotent() {
        let q = "for $x in (1,2,3) where $x > 1 return $x * 10";
        let (mut m1, h1) = canonical(q);
        let (_, h2) = canonical(q);
        assert_eq!(h1, h2);
        canonicalize_module(&mut m1);
        assert_eq!(module_hash(&m1), h1, "canonicalization is idempotent");
    }

    #[test]
    fn flwor_variable_renaming_does_not_change_the_hash() {
        let (_, a) = canonical("for $x in (1,2,3) where $x > 1 return $x * 10");
        let (_, b) = canonical("for $y in (1,2,3) where $y > 1 return $y * 10");
        assert_eq!(a, b);
    }

    #[test]
    fn lifted_constant_renaming_does_not_change_the_hash() {
        let (_, a) = canonical("let $d := doc('x.xml') return $d/child::site");
        let (_, b) = canonical("let $e := doc('x.xml') return $e/child::site");
        assert_eq!(a, b);
    }

    #[test]
    fn commutative_operands_share_a_hash() {
        let (_, a) = canonical("for $x in (1,2) where $x = 1 return $x");
        let (_, b) = canonical("for $x in (1,2) where 1 = $x return $x");
        assert_eq!(a, b);
        let (_, c) = canonical("1 + 2");
        let (_, d) = canonical("2 + 1");
        assert_eq!(c, d);
    }

    #[test]
    fn flipped_comparisons_share_a_hash() {
        let (_, a) = canonical("for $x in (1,2,3) where $x > 1 return $x");
        let (_, b) = canonical("for $x in (1,2,3) where 1 < $x return $x");
        assert_eq!(a, b);
    }

    #[test]
    fn different_literals_and_types_hash_differently() {
        let (_, a) = canonical("for $x in (1,2) where $x = 1 return $x");
        let (_, b) = canonical("for $x in (1,2) where $x = 2 return $x");
        assert_ne!(a, b);
        let (_, c) = canonical("1");
        let (_, d) = canonical("'1'");
        assert_ne!(c, d, "typed literal rendering keeps 1 and '1' apart");
    }

    #[test]
    fn distinct_documents_hash_differently() {
        let (_, a) = canonical("doc('a.xml')/child::r");
        let (_, b) = canonical("doc('b.xml')/child::r");
        assert_ne!(a, b);
    }

    #[test]
    fn canonical_plans_render_identically() {
        let (m1, _) = canonical("for $x in (1,2,3) where $x > 1 return $x");
        let (m2, _) = canonical("for $z in (1,2,3) where 1 < $z return $z");
        assert_eq!(module_rendering(&m1), module_rendering(&m2));
        assert_eq!(
            crate::pretty::indented(&m1.body),
            crate::pretty::indented(&m2.body)
        );
    }

    #[test]
    fn canonicalized_plans_still_execute_identically() {
        // Guard: canonicalization is a pure renaming/reordering — results
        // are byte-identical with and without it (checked end to end by
        // tests/prepare_differential.rs; this is the in-crate smoke test).
        let q = "for $x in (5,1,4) where 2 < $x order by $x return $x * 3";
        let core = frontend(q).unwrap();
        let mut plain = compile_module(&core);
        rewrite_module(&mut plain);
        let mut canon = plain.clone();
        canonicalize_module(&mut canon);
        // Structure is preserved op-for-op.
        assert_eq!(
            crate::algebra::plan_size(&plain.body),
            crate::algebra::plan_size(&canon.body)
        );
    }
}
