//! Plan analyses: free-`IN` usage and tuple-field inference.
//!
//! These power the side conditions of the Fig. 5 rewritings ("when Op₁
//! independent of IN") and the hash join's key splitting (which side of a
//! join does each operand of an equality depend on?).

use std::collections::BTreeSet;

use crate::algebra::{ChildKind, Field, Op, Plan};

/// Does this plan reference the enclosing `IN` (directly, or through any
/// child that inherits the binding)? Children in dependent (rebinding)
/// positions never contribute: their `IN` is their operator's own input.
pub fn uses_input(p: &Plan) -> bool {
    if matches!(p.op, Op::Input) {
        return true;
    }
    p.op.children()
        .iter()
        .any(|(c, kind)| *kind == ChildKind::Inherit && uses_input(c))
}

/// The fields accessed on the free `IN` of this plan (`IN#q` occurrences).
pub fn used_input_fields(p: &Plan) -> BTreeSet<Field> {
    let mut out = BTreeSet::new();
    collect_used(p, &mut out);
    out
}

fn collect_used(p: &Plan, out: &mut BTreeSet<Field>) {
    if let Op::FieldAccess { field, input } = &p.op {
        if matches!(input.op, Op::Input) {
            out.insert(field.clone());
        }
    }
    for (c, kind) in p.op.children() {
        if kind == ChildKind::Inherit {
            collect_used(c, out);
        }
    }
}

/// Infers the set of tuple fields this (table-producing) plan outputs.
/// `None` means unknown (e.g. the plan is `IN` used as a table, whose
/// fields depend on the enclosing context).
pub fn output_fields(p: &Plan) -> Option<BTreeSet<Field>> {
    match &p.op {
        Op::TupleTable => Some(BTreeSet::new()),
        Op::Input => None,
        Op::Tuple(fields) => Some(fields.iter().map(|(f, _)| f.clone()).collect()),
        Op::TupleConcat(a, b) => {
            let mut fa = output_fields(a)?;
            fa.extend(output_fields(b)?);
            Some(fa)
        }
        Op::Select { input, .. } | Op::OrderBy { input, .. } => output_fields(input),
        Op::Product(a, b) => {
            let mut fa = output_fields(a)?;
            fa.extend(output_fields(b)?);
            Some(fa)
        }
        Op::Join { left, right, .. } => {
            let mut fa = output_fields(left)?;
            fa.extend(output_fields(right)?);
            Some(fa)
        }
        Op::LOuterJoin {
            null_field,
            left,
            right,
            ..
        } => {
            let mut fa = output_fields(left)?;
            fa.extend(output_fields(right)?);
            fa.insert(null_field.clone());
            Some(fa)
        }
        Op::MapOp { dep, .. } => output_fields(dep),
        Op::OMap { null_field, input } => {
            let mut fa = output_fields(input)?;
            fa.insert(null_field.clone());
            Some(fa)
        }
        Op::MapConcat { dep, input } => {
            let mut fa = output_fields(input)?;
            fa.extend(output_fields(dep)?);
            Some(fa)
        }
        Op::OMapConcat {
            null_field,
            dep,
            input,
        } => {
            let mut fa = output_fields(input)?;
            fa.extend(output_fields(dep)?);
            fa.insert(null_field.clone());
            Some(fa)
        }
        Op::MapIndex { field, input } | Op::MapIndexStep { field, input } => {
            let mut fa = output_fields(input)?;
            fa.insert(field.clone());
            Some(fa)
        }
        Op::GroupBy { agg, input, .. } => {
            let mut fa = output_fields(input)?;
            fa.insert(agg.clone());
            Some(fa)
        }
        Op::MapFromItem { dep, .. } => output_fields(dep),
        Op::Cond { then, els, .. } => {
            let ft = output_fields(then)?;
            let fe = output_fields(els)?;
            Some(ft.intersection(&fe).cloned().collect())
        }
        // Item-producing operators have no tuple fields.
        _ => Some(BTreeSet::new()),
    }
}

/// Like [`output_fields`], but returns only the fields this plan *itself*
/// introduces: `IN` contributes nothing instead of poisoning the analysis.
/// Used by rewrite guards that ask "which fields disappear when this
/// subtree produces no tuples?".
pub fn known_output_fields(p: &Plan) -> BTreeSet<Field> {
    match &p.op {
        Op::TupleTable | Op::Input => BTreeSet::new(),
        Op::Tuple(fields) => fields.iter().map(|(f, _)| f.clone()).collect(),
        Op::TupleConcat(a, b) | Op::Product(a, b) => {
            let mut fa = known_output_fields(a);
            fa.extend(known_output_fields(b));
            fa
        }
        Op::Select { input, .. } | Op::OrderBy { input, .. } => known_output_fields(input),
        Op::Join { left, right, .. } => {
            let mut fa = known_output_fields(left);
            fa.extend(known_output_fields(right));
            fa
        }
        Op::LOuterJoin {
            null_field,
            left,
            right,
            ..
        } => {
            let mut fa = known_output_fields(left);
            fa.extend(known_output_fields(right));
            fa.insert(null_field.clone());
            fa
        }
        Op::MapOp { dep, .. } => known_output_fields(dep),
        Op::OMap { null_field, input } => {
            let mut fa = known_output_fields(input);
            fa.insert(null_field.clone());
            fa
        }
        Op::MapConcat { dep, input } => {
            let mut fa = known_output_fields(input);
            fa.extend(known_output_fields(dep));
            fa
        }
        Op::OMapConcat {
            null_field,
            dep,
            input,
        } => {
            let mut fa = known_output_fields(input);
            fa.extend(known_output_fields(dep));
            fa.insert(null_field.clone());
            fa
        }
        Op::MapIndex { field, input } | Op::MapIndexStep { field, input } => {
            let mut fa = known_output_fields(input);
            fa.insert(field.clone());
            fa
        }
        Op::GroupBy { agg, input, .. } => {
            let mut fa = known_output_fields(input);
            fa.insert(agg.clone());
            fa
        }
        Op::MapFromItem { dep, .. } => known_output_fields(dep),
        Op::Cond { then, els, .. } => {
            let ft = known_output_fields(then);
            let fe = known_output_fields(els);
            ft.intersection(&fe).cloned().collect()
        }
        _ => BTreeSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xml::AtomicValue;

    fn mfi(field: &str, input: Plan) -> Plan {
        Plan::new(Op::MapFromItem {
            dep: Plan::boxed(Op::Tuple(vec![(field.into(), Plan::input())])),
            input: Box::new(input),
        })
    }

    #[test]
    fn input_detection_respects_rebinding() {
        // MapFromItem{[t:IN]}(Var x): the dep's IN is rebound → independent.
        let p = mfi("t", Plan::new(Op::Var(xqr_xml::QName::local("x"))));
        assert!(!uses_input(&p));
        // MapFromItem{[t:IN]}(IN#x): the input inherits → dependent.
        let p = mfi("t", Plan::in_field("x"));
        assert!(uses_input(&p));
        assert!(uses_input(&Plan::input()));
        assert!(!uses_input(&Plan::scalar(AtomicValue::Integer(1))));
    }

    #[test]
    fn used_fields_only_from_free_input() {
        let p = Plan::new(Op::Call {
            name: xqr_xml::QName::local("fs:general-eq"),
            args: vec![Plan::in_field("t"), Plan::in_field("p")],
        });
        let used = used_input_fields(&p);
        assert_eq!(used.len(), 2);
        assert!(used.contains("t") && used.contains("p"));
        // Fields accessed under a rebinding dep are not free.
        let p = Plan::new(Op::MapToItem {
            dep: Plan::boxed(Op::FieldAccess {
                field: "inner".into(),
                input: Plan::boxed(Op::Input),
            }),
            input: Plan::boxed(Op::TupleTable),
        });
        assert!(used_input_fields(&p).is_empty());
    }

    #[test]
    fn output_field_inference() {
        let persons = mfi("p", Plan::new(Op::Var(xqr_xml::QName::local("doc"))));
        let auctions = mfi("t", Plan::new(Op::Var(xqr_xml::QName::local("doc"))));
        let join = Plan::new(Op::LOuterJoin {
            null_field: "null".into(),
            pred: Plan::boxed(Op::Scalar(AtomicValue::Boolean(true))),
            left: Box::new(Plan::new(Op::MapIndexStep {
                field: "index".into(),
                input: Box::new(persons),
            })),
            right: Box::new(auctions),
        });
        let fields = output_fields(&join).unwrap();
        let names: Vec<&str> = fields.iter().map(|f| &**f).collect();
        assert_eq!(names, ["index", "null", "p", "t"]);
    }

    #[test]
    fn unknown_fields_for_raw_input() {
        assert_eq!(output_fields(&Plan::input()), None);
        let p = Plan::new(Op::MapConcat {
            dep: Plan::boxed(Op::Tuple(vec![("a".into(), Plan::input())])),
            input: Plan::boxed(Op::Input),
        });
        assert_eq!(output_fields(&p), None);
    }
}
