//! The unnesting rewritings of Section 5 (Fig. 5).
//!
//! Standard rules:
//! * **(remove map)** — `MapConcat{Op1}(([])) → Op1` when `Op1` is
//!   independent of `IN`;
//! * **(insert product)** — `MapConcat{Op1}(Op2) → Product(Op2, Op1)` when
//!   `Op1` is independent of `IN`;
//! * **(insert join)** — `Select{Op1}(Product(Op2, Op3)) → Join{Op1}(Op2, Op3)`.
//!
//! New rules (unique to the paper's algebra):
//! * **(insert group-by)** — a unary tuple constructor over an item
//!   operator chain ending in `MapToItem` is a trivial `GroupBy` whose
//!   every partition holds one tuple:
//!   `[x : CTX(MapToItem{Op2}(Op3))] →
//!    GroupBy[x,[],[null]]{CTX(IN)}{Op2}(OMap[null](Op3))`;
//! * **(map through group-by)** — pushes the enclosing dependent join
//!   through the `GroupBy`, adding an index field (a `MapIndexStep`, as in
//!   plan P1″) and an outer-join null flag;
//! * **(remove duplicate null)** — collapses `OMapConcat[n1]{OMap[n2](…)}`;
//! * **(insert outer-join)** —
//!   `OMapConcat[n]{Join{p}(IN, Op1)}(Op2) → LOuterJoin[n]{p}(Op2, Op1)`.
//!
//! The engine applies rules bottom-up to a fixpoint; statistics of rule
//! applications are returned for inspection (`explain`-style output and the
//! ablation benchmarks use them).

use std::collections::BTreeMap;

use crate::algebra::{Field, Op, Plan};
use crate::compile::CompiledModule;
use crate::fields::uses_input;

/// Which rule families the rewriter applies — the ablation knobs used by
/// `benches/ablation.rs` to quantify each design choice of Section 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleConfig {
    /// (remove map).
    pub remove_map: bool,
    /// (insert group-by), (map through group-by) both variants,
    /// (remove duplicate null).
    pub unnesting: bool,
    /// (insert product), (insert join), (insert outer-join).
    pub join_insertion: bool,
    /// The push extensions of DESIGN.md §4a (deep-nesting flattening).
    pub push_rules: bool,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            remove_map: true,
            unnesting: true,
            join_insertion: true,
            push_rules: true,
        }
    }
}

impl RuleConfig {
    pub fn all() -> RuleConfig {
        RuleConfig::default()
    }

    pub fn none() -> RuleConfig {
        RuleConfig {
            remove_map: false,
            unnesting: false,
            join_insertion: false,
            push_rules: false,
        }
    }
}

/// One rewrite-rule firing, recorded when per-rule tracing is enabled:
/// which rule fired and the operator count of the subtree it fired on,
/// immediately before and after.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleEvent {
    pub rule: &'static str,
    pub before_ops: usize,
    pub after_ops: usize,
    pub nanos: u64,
}

/// Rewrite statistics: rule name → number of applications. With `trace`
/// set (see [`rewrite_module_traced`]) also one [`RuleEvent`] per firing,
/// in firing order.
#[derive(Clone, Debug, Default)]
pub struct RewriteStats {
    pub applications: BTreeMap<&'static str, usize>,
    pub passes: usize,
    pub events: Vec<RuleEvent>,
    trace: bool,
    last_rule: Option<&'static str>,
}

impl RewriteStats {
    fn record(&mut self, rule: &'static str) {
        *self.applications.entry(rule).or_insert(0) += 1;
        self.last_rule = Some(rule);
    }

    pub fn total(&self) -> usize {
        self.applications.values().sum()
    }

    pub fn count(&self, rule: &str) -> usize {
        self.applications.get(rule).copied().unwrap_or(0)
    }
}

/// Rewrites every plan of a compiled module in place (all rules).
pub fn rewrite_module(m: &mut CompiledModule) -> RewriteStats {
    rewrite_module_with(m, RuleConfig::all())
}

/// Rewrites with an explicit rule configuration (ablation studies).
pub fn rewrite_module_with(m: &mut CompiledModule, rules: RuleConfig) -> RewriteStats {
    let mut stats = RewriteStats::default();
    let mut ctx = Ctx {
        rules,
        ..Ctx::default()
    };
    fixpoint(&mut m.body, &mut ctx, &mut stats);
    let mut functions: Vec<_> = m.functions.values_mut().collect();
    functions.sort_by(|a, b| a.name.cmp(&b.name));
    for f in functions {
        fixpoint(&mut f.body, &mut ctx, &mut stats);
    }
    for g in m.globals.iter_mut() {
        if let Some(p) = &mut g.plan {
            fixpoint(p, &mut ctx, &mut stats);
        }
    }
    stats
}

/// Like [`rewrite_module_with`], but records a [`RuleEvent`] per rule
/// firing into the returned stats (`events`). The timing cost
/// (`Instant::now` + `plan_size` around each firing) is paid only on this
/// entry point; the untraced path is unchanged.
pub fn rewrite_module_traced(m: &mut CompiledModule, rules: RuleConfig) -> RewriteStats {
    let mut stats = RewriteStats {
        trace: true,
        ..RewriteStats::default()
    };
    let mut ctx = Ctx {
        rules,
        ..Ctx::default()
    };
    fixpoint(&mut m.body, &mut ctx, &mut stats);
    let mut functions: Vec<_> = m.functions.values_mut().collect();
    functions.sort_by(|a, b| a.name.cmp(&b.name));
    for f in functions {
        fixpoint(&mut f.body, &mut ctx, &mut stats);
    }
    for g in m.globals.iter_mut() {
        if let Some(p) = &mut g.plan {
            fixpoint(p, &mut ctx, &mut stats);
        }
    }
    stats
}

/// Rewrites a single plan in place.
pub fn rewrite_plan(p: &mut Plan) -> RewriteStats {
    let mut stats = RewriteStats::default();
    let mut ctx = Ctx::default();
    fixpoint(p, &mut ctx, &mut stats);
    stats
}

struct Ctx {
    fresh: usize,
    rules: RuleConfig,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            fresh: 0,
            rules: RuleConfig::all(),
        }
    }
}

impl Ctx {
    fn fresh_field(&mut self, base: &str) -> Field {
        self.fresh += 1;
        format!("{base}_{}", self.fresh).into()
    }
}

const MAX_PASSES: usize = 32;

fn fixpoint(p: &mut Plan, ctx: &mut Ctx, stats: &mut RewriteStats) {
    for _ in 0..MAX_PASSES {
        stats.passes += 1;
        if !pass(p, ctx, stats) {
            return;
        }
    }
}

/// One bottom-up pass; returns true if anything changed.
fn pass(p: &mut Plan, ctx: &mut Ctx, stats: &mut RewriteStats) -> bool {
    let mut changed = false;
    for (c, _) in p.op.children_mut() {
        changed |= pass(c, ctx, stats);
    }
    // Apply rules at this node until stable.
    loop {
        let r = ctx.rules;
        // The `||` chain below fires at most one rule per iteration, so a
        // snapshot around the chain attributes exactly one firing. Taken
        // only under per-rule tracing; the normal path pays one bool test.
        let before_ops = if stats.trace {
            crate::algebra::plan_size(p)
        } else {
            0
        };
        let t0 = stats.trace.then(std::time::Instant::now);
        stats.last_rule = None;
        let fired = (r.remove_map && remove_map(p, stats))
            || (r.unnesting && insert_group_by(p, ctx, stats))
            || (r.unnesting && map_through_group_by(p, ctx, stats))
            || (r.unnesting && remove_duplicate_null(p, stats))
            || (r.join_insertion && insert_join(p, stats))
            || (r.join_insertion && insert_outer_join(p, stats))
            || (r.push_rules && push_omap_concat_into_outer_join(p, stats))
            || (r.push_rules && push_omap_concat_through_index(p, stats))
            || (r.join_insertion && insert_product(p, stats));
        if fired {
            if let Some(t0) = t0 {
                stats.events.push(RuleEvent {
                    rule: stats.last_rule.unwrap_or("unknown"),
                    before_ops,
                    after_ops: crate::algebra::plan_size(p),
                    nanos: t0.elapsed().as_nanos() as u64,
                });
            }
            changed = true;
            // Newly exposed children may enable further rewrites below this
            // node within the same pass.
            for (c, _) in p.op.children_mut() {
                pass(c, ctx, stats);
            }
        } else {
            break;
        }
    }
    changed
}

/// (remove map): `MapConcat{Op1}(([])) → Op1` when Op1 independent of IN.
fn remove_map(p: &mut Plan, stats: &mut RewriteStats) -> bool {
    let Op::MapConcat { dep, input } = &p.op else {
        return false;
    };
    if !matches!(input.op, Op::TupleTable) || uses_input(dep) {
        return false;
    }
    let Op::MapConcat { dep, .. } = std::mem::replace(&mut p.op, Op::Empty) else {
        unreachable!()
    };
    *p = *dep;
    stats.record("remove map");
    true
}

/// (insert product): `MapConcat{Op1}(Op2) → Product(Op2, Op1)` when Op1 is
/// independent of IN. Tuple-constructor deps (`let` bindings) and GroupBy
/// deps are excluded — those are handled by the group-by rules.
fn insert_product(p: &mut Plan, stats: &mut RewriteStats) -> bool {
    let Op::MapConcat { dep, input } = &p.op else {
        return false;
    };
    if matches!(input.op, Op::TupleTable) {
        return false;
    }
    if matches!(dep.op, Op::Tuple(_) | Op::GroupBy { .. }) || uses_input(dep) {
        return false;
    }
    let Op::MapConcat { dep, input } = std::mem::replace(&mut p.op, Op::Empty) else {
        unreachable!()
    };
    p.op = Op::Product(input, dep);
    stats.record("insert product");
    true
}

/// (insert join): `Select{p}(Product(l, r)) → Join{p}(l, r)`.
fn insert_join(p: &mut Plan, stats: &mut RewriteStats) -> bool {
    let Op::Select { input, .. } = &p.op else {
        return false;
    };
    if !matches!(input.op, Op::Product(..)) {
        return false;
    }
    let Op::Select { pred, input } = std::mem::replace(&mut p.op, Op::Empty) else {
        unreachable!()
    };
    let Op::Product(left, right) = input.op else {
        unreachable!()
    };
    p.op = Op::Join { pred, left, right };
    stats.record("insert join");
    true
}

/// (insert group-by): the dependent slot of a `let`-style MapConcat holds a
/// unary tuple constructor `[x : CTX(MapToItem{Op2}(Op3))]` where CTX is a
/// chain of unary item operators and Op3 is a correlated tuple stream. The
/// constructor is a trivial GroupBy in which every partition has one tuple.
fn insert_group_by(p: &mut Plan, ctx: &mut Ctx, stats: &mut RewriteStats) -> bool {
    let Op::MapConcat { dep, .. } = &p.op else {
        return false;
    };
    let Op::Tuple(fields) = &dep.op else {
        return false;
    };
    if fields.len() != 1 {
        return false;
    }
    // Walk the CTX spine down to a MapToItem.
    if !spine_reaches_correlated_map_to_item(&fields[0].1) {
        return false;
    }
    let Op::MapConcat { dep, input } = std::mem::replace(&mut p.op, Op::Empty) else {
        unreachable!()
    };
    let Op::Tuple(mut fields) = dep.op else {
        unreachable!()
    };
    let (agg_field, value) = fields.pop().expect("unary tuple");
    let null_field = ctx.fresh_field("null");
    // Split CTX(MapToItem{Op2}(Op3)).
    let (per_partition, per_item, inner) = split_spine(value);
    let gb = Plan::new(Op::GroupBy {
        agg: agg_field,
        index_fields: Vec::new(),
        null_fields: vec![null_field.clone()],
        per_partition: Box::new(per_partition),
        per_item: Box::new(per_item),
        input: Plan::boxed(Op::OMap {
            null_field,
            input: Box::new(inner),
        }),
    });
    p.op = Op::MapConcat {
        dep: Box::new(gb),
        input,
    };
    stats.record("insert group-by");
    true
}

/// Checks the spine shape CTX(MapToItem{_}(Op3)) with CTX a chain of unary
/// item operators, and Op3 using the free IN (a correlated nested block).
fn spine_reaches_correlated_map_to_item(mut v: &Plan) -> bool {
    loop {
        match &v.op {
            Op::MapToItem { input, .. } => return uses_input(input),
            Op::TypeAssert { input, .. }
            | Op::Cast { input, .. }
            | Op::TreeJoin { input, .. }
            | Op::Validate { input, .. } => v = input,
            Op::Call { args, .. } if args.len() == 1 => v = &args[0],
            _ => return false,
        }
    }
}

/// Splits `CTX(MapToItem{Op2}(Op3))` into
/// `(CTX(IN), Op2, Op3)` — the GroupBy's per-partition operator, per-item
/// operator, and input.
fn split_spine(v: Plan) -> (Plan, Plan, Plan) {
    match v.op {
        Op::MapToItem { dep, input } => (Plan::input(), *dep, *input),
        Op::TypeAssert { st, input } => {
            let (pp, pi, inner) = split_spine(*input);
            (
                Plan::new(Op::TypeAssert {
                    st,
                    input: Box::new(pp),
                }),
                pi,
                inner,
            )
        }
        Op::Cast {
            ty,
            optional,
            input,
        } => {
            let (pp, pi, inner) = split_spine(*input);
            (
                Plan::new(Op::Cast {
                    ty,
                    optional,
                    input: Box::new(pp),
                }),
                pi,
                inner,
            )
        }
        Op::TreeJoin { axis, test, input } => {
            let (pp, pi, inner) = split_spine(*input);
            (
                Plan::new(Op::TreeJoin {
                    axis,
                    test,
                    input: Box::new(pp),
                }),
                pi,
                inner,
            )
        }
        Op::Validate { mode, input } => {
            let (pp, pi, inner) = split_spine(*input);
            (
                Plan::new(Op::Validate {
                    mode,
                    input: Box::new(pp),
                }),
                pi,
                inner,
            )
        }
        Op::Call { name, mut args } => {
            let (pp, pi, inner) = split_spine(args.pop().expect("unary call"));
            (
                Plan::new(Op::Call {
                    name,
                    args: vec![pp],
                }),
                pi,
                inner,
            )
        }
        other => unreachable!("split_spine on {:?}", other.name()),
    }
}

/// (map through group-by):
/// `MapConcat{GroupBy[x,inds,nulls]{p}{i}(g)}(outer) →
///  GroupBy[x,inds+ind1,nulls+null1]{p}{i}
///      (OMapConcat[null1]{g}(MapIndexStep[ind1](outer)))`.
///
/// The `OMapConcat` variant (needed when an *outer* unnesting level already
/// wrapped this one — triple-and-deeper nestings like the Clio N3/N4
/// queries) pushes the existing null flag into the GroupBy's null list:
/// `OMapConcat[n]{GroupBy[x,inds,nulls]{p}{i}(g)}(outer) →
///  GroupBy[x,inds+ind1,nulls+n]{p}{i}
///      (OMapConcat[n]{g}(MapIndexStep[ind1](outer)))`.
/// An outer tuple whose block is empty yields one `[n:true]` row; the
/// partition skips the per-item operator and aggregates the empty sequence,
/// and the surviving `n` flag keeps enclosing GroupBys' null checks intact.
fn map_through_group_by(p: &mut Plan, ctx: &mut Ctx, stats: &mut RewriteStats) -> bool {
    let is_outer = match &p.op {
        Op::MapConcat { dep, .. } | Op::OMapConcat { dep, .. } => {
            if !matches!(dep.op, Op::GroupBy { .. }) || !uses_input(dep) {
                return false;
            }
            matches!(p.op, Op::OMapConcat { .. })
        }
        _ => return false,
    };
    let (dep, outer, existing_null) = match std::mem::replace(&mut p.op, Op::Empty) {
        Op::MapConcat { dep, input } => (dep, input, None),
        Op::OMapConcat {
            null_field,
            dep,
            input,
        } => (dep, input, Some(null_field)),
        _ => unreachable!(),
    };
    let Op::GroupBy {
        agg,
        mut index_fields,
        mut null_fields,
        per_partition,
        per_item,
        input,
    } = dep.op
    else {
        unreachable!()
    };
    let ind1 = ctx.fresh_field("index");
    index_fields.push(ind1.clone());
    let null1 = existing_null.unwrap_or_else(|| ctx.fresh_field("null"));
    null_fields.push(null1.clone());
    let indexed = Plan::new(Op::MapIndexStep {
        field: ind1,
        input: outer,
    });
    let omc = Plan::new(Op::OMapConcat {
        null_field: null1,
        dep: input,
        input: Box::new(indexed),
    });
    p.op = Op::GroupBy {
        agg,
        index_fields,
        null_fields,
        per_partition,
        per_item,
        input: Box::new(omc),
    };
    stats.record(if is_outer {
        "map through group-by (outer)"
    } else {
        "map through group-by"
    });
    true
}

/// (remove duplicate null):
/// `GroupBy[…, nulls ∋ n1,n2](OMapConcat[n1]{OMap[n2](inner)}(src))` drops
/// the inner OMap and n2.
fn remove_duplicate_null(p: &mut Plan, stats: &mut RewriteStats) -> bool {
    let Op::GroupBy {
        null_fields, input, ..
    } = &mut p.op
    else {
        return false;
    };
    let Op::OMapConcat {
        null_field: n1,
        dep,
        ..
    } = &mut input.op
    else {
        return false;
    };
    let Op::OMap { null_field: n2, .. } = &dep.op else {
        return false;
    };
    if !null_fields.contains(n1) || !null_fields.contains(n2) {
        return false;
    }
    let n2 = n2.clone();
    let Op::OMap { input: inner, .. } = std::mem::replace(&mut dep.op, Op::Empty) else {
        unreachable!()
    };
    **dep = *inner;
    null_fields.retain(|f| f != &n2);
    stats.record("remove duplicate null");
    true
}

/// (insert outer-join):
/// `OMapConcat[n]{Join{p}(IN, r)}(l) → LOuterJoin[n]{p}(l, r)` when `r` is
/// independent of IN. The degenerate predicate-free case
/// `OMapConcat[n]{Product(IN, r)}(l)` becomes a constant-true outer join,
/// which evaluates `r` once instead of per outer tuple.
fn insert_outer_join(p: &mut Plan, stats: &mut RewriteStats) -> bool {
    enum Shape {
        Join,
        Product,
    }
    let shape = {
        let Op::OMapConcat { dep, .. } = &p.op else {
            return false;
        };
        match &dep.op {
            Op::Join { left, right, .. } if matches!(left.op, Op::Input) && !uses_input(right) => {
                Shape::Join
            }
            Op::Product(left, right) if matches!(left.op, Op::Input) && !uses_input(right) => {
                Shape::Product
            }
            _ => return false,
        }
    };
    let Op::OMapConcat {
        null_field,
        dep,
        input: l,
    } = std::mem::replace(&mut p.op, Op::Empty)
    else {
        unreachable!()
    };
    let (pred, right) = match (shape, dep.op) {
        (Shape::Join, Op::Join { pred, right, .. }) => (pred, right),
        (Shape::Product, Op::Product(_, right)) => (
            Plan::boxed(Op::Scalar(xqr_xml::AtomicValue::Boolean(true))),
            right,
        ),
        _ => unreachable!(),
    };
    p.op = Op::LOuterJoin {
        null_field,
        pred,
        left: l,
        right,
    };
    stats.record("insert outer-join");
    true
}

/// (push outer-map into outer-join): when a dependent block has already
/// been partially unnested into an `LOuterJoin` whose left side still reads
/// `IN`, the surrounding `OMapConcat` can move inside — an outer join
/// preserves every left row, so "block empty" ⟺ "left input empty", and the
/// null flag transfers:
/// `OMapConcat[n]{LOuterJoin[m]{p}(l, r)}(outer) →
///  LOuterJoin[m]{p}(OMapConcat[n]{l}(outer), r)`
/// when `l` uses IN and `r` does not. Rows flagged `[n:true]` lack the
/// left-side fields; the predicate reads empty sequences and fails, so they
/// surface as `[m:true]` null rows — and `n`/`m` are both in the enclosing
/// GroupBy's null list. This is what flattens triple-and-deeper nestings
/// (Clio N3/N4) into cascades of outer joins.
fn push_omap_concat_into_outer_join(p: &mut Plan, stats: &mut RewriteStats) -> bool {
    {
        let Op::OMapConcat { dep, .. } = &p.op else {
            return false;
        };
        let Op::LOuterJoin {
            pred, left, right, ..
        } = &dep.op
        else {
            return false;
        };
        if !uses_input(left) || uses_input(right) {
            return false;
        }
        // Soundness guard: a null-padded left row (fields empty) must never
        // satisfy the predicate, or pushing would fabricate matches. A
        // general-comparison conjunct that reads left-side fields
        // guarantees this — general comparisons over () are always false,
        // and one false conjunct kills the conjunction.
        if !pred_rejects_empty_left(pred, left) {
            return false;
        }
    }
    let Op::OMapConcat {
        null_field,
        dep,
        input: outer,
    } = std::mem::replace(&mut p.op, Op::Empty)
    else {
        unreachable!()
    };
    let Op::LOuterJoin {
        null_field: m,
        pred,
        left,
        right,
    } = dep.op
    else {
        unreachable!()
    };
    let pushed = Plan::new(Op::OMapConcat {
        null_field,
        dep: left,
        input: outer,
    });
    p.op = Op::LOuterJoin {
        null_field: m,
        pred,
        left: Box::new(pushed),
        right,
    };
    stats.record("push omap into outer-join");
    true
}

/// Does some general-comparison conjunct of `pred` read fields that only
/// the (unnested) left input produces?
fn pred_rejects_empty_left(pred: &Plan, left: &Plan) -> bool {
    fn conjuncts<'p>(p: &'p Plan, out: &mut Vec<&'p Plan>) {
        if let Op::Cond { cond, then, els } = &p.op {
            if matches!(&els.op, Op::Scalar(xqr_xml::AtomicValue::Boolean(false))) {
                conjuncts(cond, out);
                conjuncts(then, out);
                return;
            }
        }
        out.push(p);
    }
    let left_fields = crate::fields::known_output_fields(left);
    if left_fields.is_empty() {
        return false;
    }
    let mut cs = Vec::new();
    conjuncts(pred, &mut cs);
    cs.iter().any(|c| {
        let Op::Call { name, args } = &c.op else {
            return false;
        };
        if !name.local_part().starts_with("fs:general-") {
            return false;
        }
        args.iter().any(|a| {
            let used = crate::fields::used_input_fields(a);
            !used.is_empty() && used.iter().any(|f| left_fields.contains(f))
        })
    })
}

/// (push outer-map through index): `MapIndexStep` only promises ascending,
/// not consecutive, integers (the paper introduces it precisely to ease
/// rewritings), so per-block indexing commutes with the dependent map:
/// `OMapConcat[n]{MapIndexStep[f](x)}(outer) →
///  MapIndexStep[f](OMapConcat[n]{x}(outer))`.
fn push_omap_concat_through_index(p: &mut Plan, stats: &mut RewriteStats) -> bool {
    {
        let Op::OMapConcat { dep, .. } = &p.op else {
            return false;
        };
        if !matches!(dep.op, Op::MapIndexStep { .. }) {
            return false;
        }
    }
    let Op::OMapConcat {
        null_field,
        dep,
        input: outer,
    } = std::mem::replace(&mut p.op, Op::Empty)
    else {
        unreachable!()
    };
    let Op::MapIndexStep { field, input: x } = dep.op else {
        unreachable!()
    };
    let pushed = Plan::new(Op::OMapConcat {
        null_field,
        dep: x,
        input: outer,
    });
    p.op = Op::MapIndexStep {
        field,
        input: Box::new(pushed),
    };
    stats.record("push omap through index");
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::count_ops;
    use crate::compile::compile_expr;
    use crate::pretty::compact;
    use xqr_frontend::parser::parse_expr_str;

    fn optimized(q: &str) -> (Plan, RewriteStats) {
        let e = parse_expr_str(q).unwrap();
        let core = xqr_frontend::normalize::normalize_expr(&e);
        let mut p = compile_expr(&core);
        let stats = rewrite_plan(&mut p);
        (p, stats)
    }

    #[test]
    fn remove_map_on_top_level_flwor() {
        let (p, stats) = optimized("for $x in $s return $x");
        assert!(stats.count("remove map") >= 1);
        assert_eq!(
            count_ops(&p, &|o| matches!(o, Op::TupleTable)),
            0,
            "{}",
            compact(&p)
        );
    }

    #[test]
    fn section5_example_yields_group_by_and_outer_join() {
        // for $x in (1,1,3) let $a := avg(for $y in (1,2) where $x <= $y
        // return $y * 10) return ($x, $a) — the Fig. 4 query.
        let (p, stats) = optimized(
            "for $x in (1,1,3) \
             let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) \
             return ($x, $a)",
        );
        assert!(stats.count("insert group-by") >= 1, "{stats:?}");
        assert!(stats.count("map through group-by") >= 1, "{stats:?}");
        assert!(stats.count("remove duplicate null") >= 1, "{stats:?}");
        assert!(stats.count("insert outer-join") >= 1, "{stats:?}");
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::GroupBy { .. })), 1);
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::LOuterJoin { .. })), 1);
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::MapIndexStep { .. })), 1);
        assert_eq!(
            count_ops(&p, &|o| matches!(
                o,
                Op::MapConcat { .. } | Op::OMapConcat { .. }
            )),
            0,
            "fully unnested: {}",
            compact(&p)
        );
    }

    #[test]
    fn paper_q8_reaches_p2_shape() {
        // Section 2's query: P1 → P2.
        let (p, stats) = optimized(
            "for $p in $auction//person \
             let $a as element(*,Auction)* := \
                for $t in $auction//closed_auction \
                where $t/buyer/@person = $p/@id \
                return validate { $t } \
             return <item person=\"{$p/name/text()}\">{ count($a/element(*,USSeller)) }</item>",
        );
        assert!(stats.count("insert group-by") >= 1);
        assert!(stats.count("insert outer-join") >= 1);
        let Op::MapToItem { input, .. } = &p.op else {
            panic!("MapToItem root")
        };
        let Op::GroupBy {
            per_partition,
            per_item,
            input: gb_in,
            index_fields,
            null_fields,
            ..
        } = &input.op
        else {
            panic!("GroupBy under root, got {}", compact(input));
        };
        assert_eq!(index_fields.len(), 1);
        assert_eq!(null_fields.len(), 1);
        assert!(
            matches!(per_partition.op, Op::TypeAssert { .. }),
            "P2 line 7"
        );
        assert!(matches!(per_item.op, Op::Validate { .. }), "P2 line 8");
        let Op::LOuterJoin { left, right, .. } = &gb_in.op else {
            panic!("LOuterJoin under GroupBy, got {}", compact(gb_in));
        };
        assert!(matches!(left.op, Op::MapIndexStep { .. }), "P2 line 11");
        assert!(matches!(right.op, Op::MapFromItem { .. }), "P2 line 13");
    }

    #[test]
    fn uncorrelated_nested_flwor_becomes_constant_outer_join() {
        // The nested block has no predicate against the outer tuple;
        // unnesting still applies and yields a constant-true LOuterJoin,
        // which evaluates the inner block once rather than per outer tuple.
        let (p, stats) =
            optimized("for $x in $s let $a := (for $y in $t return $y) return ($x, $a)");
        assert!(stats.count("insert group-by") >= 1);
        assert!(
            stats.count("insert outer-join") >= 1,
            "{stats:?}\n{}",
            compact(&p)
        );
        let mut found_const_pred = false;
        fn walk(p: &Plan, found: &mut bool) {
            if let Op::LOuterJoin { pred, .. } = &p.op {
                if matches!(pred.op, Op::Scalar(xqr_xml::AtomicValue::Boolean(true))) {
                    *found = true;
                }
            }
            for (c, _) in p.op.children() {
                walk(c, found);
            }
        }
        walk(&p, &mut found_const_pred);
        assert!(found_const_pred, "{}", compact(&p));
    }

    #[test]
    fn independent_for_becomes_product_then_join() {
        let (p, stats) =
            optimized("for $x in $s for $y in $t where $x/@id = $y/@ref return ($x, $y)");
        assert!(stats.count("insert product") >= 1, "{stats:?}");
        assert!(stats.count("insert join") >= 1, "{stats:?}");
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::Join { .. })), 1);
    }

    #[test]
    fn correlated_for_stays_dependent() {
        let (p, stats) = optimized("for $x in $s for $y in $x/item return $y");
        assert_eq!(stats.count("insert product"), 0);
        assert_eq!(
            count_ops(&p, &|o| matches!(o, Op::MapConcat { .. })),
            1,
            "{}",
            compact(&p)
        );
    }

    #[test]
    fn nested_path_variant_unnests_too() {
        // Section 4's "variant of query Q1" with a nested path instead of a
        // nested FLWOR.
        let (p, stats) = optimized(
            "for $p in $auction//person \
             let $a := $auction//closed_auction[.//@person = $p/@id] \
             return count($a)",
        );
        assert!(
            stats.count("insert group-by") >= 1,
            "{stats:?}\n{}",
            compact(&p)
        );
        assert!(stats.count("insert outer-join") >= 1, "{stats:?}");
    }

    #[test]
    fn rewriting_is_idempotent() {
        let (mut p, _) = optimized(
            "for $x in (1,1,3) \
             let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) \
             return ($x, $a)",
        );
        let again = rewrite_plan(&mut p);
        assert_eq!(again.total(), 0, "no further rewrites on an optimized plan");
    }
}
