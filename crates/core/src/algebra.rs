//! The complete XQuery logical algebra — Table 1 of the paper.
//!
//! A [`Plan`] is a tree of [`Op`] nodes. Following the paper's notation,
//! each operator has *static parameters* (`[...]`), *dependent
//! sub-operators* (`{...}`, whose `IN` is rebound per element by the
//! operator), and *independent inputs* (`(...)`, evaluated against the
//! enclosing `IN`). [`Op::Input`] is the explicit `IN` reference.
//!
//! Two places deliberately generalize the paper's table:
//! constructors accept computed names ([`NamePlan::Dynamic`]) so the whole
//! language compiles, and `Sequence` is n-ary (the paper's binary form is
//! the n=2 case).

use std::rc::Rc;

use xqr_types::{SequenceType, ValidationMode};
use xqr_xml::axes::{Axis, NodeTest};
use xqr_xml::{AtomicValue, QName};

/// A tuple-field name.
pub type Field = Rc<str>;

/// A constructor name: static QName or computed from a plan.
#[derive(Clone, Debug)]
pub enum NamePlan {
    Static(QName),
    Dynamic(Box<Plan>),
}

/// One `OrderBy` key: a dependent plan (tuple → items) plus direction and
/// empty-ordering flags, per XQuery's order specs.
#[derive(Clone, Debug)]
pub struct OrderSpecPlan {
    pub key: Plan,
    pub descending: bool,
    pub empty_least: bool,
}

/// A logical query plan.
#[derive(Clone, Debug)]
pub struct Plan {
    pub op: Op,
}

impl Plan {
    pub fn new(op: Op) -> Plan {
        Plan { op }
    }

    pub fn boxed(op: Op) -> Box<Plan> {
        Box::new(Plan { op })
    }

    /// `IN`.
    pub fn input() -> Plan {
        Plan::new(Op::Input)
    }

    /// `IN#field` — field access on the current input tuple.
    pub fn in_field(field: &str) -> Plan {
        Plan::new(Op::FieldAccess {
            field: field.into(),
            input: Plan::boxed(Op::Input),
        })
    }

    pub fn scalar(v: AtomicValue) -> Plan {
        Plan::new(Op::Scalar(v))
    }

    pub fn call(name: &str, args: Vec<Plan>) -> Plan {
        Plan::new(Op::Call {
            name: QName::local(name),
            args,
        })
    }
}

/// The operators of Table 1.
#[derive(Clone, Debug)]
pub enum Op {
    // ===== XML operators =====================================================
    /// `Sequence(S(i1), S(i2))` — n-ary sequence construction.
    Sequence(Vec<Plan>),
    /// `Empty()` — the empty sequence.
    Empty,
    /// `Scalar[a]()` — an atomic constant.
    Scalar(AtomicValue),
    /// `Element[q](S(i))` — element construction (content deep-copied).
    Element { name: NamePlan, content: Box<Plan> },
    /// `Attribute[q](S(a))`.
    Attribute { name: NamePlan, content: Box<Plan> },
    /// `Text(a)`.
    Text(Box<Plan>),
    /// `Comment(a)`.
    Comment(Box<Plan>),
    /// `PI(a)`.
    Pi { target: String, content: Box<Plan> },
    /// Document-node constructor (needed for `document { … }`).
    DocumentNode(Box<Plan>),
    /// `TreeJoin[axis, nodetest](S(i))` — set-at-a-time navigation,
    /// document order, duplicate-free.
    TreeJoin {
        axis: Axis,
        test: NodeTest,
        input: Box<Plan>,
    },
    /// `TreeProject[paths](i)` — structural projection: keeps only branches
    /// lying along one of the given step chains; subtrees at a chain's end
    /// are kept whole (the projection of Marian & Siméon that the paper's
    /// `TreeProject` operator names).
    TreeProject {
        paths: Vec<Vec<(Axis, NodeTest)>>,
        input: Box<Plan>,
    },
    /// `Castable[Type](a)`.
    Castable {
        ty: xqr_xml::AtomicType,
        optional: bool,
        input: Box<Plan>,
    },
    /// `Cast[Type](a)`.
    Cast {
        ty: xqr_xml::AtomicType,
        optional: bool,
        input: Box<Plan>,
    },
    /// `Validate[Type](i)`.
    Validate {
        mode: ValidationMode,
        input: Box<Plan>,
    },
    /// `TypeMatches[Type](S(i))` — `instance of`.
    TypeMatches { st: SequenceType, input: Box<Plan> },
    /// `TypeAssert[Type](S(i))` — identity or dynamic error.
    TypeAssert { st: SequenceType, input: Box<Plan> },
    /// `Var[q]()` — a global variable or function parameter from the
    /// algebra context.
    Var(QName),
    /// `Call[q](S(i1) … S(in))` — built-in or user function call.
    Call { name: QName, args: Vec<Plan> },
    /// `Cond{S(i1), S(i2)}(boolean)` — the branches see the *enclosing*
    /// `IN` (they are lazily evaluated, not input-rebinding).
    Cond {
        cond: Box<Plan>,
        then: Box<Plan>,
        els: Box<Plan>,
    },
    /// `Parse(URI)`.
    Parse { uri: Box<Plan> },
    /// `Serialize(URI, S(i))` — serializes to a string (URI-less form).
    Serialize { input: Box<Plan> },

    // ===== Tuple operators ===================================================
    /// `IN` — the dependent input.
    Input,
    /// `([])` — the singleton table holding the empty tuple (the input of a
    /// top-level FLWOR, paper plan P1 line 13).
    TupleTable,
    /// `[q1:e1; …; qn:en]` — tuple construction.
    Tuple(Vec<(Field, Plan)>),
    /// `++` — tuple concatenation.
    TupleConcat(Box<Plan>, Box<Plan>),
    /// `#q(τ)` — field access.
    FieldAccess { field: Field, input: Box<Plan> },
    /// `Select{pred}(S(τ))`.
    Select { pred: Box<Plan>, input: Box<Plan> },
    /// `Product(S(τ1), S(τ2))`.
    Product(Box<Plan>, Box<Plan>),
    /// `Join{pred}(S(τ1), S(τ2))`.
    Join {
        pred: Box<Plan>,
        left: Box<Plan>,
        right: Box<Plan>,
    },
    /// `LOuterJoin[q]{pred}(S(τ1), S(τ2))` — adds boolean field `q`, true
    /// on null-padded rows.
    LOuterJoin {
        null_field: Field,
        pred: Box<Plan>,
        left: Box<Plan>,
        right: Box<Plan>,
    },
    /// `Map{τ1→τ2}(S(τ1))`.
    MapOp { dep: Box<Plan>, input: Box<Plan> },
    /// `OMap[q](S(τ))` — outer map: emits `[q:true]` when the input table
    /// is empty, else flags every tuple `[q:false]`.
    OMap { null_field: Field, input: Box<Plan> },
    /// `MapConcat{τ1→S(τ2)}(S(τ1))` — the dependent join (D-Join).
    MapConcat { dep: Box<Plan>, input: Box<Plan> },
    /// `OMapConcat[q]{…}(…)` — outer dependent join.
    OMapConcat {
        null_field: Field,
        dep: Box<Plan>,
        input: Box<Plan>,
    },
    /// `MapIndex[q](S(τ))` — consecutive 1-based indices.
    MapIndex { field: Field, input: Box<Plan> },
    /// `MapIndexStep[q](S(τ))` — ascending but not necessarily consecutive.
    MapIndexStep { field: Field, input: Box<Plan> },
    /// `OrderBy{keys}(S(τ))` — stable, with XQuery value coercion.
    OrderBy {
        specs: Vec<OrderSpecPlan>,
        input: Box<Plan>,
    },
    /// `GroupBy[qAgg, qIndices, qNulls]{per-partition}{per-item}(S(τ))` —
    /// the XQuery-specific group-by of Section 5.
    GroupBy {
        agg: Field,
        index_fields: Vec<Field>,
        null_fields: Vec<Field>,
        per_partition: Box<Plan>,
        per_item: Box<Plan>,
        input: Box<Plan>,
    },

    // ===== XML/Tuple boundary ================================================
    /// `MapFromItem{i→τ}(S(i))`.
    MapFromItem { dep: Box<Plan>, input: Box<Plan> },
    /// `MapToItem{τ→i}(S(τ))`.
    MapToItem { dep: Box<Plan>, input: Box<Plan> },
    /// `MapSome{τ→boolean}(S(τ))`.
    MapSome { dep: Box<Plan>, input: Box<Plan> },
    /// `MapEvery{τ→boolean}(S(τ))`.
    MapEvery { dep: Box<Plan>, input: Box<Plan> },
}

/// How a child plan relates to its parent's `IN`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChildKind {
    /// Evaluated against the enclosing `IN` (independent inputs, `Cond`
    /// branches, call arguments, tuple field values, …).
    Inherit,
    /// The parent rebinds `IN` for this child (dependent sub-operators).
    Rebinds,
}

impl Op {
    /// All child plans with their binding kind — the single traversal point
    /// used by the analyses and the rewrite engine.
    pub fn children(&self) -> Vec<(&Plan, ChildKind)> {
        use ChildKind::*;
        match self {
            Op::Sequence(items) | Op::Call { args: items, .. } => {
                items.iter().map(|p| (p, Inherit)).collect()
            }
            Op::Empty | Op::Scalar(_) | Op::Var(_) | Op::Input | Op::TupleTable => Vec::new(),
            Op::Element { name, content } | Op::Attribute { name, content } => {
                let mut v = Vec::new();
                if let NamePlan::Dynamic(n) = name {
                    v.push((n.as_ref(), Inherit));
                }
                v.push((content.as_ref(), Inherit));
                v
            }
            Op::Text(c) | Op::Comment(c) | Op::DocumentNode(c) | Op::Pi { content: c, .. } => {
                vec![(c.as_ref(), Inherit)]
            }
            Op::TreeJoin { input, .. }
            | Op::TreeProject { input, .. }
            | Op::Castable { input, .. }
            | Op::Cast { input, .. }
            | Op::Validate { input, .. }
            | Op::TypeMatches { input, .. }
            | Op::TypeAssert { input, .. }
            | Op::Parse { uri: input }
            | Op::Serialize { input }
            | Op::FieldAccess { input, .. }
            | Op::OMap { input, .. }
            | Op::MapIndex { input, .. }
            | Op::MapIndexStep { input, .. } => vec![(input.as_ref(), Inherit)],
            Op::Cond { cond, then, els } => vec![
                (cond.as_ref(), Inherit),
                (then.as_ref(), Inherit),
                (els.as_ref(), Inherit),
            ],
            Op::Tuple(fields) => fields.iter().map(|(_, p)| (p, Inherit)).collect(),
            Op::TupleConcat(a, b) | Op::Product(a, b) => {
                vec![(a.as_ref(), Inherit), (b.as_ref(), Inherit)]
            }
            Op::Select { pred, input } => {
                vec![(pred.as_ref(), Rebinds), (input.as_ref(), Inherit)]
            }
            Op::Join { pred, left, right } => vec![
                (pred.as_ref(), Rebinds),
                (left.as_ref(), Inherit),
                (right.as_ref(), Inherit),
            ],
            Op::LOuterJoin {
                pred, left, right, ..
            } => vec![
                (pred.as_ref(), Rebinds),
                (left.as_ref(), Inherit),
                (right.as_ref(), Inherit),
            ],
            Op::MapOp { dep, input }
            | Op::MapConcat { dep, input }
            | Op::OMapConcat { dep, input, .. }
            | Op::MapFromItem { dep, input }
            | Op::MapToItem { dep, input }
            | Op::MapSome { dep, input }
            | Op::MapEvery { dep, input } => {
                vec![(dep.as_ref(), Rebinds), (input.as_ref(), Inherit)]
            }
            Op::OrderBy { specs, input } => {
                let mut v: Vec<(&Plan, ChildKind)> =
                    specs.iter().map(|s| (&s.key, Rebinds)).collect();
                v.push((input.as_ref(), Inherit));
                v
            }
            Op::GroupBy {
                per_partition,
                per_item,
                input,
                ..
            } => vec![
                (per_partition.as_ref(), Rebinds),
                (per_item.as_ref(), Rebinds),
                (input.as_ref(), Inherit),
            ],
        }
    }

    /// Mutable version of [`Op::children`] (same order).
    pub fn children_mut(&mut self) -> Vec<(&mut Plan, ChildKind)> {
        use ChildKind::*;
        match self {
            Op::Sequence(items) | Op::Call { args: items, .. } => {
                items.iter_mut().map(|p| (p, Inherit)).collect()
            }
            Op::Empty | Op::Scalar(_) | Op::Var(_) | Op::Input | Op::TupleTable => Vec::new(),
            Op::Element { name, content } | Op::Attribute { name, content } => {
                let mut v = Vec::new();
                if let NamePlan::Dynamic(n) = name {
                    v.push((n.as_mut(), Inherit));
                }
                v.push((content.as_mut(), Inherit));
                v
            }
            Op::Text(c) | Op::Comment(c) | Op::DocumentNode(c) | Op::Pi { content: c, .. } => {
                vec![(c.as_mut(), Inherit)]
            }
            Op::TreeJoin { input, .. }
            | Op::TreeProject { input, .. }
            | Op::Castable { input, .. }
            | Op::Cast { input, .. }
            | Op::Validate { input, .. }
            | Op::TypeMatches { input, .. }
            | Op::TypeAssert { input, .. }
            | Op::Parse { uri: input }
            | Op::Serialize { input }
            | Op::FieldAccess { input, .. }
            | Op::OMap { input, .. }
            | Op::MapIndex { input, .. }
            | Op::MapIndexStep { input, .. } => vec![(input.as_mut(), Inherit)],
            Op::Cond { cond, then, els } => vec![
                (cond.as_mut(), Inherit),
                (then.as_mut(), Inherit),
                (els.as_mut(), Inherit),
            ],
            Op::Tuple(fields) => fields.iter_mut().map(|(_, p)| (p, Inherit)).collect(),
            Op::TupleConcat(a, b) | Op::Product(a, b) => {
                vec![(a.as_mut(), Inherit), (b.as_mut(), Inherit)]
            }
            Op::Select { pred, input } => {
                vec![(pred.as_mut(), Rebinds), (input.as_mut(), Inherit)]
            }
            Op::Join { pred, left, right } => vec![
                (pred.as_mut(), Rebinds),
                (left.as_mut(), Inherit),
                (right.as_mut(), Inherit),
            ],
            Op::LOuterJoin {
                pred, left, right, ..
            } => vec![
                (pred.as_mut(), Rebinds),
                (left.as_mut(), Inherit),
                (right.as_mut(), Inherit),
            ],
            Op::MapOp { dep, input }
            | Op::MapConcat { dep, input }
            | Op::OMapConcat { dep, input, .. }
            | Op::MapFromItem { dep, input }
            | Op::MapToItem { dep, input }
            | Op::MapSome { dep, input }
            | Op::MapEvery { dep, input } => {
                vec![(dep.as_mut(), Rebinds), (input.as_mut(), Inherit)]
            }
            Op::OrderBy { specs, input } => {
                let mut v: Vec<(&mut Plan, ChildKind)> =
                    specs.iter_mut().map(|s| (&mut s.key, Rebinds)).collect();
                v.push((input.as_mut(), Inherit));
                v
            }
            Op::GroupBy {
                per_partition,
                per_item,
                input,
                ..
            } => vec![
                (per_partition.as_mut(), Rebinds),
                (per_item.as_mut(), Rebinds),
                (input.as_mut(), Inherit),
            ],
        }
    }

    /// The operator's display name (paper spelling).
    pub fn name(&self) -> &'static str {
        match self {
            Op::Sequence(_) => "Sequence",
            Op::Empty => "Empty",
            Op::Scalar(_) => "Scalar",
            Op::Element { .. } => "Element",
            Op::Attribute { .. } => "Attribute",
            Op::Text(_) => "Text",
            Op::Comment(_) => "Comment",
            Op::Pi { .. } => "PI",
            Op::DocumentNode(_) => "DocumentNode",
            Op::TreeJoin { .. } => "TreeJoin",
            Op::TreeProject { .. } => "TreeProject",
            Op::Castable { .. } => "Castable",
            Op::Cast { .. } => "Cast",
            Op::Validate { .. } => "Validate",
            Op::TypeMatches { .. } => "TypeMatches",
            Op::TypeAssert { .. } => "TypeAssert",
            Op::Var(_) => "Var",
            Op::Call { .. } => "Call",
            Op::Cond { .. } => "Cond",
            Op::Parse { .. } => "Parse",
            Op::Serialize { .. } => "Serialize",
            Op::Input => "IN",
            Op::TupleTable => "([])",
            Op::Tuple(_) => "Tuple",
            Op::TupleConcat(..) => "++",
            Op::FieldAccess { .. } => "#",
            Op::Select { .. } => "Select",
            Op::Product(..) => "Product",
            Op::Join { .. } => "Join",
            Op::LOuterJoin { .. } => "LOuterJoin",
            Op::MapOp { .. } => "Map",
            Op::OMap { .. } => "OMap",
            Op::MapConcat { .. } => "MapConcat",
            Op::OMapConcat { .. } => "OMapConcat",
            Op::MapIndex { .. } => "MapIndex",
            Op::MapIndexStep { .. } => "MapIndexStep",
            Op::OrderBy { .. } => "OrderBy",
            Op::GroupBy { .. } => "GroupBy",
            Op::MapFromItem { .. } => "MapFromItem",
            Op::MapToItem { .. } => "MapToItem",
            Op::MapSome { .. } => "MapSome",
            Op::MapEvery { .. } => "MapEvery",
        }
    }
}

/// Counts the operators in a plan (used by tests and stats).
pub fn plan_size(p: &Plan) -> usize {
    1 + p
        .op
        .children()
        .iter()
        .map(|(c, _)| plan_size(c))
        .sum::<usize>()
}

/// Counts operators satisfying a predicate.
pub fn count_ops(p: &Plan, f: &dyn Fn(&Op) -> bool) -> usize {
    let here = usize::from(f(&p.op));
    here + p
        .op
        .children()
        .iter()
        .map(|(c, _)| count_ops(c, f))
        .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_cover_all_slots() {
        let p = Plan::new(Op::Select {
            pred: Plan::boxed(Op::Scalar(AtomicValue::Boolean(true))),
            input: Plan::boxed(Op::TupleTable),
        });
        let kids = p.op.children();
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].1, ChildKind::Rebinds);
        assert_eq!(kids[1].1, ChildKind::Inherit);
        assert_eq!(plan_size(&p), 3);
    }

    #[test]
    fn in_field_shape() {
        let p = Plan::in_field("p");
        let Op::FieldAccess { field, input } = &p.op else {
            panic!()
        };
        assert_eq!(&**field, "p");
        assert!(matches!(input.op, Op::Input));
    }

    #[test]
    fn count_ops_works() {
        let p = Plan::new(Op::Sequence(vec![
            Plan::input(),
            Plan::new(Op::Sequence(vec![Plan::input()])),
        ]));
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::Input)), 2);
    }
}
